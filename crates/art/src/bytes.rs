//! Read-only 8-byte-aligned byte buffers: a real `mmap` on unix, an
//! owned aligned buffer everywhere else (and as an explicit fallback).

use std::fs::File;
use std::io::Read;
use std::path::Path;

use crate::ArtError;

/// A read-only view of a whole artifact file, aligned to 8 bytes.
///
/// On unix this is a private memory mapping — opening is O(1) in the
/// file size and the pages are shared across processes through the
/// page cache. Elsewhere (or when mapping fails) the file is read into
/// an owned 8-byte-aligned buffer; callers can't tell the difference.
///
/// **Mapped files must not be modified while mapped.** The verification
/// chain in [`ArtFile::open`](crate::ArtFile::open) runs against the
/// bytes at open time; a writer mutating the file afterwards bypasses
/// it (standard mmap TOCTOU caveat — deploy artifacts are immutable,
/// replaced by rename).
pub struct ArtBytes {
    repr: Repr,
}

enum Repr {
    #[cfg(unix)]
    Mapped {
        ptr: *const u8,
        len: usize,
        // The original mapping length handed back to munmap (len
        // rounds up to page granularity implicitly; munmap takes the
        // requested length).
        map_len: usize,
    },
    Owned {
        // Backing storage in u64 units to force 8-byte alignment; the
        // logical byte length may be shorter than 8 × capacity.
        buf: Vec<u64>,
        len: usize,
    },
}

// SAFETY: the mapping is private and read-only for its whole lifetime;
// a `&ArtBytes` only ever yields shared `&[u8]` views.
unsafe impl Send for ArtBytes {}
unsafe impl Sync for ArtBytes {}

#[cfg(unix)]
mod mmap_ffi {
    //! Minimal mmap bindings. `std` already links libc on unix
    //! targets, so declaring the two symbols we need avoids a libc
    //! crate dependency.
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

impl ArtBytes {
    /// Maps (unix) or reads `path` read-only.
    pub fn open(path: &Path) -> Result<Self, ArtError> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| crate::corrupt("file too large for this address space"))?;
        #[cfg(unix)]
        {
            if let Some(mapped) = Self::try_map(&file, len) {
                return Ok(mapped);
            }
        }
        Self::read_owned(&mut file, len)
    }

    #[cfg(unix)]
    fn try_map(file: &File, len: usize) -> Option<Self> {
        use std::os::unix::io::AsRawFd;
        // A zero-length mmap is an error by spec; the empty file is
        // handled (and rejected as truncated) by the owned path.
        if len == 0 {
            return None;
        }
        // SAFETY: mapping `len` bytes of an open fd privately and
        // read-only; the result is checked against MAP_FAILED before
        // use, and munmap'd with the same length on drop.
        let ptr = unsafe {
            mmap_ffi::mmap(
                std::ptr::null_mut(),
                len,
                mmap_ffi::PROT_READ,
                mmap_ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == mmap_ffi::MAP_FAILED {
            return None;
        }
        // mmap returns page-aligned addresses — far stricter than the
        // 8-byte alignment the format requires.
        debug_assert_eq!(ptr as usize % 8, 0);
        Some(Self {
            repr: Repr::Mapped {
                ptr: ptr as *const u8,
                len,
                map_len: len,
            },
        })
    }

    fn read_owned(file: &mut File, len: usize) -> Result<Self, ArtError> {
        let words = len.div_ceil(8);
        let mut buf = vec![0u64; words];
        // View the u64 backing store as bytes for the read; any bit
        // pattern is a valid u64, and the allocation is 8-aligned.
        let dst = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
        file.read_exact(dst)?;
        Ok(Self {
            repr: Repr::Owned { buf, len },
        })
    }

    /// The file contents.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            #[cfg(unix)]
            // SAFETY: the mapping stays valid until drop and is never
            // written through.
            Repr::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Repr::Owned { buf, len } => {
                // SAFETY: `len <= buf.len() * 8` by construction.
                unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len) }
            }
        }
    }

    /// Total length in bytes.
    pub fn len(&self) -> usize {
        match &self.repr {
            #[cfg(unix)]
            Repr::Mapped { len, .. } => *len,
            Repr::Owned { len, .. } => *len,
        }
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::ops::Deref for ArtBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for ArtBytes {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Repr::Mapped { ptr, map_len, .. } = self.repr {
            // SAFETY: `ptr`/`map_len` came from a successful mmap and
            // are unmapped exactly once.
            unsafe {
                mmap_ffi::munmap(ptr as *mut std::ffi::c_void, map_len);
            }
        }
    }
}
