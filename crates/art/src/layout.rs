//! Byte-level layout constants and bounds-checked decoding primitives.
//!
//! Everything in a `.redsart` file is **little-endian**. The header is
//! 48 bytes, every section payload starts on an 8-byte boundary
//! (zero-padded between sections), and the table of contents sits at
//! the end of the file so writers can stream payloads without knowing
//! their sizes up front. `docs/artifact-format.md` is the normative
//! description.

use crate::{corrupt, ArtError};

/// File magic: `REDSART1`.
pub const MAGIC: [u8; 8] = *b"REDSART1";
/// Current (and only) format version.
pub const VERSION: u32 = 1;
/// Fixed header size: magic(8) version(4) section_count(4)
/// toc_offset(8) file_len(8) file_fnv(8) reserved(8).
pub const HEADER_LEN: usize = 48;
/// Byte offset of the whole-file checksum inside the header (zeroed
/// while the checksum itself is computed).
pub const FNV_FIELD_OFFSET: usize = 32;
/// Size of one table-of-contents entry: kind(4) reserved(4) offset(8)
/// len(8) fnv(8).
pub const TOC_ENTRY_LEN: usize = 32;

/// Section kind: artifact metadata (function, seeds, pool design).
pub const SECTION_META: u32 = 1;
/// Section kind: a fitted model (forest / GBDT / SVM arenas).
pub const SECTION_MODEL: u32 = 2;
/// Section kind: a row-major dataset (training points + labels).
pub const SECTION_DATASET: u32 = 3;
/// Section kind: one column's `(key u64, row u32)` sorted runs.
pub const SECTION_COLUMN: u32 = 4;
/// Section kind: one column's page index — fixed-size-page min/max key
/// fences over the column's merged record order (out-of-core readers
/// use them for page skipping and tie-run boundary detection).
pub const SECTION_PAGE_INDEX: u32 = 5;

/// Model family code: random forest ("f").
pub const FAMILY_FOREST: u32 = 0;
/// Model family code: gradient-boosted trees ("x").
pub const FAMILY_GBDT: u32 = 1;
/// Model family code: RBF-kernel SVM ("s").
pub const FAMILY_SVM: u32 = 2;

/// A bounds-checked little-endian cursor over a section payload. Every
/// read returns a structured error instead of panicking — this is the
/// only way payload bytes are decoded.
pub(crate) struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Offset of the next unread byte (relative to the payload start).
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Takes the next `n` bytes.
    pub(crate) fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ArtError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt(format!("section truncated reading {what}")))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, ArtError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, ArtError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, ArtError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A `u64` count that must also fit `usize` (32-bit targets).
    pub(crate) fn count(&mut self, what: &str) -> Result<usize, ArtError> {
        usize::try_from(self.u64(what)?)
            .map_err(|_| corrupt(format!("{what} does not fit this address space")))
    }

    /// Skips alignment padding up to the next multiple of `align`
    /// bytes (relative to the payload start), requiring zeros.
    pub(crate) fn align(&mut self, align: usize) -> Result<(), ArtError> {
        let rem = self.pos % align;
        if rem != 0 {
            let pad = self.take(align - rem, "alignment padding")?;
            if pad.iter().any(|&b| b != 0) {
                return Err(corrupt("nonzero alignment padding"));
            }
        }
        Ok(())
    }

    /// Asserts the payload is fully consumed — trailing garbage in a
    /// section is a format violation, not slack.
    pub(crate) fn finish(self, what: &str) -> Result<(), ArtError> {
        if self.pos != self.buf.len() {
            return Err(corrupt(format!(
                "{what} section has {} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Reinterprets `bytes` as a `u32` slice (little-endian hosts only —
/// the format is little-endian and the crate targets match; a
/// big-endian port would decode per element). Length and alignment are
/// checked: payload layouts guarantee 4-byte alignment, and the
/// backing buffer ([`ArtBytes`](crate::ArtBytes)) is 8-aligned.
pub(crate) fn cast_u32s<'a>(bytes: &'a [u8], what: &str) -> Result<&'a [u32], ArtError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(corrupt(format!("{what} is not a whole number of u32s")));
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u32>()) {
        return Err(corrupt(format!("{what} is misaligned")));
    }
    // SAFETY: length/alignment checked above; every bit pattern is a
    // valid u32; the lifetime is inherited from `bytes`.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) })
}

/// Reinterprets `bytes` as an `f64` slice (see [`cast_u32s`]).
pub(crate) fn cast_f64s<'a>(bytes: &'a [u8], what: &str) -> Result<&'a [f64], ArtError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(corrupt(format!("{what} is not a whole number of f64s")));
    }
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<f64>()) {
        return Err(corrupt(format!("{what} is misaligned")));
    }
    // SAFETY: length/alignment checked above; every bit pattern is a
    // valid f64.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f64, bytes.len() / 8) })
}
