//! `reds-art` — the `.redsart` zero-copy artifact container.
//!
//! A versioned, checksummed, 8-byte-aligned binary format holding the
//! two data shapes the REDS hot paths are built on:
//!
//! * **model sections** — [`FlatTree`](reds_metamodel::FlatTree)
//!   structure-of-arrays arenas (feature `u32`, value `f64`, right
//!   `u32`) plus forest/GBDT/SVM metadata, laid out so a reader can
//!   hand the mapped arrays straight to the prediction kernels;
//! * **column sections** — `(key u64, row u32)` sorted runs in exactly
//!   the record layout `reds-stream` spills, rank-addressable when
//!   merged to a single run.
//!
//! The reader ([`ArtFile::open`]) memory-maps the file and refuses to
//! expose a single byte of payload before the full verification chain
//! passes: magic, version, recorded-vs-actual length, a whole-file
//! FNV-1a checksum, per-section bounds/alignment/checksums, and then
//! the same structural validation `reds-json` loading performs
//! (`FlatTree` invariants via [`FlatView::new`](reds_metamodel::FlatView),
//! shape checks on SVM/dataset buffers). A crafted `.redsart` can no
//! more loop `predict` or read out of bounds than a crafted JSON model
//! document can — and because FNV-1a's per-byte step is a bijection on
//! the 64-bit state, *any* single-byte corruption of a valid file is
//! guaranteed to change the whole-file digest and be rejected.
//!
//! `reds-json` remains the interchange format; `.redsart` is the
//! deployment format — a serve process opens a model in O(1) with zero
//! JSON parsing, and a fleet of processes shares the arenas through
//! the page cache.
//!
//! See `docs/artifact-format.md` for the byte-level layout.

#![warn(missing_docs)]

mod bytes;
mod layout;
mod read;
mod scan;
mod write;

pub use bytes::ArtBytes;
pub use layout::{
    FAMILY_FOREST, FAMILY_GBDT, FAMILY_SVM, HEADER_LEN, MAGIC, SECTION_COLUMN, SECTION_DATASET,
    SECTION_META, SECTION_MODEL, SECTION_PAGE_INDEX, TOC_ENTRY_LEN, VERSION,
};
pub use read::{ArtFile, ArtMeta, ColumnSection, MappedArtifact, MappedModel, SectionInfo};
pub use scan::{ArtScan, PageIndex, ScanSection, DEFAULT_PAGE_ROWS};
pub use write::{write_model_artifact, ArtWriter, ModelArtifactSpec};

/// Structured failure while writing, opening, or validating a
/// `.redsart` file. Every malformed input surfaces as one of these —
/// the readers never panic on file contents.
#[derive(Debug)]
pub enum ArtError {
    /// Underlying filesystem / mapping failure.
    Io(std::io::Error),
    /// The bytes violate the format: truncated, bad magic, checksum
    /// mismatch, out-of-bounds section, or a payload failing the same
    /// structural validation the JSON loaders enforce.
    Corrupt(String),
    /// Well-formed but not loadable here: unsupported version, or a
    /// required section is missing/duplicated.
    Unsupported(String),
}

impl std::fmt::Display for ArtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtError::Io(e) => write!(f, "artifact io error: {e}"),
            ArtError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            ArtError::Unsupported(msg) => write!(f, "unsupported artifact: {msg}"),
        }
    }
}

impl std::error::Error for ArtError {}

impl From<std::io::Error> for ArtError {
    fn from(e: std::io::Error) -> Self {
        ArtError::Io(e)
    }
}

/// Shorthand for a [`ArtError::Corrupt`] constructor.
pub(crate) fn corrupt(msg: impl Into<String>) -> ArtError {
    ArtError::Corrupt(msg.into())
}

/// FNV-1a 64-bit offset basis (same constants as `reds-stream`'s pool
/// digest).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a 64 state.
///
/// Each byte's step `h ← (h ⊕ b) · p` is a bijection on `u64` (the
/// prime is odd, hence invertible mod 2⁶⁴), so two equal-length byte
/// streams differing in exactly one byte can never collide — the
/// property the byte-flip rejection guarantee rests on.
pub(crate) fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state = (state ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    state
}
