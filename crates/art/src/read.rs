//! Verified memory-mapped `.redsart` reader.
//!
//! [`ArtFile::open`] runs the full verification chain before any
//! payload is exposed, in this order:
//!
//! 1. length ≥ header, magic, version;
//! 2. recorded file length == actual length (catches truncation and
//!    extension);
//! 3. whole-file FNV-1a checksum (computed with the checksum field
//!    zeroed) — rejects **every** single-byte corruption, because the
//!    FNV step is a bijection on the 64-bit state;
//! 4. table-of-contents bounds: 8-aligned section offsets inside the
//!    payload area, per-section payload checksums;
//! 5. on typed access, bounds-checked little-endian decoding plus the
//!    same structural validation the JSON loaders run (`FlatView::new`
//!    arena invariants, SVM/dataset shape checks, sorted-run checks).
//!
//! Only after all of that do borrowed views (tree arenas, column
//! records) come out of the mapping — so serving a `.redsart` performs
//! zero JSON parsing and zero copies of model bytes, at the same trust
//! level as the JSON path.

use std::collections::BinaryHeap;
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

use reds_data::Dataset;
use reds_metamodel::{FlatView, Metamodel, Svm};

use crate::bytes::ArtBytes;
use crate::layout::{
    cast_f64s, cast_u32s, Cur, FAMILY_FOREST, FAMILY_GBDT, FAMILY_SVM, FNV_FIELD_OFFSET,
    HEADER_LEN, MAGIC, SECTION_COLUMN, SECTION_DATASET, SECTION_META, SECTION_MODEL, TOC_ENTRY_LEN,
    VERSION,
};
use crate::{corrupt, fnv1a, ArtError, FNV_OFFSET};

/// One table-of-contents entry, as exposed to callers.
#[derive(Debug, Clone, Copy)]
pub struct SectionInfo {
    /// Section kind code (`SECTION_*`; unknown kinds are tolerated for
    /// forward compatibility — they are checksummed but never parsed).
    pub kind: u32,
    /// Payload length in bytes.
    pub len: usize,
}

struct Section {
    kind: u32,
    range: Range<usize>,
}

/// A verified, memory-mapped `.redsart` file.
pub struct ArtFile {
    bytes: Arc<ArtBytes>,
    sections: Vec<Section>,
}

impl ArtFile {
    /// Maps `path` and runs the verification chain (see module docs).
    pub fn open(path: &Path) -> Result<Self, ArtError> {
        let bytes = Arc::new(ArtBytes::open(path)?);
        Self::from_bytes(bytes)
    }

    /// Verifies an already-loaded buffer (the mmap-free entry point,
    /// also used by the byte-mutation tests).
    pub fn from_bytes(bytes: Arc<ArtBytes>) -> Result<Self, ArtError> {
        let buf: &[u8] = &bytes;
        if buf.len() < HEADER_LEN {
            return Err(corrupt(format!(
                "file of {} bytes is shorter than the {HEADER_LEN}-byte header",
                buf.len()
            )));
        }
        if buf[..8] != MAGIC {
            return Err(corrupt("bad magic (not a .redsart file)"));
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(ArtError::Unsupported(format!(
                "format version {version} (this build reads version {VERSION})"
            )));
        }
        let section_count = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")) as usize;
        let toc_offset = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
        let file_len = u64::from_le_bytes(buf[24..32].try_into().expect("8 bytes"));
        let stored_fnv = u64::from_le_bytes(buf[32..40].try_into().expect("8 bytes"));
        if file_len != buf.len() as u64 {
            return Err(corrupt(format!(
                "recorded length {file_len} != actual length {} (truncated or extended)",
                buf.len()
            )));
        }
        // TOC geometry: the writer always places it last, so its end
        // must coincide exactly with the file end. This bounds
        // `section_count` before any multiplication can overflow.
        let toc_len = (section_count as u64).checked_mul(TOC_ENTRY_LEN as u64);
        let toc_end = toc_len.and_then(|l| toc_offset.checked_add(l));
        if toc_offset < HEADER_LEN as u64
            || toc_offset % 8 != 0
            || toc_end != Some(buf.len() as u64)
        {
            return Err(corrupt("table of contents does not span to the file end"));
        }
        // Whole-file checksum, with the checksum field itself zeroed.
        let mut digest = fnv1a(FNV_OFFSET, &buf[..FNV_FIELD_OFFSET]);
        digest = fnv1a(digest, &[0u8; 8]);
        digest = fnv1a(digest, &buf[FNV_FIELD_OFFSET + 8..]);
        if digest != stored_fnv {
            return Err(corrupt(format!(
                "file checksum mismatch (stored {stored_fnv:#018x}, computed {digest:#018x})"
            )));
        }
        // Per-section bounds, alignment, and payload checksums.
        let toc_offset = toc_offset as usize;
        let mut sections = Vec::with_capacity(section_count);
        for i in 0..section_count {
            let e = &buf[toc_offset + i * TOC_ENTRY_LEN..toc_offset + (i + 1) * TOC_ENTRY_LEN];
            let kind = u32::from_le_bytes(e[..4].try_into().expect("4 bytes"));
            let offset = u64::from_le_bytes(e[8..16].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(e[16..24].try_into().expect("8 bytes"));
            let fnv = u64::from_le_bytes(e[24..32].try_into().expect("8 bytes"));
            let end = offset.checked_add(len);
            if offset < HEADER_LEN as u64
                || offset % 8 != 0
                || end.is_none()
                || end > Some(toc_offset as u64)
            {
                return Err(corrupt(format!("section {i} is out of bounds")));
            }
            let range = offset as usize..(offset + len) as usize;
            if fnv1a(FNV_OFFSET, &buf[range.clone()]) != fnv {
                return Err(corrupt(format!(
                    "section {i} (kind {kind}) checksum mismatch"
                )));
            }
            sections.push(Section { kind, range });
        }
        Ok(Self { bytes, sections })
    }

    /// The table of contents (unknown kinds included).
    pub fn sections(&self) -> Vec<SectionInfo> {
        self.sections
            .iter()
            .map(|s| SectionInfo {
                kind: s.kind,
                len: s.range.len(),
            })
            .collect()
    }

    fn payload(&self, idx: usize) -> &[u8] {
        &self.bytes[self.sections[idx].range.clone()]
    }

    fn find_unique(&self, kind: u32, name: &str) -> Result<usize, ArtError> {
        let mut found = None;
        for (i, s) in self.sections.iter().enumerate() {
            if s.kind == kind {
                if found.is_some() {
                    return Err(ArtError::Unsupported(format!(
                        "multiple {name} sections (expected exactly one)"
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| ArtError::Unsupported(format!("no {name} section")))
    }

    /// Decodes the metadata section.
    pub fn meta(&self) -> Result<ArtMeta, ArtError> {
        let idx = self.find_unique(SECTION_META, "metadata")?;
        let mut cur = Cur::new(self.payload(idx));
        let family = cur.u32("meta family")?;
        let m = cur.u32("meta m")? as usize;
        let seed = cur.u64("meta seed")?;
        let pool_seed = cur.u64("meta pool seed")?;
        let pool_design = cur.u32("meta pool design")?;
        let function_len = cur.u32("meta function length")? as usize;
        let function = std::str::from_utf8(cur.take(function_len, "meta function name")?)
            .map_err(|_| corrupt("function name is not valid UTF-8"))?
            .to_string();
        cur.finish("metadata")?;
        Ok(ArtMeta {
            family,
            m,
            seed,
            pool_seed,
            pool_design,
            function,
        })
    }

    /// Decodes and validates the model section into a zero-copy model.
    pub fn model(&self) -> Result<MappedModel, ArtError> {
        let idx = self.find_unique(SECTION_MODEL, "model")?;
        MappedModel::parse(Arc::clone(&self.bytes), self.sections[idx].range.clone())
    }

    /// Decodes and validates the dataset section (copied out of the
    /// mapping into an owned [`Dataset`] — discovery needs mutable
    /// masks over it anyway; the zero-copy guarantee covers model and
    /// column bytes).
    pub fn dataset(&self) -> Result<Dataset, ArtError> {
        let idx = self.find_unique(SECTION_DATASET, "dataset")?;
        let payload = self.payload(idx);
        let mut cur = Cur::new(payload);
        let n = cur.count("dataset row count")?;
        let m = cur.count("dataset column count")?;
        let cells = n
            .checked_mul(m)
            .and_then(|c| c.checked_mul(8))
            .ok_or_else(|| corrupt("dataset size overflows"))?;
        let points = cast_f64s(cur.take(cells, "dataset points")?, "dataset points")?.to_vec();
        let labels = cast_f64s(
            cur.take(
                n.checked_mul(8)
                    .ok_or_else(|| corrupt("dataset size overflows"))?,
                "dataset labels",
            )?,
            "dataset labels",
        )?
        .to_vec();
        cur.finish("dataset")?;
        Dataset::new(points, labels, m).map_err(|e| corrupt(format!("dataset rejected: {e}")))
    }

    /// Decodes and validates every column section, in file order.
    pub fn columns(&self) -> Result<Vec<ColumnSection>, ArtError> {
        let mut out = Vec::new();
        for (i, s) in self.sections.iter().enumerate() {
            if s.kind == SECTION_COLUMN {
                out.push(ColumnSection::parse(
                    Arc::clone(&self.bytes),
                    self.sections[i].range.clone(),
                )?);
            }
        }
        Ok(out)
    }

    /// Decodes and validates every page-index section, in file order.
    pub fn page_indexes(&self) -> Result<Vec<crate::PageIndex>, ArtError> {
        let mut out = Vec::new();
        for s in &self.sections {
            if s.kind == crate::SECTION_PAGE_INDEX {
                out.push(crate::PageIndex::parse(&self.bytes[s.range.clone()])?);
            }
        }
        Ok(out)
    }
}

/// Decoded metadata section: which model this artifact holds and the
/// seeds that reproduce its pools.
#[derive(Debug, Clone)]
pub struct ArtMeta {
    /// Family code (`FAMILY_*`).
    pub family: u32,
    /// Input dimensionality.
    pub m: usize,
    /// Training RNG seed.
    pub seed: u64,
    /// Pseudo-labeling pool RNG seed.
    pub pool_seed: u64,
    /// Pool design code (1 = uniform).
    pub pool_design: u32,
    /// Benchmark-function name.
    pub function: String,
}

/// Byte ranges of one tree's arenas inside the mapping.
struct TreeRef {
    feature: Range<usize>,
    value: Range<usize>,
    right: Range<usize>,
}

enum ModelKind {
    Forest {
        trees: Vec<TreeRef>,
    },
    Gbdt {
        base_score: f64,
        eta: f64,
        trees: Vec<TreeRef>,
    },
    // The SVM's kernel-facing layout (zero-padded support vectors) is
    // an implementation detail of `reds-metamodel`, so the support set
    // is materialized into an owned model at load time — it is tiny
    // next to tree ensembles, and delegation makes bit-identity
    // trivial.
    Svm(Box<Svm>),
}

/// A fitted model whose tree arenas live in (and are borrowed from) a
/// mapped `.redsart` file.
///
/// Implements [`Metamodel`] with the same accumulation order, chunking
/// and kernel dispatch as the in-memory models, so predictions are
/// bit-identical to the `reds-json` load path.
pub struct MappedModel {
    bytes: Arc<ArtBytes>,
    m: usize,
    kind: ModelKind,
}

/// The sigmoid used by `Gbdt` — same expression, same resolved
/// [`reds_metamodel::kernels::exp`] backend, so mapped GBDT margins
/// squash bit-identically to the JSON load path.
#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + reds_metamodel::kernels::exp(-z))
}

impl MappedModel {
    fn parse(bytes: Arc<ArtBytes>, range: Range<usize>) -> Result<Self, ArtError> {
        let base = range.start;
        let payload = &bytes[range.clone()];
        let mut cur = Cur::new(payload);
        let family = cur.u32("model family")?;
        let m = cur.u32("model m")? as usize;
        if m == 0 {
            return Err(corrupt("'m' must be positive"));
        }
        let kind = match family {
            FAMILY_FOREST => {
                let n_trees = cur.count("tree count")?;
                let trees = parse_trees(&mut cur, base, n_trees, m)?;
                ModelKind::Forest { trees }
            }
            FAMILY_GBDT => {
                let base_score = cur.f64("base score")?;
                let eta = cur.f64("eta")?;
                let n_trees = cur.count("tree count")?;
                let trees = parse_trees(&mut cur, base, n_trees, m)?;
                ModelKind::Gbdt {
                    base_score,
                    eta,
                    trees,
                }
            }
            FAMILY_SVM => {
                let gamma = cur.f64("gamma")?;
                let bias = cur.f64("bias")?;
                let n_sv = cur.count("support vector count")?;
                let coef_bytes = n_sv
                    .checked_mul(8)
                    .ok_or_else(|| corrupt("support set size overflows"))?;
                let coef = cast_f64s(cur.take(coef_bytes, "coefficients")?, "coefficients")?;
                let point_bytes = coef_bytes
                    .checked_mul(m)
                    .ok_or_else(|| corrupt("support set size overflows"))?;
                let points = cast_f64s(cur.take(point_bytes, "support points")?, "support points")?;
                let svm = Svm::from_parts(points.to_vec(), coef.to_vec(), bias, gamma, m)
                    .map_err(corrupt)?;
                ModelKind::Svm(Box::new(svm))
            }
            other => {
                return Err(ArtError::Unsupported(format!(
                    "unknown model family code {other}"
                )))
            }
        };
        cur.finish("model")?;
        if let ModelKind::Forest { trees } | ModelKind::Gbdt { trees, .. } = &kind {
            if trees.is_empty() {
                return Err(corrupt("ensemble has no trees"));
            }
        }
        Ok(Self { bytes, m, kind })
    }

    /// Rebuilds the borrowed arena view for one tree.
    ///
    /// The ranges were produced by `parse_trees`, which validated the
    /// exact same memory through `FlatView::new` at load time, so the
    /// unchecked construction here (once per tree per batch) is sound
    /// as long as the mapping is immutable — the documented contract
    /// of [`ArtBytes`].
    fn view(&self, t: &TreeRef) -> FlatView<'_> {
        let feature = cast_u32s(&self.bytes[t.feature.clone()], "features").expect("validated");
        let value = cast_f64s(&self.bytes[t.value.clone()], "values").expect("validated");
        let right = cast_u32s(&self.bytes[t.right.clone()], "rights").expect("validated");
        // SAFETY: `FlatView::new` checked these exact slices (same
        // ranges, same immutable buffer) during `parse`.
        unsafe { FlatView::new_unchecked(feature, value, right) }
    }

    /// Family tag, in the paper's lettering ("f", "x", "s").
    pub fn family(&self) -> &'static str {
        match &self.kind {
            ModelKind::Forest { .. } => "f",
            ModelKind::Gbdt { .. } => "x",
            ModelKind::Svm(_) => "s",
        }
    }

    /// Input dimensionality.
    pub fn m(&self) -> usize {
        self.m
    }
}

/// Parses `n_trees` consecutive tree arenas, returning validated byte
/// ranges (absolute, into the file buffer). `n_trees` is untrusted: no
/// allocation is sized from it — the vector grows only as trees
/// actually parse, and every tree consumes at least its 8-byte header,
/// so a huge count simply truncates.
fn parse_trees(
    cur: &mut Cur<'_>,
    base: usize,
    n_trees: usize,
    m: usize,
) -> Result<Vec<TreeRef>, ArtError> {
    let mut trees = Vec::new();
    for _ in 0..n_trees {
        let n = cur.count("node count")?;
        let u32_bytes = n
            .checked_mul(4)
            .ok_or_else(|| corrupt("arena size overflows"))?;
        let f64_bytes = n
            .checked_mul(8)
            .ok_or_else(|| corrupt("arena size overflows"))?;
        let feat_start = base + cur.pos();
        let feature = cast_u32s(cur.take(u32_bytes, "features")?, "features")?;
        cur.align(8)?;
        let val_start = base + cur.pos();
        let value = cast_f64s(cur.take(f64_bytes, "values")?, "values")?;
        let right_start = base + cur.pos();
        let right = cast_u32s(cur.take(u32_bytes, "rights")?, "rights")?;
        cur.align(8)?;
        // The same structural validation `FlatTree::validate` runs on
        // JSON-decoded arenas: this is what makes a crafted file unable
        // to loop `predict` or escape the arena via a gather.
        FlatView::new(feature, value, right, m).map_err(corrupt)?;
        trees.push(TreeRef {
            feature: feat_start..feat_start + u32_bytes,
            value: val_start..val_start + f64_bytes,
            right: right_start..right_start + u32_bytes,
        });
    }
    Ok(trees)
}

impl Metamodel for MappedModel {
    fn predict(&self, x: &[f64]) -> f64 {
        match &self.kind {
            ModelKind::Forest { trees } => {
                let sum: f64 = trees.iter().map(|t| self.view(t).predict(x)).sum();
                sum / trees.len() as f64
            }
            ModelKind::Gbdt {
                base_score,
                eta,
                trees,
            } => {
                assert_eq!(x.len(), self.m, "prediction dimensionality mismatch");
                let sum: f64 = trees.iter().map(|t| self.view(t).predict(x)).sum();
                sigmoid(base_score + eta * sum)
            }
            ModelKind::Svm(s) => s.predict(x),
        }
    }

    /// Mirrors the in-memory `predict_batch` implementations exactly —
    /// same kernel resolution, same 4096-row chunking, same tree-major
    /// accumulation order, same final squash — so the mapped path is
    /// bit-identical to the JSON path on every input.
    fn predict_batch(&self, points: &[f64], m: usize) -> Vec<f64> {
        match &self.kind {
            ModelKind::Forest { trees } => {
                assert_eq!(m, self.m, "prediction dimensionality mismatch");
                assert!(points.len().is_multiple_of(m.max(1)), "ragged point buffer");
                let kernel = reds_metamodel::kernels::active();
                let n = points.len() / m.max(1);
                let mut out = vec![0.0f64; n];
                reds_par::par_fill_chunks(&mut out, 4096, |start, acc| {
                    let rows = &points[start * m..(start + acc.len()) * m];
                    for tree in trees {
                        reds_metamodel::kernels::accumulate_tree_view(
                            kernel,
                            self.view(tree),
                            rows,
                            m,
                            acc,
                        );
                    }
                    let n_trees = trees.len() as f64;
                    for v in acc.iter_mut() {
                        *v /= n_trees;
                    }
                });
                out
            }
            ModelKind::Gbdt {
                base_score,
                eta,
                trees,
            } => {
                assert_eq!(m, self.m, "prediction dimensionality mismatch");
                assert!(points.len().is_multiple_of(m.max(1)), "ragged point buffer");
                let kernel = reds_metamodel::kernels::active();
                let n = points.len() / m.max(1);
                let mut out = vec![0.0f64; n];
                reds_par::par_fill_chunks(&mut out, 4096, |start, acc| {
                    let rows = &points[start * m..(start + acc.len()) * m];
                    for tree in trees {
                        reds_metamodel::kernels::accumulate_tree_view(
                            kernel,
                            self.view(tree),
                            rows,
                            m,
                            acc,
                        );
                    }
                    reds_metamodel::kernels::sigmoid_margins(kernel, *base_score, *eta, acc);
                });
                out
            }
            ModelKind::Svm(s) => s.predict_batch(points, m),
        }
    }
}

/// A complete mapped model artifact — the `.redsart` counterpart of
/// the `reds-serve` JSON artifact.
pub struct MappedArtifact {
    /// Benchmark-function name.
    pub function: String,
    /// Training RNG seed.
    pub seed: u64,
    /// Pool RNG seed.
    pub pool_seed: u64,
    /// Pool design code (1 = uniform).
    pub pool_design: u32,
    /// The zero-copy model.
    pub model: MappedModel,
    /// Owned training dataset (serves `discover`).
    pub train: Dataset,
}

impl MappedArtifact {
    /// Opens and cross-validates a packed model artifact: sections
    /// present exactly once, family/dimensionality consistent between
    /// metadata, model, and training data, training set non-empty.
    pub fn open(path: &Path) -> Result<Self, ArtError> {
        let file = ArtFile::open(path)?;
        let meta = file.meta()?;
        let model = file.model()?;
        let train = file.dataset()?;
        let family_code = match model.family() {
            "f" => FAMILY_FOREST,
            "x" => FAMILY_GBDT,
            _ => FAMILY_SVM,
        };
        if meta.family != family_code {
            return Err(corrupt("metadata family disagrees with the model section"));
        }
        if meta.m != model.m() || train.m() != model.m() {
            return Err(corrupt(format!(
                "dimensionality mismatch: meta m = {}, model m = {}, train m = {}",
                meta.m,
                model.m(),
                train.m()
            )));
        }
        if train.n() == 0 {
            return Err(corrupt("training set is empty"));
        }
        Ok(Self {
            function: meta.function,
            seed: meta.seed,
            pool_seed: meta.pool_seed,
            pool_design: meta.pool_design,
            model,
            train,
        })
    }
}

/// One column's sorted `(key u64, row u32)` runs, borrowed from the
/// mapping — the on-disk twin of `reds-stream`'s spill runs. With a
/// single merged run the records are **rank-addressable**: record `i`
/// is the `i`-th smallest `(key, row)` of the column.
pub struct ColumnSection {
    bytes: Arc<ArtBytes>,
    column: usize,
    n_rows: usize,
    /// Per-run byte ranges of the packed 12-byte records.
    runs: Vec<Range<usize>>,
}

impl ColumnSection {
    fn parse(bytes: Arc<ArtBytes>, range: Range<usize>) -> Result<Self, ArtError> {
        let base = range.start;
        let payload = &bytes[range.clone()];
        let mut cur = Cur::new(payload);
        let column = cur.u32("column index")? as usize;
        let reserved = cur.u32("column reserved")?;
        if reserved != 0 {
            return Err(corrupt("column reserved field must be zero"));
        }
        let n_rows = cur.count("column row count")?;
        let run_count = cur.count("run count")?;
        // Take the run-length table before allocating from its size.
        let table_bytes = run_count
            .checked_mul(8)
            .ok_or_else(|| corrupt("run table size overflows"))?;
        let table = cur.take(table_bytes, "run lengths")?;
        let mut runs = Vec::with_capacity(table.len() / 8);
        let mut total = 0usize;
        let mut pos = base + cur.pos();
        for chunk in table.chunks_exact(8) {
            let len = usize::try_from(u64::from_le_bytes(chunk.try_into().expect("8 bytes")))
                .map_err(|_| corrupt("run length does not fit this address space"))?;
            let byte_len = len
                .checked_mul(12)
                .ok_or_else(|| corrupt("run size overflows"))?;
            runs.push(pos..pos + byte_len);
            pos += byte_len;
            total = total
                .checked_add(len)
                .ok_or_else(|| corrupt("run lengths overflow"))?;
        }
        if total != n_rows {
            return Err(corrupt(format!(
                "run lengths sum to {total}, column records {n_rows} rows"
            )));
        }
        let record_bytes = n_rows
            .checked_mul(12)
            .ok_or_else(|| corrupt("record area overflows"))?;
        cur.take(record_bytes, "column records")?;
        cur.align(8)?;
        cur.finish("column")?;
        Ok(Self {
            bytes,
            column,
            n_rows,
            runs,
        })
    }

    /// Which dataset column these runs sort.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Total records across all runs.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of sorted runs (1 = fully merged, rank-addressable).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Record `i` of run `run` (packed little-endian decode — records
    /// are 12 bytes, so they are read byte-wise, not cast).
    pub fn record(&self, run: usize, i: usize) -> (u64, u32) {
        let r = &self.bytes[self.runs[run].clone()];
        let rec = &r[i * 12..(i + 1) * 12];
        let key = u64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
        let row = u32::from_le_bytes(rec[8..12].try_into().expect("4 bytes"));
        (key, row)
    }

    /// The `rank`-th smallest `(key, row)` of a fully merged column.
    ///
    /// # Panics
    ///
    /// Panics when the column holds more than one run (merge first) or
    /// `rank` is out of range.
    pub fn rank(&self, rank: usize) -> (u64, u32) {
        assert_eq!(self.runs.len(), 1, "rank addressing needs a merged column");
        self.record(0, rank)
    }

    /// K-way-merges the runs in ascending `(key, row)` order, emitting
    /// rows — the exact algorithm (and therefore the exact order) of
    /// `reds-stream`'s spill merge. Validates along the way that every
    /// run is strictly increasing and every row is in range; a file
    /// violating that is rejected, not mis-merged.
    pub fn merged_order(&self) -> Result<Vec<u32>, ArtError> {
        let run_len = |r: usize| self.runs[r].len() / 12;
        let mut order = Vec::with_capacity(self.n_rows);
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32, usize)>> =
            BinaryHeap::with_capacity(self.runs.len());
        let mut cursors = vec![0usize; self.runs.len()];
        for (r, cursor) in cursors.iter_mut().enumerate() {
            if run_len(r) > 0 {
                let (key, row) = self.record(r, 0);
                heap.push(std::cmp::Reverse((key, row, r)));
                *cursor = 1;
            }
        }
        let mut last: Option<(u64, u32)> = None;
        while let Some(std::cmp::Reverse((key, row, r))) = heap.pop() {
            if (row as usize) >= self.n_rows {
                return Err(corrupt(format!(
                    "column {} references row {row} of {}",
                    self.column, self.n_rows
                )));
            }
            order.push(row);
            // Strictness across the merged stream implies strictness
            // within every run, and catches duplicated rows early
            // (each row id appears exactly once per column).
            if let Some(prev) = last {
                if prev >= (key, row) {
                    return Err(corrupt(format!(
                        "column {} runs are not strictly sorted",
                        self.column
                    )));
                }
            }
            last = Some((key, row));
            let i = cursors[r];
            if i < run_len(r) {
                let (k, w) = self.record(r, i);
                heap.push(std::cmp::Reverse((k, w, r)));
                cursors[r] = i + 1;
            }
        }
        Ok(order)
    }
}
