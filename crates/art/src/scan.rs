//! Streaming (mmap-free) `.redsart` verification and positioned reads.
//!
//! The mmap reader ([`ArtFile`](crate::ArtFile)) is the right tool when
//! the whole artifact is welcome in the address space. The out-of-core
//! search path is the opposite case: its entire point is that resident
//! memory stays bounded by a page-cache budget, and mapping the file
//! would make every touched page count against the process — peak-RSS
//! accounting under `mmap` reflects the file size, not the working set.
//!
//! [`ArtScan`] therefore verifies the **identical** chain
//! `ArtFile::from_bytes` runs — header, recorded length, whole-file
//! FNV-1a with the digest field zeroed, TOC geometry, per-section
//! bounds/alignment/checksums — using only a bounded streaming buffer,
//! and then serves positioned reads (`pread`) against the verified
//! byte ranges. Any single-byte corruption is rejected up front for
//! the same bijection reason as the mmap path.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::os::unix::fs::FileExt;
use std::path::Path;

use crate::layout::{Cur, FNV_FIELD_OFFSET, HEADER_LEN, MAGIC, TOC_ENTRY_LEN, VERSION};
use crate::{corrupt, fnv1a, ArtError, FNV_OFFSET};

/// One verified section as the streaming reader exposes it: absolute
/// payload position instead of a borrowed slice.
#[derive(Debug, Clone, Copy)]
pub struct ScanSection {
    /// Section kind code (`SECTION_*`).
    pub kind: u32,
    /// Absolute file offset of the payload's first byte.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
}

/// A verified `.redsart` file served by positioned reads instead of a
/// memory mapping (see the module docs for why out-of-core readers
/// must not map).
pub struct ArtScan {
    file: File,
    file_len: u64,
    sections: Vec<ScanSection>,
}

/// Streams `len` bytes starting at `offset` through the FNV state.
fn fnv_range(file: &mut File, offset: u64, len: u64, mut state: u64) -> Result<u64, ArtError> {
    file.seek(SeekFrom::Start(offset))?;
    let mut reader = BufReader::with_capacity(256 * 1024, file);
    let mut remaining = len;
    let mut buf = [0u8; 64 * 1024];
    while remaining > 0 {
        let want = remaining.min(buf.len() as u64) as usize;
        reader
            .read_exact(&mut buf[..want])
            .map_err(|_| corrupt("file shrank while being verified"))?;
        state = fnv1a(state, &buf[..want]);
        remaining -= want as u64;
    }
    Ok(state)
}

impl ArtScan {
    /// Opens and verifies `path` with bounded memory: the same checks,
    /// in the same order, as [`ArtFile::from_bytes`](crate::ArtFile) —
    /// just streamed instead of mapped.
    pub fn open(path: &Path) -> Result<Self, ArtError> {
        let mut file = File::open(path)?;
        let actual_len = file.metadata()?.len();
        if actual_len < HEADER_LEN as u64 {
            return Err(corrupt(format!(
                "file of {actual_len} bytes is shorter than the {HEADER_LEN}-byte header"
            )));
        }
        let mut header = [0u8; HEADER_LEN];
        file.read_exact_at(&mut header, 0)?;
        if header[..8] != MAGIC {
            return Err(corrupt("bad magic (not a .redsart file)"));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(ArtError::Unsupported(format!(
                "format version {version} (this build reads version {VERSION})"
            )));
        }
        let section_count =
            u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
        let toc_offset = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        let file_len = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
        let stored_fnv = u64::from_le_bytes(header[32..40].try_into().expect("8 bytes"));
        if file_len != actual_len {
            return Err(corrupt(format!(
                "recorded length {file_len} != actual length {actual_len} (truncated or extended)"
            )));
        }
        let toc_len = (section_count as u64).checked_mul(TOC_ENTRY_LEN as u64);
        let toc_end = toc_len.and_then(|l| toc_offset.checked_add(l));
        if toc_offset < HEADER_LEN as u64 || toc_offset % 8 != 0 || toc_end != Some(file_len) {
            return Err(corrupt("table of contents does not span to the file end"));
        }
        // Whole-file checksum with the digest field zeroed, in one
        // sequential bounded-buffer pass.
        let mut digest = fnv1a(FNV_OFFSET, &header[..FNV_FIELD_OFFSET]);
        digest = fnv1a(digest, &[0u8; 8]);
        digest = fnv_range(
            &mut file,
            (FNV_FIELD_OFFSET + 8) as u64,
            file_len - (FNV_FIELD_OFFSET + 8) as u64,
            digest,
        )?;
        if digest != stored_fnv {
            return Err(corrupt(format!(
                "file checksum mismatch (stored {stored_fnv:#018x}, computed {digest:#018x})"
            )));
        }
        // The TOC itself: geometry bounds it to the file tail, and the
        // count is bounded by the file length, so this allocation is
        // safe.
        let mut toc = vec![0u8; section_count * TOC_ENTRY_LEN];
        file.read_exact_at(&mut toc, toc_offset)?;
        let mut sections = Vec::with_capacity(section_count);
        for (i, e) in toc.chunks_exact(TOC_ENTRY_LEN).enumerate() {
            let kind = u32::from_le_bytes(e[..4].try_into().expect("4 bytes"));
            let offset = u64::from_le_bytes(e[8..16].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(e[16..24].try_into().expect("8 bytes"));
            let fnv = u64::from_le_bytes(e[24..32].try_into().expect("8 bytes"));
            let end = offset.checked_add(len);
            if offset < HEADER_LEN as u64
                || offset % 8 != 0
                || end.is_none()
                || end > Some(toc_offset)
            {
                return Err(corrupt(format!("section {i} is out of bounds")));
            }
            if fnv_range(&mut file, offset, len, FNV_OFFSET)? != fnv {
                return Err(corrupt(format!(
                    "section {i} (kind {kind}) checksum mismatch"
                )));
            }
            sections.push(ScanSection { kind, offset, len });
        }
        Ok(Self {
            file,
            file_len,
            sections,
        })
    }

    /// The verified table of contents.
    pub fn sections(&self) -> &[ScanSection] {
        &self.sections
    }

    /// Reads exactly `buf.len()` bytes at absolute file offset
    /// `offset` (a `pread` — no shared cursor, safe under interleaved
    /// readers). The range must lie inside the verified file.
    pub fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<(), ArtError> {
        let end = offset
            .checked_add(buf.len() as u64)
            .filter(|&e| e <= self.file_len)
            .ok_or_else(|| corrupt("positioned read beyond the verified file"))?;
        let _ = end;
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }
}

/// Default records-per-page for writers that emit page indexes: small
/// enough that a 64 MiB cache holds thousands of pages, large enough
/// (48 KiB of records) to amortize the `pread` per fetch.
pub const DEFAULT_PAGE_ROWS: u32 = 4096;

/// A decoded `SECTION_PAGE_INDEX` payload: one column's per-page
/// min/max key fences at the page size the writer chose.
///
/// Layout (little-endian): `column u32`, `page_rows u32`,
/// `n_pages u64`, then `n_pages × (min_key u64, max_key u64)`.
/// `docs/artifact-format.md` is the normative description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageIndex {
    /// Column the fences describe.
    pub column: u32,
    /// Records per page the fences were computed at.
    pub page_rows: u32,
    /// `(min_key, max_key)` of each page, in page order.
    pub fences: Vec<(u64, u64)>,
}

impl PageIndex {
    /// Parses and validates one page-index payload: fence keys must be
    /// internally ordered (`min ≤ max`) and monotone across pages
    /// (`max[p] ≤ min[p+1]` — the column is sorted; equality marks a
    /// tie run crossing the page boundary).
    pub fn parse(payload: &[u8]) -> Result<Self, ArtError> {
        let mut cur = Cur::new(payload);
        let column = cur.u32("page index column")?;
        let page_rows = cur.u32("page index page_rows")?;
        if page_rows == 0 {
            return Err(corrupt("page index declares zero rows per page"));
        }
        let n_pages = cur.count("page index page count")?;
        let mut fences = Vec::with_capacity(n_pages.min(payload.len() / 16));
        let mut prev_max: Option<u64> = None;
        for p in 0..n_pages {
            let min = cur.u64("page fence min key")?;
            let max = cur.u64("page fence max key")?;
            if min > max {
                return Err(corrupt(format!("page {p} fence has min > max")));
            }
            if let Some(pm) = prev_max {
                if pm > min {
                    return Err(corrupt(format!(
                        "page {p} fence is not monotone with its predecessor"
                    )));
                }
            }
            prev_max = Some(max);
            fences.push((min, max));
        }
        cur.finish("page index")?;
        Ok(Self {
            column,
            page_rows,
            fences,
        })
    }

    /// `true` when the tie run ending page `p` continues into page
    /// `p + 1` (the pages share a key at the boundary).
    pub fn tie_spans_boundary(&self, p: usize) -> bool {
        p + 1 < self.fences.len() && self.fences[p].1 == self.fences[p + 1].0
    }

    /// Encodes the payload this parser reads (the writer-side dual).
    pub fn encode(column: u32, page_rows: u32, fences: &[(u64, u64)]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + 16 * fences.len());
        buf.extend_from_slice(&column.to_le_bytes());
        buf.extend_from_slice(&page_rows.to_le_bytes());
        buf.extend_from_slice(&(fences.len() as u64).to_le_bytes());
        for &(min, max) in fences {
            buf.extend_from_slice(&min.to_le_bytes());
            buf.extend_from_slice(&max.to_le_bytes());
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArtWriter;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("reds-art-scan-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("t.redsart")
    }

    fn tiny_artifact(path: &Path) {
        let mut w = ArtWriter::create(path).unwrap();
        w.section(42, b"payload-a").unwrap();
        w.section(
            crate::SECTION_PAGE_INDEX,
            &PageIndex::encode(0, 2, &[(1, 5), (5, 9)]),
        )
        .unwrap();
        w.finish().unwrap();
    }

    #[test]
    fn scan_agrees_with_the_mapped_reader() {
        let path = scratch("agree");
        tiny_artifact(&path);
        let scan = ArtScan::open(&path).unwrap();
        let mapped = crate::ArtFile::open(&path).unwrap();
        let msecs = mapped.sections();
        assert_eq!(scan.sections().len(), msecs.len());
        for (s, m) in scan.sections().iter().zip(&msecs) {
            assert_eq!(s.kind, m.kind);
            assert_eq!(s.len as usize, m.len);
        }
        // Positioned reads return the exact payload bytes.
        let sec = scan.sections()[0];
        let mut buf = vec![0u8; sec.len as usize];
        scan.read_exact_at(&mut buf, sec.offset).unwrap();
        assert_eq!(&buf, b"payload-a");
    }

    #[test]
    fn every_byte_flip_is_rejected() {
        let path = scratch("flip");
        tiny_artifact(&path);
        let pristine = std::fs::read(&path).unwrap();
        for i in 0..pristine.len() {
            let mut bad = pristine.clone();
            bad[i] ^= 0xff;
            std::fs::write(&path, &bad).unwrap();
            assert!(ArtScan::open(&path).is_err(), "byte {i} flip accepted");
        }
        std::fs::write(&path, &pristine).unwrap();
        assert!(ArtScan::open(&path).is_ok());
    }

    #[test]
    fn truncation_and_extension_are_rejected() {
        let path = scratch("trunc");
        tiny_artifact(&path);
        let pristine = std::fs::read(&path).unwrap();
        std::fs::write(&path, &pristine[..pristine.len() - 1]).unwrap();
        assert!(ArtScan::open(&path).is_err());
        let mut longer = pristine.clone();
        longer.push(0);
        std::fs::write(&path, &longer).unwrap();
        assert!(ArtScan::open(&path).is_err());
    }

    #[test]
    fn out_of_bounds_reads_are_refused() {
        let path = scratch("oob");
        tiny_artifact(&path);
        let scan = ArtScan::open(&path).unwrap();
        let mut buf = [0u8; 16];
        let err = scan.read_exact_at(&mut buf, u64::MAX - 4).unwrap_err();
        assert!(matches!(err, ArtError::Corrupt(_)));
    }

    #[test]
    fn page_index_round_trips_and_validates() {
        let payload = PageIndex::encode(3, 4, &[(1, 2), (2, 7), (9, 9)]);
        let idx = PageIndex::parse(&payload).unwrap();
        assert_eq!(idx.column, 3);
        assert_eq!(idx.page_rows, 4);
        assert_eq!(idx.fences, vec![(1, 2), (2, 7), (9, 9)]);
        assert!(idx.tie_spans_boundary(0));
        assert!(!idx.tie_spans_boundary(1));
        assert!(!idx.tie_spans_boundary(2));
        // min > max inside a page.
        assert!(PageIndex::parse(&PageIndex::encode(0, 1, &[(5, 1)])).is_err());
        // Non-monotone across pages.
        assert!(PageIndex::parse(&PageIndex::encode(0, 1, &[(1, 9), (2, 3)])).is_err());
        // Zero page_rows.
        assert!(PageIndex::parse(&PageIndex::encode(0, 0, &[])).is_err());
    }
}
