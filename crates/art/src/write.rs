//! Streaming `.redsart` writer.
//!
//! Packing is an offline step, so the writer favours simplicity and
//! robustness: payloads stream through a `BufWriter` behind a
//! placeholder header, the table of contents is appended at the end,
//! the header is patched, and the whole-file checksum is computed in a
//! final sequential re-read (with the checksum field still zero) and
//! patched in. A crash mid-write leaves a file that fails every
//! checksum — never a half-valid artifact.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use reds_data::Dataset;
use reds_metamodel::{FlatTree, SavedModel};

use crate::layout::{
    FAMILY_FOREST, FAMILY_GBDT, FAMILY_SVM, FNV_FIELD_OFFSET, HEADER_LEN, MAGIC, SECTION_DATASET,
    SECTION_META, SECTION_MODEL, TOC_ENTRY_LEN, VERSION,
};
use crate::{fnv1a, ArtError, FNV_OFFSET};

struct TocEntry {
    kind: u32,
    offset: u64,
    len: u64,
    fnv: u64,
}

struct OpenSection {
    kind: u32,
    start: u64,
    fnv: u64,
}

/// Streams sections into a `.redsart` file; [`ArtWriter::finish`]
/// seals it (TOC, header, whole-file checksum).
///
/// A writer dropped before a successful `finish` — an early error
/// return or a panic mid-write — **removes its partial file**: a
/// half-written artifact would fail every checksum anyway, so nothing
/// is lost, and no torn `.redsart` orphans accumulate next to the
/// caller's outputs.
pub struct ArtWriter {
    /// `None` only transiently inside [`ArtWriter::finish`].
    out: Option<BufWriter<File>>,
    path: PathBuf,
    offset: u64,
    toc: Vec<TocEntry>,
    cur: Option<OpenSection>,
    finished: bool,
}

impl Drop for ArtWriter {
    fn drop(&mut self) {
        if !self.finished {
            // Close the handle before unlinking; best effort — cleanup
            // must never turn an unwind into an abort.
            self.out = None;
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl ArtWriter {
    /// Creates (truncating) `path` and writes the placeholder header.
    pub fn create(path: &Path) -> Result<Self, ArtError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut out = BufWriter::new(file);
        out.write_all(&[0u8; HEADER_LEN])?;
        Ok(Self {
            out: Some(out),
            path: path.to_path_buf(),
            offset: HEADER_LEN as u64,
            toc: Vec::new(),
            cur: None,
            finished: false,
        })
    }

    fn out(&mut self) -> &mut BufWriter<File> {
        self.out.as_mut().expect("writer already finished")
    }

    /// Opens a new section of `kind`. Sections cannot nest.
    pub fn begin_section(&mut self, kind: u32) -> Result<(), ArtError> {
        assert!(self.cur.is_none(), "section already open");
        debug_assert_eq!(self.offset % 8, 0, "sections start 8-aligned");
        self.cur = Some(OpenSection {
            kind,
            start: self.offset,
            fnv: FNV_OFFSET,
        });
        Ok(())
    }

    /// Appends payload bytes to the open section.
    pub fn write(&mut self, bytes: &[u8]) -> Result<(), ArtError> {
        let cur = self.cur.as_mut().expect("no open section");
        cur.fnv = fnv1a(cur.fnv, bytes);
        self.out
            .as_mut()
            .expect("writer already finished")
            .write_all(bytes)?;
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Appends little-endian `u32`s to the open section.
    pub fn write_u32s(&mut self, vals: &[u32]) -> Result<(), ArtError> {
        let mut buf = [0u8; 4 * 256];
        for chunk in vals.chunks(256) {
            for (slot, v) in buf.chunks_exact_mut(4).zip(chunk) {
                slot.copy_from_slice(&v.to_le_bytes());
            }
            self.write(&buf[..4 * chunk.len()])?;
        }
        Ok(())
    }

    /// Appends little-endian `f64`s to the open section.
    pub fn write_f64s(&mut self, vals: &[f64]) -> Result<(), ArtError> {
        let mut buf = [0u8; 8 * 256];
        for chunk in vals.chunks(256) {
            for (slot, v) in buf.chunks_exact_mut(8).zip(chunk) {
                slot.copy_from_slice(&v.to_bits().to_le_bytes());
            }
            self.write(&buf[..8 * chunk.len()])?;
        }
        Ok(())
    }

    /// Appends one `(key, row)` column record (the 12-byte packed
    /// layout `reds-stream` spills).
    pub fn write_record(&mut self, key: u64, row: u32) -> Result<(), ArtError> {
        let mut rec = [0u8; 12];
        rec[..8].copy_from_slice(&key.to_le_bytes());
        rec[8..].copy_from_slice(&row.to_le_bytes());
        self.write(&rec)
    }

    /// Zero-pads the open section so the *next* in-section offset is a
    /// multiple of 8 — used between a `u32` array and an `f64` array.
    pub fn pad_to_8(&mut self) -> Result<(), ArtError> {
        let cur = self.cur.as_ref().expect("no open section");
        let section_pos = self.offset - cur.start;
        let rem = (section_pos % 8) as usize;
        if rem != 0 {
            self.write(&[0u8; 7][..8 - rem])?;
        }
        Ok(())
    }

    /// Closes the open section: records its TOC entry and zero-pads
    /// the file so the next section starts 8-aligned. The padding is
    /// outside the section payload (not checksummed per-section — the
    /// whole-file checksum still covers it).
    pub fn end_section(&mut self) -> Result<(), ArtError> {
        let cur = self.cur.take().expect("no open section");
        self.toc.push(TocEntry {
            kind: cur.kind,
            offset: cur.start,
            len: self.offset - cur.start,
            fnv: cur.fnv,
        });
        let rem = (self.offset % 8) as usize;
        if rem != 0 {
            let pad = [0u8; 7];
            self.out().write_all(&pad[..8 - rem])?;
            self.offset += (8 - rem) as u64;
        }
        Ok(())
    }

    /// Convenience: a whole section from one in-memory payload.
    pub fn section(&mut self, kind: u32, payload: &[u8]) -> Result<(), ArtError> {
        self.begin_section(kind)?;
        self.write(payload)?;
        self.end_section()
    }

    /// Writes the TOC, patches the header, computes the whole-file
    /// checksum in a sequential re-read, and patches it in. Only a
    /// writer that returns `Ok` from here leaves a file on disk; every
    /// other exit path (error, panic, plain drop) removes the partial
    /// artifact.
    pub fn finish(mut self) -> Result<(), ArtError> {
        assert!(self.cur.is_none(), "unclosed section");
        let mut out = self.out.take().expect("writer already finished");
        let toc_offset = self.offset;
        for e in &self.toc {
            out.write_all(&e.kind.to_le_bytes())?;
            out.write_all(&0u32.to_le_bytes())?;
            out.write_all(&e.offset.to_le_bytes())?;
            out.write_all(&e.len.to_le_bytes())?;
            out.write_all(&e.fnv.to_le_bytes())?;
        }
        let file_len = toc_offset + (self.toc.len() * TOC_ENTRY_LEN) as u64;
        let mut header = [0u8; HEADER_LEN];
        header[..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&(self.toc.len() as u32).to_le_bytes());
        header[16..24].copy_from_slice(&toc_offset.to_le_bytes());
        header[24..32].copy_from_slice(&file_len.to_le_bytes());
        // [32..40] (file fnv) and [40..48] (reserved) stay zero for
        // the checksum pass below.
        out.seek(SeekFrom::Start(0))?;
        out.write_all(&header)?;
        out.flush()?;
        let mut file = out.into_inner().map_err(|e| ArtError::Io(e.into_error()))?;
        file.seek(SeekFrom::Start(0))?;
        let mut digest = FNV_OFFSET;
        {
            let mut reader = BufReader::new(&mut file);
            let mut buf = [0u8; 64 * 1024];
            loop {
                let n = reader.read(&mut buf)?;
                if n == 0 {
                    break;
                }
                digest = fnv1a(digest, &buf[..n]);
            }
        }
        file.seek(SeekFrom::Start(FNV_FIELD_OFFSET as u64))?;
        file.write_all(&digest.to_le_bytes())?;
        file.sync_all()?;
        drop(file);
        self.finished = true;
        Ok(())
    }
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_pad8(buf: &mut Vec<u8>) {
    while !buf.len().is_multiple_of(8) {
        buf.push(0);
    }
}

fn push_tree(buf: &mut Vec<u8>, tree: &FlatTree) {
    let n = tree.n_nodes();
    push_u64(buf, n as u64);
    for i in 0..n {
        push_u32(buf, tree.feature(i));
    }
    push_pad8(buf);
    for i in 0..n {
        push_f64(buf, tree.value(i));
    }
    for i in 0..n {
        push_u32(buf, tree.right(i));
    }
    push_pad8(buf);
}

/// Encodes a model section payload from a `reds-json`-level model.
fn encode_model(model: &SavedModel) -> Vec<u8> {
    let mut buf = Vec::new();
    match model {
        SavedModel::Forest(f) => {
            push_u32(&mut buf, FAMILY_FOREST);
            push_u32(&mut buf, f.m() as u32);
            push_u64(&mut buf, f.n_trees() as u64);
            for tree in f.trees() {
                push_tree(&mut buf, tree.flat());
            }
        }
        SavedModel::Gbdt(g) => {
            push_u32(&mut buf, FAMILY_GBDT);
            push_u32(&mut buf, g.m() as u32);
            push_f64(&mut buf, g.base_score());
            push_f64(&mut buf, g.eta());
            push_u64(&mut buf, g.n_trees() as u64);
            for arena in g.arenas() {
                push_tree(&mut buf, arena);
            }
        }
        SavedModel::Svm(s) => {
            push_u32(&mut buf, FAMILY_SVM);
            push_u32(&mut buf, s.m() as u32);
            push_f64(&mut buf, s.gamma());
            push_f64(&mut buf, s.bias());
            push_u64(&mut buf, s.n_support() as u64);
            for &c in s.support_coef() {
                push_f64(&mut buf, c);
            }
            for &v in s.support_points() {
                push_f64(&mut buf, v);
            }
        }
    }
    buf
}

/// Everything a packed model artifact records besides the model and
/// training data themselves — mirrors the `reds-serve` JSON artifact
/// metadata.
pub struct ModelArtifactSpec<'a> {
    /// Benchmark-function name the model was fitted against.
    pub function: &'a str,
    /// Training RNG seed.
    pub seed: u64,
    /// Pseudo-labeling pool RNG seed.
    pub pool_seed: u64,
    /// Pool design code (1 = uniform — the only design so far).
    pub pool_design: u32,
    /// The fitted model.
    pub model: &'a SavedModel,
    /// The training dataset (serves `discover` requests).
    pub train: &'a Dataset,
}

/// Packs a complete model artifact (META + MODEL + DATASET sections)
/// to `path`. The encoding preserves every bit of the model arrays, so
/// loading back through [`MappedArtifact`](crate::MappedArtifact)
/// predicts bit-identically to the in-memory model.
pub fn write_model_artifact(path: &Path, spec: &ModelArtifactSpec<'_>) -> Result<(), ArtError> {
    let family = match spec.model {
        SavedModel::Forest(_) => FAMILY_FOREST,
        SavedModel::Gbdt(_) => FAMILY_GBDT,
        SavedModel::Svm(_) => FAMILY_SVM,
    };
    let mut w = ArtWriter::create(path)?;

    let mut meta = Vec::new();
    push_u32(&mut meta, family);
    push_u32(&mut meta, spec.model.m() as u32);
    push_u64(&mut meta, spec.seed);
    push_u64(&mut meta, spec.pool_seed);
    push_u32(&mut meta, spec.pool_design);
    push_u32(&mut meta, spec.function.len() as u32);
    meta.extend_from_slice(spec.function.as_bytes());
    w.section(SECTION_META, &meta)?;

    w.section(SECTION_MODEL, &encode_model(spec.model))?;

    w.begin_section(SECTION_DATASET)?;
    let mut head = Vec::new();
    push_u64(&mut head, spec.train.n() as u64);
    push_u64(&mut head, spec.train.m() as u64);
    w.write(&head)?;
    w.write_f64s(spec.train.points())?;
    w.write_f64s(spec.train.labels())?;
    w.end_section()?;

    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("reds-art-write-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("t.redsart")
    }

    #[test]
    fn dropped_writer_removes_its_partial_file() {
        let path = scratch("drop");
        let mut w = ArtWriter::create(&path).unwrap();
        w.begin_section(7).unwrap();
        w.write(b"half a section").unwrap();
        assert!(path.exists(), "file exists while the writer is live");
        drop(w);
        assert!(
            !path.exists(),
            "dropped-without-finish writer left an orphan"
        );
    }

    #[test]
    fn finished_writer_keeps_its_file() {
        let path = scratch("keep");
        let mut w = ArtWriter::create(&path).unwrap();
        w.section(7, b"payload").unwrap();
        w.finish().unwrap();
        assert!(path.exists());
        crate::ArtFile::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn panic_mid_write_removes_the_partial_file() {
        let path = scratch("panic");
        let p = path.clone();
        let result = std::panic::catch_unwind(move || {
            let mut w = ArtWriter::create(&p).unwrap();
            w.begin_section(7).unwrap();
            w.write(b"about to unwind").unwrap();
            panic!("simulated failure mid-section");
        });
        assert!(result.is_err());
        assert!(!path.exists(), "unwound writer left an orphan");
    }
}
