//! BestInterval scaling benchmarks — §7 claims
//! `O(M·N(log N + m·bs))` for the beam search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::Dataset;
use reds_subgroup::{BestInterval, BiParams, SubgroupDiscovery};

fn band_data(n: usize, m: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_fn((0..n * m).map(|_| rng.gen::<f64>()).collect(), m, |x| {
        if x[0] > 0.3 && x[0] < 0.7 && x[1] > 0.5 {
            1.0
        } else {
            0.0
        }
    })
    .expect("valid shape")
}

fn bench_bi_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("bi/vs_n");
    for n in [400usize, 1600, 6400] {
        let d = band_data(n, 10, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &d, |b, d| {
            let bi = BestInterval::default();
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| bi.discover(d, d, &mut rng));
        });
    }
    group.finish();
}

fn bench_bi_beam(c: &mut Criterion) {
    let mut group = c.benchmark_group("bi/vs_beam");
    let d = band_data(1000, 10, 3);
    for bs in [1usize, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, &bs| {
            let bi = BestInterval::new(BiParams {
                beam_size: bs,
                ..Default::default()
            });
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| bi.discover(&d, &d, &mut rng));
        });
    }
    group.finish();
}

fn bench_bi_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("bi/vs_depth");
    let d = band_data(1000, 10, 5);
    for depth in [2usize, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let bi = BestInterval::new(BiParams {
                max_restricted: Some(depth),
                ..Default::default()
            });
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| bi.discover(&d, &d, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bi_vs_n, bench_bi_beam, bench_bi_depth);
criterion_main!(benches);
