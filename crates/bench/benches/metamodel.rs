//! Metamodel training/prediction benchmarks — §7 claims quasi-linear
//! training for forests (`O(ψ(M)·N log N)`) and boosting
//! (`O(M·N log N)`) versus super-linear SVM (`O(M·N²)`–`O(M·N³)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::Dataset;
use reds_metamodel::{
    Gbdt, GbdtParams, Metamodel, RandomForest, RandomForestParams, Svm, SvmParams,
};

fn disc_data(n: usize, m: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_fn((0..n * m).map(|_| rng.gen::<f64>()).collect(), m, |x| {
        if (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2) < 0.08 {
            1.0
        } else {
            0.0
        }
    })
    .expect("valid shape")
}

fn bench_training_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("metamodel/train_vs_n");
    group.sample_size(10);
    for n in [200usize, 400, 800] {
        let d = disc_data(n, 8, 1);
        group.bench_with_input(BenchmarkId::new("forest", n), &d, |b, d| {
            let params = RandomForestParams {
                n_trees: 100,
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| RandomForest::fit(d, &params, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("gbdt", n), &d, |b, d| {
            let params = GbdtParams {
                n_rounds: 100,
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| Gbdt::fit(d, &params, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("svm", n), &d, |b, d| {
            let params = SvmParams::default();
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| Svm::fit(d, &params, &mut rng));
        });
    }
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let mut group = c.benchmark_group("metamodel/predict_10k");
    let d = disc_data(400, 8, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let forest = RandomForest::fit(
        &d,
        &RandomForestParams {
            n_trees: 100,
            ..Default::default()
        },
        &mut rng,
    );
    let gbdt = Gbdt::fit(
        &d,
        &GbdtParams {
            n_rounds: 100,
            ..Default::default()
        },
        &mut rng,
    );
    let svm = Svm::fit(&d, &SvmParams::default(), &mut rng);
    let query: Vec<f64> = (0..10_000 * 8).map(|_| rng.gen::<f64>()).collect();
    group.bench_function("forest", |b| b.iter(|| forest.predict_batch(&query, 8)));
    group.bench_function("gbdt", |b| b.iter(|| gbdt.predict_batch(&query, 8)));
    group.bench_function("svm", |b| b.iter(|| svm.predict_batch(&query, 8)));
    group.finish();
}

criterion_group!(benches, bench_training_vs_n, bench_prediction);
criterion_main!(benches);
