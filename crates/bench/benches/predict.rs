//! Kernel-level prediction microbenchmarks: single-tree traversal,
//! forest `predict_batch`, and the SVM RBF expansion, each under the
//! forced-scalar and runtime-dispatched (AVX2 where available)
//! backends.
//!
//! Batch sizes follow the paper's `N = 3·2^{M+1}` design-size rule for
//! `M ∈ {6, 12, 30}`, capped at 98 304 rows (`3·2^{15}`) — the `M = 30`
//! row would otherwise be `3·2^{31} ≈ 6.4·10⁹`; the cap is printed so a
//! reduced row is never mistaken for full paper scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::Dataset;
use reds_metamodel::{
    kernels, Metamodel, RandomForest, RandomForestParams, RegressionTree, Svm, SvmParams,
    TreeParams,
};

/// The paper's design size for dimensionality `m`, capped for the
/// bench harness.
fn paper_rows(m: usize) -> usize {
    const CAP: usize = 98_304; // 3 * 2^15
    let uncapped = 3usize.saturating_mul(1usize << (m + 1).min(40));
    if uncapped > CAP {
        eprintln!("predict bench: capping N = 3*2^{} at {CAP} rows", m + 1);
        CAP
    } else {
        uncapped
    }
}

fn corner_data(n: usize, m: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_fn((0..n * m).map(|_| rng.gen::<f64>()).collect(), m, |x| {
        if x[0] > 0.6 && x[1] > 0.6 {
            1.0
        } else {
            0.0
        }
    })
    .expect("valid shape")
}

/// Kernels to sweep: forced scalar, plus the dispatched backend when it
/// differs (i.e. when AVX2 is available and not overridden away).
fn backends() -> Vec<(&'static str, Option<kernels::Kernel>)> {
    let mut out = vec![("scalar", Some(kernels::Kernel::Scalar))];
    if kernels::active() != kernels::Kernel::Scalar {
        out.push((kernels::active().name(), None));
    }
    out
}

fn bench_tree_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict/tree");
    group.sample_size(10);
    for m in [6usize, 12, 30] {
        let n = paper_rows(m);
        let d = corner_data(600, m, 1);
        let idx: Vec<usize> = (0..d.n()).collect();
        let tree = RegressionTree::fit(
            d.points(),
            d.labels(),
            m,
            &idx,
            &TreeParams::default(),
            &mut StdRng::seed_from_u64(2),
        );
        let query: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..n * m).map(|_| rng.gen()).collect()
        };
        for (name, force) in backends() {
            let kernel = force.unwrap_or_else(kernels::active);
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/m{m}"), n),
                &query,
                |b, q| {
                    let mut acc = vec![0.0f64; n];
                    b.iter(|| {
                        acc.fill(0.0);
                        kernels::accumulate_tree(kernel, tree.flat(), q, m, &mut acc);
                        acc[0]
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_forest_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict/forest_batch");
    group.sample_size(10);
    for m in [6usize, 12, 30] {
        let n = paper_rows(m);
        let d = corner_data(400, m, 4);
        let params = RandomForestParams {
            n_trees: 100,
            ..Default::default()
        };
        let forest = RandomForest::fit(&d, &params, &mut StdRng::seed_from_u64(5));
        let query: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(6);
            (0..n * m).map(|_| rng.gen()).collect()
        };
        for (name, force) in backends() {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/m{m}"), n),
                &query,
                |b, q| {
                    kernels::set_kernel(force);
                    b.iter(|| forest.predict_batch(q, m).len());
                    kernels::set_kernel(None);
                },
            );
        }
    }
    group.finish();
}

fn bench_svm_rbf(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict/svm_rbf");
    group.sample_size(10);
    for m in [6usize, 12, 30] {
        // The expansion costs rows × n_sv × m; scale rows down so the
        // scalar baseline stays benchable.
        let n = (paper_rows(m) / 8).max(256);
        let d = corner_data(300, m, 7);
        let svm = Svm::fit(&d, &SvmParams::default(), &mut StdRng::seed_from_u64(8));
        let query: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..n * m).map(|_| rng.gen()).collect()
        };
        for (name, force) in backends() {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/m{m}"), n),
                &query,
                |b, q| {
                    kernels::set_kernel(force);
                    b.iter(|| svm.predict_batch(q, m).len());
                    kernels::set_kernel(None);
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tree_traversal,
    bench_forest_batch,
    bench_svm_rbf
);
criterion_main!(benches);
