//! Naive-vs-presorted microbenchmarks for the §7 hot paths:
//! PRIM peeling with and without the `SortedView` columnar index,
//! serial-naive vs parallel-presorted forest training, and per-point vs
//! tree-major batched forest prediction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::Dataset;
use reds_metamodel::{Metamodel, NaiveRandomForest, RandomForest, RandomForestParams};
use reds_subgroup::{NaivePrim, Prim, SubgroupDiscovery};

fn corner_data(n: usize, m: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_fn((0..n * m).map(|_| rng.gen::<f64>()).collect(), m, |x| {
        if x[0] > 0.6 && x[1] > 0.6 {
            1.0
        } else {
            0.0
        }
    })
    .expect("valid shape")
}

fn bench_prim_naive_vs_presorted(c: &mut Criterion) {
    let mut group = c.benchmark_group("presort/prim_peel");
    group.sample_size(10);
    for n in [2_000usize, 8_000] {
        let d = corner_data(n, 10, 1);
        group.bench_with_input(BenchmarkId::new("naive", n), &d, |b, d| {
            let prim = NaivePrim::default();
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| prim.discover(d, d, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("presorted", n), &d, |b, d| {
            let prim = Prim::default();
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| prim.discover(d, d, &mut rng));
        });
    }
    group.finish();
}

fn bench_forest_serial_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("presort/forest_fit");
    group.sample_size(10);
    let d = corner_data(400, 10, 3);
    let params = RandomForestParams {
        n_trees: 100,
        ..Default::default()
    };
    group.bench_function("naive_serial", |b| {
        reds_par::set_max_threads(Some(1));
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| NaiveRandomForest::fit(&d, &params, &mut rng));
        reds_par::set_max_threads(None);
    });
    group.bench_function("presorted_parallel", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| RandomForest::fit(&d, &params, &mut rng));
    });
    group.finish();
}

fn bench_predict_point_vs_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("presort/forest_predict");
    group.sample_size(10);
    let d = corner_data(300, 10, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let forest = RandomForest::fit(&d, &RandomForestParams::default(), &mut rng);
    let query: Vec<f64> = (0..20_000 * 10).map(|_| rng.gen::<f64>()).collect();
    group.bench_function("per_point", |b| {
        b.iter(|| {
            query
                .chunks_exact(10)
                .map(|x| forest.predict(x))
                .sum::<f64>()
        })
    });
    group.bench_function("batch_tree_major", |b| {
        b.iter(|| forest.predict_batch(&query, 10).iter().sum::<f64>())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_prim_naive_vs_presorted,
    bench_forest_serial_vs_parallel,
    bench_predict_point_vs_batch
);
criterion_main!(benches);
