//! PRIM scaling benchmarks — §7 claims `O(M·N(log N + 1/α))` for the
//! peeling phase and a `Q`-fold multiplier for bumping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::Dataset;
use reds_subgroup::{Prim, PrimBumping, PrimBumpingParams, PrimParams, SubgroupDiscovery};

fn corner_data(n: usize, m: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_fn((0..n * m).map(|_| rng.gen::<f64>()).collect(), m, |x| {
        if x[0] > 0.6 && x[1] > 0.6 {
            1.0
        } else {
            0.0
        }
    })
    .expect("valid shape")
}

fn bench_prim_scaling_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("prim/peel_vs_n");
    for n in [400usize, 1600, 6400] {
        let d = corner_data(n, 10, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &d, |b, d| {
            let prim = Prim::default();
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| prim.discover(d, d, &mut rng));
        });
    }
    group.finish();
}

fn bench_prim_scaling_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("prim/peel_vs_m");
    for m in [5usize, 10, 20, 40] {
        let d = corner_data(1000, m, 3);
        group.bench_with_input(BenchmarkId::from_parameter(m), &d, |b, d| {
            let prim = Prim::default();
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| prim.discover(d, d, &mut rng));
        });
    }
    group.finish();
}

fn bench_prim_alpha(c: &mut Criterion) {
    let mut group = c.benchmark_group("prim/peel_vs_alpha");
    let d = corner_data(2000, 10, 5);
    for alpha in [0.03f64, 0.05, 0.1, 0.2] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &alpha| {
            let prim = Prim::new(PrimParams {
                alpha,
                ..Default::default()
            });
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| prim.discover(&d, &d, &mut rng));
        });
    }
    group.finish();
}

fn bench_bumping_q(c: &mut Criterion) {
    let mut group = c.benchmark_group("prim/bumping_vs_q");
    group.sample_size(10);
    let d = corner_data(400, 10, 7);
    for q in [10usize, 25, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            let pb = PrimBumping::new(PrimBumpingParams {
                q,
                ..Default::default()
            });
            let mut rng = StdRng::seed_from_u64(8);
            b.iter(|| pb.discover(&d, &d, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_prim_scaling_n,
    bench_prim_scaling_m,
    bench_prim_alpha,
    bench_bumping_q
);
criterion_main!(benches);
