//! Microbenchmarks for the vectorized exponential (`vexp`) and the RBF
//! expansion built on it: raw `exp` throughput per element under every
//! backend × exp combination, and the SVM RBF expansion at paper-scale
//! support-vector counts under scalar-libm (the pre-`vexp` baseline),
//! scalar-poly, and dispatched-poly.
//!
//! These are the numbers behind the `kernels/svm` acceptance gate in
//! `perf_report` (dispatched ≥ 2.5× scalar-libm): run with
//! `cargo bench -p reds-bench --bench rbf_exp`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::Dataset;
use reds_metamodel::kernels::{self, ExpBackend};
use reds_metamodel::{Metamodel, Svm, SvmParams};

/// Backend × exp configurations to sweep: scalar-libm is the
/// pre-`vexp` baseline the acceptance gate compares against,
/// scalar-poly isolates the polynomial itself, and the dispatched row
/// adds the SIMD lanes (on hardware without AVX2 it duplicates
/// scalar-poly, which is exactly what dispatch would run).
fn configs() -> Vec<(&'static str, kernels::Kernel, ExpBackend)> {
    let mut out = vec![
        ("scalar-libm", kernels::Kernel::Scalar, ExpBackend::Libm),
        ("scalar-poly", kernels::Kernel::Scalar, ExpBackend::Poly),
    ];
    if kernels::active() != kernels::Kernel::Scalar {
        out.push((
            match kernels::active() {
                kernels::Kernel::Avx2 => "avx2-poly",
                kernels::Kernel::Scalar => unreachable!(),
            },
            kernels::active(),
            ExpBackend::Poly,
        ));
    }
    out
}

/// Raw element-wise `exp` throughput over a buffer of RBF-typical
/// arguments (`−γ·d²` values: negative, moderate magnitude).
fn bench_exp_elementwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbf_exp/exp");
    let n = 65_536usize;
    let mut rng = StdRng::seed_from_u64(1);
    let inputs: Vec<f64> = (0..n).map(|_| -30.0 * rng.gen::<f64>()).collect();
    for (name, kernel, backend) in configs() {
        group.bench_with_input(BenchmarkId::new(name, n), &inputs, |b, xs| {
            let mut buf = xs.to_vec();
            b.iter(|| {
                buf.copy_from_slice(xs);
                kernels::exp_in_place(kernel, backend, &mut buf);
                buf[0]
            });
        });
    }
    group.finish();
}

fn corner_data(n: usize, m: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_fn((0..n * m).map(|_| rng.gen::<f64>()).collect(), m, |x| {
        if x[0] > 0.6 && x[1] > 0.6 {
            1.0
        } else {
            0.0
        }
    })
    .expect("valid shape")
}

/// Full SVM RBF expansion (`predict_batch`) across training-set sizes —
/// support-vector count grows with the training set, so this sweeps the
/// panel loop from L1-resident to multi-KB support buffers.
fn bench_svm_expand(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbf_exp/svm_batch");
    group.sample_size(10);
    let m = 10usize;
    let rows = 20_000usize;
    let query: Vec<f64> = {
        let mut rng = StdRng::seed_from_u64(2);
        (0..rows * m).map(|_| rng.gen()).collect()
    };
    for n_train in [200usize, 400, 800] {
        let d = corner_data(n_train, m, 3);
        let svm = Svm::fit(&d, &SvmParams::default(), &mut StdRng::seed_from_u64(4));
        let label = format!("n_sv{}", svm.n_support());
        for (name, kernel, backend) in configs() {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/{label}"), rows),
                &query,
                |b, q| {
                    kernels::set_kernel(Some(kernel));
                    kernels::vexp::set_backend(Some(backend));
                    b.iter(|| svm.predict_batch(q, m).len());
                    kernels::vexp::set_backend(None);
                    kernels::set_kernel(None);
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exp_elementwise, bench_svm_expand);
criterion_main!(benches);
