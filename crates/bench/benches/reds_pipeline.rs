//! End-to-end REDS pipeline benchmarks: total cost versus the
//! pseudo-label volume `L` (the dominant term of §7's
//! `O(M(N log N + L log L + L/α))`) and an ablation of hard versus
//! probability pseudo-labels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_core::{Reds, RedsConfig};
use reds_data::Dataset;
use reds_metamodel::GbdtParams;
use reds_subgroup::Prim;

fn corner_data(n: usize, m: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_fn((0..n * m).map(|_| rng.gen::<f64>()).collect(), m, |x| {
        if x[0] > 0.6 && x[1] > 0.6 {
            1.0
        } else {
            0.0
        }
    })
    .expect("valid shape")
}

fn gbdt() -> GbdtParams {
    GbdtParams {
        n_rounds: 50,
        ..Default::default()
    }
}

fn bench_vs_l(c: &mut Criterion) {
    let mut group = c.benchmark_group("reds/vs_l");
    group.sample_size(10);
    let d = corner_data(400, 10, 1);
    for l in [5_000usize, 20_000, 80_000] {
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            let reds = Reds::xgboost(gbdt(), RedsConfig::default().with_l(l));
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| reds.run(&d, &Prim::default(), &mut rng).expect("runs"));
        });
    }
    group.finish();
}

fn bench_label_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("reds/labels");
    group.sample_size(10);
    let d = corner_data(400, 10, 3);
    group.bench_function("hard", |b| {
        let reds = Reds::xgboost(gbdt(), RedsConfig::default().with_l(20_000));
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| reds.run(&d, &Prim::default(), &mut rng).expect("runs"));
    });
    group.bench_function("probability", |b| {
        let reds = Reds::xgboost(
            gbdt(),
            RedsConfig::default()
                .with_l(20_000)
                .with_probability_labels(),
        );
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| reds.run(&d, &Prim::default(), &mut rng).expect("runs"));
    });
    group.finish();
}

criterion_group!(benches, bench_vs_l, bench_label_ablation);
criterion_main!(benches);
