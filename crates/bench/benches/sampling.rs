//! Sampling-design benchmarks: cost per point of LHS, Halton, Sobol,
//! uniform, and logit-normal generators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reds_sampling::{halton, latin_hypercube, logit_normal, sobol, uniform};

fn bench_designs(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling/10k_points");
    for m in [5usize, 20] {
        group.bench_with_input(BenchmarkId::new("lhs", m), &m, |b, &m| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| latin_hypercube(10_000, m, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("halton", m), &m, |b, &m| {
            b.iter(|| halton(10_000, m));
        });
        group.bench_with_input(BenchmarkId::new("sobol", m), &m, |b, &m| {
            b.iter(|| sobol(10_000, m));
        });
        group.bench_with_input(BenchmarkId::new("uniform", m), &m, |b, &m| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| uniform(10_000, m, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("logit_normal", m), &m, |b, &m| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| logit_normal(10_000, m, 0.0, 1.0, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_designs);
criterion_main!(benches);
