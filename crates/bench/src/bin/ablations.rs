//! Ablation studies of the design choices called out in DESIGN.md §5:
//!
//! 1. hard vs probability pseudo-labels at `L = N` (Proposition 1);
//! 2. REDS validation anchoring (`D_val = D` vs `D_val = D_new`);
//! 3. PRIM pasting on/off (§3.2.1 claims it is negligible);
//! 4. peeling-fraction `α` sensitivity (the Table 2 grid);
//! 5. the peeling objective (classic mean vs gain-per-point);
//! 6. active vs passive spending of the simulation budget (§10).
//!
//! ```text
//! cargo run --release -p reds-bench --bin ablations -- [--reps 10]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds_core::{ActiveConfig, ActiveReds, Reds, RedsConfig};
use reds_data::Dataset;
use reds_eval::stats::wilcoxon_signed_rank;
use reds_functions::BenchmarkFunction;
use reds_metamodel::GbdtParams;
use reds_metrics::{pr_auc, precision};
use reds_sampling::{latin_hypercube, uniform};
use reds_subgroup::{PeelCriterion, Prim, PrimParams, SubgroupDiscovery};

use reds_bench::Args;

fn test_data(f: &BenchmarkFunction, seed: u64, n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts = uniform(n, f.m(), &mut rng);
    f.label_dataset(pts, &mut rng).expect("consistent shape")
}

fn train_data(f: &BenchmarkFunction, seed: u64, n: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts = latin_hypercube(n, f.m(), &mut rng);
    f.label_dataset(pts, &mut rng).expect("consistent shape")
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn main() {
    let args = Args::parse();
    let reps = args.get_usize("reps", 10);
    let n = args.get_usize("n", 400);
    let f = reds_bench::resolve_function(&args.get_str("function", "morris"));
    let test = test_data(f, 0xAB1A, args.get_usize("test", 10_000));

    // ---------------------------------------------------------------
    println!("Ablation 1: label type at L = N = {n} (Proposition 1)");
    let mut hard = Vec::new();
    let mut soft = Vec::new();
    let mut plain = Vec::new();
    for rep in 0..reps {
        let d = train_data(f, 100 + rep as u64, n);
        let mut rng = StdRng::seed_from_u64(200 + rep as u64);
        let prim = Prim::default();
        plain.push(pr_auc(&prim.discover(&d, &d, &mut rng).boxes, &test));
        for (probability, out) in [(false, &mut hard), (true, &mut soft)] {
            let mut config = RedsConfig::default().with_l(n);
            if probability {
                config = config.with_probability_labels();
            }
            let reds = Reds::xgboost(GbdtParams::default(), config);
            let mut rng = StdRng::seed_from_u64(300 + rep as u64);
            let r = reds.run(&d, &prim, &mut rng).expect("pipeline runs");
            out.push(pr_auc(&r.boxes, &test));
        }
    }
    println!("  P (simulated labels): PR AUC {:.3}", mean(&plain));
    println!("  RPx  (hard, L = N):   PR AUC {:.3}", mean(&hard));
    println!("  RPxp (soft, L = N):   PR AUC {:.3}", mean(&soft));
    println!(
        "  soft vs simulated p = {:.3} (Proposition 1 expects soft >= simulated)",
        wilcoxon_signed_rank(&soft, &plain)
    );

    // ---------------------------------------------------------------
    println!("\nAblation 2: REDS validation anchoring (final-box test precision)");
    let mut anchored = Vec::new();
    let mut unanchored = Vec::new();
    for rep in 0..reps {
        let d = train_data(f, 400 + rep as u64, n);
        let reds = Reds::xgboost(GbdtParams::default(), RedsConfig::default().with_l(20_000));
        let mut rng = StdRng::seed_from_u64(500 + rep as u64);
        // Anchored: the shipped behaviour (D_val = D).
        let r = reds
            .run(&d, &Prim::default(), &mut rng)
            .expect("pipeline runs");
        anchored.push(precision(r.last_box().expect("non-empty"), &test));
        // Unanchored: rebuild D_new manually and validate on it.
        let mut rng = StdRng::seed_from_u64(500 + rep as u64);
        let model = reds.train_metamodel(&d, &mut rng).expect("training runs");
        let pool = uniform(20_000, f.m(), &mut rng);
        let d_new = Dataset::from_fn(
            pool,
            f.m(),
            |x| {
                if model.predict(x) > 0.5 {
                    1.0
                } else {
                    0.0
                }
            },
        )
        .expect("consistent shape");
        let r = Prim::default().discover(&d_new, &d_new, &mut rng);
        unanchored.push(precision(r.last_box().expect("non-empty"), &test));
    }
    println!("  D_val = D     : precision {:.3}", mean(&anchored));
    println!("  D_val = D_new : precision {:.3}", mean(&unanchored));

    // ---------------------------------------------------------------
    println!("\nAblation 3: PRIM pasting (paper: negligible)");
    let mut no_paste = Vec::new();
    let mut with_paste = Vec::new();
    for rep in 0..reps {
        let d = train_data(f, 600 + rep as u64, n);
        for (paste, out) in [(false, &mut no_paste), (true, &mut with_paste)] {
            let prim = Prim::new(PrimParams {
                paste,
                ..Default::default()
            });
            let mut rng = StdRng::seed_from_u64(700 + rep as u64);
            let r = prim.discover(&d, &d, &mut rng);
            out.push(pr_auc(&r.boxes, &test));
        }
    }
    println!("  peel only  : PR AUC {:.3}", mean(&no_paste));
    println!("  peel+paste : PR AUC {:.3}", mean(&with_paste));
    println!(
        "  difference p = {:.3}",
        wilcoxon_signed_rank(&with_paste, &no_paste)
    );

    // ---------------------------------------------------------------
    println!("\nAblation 4: peeling fraction alpha (Table 2 grid)");
    for alpha in [0.03, 0.05, 0.1, 0.2] {
        let mut scores = Vec::new();
        for rep in 0..reps {
            let d = train_data(f, 800 + rep as u64, n);
            let prim = Prim::new(PrimParams {
                alpha,
                ..Default::default()
            });
            let mut rng = StdRng::seed_from_u64(900 + rep as u64);
            scores.push(pr_auc(&prim.discover(&d, &d, &mut rng).boxes, &test));
        }
        println!("  alpha {alpha:>5}: PR AUC {:.3}", mean(&scores));
    }

    // ---------------------------------------------------------------
    println!("\nAblation 5: peeling objective");
    for criterion in [PeelCriterion::MeanLabel, PeelCriterion::GainPerPoint] {
        let mut scores = Vec::new();
        for rep in 0..reps {
            let d = train_data(f, 1_000 + rep as u64, n);
            let prim = Prim::new(PrimParams {
                criterion,
                ..Default::default()
            });
            let mut rng = StdRng::seed_from_u64(1_100 + rep as u64);
            scores.push(pr_auc(&prim.discover(&d, &d, &mut rng).boxes, &test));
        }
        println!("  {criterion:?}: PR AUC {:.3}", mean(&scores));
    }

    // ---------------------------------------------------------------
    println!("\nAblation 6: active vs passive budget ({n} simulations total)");
    let mut passive = Vec::new();
    let mut active_scores = Vec::new();
    for rep in 0..reps {
        let sim = |x: &[f64], rng: &mut StdRng| f.label(x, rng);
        // Passive: the whole budget as one LHS design + REDS.
        let d = train_data(f, 1_200 + rep as u64, n);
        let reds = Reds::xgboost(GbdtParams::default(), RedsConfig::default().with_l(20_000));
        let mut rng = StdRng::seed_from_u64(1_300 + rep as u64);
        let r = reds
            .run(&d, &Prim::default(), &mut rng)
            .expect("pipeline runs");
        passive.push(pr_auc(&r.boxes, &test));
        // Active: half the budget up front, half by uncertainty sampling.
        let config = ActiveConfig {
            initial_n: n / 2,
            batch_size: n / 8,
            rounds: 4,
            pool_size: 4_000,
        };
        let reds = Reds::xgboost(GbdtParams::default(), RedsConfig::default().with_l(20_000));
        let active = ActiveReds::new(reds, config);
        let mut rng = StdRng::seed_from_u64(1_300 + rep as u64);
        let (r, spent) = active
            .run(f.m(), &sim, &Prim::default(), &mut rng)
            .expect("pipeline runs");
        assert_eq!(spent.n(), n, "equal budgets");
        active_scores.push(pr_auc(&r.boxes, &test));
    }
    println!("  passive REDS: PR AUC {:.3}", mean(&passive));
    println!("  active  REDS: PR AUC {:.3}", mean(&active_scores));
    println!(
        "  active vs passive p = {:.3}",
        wilcoxon_signed_rank(&active_scores, &passive)
    );
}
