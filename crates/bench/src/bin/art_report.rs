//! Cold-start report: loading a serving artifact from `reds-json`
//! vs the mmap-able `.redsart` container.
//!
//! ```text
//! cargo run --release -p reds-bench --bin art_report -- \
//!     [--function morris] [--n 400] [--trees 100] [--seed 7] \
//!     [--family f|x|s] [--reps 5] [--probe-rows 4096] [--out-dir .]
//! ```
//!
//! Fits one metamodel, saves it in both formats, then measures the
//! cold-start path a server pays on boot: `ModelArtifact::load`
//! (parse-and-validate for JSON, map-and-verify for `.redsart`)
//! followed by a first `predict_batch` over `--probe-rows` fresh
//! points. Every repetition also bit-compares the two formats'
//! predictions — a speedup that changed a prediction bit would be a
//! bug, not a result. Emits `BENCH_art.json` with per-format median
//! wall times and the file sizes.
//!
//! Page-cache effects are *not* controlled here (both formats benefit
//! equally on a warm cache); the interesting gap is the JSON parse +
//! float decode + arena rebuild that the mapped path skips entirely.

use std::path::Path;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_bench::{cli_fail, resolve_function, Args};
use reds_json::Json;
use reds_metamodel::{
    Gbdt, GbdtParams, Metamodel, RandomForest, RandomForestParams, SavedModel, Svm, SvmParams,
};
use reds_sampling::{latin_hypercube, uniform};
use reds_serve::{ArtifactFormat, ModelArtifact};

const USAGE: &str = "usage: art_report [--function NAME] [--n N] [--trees N] [--seed N] \
[--family f|x|s] [--reps N] [--probe-rows N] [--out-dir DIR]";

struct Sample {
    load_s: f64,
    probe_s: f64,
    predictions: Vec<f64>,
}

/// One cold-start repetition: load from disk, predict a probe batch.
fn cold_start(path: &Path, expect: ArtifactFormat, probe: &[f64], m: usize) -> Sample {
    let t0 = Instant::now();
    let artifact = match ModelArtifact::load(path) {
        Ok(a) => a,
        Err(e) => cli_fail(format!("cannot load {}: {e}", path.display()), ""),
    };
    let load_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        artifact.format(),
        expect,
        "format sniffing disagrees with the file we wrote"
    );
    let t1 = Instant::now();
    let predictions = artifact.model.predict_batch(probe, m);
    Sample {
        load_s,
        probe_s: t1.elapsed().as_secs_f64(),
        predictions,
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let args = Args::parse();
    let fname = args.get_str("function", "morris");
    let f = resolve_function(&fname);
    let n = args.get_usize("n", 400);
    let trees = args.get_usize("trees", 100);
    let seed = args.get_usize("seed", 7) as u64;
    let family = args.get_str("family", "f");
    let reps = args.get_usize("reps", 5).max(1);
    let probe_rows = args.get_usize("probe-rows", 4096).max(1);
    let out_dir = args.get_str("out-dir", ".");
    if n == 0 {
        cli_fail("--n must be positive", USAGE);
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        cli_fail(format!("cannot create {out_dir}: {e}"), "");
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let design = latin_hypercube(n, f.m(), &mut rng);
    let train = f
        .label_dataset(design, &mut rng)
        .expect("design shape matches the function");
    let model = match family.as_str() {
        "f" => {
            let params = RandomForestParams {
                n_trees: trees,
                ..Default::default()
            };
            SavedModel::Forest(RandomForest::fit(&train, &params, &mut rng))
        }
        "x" => {
            let params = GbdtParams {
                n_rounds: trees,
                ..Default::default()
            };
            SavedModel::Gbdt(Gbdt::fit(&train, &params, &mut rng))
        }
        "s" => SavedModel::Svm(Svm::fit(&train, &SvmParams::default(), &mut rng)),
        other => cli_fail(
            format!("unknown family '{other}' (expected f, x, or s)"),
            USAGE,
        ),
    };
    let m = train.m();
    let probe = uniform(probe_rows, m, &mut rng);

    let artifact = ModelArtifact {
        function: f.name().to_string(),
        seed,
        pool_seed: rng.gen::<u64>(),
        pool_design: reds_serve::POOL_DESIGN_UNIFORM.to_string(),
        model: model.into(),
        train,
    };
    let json_path = format!("{out_dir}/art_report_model.json");
    let art_path = format!("{out_dir}/art_report_model.redsart");
    if let Err(e) = artifact.save(Path::new(&json_path)) {
        cli_fail(format!("cannot save {json_path}: {e}"), "");
    }
    if let Err(e) = artifact.save_art(Path::new(&art_path)) {
        cli_fail(format!("cannot save {art_path}: {e}"), "");
    }
    let file_len = |p: &str| std::fs::metadata(p).map(|md| md.len()).unwrap_or(0);

    let mut json_load = Vec::new();
    let mut json_probe = Vec::new();
    let mut art_load = Vec::new();
    let mut art_probe = Vec::new();
    let mut identical = true;
    for _ in 0..reps {
        let j = cold_start(Path::new(&json_path), ArtifactFormat::Json, &probe, m);
        let a = cold_start(Path::new(&art_path), ArtifactFormat::Art, &probe, m);
        identical &= j.predictions.len() == a.predictions.len()
            && j.predictions
                .iter()
                .zip(&a.predictions)
                .all(|(x, y)| x.to_bits() == y.to_bits());
        json_load.push(j.load_s);
        json_probe.push(j.probe_s);
        art_load.push(a.load_s);
        art_probe.push(a.probe_s);
    }

    let json_load_med = median(json_load);
    let art_load_med = median(art_load);
    let report = Json::obj([
        ("bench", Json::str("art_cold_start")),
        ("function", Json::str(f.name())),
        ("family", Json::str(family.clone())),
        ("n_train", Json::num(n as f64)),
        ("trees", Json::num(trees as f64)),
        ("seed", Json::num(seed as f64)),
        ("reps", Json::num(reps as f64)),
        ("probe_rows", Json::num(probe_rows as f64)),
        ("json_bytes", Json::num(file_len(&json_path) as f64)),
        ("redsart_bytes", Json::num(file_len(&art_path) as f64)),
        ("json_load_s", Json::num(json_load_med)),
        ("redsart_load_s", Json::num(art_load_med)),
        ("json_probe_s", Json::num(median(json_probe))),
        ("redsart_probe_s", Json::num(median(art_probe))),
        (
            "load_speedup",
            Json::num(if art_load_med > 0.0 {
                json_load_med / art_load_med
            } else {
                f64::INFINITY
            }),
        ),
        ("bit_identical", Json::Bool(identical)),
    ]);
    let path = format!("{out_dir}/BENCH_art.json");
    let mut text = report.to_string_pretty();
    text.push('\n');
    if let Err(e) = std::fs::write(&path, text) {
        cli_fail(format!("cannot write {path}: {e}"), "");
    }
    eprintln!("wrote {path}");
    eprintln!(
        "cold start: reds-json {:.1} ms, .redsart {:.1} ms ({:.1}x); predictions {}",
        json_load_med * 1e3,
        art_load_med * 1e3,
        if art_load_med > 0.0 {
            json_load_med / art_load_med
        } else {
            f64::INFINITY
        },
        if identical { "bit-identical" } else { "DIFFER" },
    );
    if !identical {
        std::process::exit(1);
    }
}
