//! The classic scenario-discovery bake-off of Lempert, Bryant & Bankes
//! (2008) ([61], §2.1) extended with REDS: PRIM vs CART, each with and
//! without the REDS metamodel step. Demonstrates that REDS's SD argument
//! is genuinely pluggable (Algorithm 4 takes *any* `SD`).
//!
//! ```text
//! cargo run --release -p reds-bench --bin baselines -- [--reps 10] [--n 400]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds_bench::resolve_function;
use reds_bench::{function_names, Args};
use reds_core::{Reds, RedsConfig};
use reds_eval::stats::wilcoxon_signed_rank;
use reds_metamodel::GbdtParams;
use reds_metrics::pr_auc;
use reds_sampling::{latin_hypercube, uniform};
use reds_subgroup::{CartSd, Prim, SubgroupDiscovery};

fn main() {
    let args = Args::parse();
    let reps = args.get_usize("reps", 10);
    let n = args.get_usize("n", 400);
    let l = args.get_usize("l", 20_000);
    let functions = function_names(&args);
    let variants = ["P", "CART", "RPx", "R-CART-x"];
    println!("Baselines (PR AUC on test data), N = {n}, L = {l}");
    println!("| function | {} |", variants.join(" | "));
    println!("|---|{}|", "---|".repeat(variants.len()));
    let mut totals: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for fname in &functions {
        let f = resolve_function(fname);
        let mut test_rng = StdRng::seed_from_u64(0xBA5E);
        let test_pts = uniform(args.get_usize("test", 10_000), f.m(), &mut test_rng);
        let test = f
            .label_dataset(test_pts, &mut test_rng)
            .expect("consistent shape");
        let mut scores = vec![0.0; variants.len()];
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(1_000 + rep as u64);
            let design = latin_hypercube(n, f.m(), &mut rng);
            let d = f.label_dataset(design, &mut rng).expect("consistent shape");
            let prim = Prim::default();
            let cart = CartSd::default();
            let sds: [&dyn SubgroupDiscovery; 2] = [&prim, &cart];
            for (vi, sd) in sds.iter().enumerate() {
                let mut r = StdRng::seed_from_u64(2_000 + rep as u64);
                let result = sd.discover(&d, &d, &mut r);
                scores[vi] += pr_auc(&result.boxes, &test);
            }
            for (vi, sd) in sds.iter().enumerate() {
                let reds = Reds::xgboost(GbdtParams::default(), RedsConfig::default().with_l(l));
                let mut r = StdRng::seed_from_u64(3_000 + rep as u64);
                let result = reds.run(&d, *sd, &mut r).expect("pipeline runs");
                scores[2 + vi] += pr_auc(&result.boxes, &test);
            }
        }
        let cells: Vec<String> = scores
            .iter()
            .map(|s| format!("{:.3}", s / reps as f64))
            .collect();
        println!("| {fname} | {} |", cells.join(" | "));
        for (vi, s) in scores.iter().enumerate() {
            totals[vi].push(s / reps as f64);
        }
        eprintln!("done: {fname}");
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let cells: Vec<String> = totals.iter().map(|v| format!("{:.3}", mean(v))).collect();
    println!("| **mean** | {} |", cells.join(" | "));
    println!(
        "\nREDS lift: PRIM p = {:.3}, CART p = {:.3} (Wilcoxon signed-rank over functions)",
        wilcoxon_signed_rank(&totals[2], &totals[0]),
        wilcoxon_signed_rank(&totals[3], &totals[1]),
    );
}
