//! Extension of the paper's §10: does *boundary complexity* (rather
//! than raw dimensionality) predict REDS's advantage?
//!
//! For every function we estimate the complexity of the `y = 1`
//! boundary with the nearest-neighbour disagreement rate of a labeled
//! sample, then correlate it — and the dimensionality `M` — with the
//! relative PR AUC gain of RPx over Pc.
//!
//! ```text
//! cargo run --release -p reds-bench --bin complexity_study -- [--reps 8]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds_bench::resolve_function;
use reds_bench::{function_names, Args};
use reds_eval::stats::spearman;
use reds_eval::{run_experiment, ExperimentSpec, MethodOpts};
use reds_metrics::nn_disagreement;
use reds_sampling::uniform;

fn main() {
    let args = Args::parse();
    let reps = args.get_usize("reps", 8);
    let n = args.get_usize("n", 400);
    let sample = args.get_usize("sample", 3_000);
    let functions = function_names(&args);
    let opts = MethodOpts {
        l_prim: args.get_usize("l", 20_000),
        ..Default::default()
    };
    println!("Complexity study (extension of §10), N = {n}");
    println!("| function | M | nn-disagreement | RPx gain over Pc (%) |");
    println!("|---|---|---|---|");
    let mut dims = Vec::new();
    let mut complexities = Vec::new();
    let mut gains = Vec::new();
    for fname in &functions {
        let f = resolve_function(fname);
        // Boundary complexity from a moderate labeled sample.
        let mut rng = StdRng::seed_from_u64(0xC0);
        let pts = uniform(sample, f.m(), &mut rng);
        let labeled = f.label_dataset(pts, &mut rng).expect("consistent shape");
        let complexity = nn_disagreement(&labeled);
        // REDS gain from the standard experiment.
        let mut spec = ExperimentSpec::new(f, n, &["Pc", "RPx"]);
        spec.reps = reps;
        spec.test_size = args.get_usize("test", 10_000);
        spec.opts = opts.clone();
        let s = run_experiment(&spec);
        let gain = 100.0 * (s[1].pr_auc - s[0].pr_auc) / s[0].pr_auc.max(1e-9);
        println!("| {fname} | {} | {complexity:.3} | {gain:+.1} |", f.m());
        dims.push(f.m() as f64);
        complexities.push(complexity);
        gains.push(gain);
        eprintln!("done: {fname}");
    }
    println!(
        "\nSpearman(M, gain)          = {:+.2}",
        spearman(&dims, &gains)
    );
    println!(
        "Spearman(complexity, gain) = {:+.2}",
        spearman(&complexities, &gains)
    );
    println!(
        "Spearman(M, complexity)    = {:+.2}",
        spearman(&dims, &complexities)
    );
    println!(
        "\nInterpretation: the paper uses M as a proxy for boundary complexity\n\
         (§10). If the complexity column correlates with the gain at least as\n\
         strongly as M does, the nn-disagreement measure is the better predictor."
    );
}
