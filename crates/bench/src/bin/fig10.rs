//! Reproduces **Figure 10**: the mixed-inputs experiment (§9.1.2).
//! Even-indexed inputs are drawn from the discrete grid
//! `{0.1, 0.3, 0.5, 0.7, 0.9}`; REDS resamples from the same mixed
//! distribution. Reports the relative quality gain of RPcxp over Pc and
//! RBIcxp over BIc at `N = 400` (`dsgc` is excluded, as in the paper).
//!
//! ```text
//! cargo run --release -p reds-bench --bin fig10 -- [--reps 10] [--n 400]
//! ```

use reds_bench::{function_names, Args};
use reds_eval::stats::wilcoxon_signed_rank;
use reds_eval::{run_experiment, Design, ExperimentSpec, MethodOpts};
use reds_functions::by_name;

fn main() {
    let args = Args::parse();
    let reps = args.get_usize("reps", 10);
    let n = args.get_usize("n", 400);
    let functions: Vec<String> = function_names(&args)
        .into_iter()
        .filter(|f| f != "dsgc")
        .collect();
    let opts = MethodOpts {
        l_prim: args.get_usize("l", 20_000),
        l_bi: args.get_usize("l-bi", 10_000),
        bumping_q: args.get_usize("q", 20),
        ..Default::default()
    };
    let methods = ["Pc", "PBc", "RPcxp", "BIc", "BI", "RBIcxp"];
    println!("Figure 10: mixed inputs, N = {n} — quality change (%) vs Pc / BIc");
    println!("| function | PBc ΔPRAUC | RPcxp ΔPRAUC | RPcxp Δprec | BI ΔWRAcc | RBIcxp ΔWRAcc |");
    println!("|---|---|---|---|---|---|");
    let mut rpcxp_auc = Vec::new();
    let mut pc_auc = Vec::new();
    let mut rbicxp_w = Vec::new();
    let mut bic_w = Vec::new();
    for fname in &functions {
        let f = by_name(fname).unwrap_or_else(|| panic!("unknown function {fname}"));
        let mut spec = ExperimentSpec::new(f, n, &methods);
        spec.design = Design::MixedEven;
        spec.reps = reps;
        spec.test_size = args.get_usize("test", 20_000);
        spec.opts = opts.clone();
        let s = run_experiment(&spec);
        let idx = |name: &str| {
            s.iter()
                .position(|x| x.method == name)
                .expect("method in list")
        };
        let pc = &s[idx("Pc")];
        let bic = &s[idx("BIc")];
        println!(
            "| {fname} | {:+.1} | {:+.1} | {:+.1} | {:+.1} | {:+.1} |",
            100.0 * (s[idx("PBc")].pr_auc - pc.pr_auc) / pc.pr_auc.max(1e-9),
            100.0 * (s[idx("RPcxp")].pr_auc - pc.pr_auc) / pc.pr_auc.max(1e-9),
            100.0 * (s[idx("RPcxp")].precision - pc.precision) / pc.precision.max(1e-9),
            100.0 * (s[idx("BI")].wracc - bic.wracc) / bic.wracc.abs().max(1e-9),
            100.0 * (s[idx("RBIcxp")].wracc - bic.wracc) / bic.wracc.abs().max(1e-9),
        );
        rpcxp_auc.push(s[idx("RPcxp")].pr_auc);
        pc_auc.push(pc.pr_auc);
        rbicxp_w.push(s[idx("RBIcxp")].wracc);
        bic_w.push(bic.wracc);
        eprintln!("done: {fname}");
    }
    println!(
        "\npost-hoc RPcxp vs Pc (Wilcoxon signed-rank over functions): p = {:.2e}",
        wilcoxon_signed_rank(&rpcxp_auc, &pc_auc)
    );
    println!(
        "post-hoc RBIcxp vs BIc: p = {:.2e}",
        wilcoxon_signed_rank(&rbicxp_w, &bic_w)
    );
}
