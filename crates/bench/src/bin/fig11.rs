//! Reproduces **Figure 11**: peeling trajectories of P, Pc, RPx on
//! `morris` at `N = 400` (smoothed over repetitions) and the PR AUC
//! distribution, with the Wilcoxon–Mann–Whitney test between RPx and Pc.
//!
//! ```text
//! cargo run --release -p reds-bench --bin fig11 -- [--reps 20] [--n 400]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds_bench::Args;
use reds_eval::stats::wilcoxon_rank_sum;
use reds_eval::{run_method, MethodOpts};
use reds_functions::by_name;
use reds_metrics::{pr_auc, pr_points};
use reds_sampling::{latin_hypercube, uniform};

fn main() {
    let args = Args::parse();
    let reps = args.get_usize("reps", 20);
    let n = args.get_usize("n", 400);
    let f = by_name("morris").expect("registry");
    let mut test_rng = StdRng::seed_from_u64(0xF11);
    let test_points = uniform(args.get_usize("test", 20_000), f.m(), &mut test_rng);
    let test = f
        .label_dataset(test_points, &mut test_rng)
        .expect("consistent shape");
    let opts = MethodOpts {
        l_prim: args.get_usize("l", 50_000),
        ..Default::default()
    };
    let methods = ["P", "Pc", "RPx"];
    // Bin trajectories on a recall grid for the smoothed curves.
    const BINS: usize = 20;
    let mut curves = vec![vec![(0.0f64, 0usize); BINS]; methods.len()];
    let mut aucs: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(3_000 + rep as u64);
        let design = latin_hypercube(n, f.m(), &mut rng);
        let d = f.label_dataset(design, &mut rng).expect("consistent shape");
        for (mi, name) in methods.iter().enumerate() {
            let mut method_rng = StdRng::seed_from_u64(4_000 + (rep * 7 + mi) as u64);
            let result = run_method(name, &d, &opts, &mut method_rng).expect("valid method");
            aucs[mi].push(100.0 * pr_auc(&result.boxes, &test));
            for p in pr_points(&result.boxes, &test) {
                let bin = ((p.recall * BINS as f64) as usize).min(BINS - 1);
                curves[mi][bin].0 += p.precision;
                curves[mi][bin].1 += 1;
            }
        }
        eprintln!("rep {}/{reps}", rep + 1);
    }

    println!("Figure 11 (left): smoothed peeling trajectories, morris N = {n}");
    println!("| recall bin | {} |", methods.join(" | "));
    println!("|---|{}|", "---|".repeat(methods.len()));
    for bin in 0..BINS {
        let lo = bin as f64 / BINS as f64;
        let cells: Vec<String> = curves
            .iter()
            .map(|c| {
                let (sum, cnt) = c[bin];
                if cnt == 0 {
                    "-".to_string()
                } else {
                    format!("{:.3}", sum / cnt as f64)
                }
            })
            .collect();
        println!(
            "| {lo:.2}–{:.2} | {} |",
            lo + 1.0 / BINS as f64,
            cells.join(" | ")
        );
    }

    println!("\nFigure 11 (right): PR AUC distribution over {reps} repetitions");
    println!("| method | mean | min | max |");
    println!("|---|---|---|---|");
    for (mi, name) in methods.iter().enumerate() {
        let v = &aucs[mi];
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!("| {name} | {mean:.1} | {min:.1} | {max:.1} |");
    }
    let idx = |name: &str| methods.iter().position(|m| *m == name).expect("in list");
    println!(
        "\nWilcoxon–Mann–Whitney RPx vs Pc on PR AUC: p = {:.2e}",
        wilcoxon_rank_sum(&aucs[idx("RPx")], &aucs[idx("Pc")])
    );
}
