//! Reproduces **Figure 12**: learning curves on `morris` — scenario
//! quality versus the number of simulations `N` (left column) and
//! versus REDS's pseudo-label volume `L` at fixed `N = 400` (right
//! column), for the PRIM family (PR AUC) and the BI family (WRAcc).
//!
//! The `L = N = 400` point of `RPxp` demonstrates Proposition 1:
//! probability pseudo-labels beat the same number of simulated hard
//! labels.
//!
//! ```text
//! cargo run --release -p reds-bench --bin fig12 -- \
//!     [--reps 10] [--ns 200,400,800,1600,3200] [--ls 400,800,1600,3200,6400,25000]
//! ```

use reds_bench::Args;
use reds_eval::savings::mean_savings;
use reds_eval::{run_experiment, ExperimentSpec, MethodOpts};
use reds_functions::by_name;

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',')
        .map(|v| v.trim().parse().expect("expects integers"))
        .collect()
}

fn main() {
    let args = Args::parse();
    let reps = args.get_usize("reps", 10);
    let ns = parse_list(&args.get_str("ns", "200,400,800,1600,3200"));
    let ls = parse_list(&args.get_str("ls", "400,800,1600,3200,6400,25000"));
    let l_default = args.get_usize("l", 50_000);
    let test_size = args.get_usize("test", 20_000);
    let f = by_name("morris").expect("registry");

    // Left column: quality vs N at fixed L.
    let prim_methods = ["P", "Pc", "RPx", "RPxp"];
    println!("Figure 12 (top-left): PR AUC vs N, morris, L = {l_default}");
    println!("| N | {} |", prim_methods.join(" | "));
    println!("|---|{}|", "---|".repeat(prim_methods.len()));
    let mut pc_curve = Vec::new();
    let mut rpx_curve = Vec::new();
    for &n in &ns {
        let mut spec = ExperimentSpec::new(f, n, &prim_methods);
        spec.reps = reps;
        spec.test_size = test_size;
        spec.opts = MethodOpts {
            l_prim: l_default,
            ..Default::default()
        };
        let s = run_experiment(&spec);
        let cells: Vec<String> = s.iter().map(|x| format!("{:.1}", x.pr_auc)).collect();
        println!("| {n} | {} |", cells.join(" | "));
        pc_curve.push((n as f64, s[1].pr_auc));
        rpx_curve.push((n as f64, s[2].pr_auc));
        eprintln!("done: N={n} (PRIM family)");
    }
    if let Some(saved) = mean_savings(&pc_curve, &rpx_curve) {
        println!(
            "\nheadline: RPx needs on average {:.0}% fewer simulations than Pc\n\
             for the same PR AUC on this sweep (paper: 50-75%)",
            100.0 * saved
        );
    }

    let bi_methods = ["BI", "BIc", "RBIcxp"];
    println!("\nFigure 12 (bottom-left): WRAcc vs N, morris, L = 10000");
    println!("| N | {} |", bi_methods.join(" | "));
    println!("|---|{}|", "---|".repeat(bi_methods.len()));
    for &n in &ns {
        let mut spec = ExperimentSpec::new(f, n, &bi_methods);
        spec.reps = reps;
        spec.test_size = test_size;
        spec.opts = MethodOpts {
            l_bi: 10_000,
            ..Default::default()
        };
        let s = run_experiment(&spec);
        let cells: Vec<String> = s.iter().map(|x| format!("{:.2}", x.wracc)).collect();
        println!("| {n} | {} |", cells.join(" | "));
        eprintln!("done: N={n} (BI family)");
    }

    // Right column: quality vs L at fixed N = 400. The baselines P / BI
    // do not depend on L; they are printed once per row for reference.
    let n_fixed = 400;
    println!("\nFigure 12 (top-right): PR AUC vs L, morris, N = {n_fixed}");
    println!("| L | P (ref) | RPx | RPxp |");
    println!("|---|---|---|---|");
    for &l in &ls {
        let mut spec = ExperimentSpec::new(f, n_fixed, &["P", "RPx", "RPxp"]);
        spec.reps = reps;
        spec.test_size = test_size;
        spec.opts = MethodOpts {
            l_prim: l,
            ..Default::default()
        };
        let s = run_experiment(&spec);
        println!(
            "| {l} | {:.1} | {:.1} | {:.1} |",
            s[0].pr_auc, s[1].pr_auc, s[2].pr_auc
        );
        eprintln!("done: L={l} (PRIM family)");
    }

    println!("\nFigure 12 (bottom-right): WRAcc vs L, morris, N = {n_fixed}");
    println!("| L | BI (ref) | RBIcxp |");
    println!("|---|---|---|");
    for &l in &ls {
        let mut spec = ExperimentSpec::new(f, n_fixed, &["BI", "RBIcxp"]);
        spec.reps = reps;
        spec.test_size = test_size;
        spec.opts = MethodOpts {
            l_bi: l,
            ..Default::default()
        };
        let s = run_experiment(&spec);
        println!("| {l} | {:.2} | {:.2} |", s[0].wracc, s[1].wracc);
        eprintln!("done: L={l} (BI family)");
    }
}
