//! Reproduces **Figure 14**: REDS as a semi-supervised subgroup
//! discovery method (§9.4). All inputs are sampled i.i.d. from a
//! logit-normal distribution (`μ = 0`, `σ = 1`); functions whose share
//! of interesting examples drops to ≤ 5 % under this distribution are
//! excluded, as in the paper. Reports the quality change of PBc/RPx
//! relative to Pc and of BI/RBIcxp relative to BIc.
//!
//! ```text
//! cargo run --release -p reds-bench --bin fig14 -- [--reps 10] [--n 400]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds_bench::{function_names, Args};
use reds_eval::stats::wilcoxon_signed_rank;
use reds_eval::{run_experiment, Design, ExperimentSpec, MethodOpts};
use reds_functions::by_name;
use reds_sampling::logit_normal;

fn main() {
    let args = Args::parse();
    let reps = args.get_usize("reps", 10);
    let n = args.get_usize("n", 400);
    let opts = MethodOpts {
        l_prim: args.get_usize("l", 20_000),
        l_bi: args.get_usize("l-bi", 10_000),
        bumping_q: args.get_usize("q", 20),
        ..Default::default()
    };
    // Keep the functions whose positive share under the logit-normal
    // distribution stays above 5 % (the paper keeps 30 of 32).
    let functions: Vec<String> = function_names(&args)
        .into_iter()
        .filter(|name| name != "dsgc")
        .filter(|name| {
            let f = by_name(name).unwrap_or_else(|| panic!("unknown function {name}"));
            let mut rng = StdRng::seed_from_u64(0x514);
            let pts = logit_normal(4_000, f.m(), 0.0, 1.0, &mut rng);
            let share: f64 = pts
                .chunks_exact(f.m())
                .map(|x| f.prob_positive(x))
                .sum::<f64>()
                / 4_000.0;
            if share <= 0.05 {
                eprintln!("excluding {name}: logit-normal share {:.1}%", 100.0 * share);
                false
            } else {
                true
            }
        })
        .collect();

    let methods = ["Pc", "PBc", "RPx", "BIc", "BI", "RBIcxp"];
    println!("Figure 14: semi-supervised setting (logit-normal inputs), N = {n}");
    println!("| function | PBc ΔPRAUC | RPx ΔPRAUC | RPx Δprec | BI ΔWRAcc | RBIcxp ΔWRAcc |");
    println!("|---|---|---|---|---|---|");
    let mut rpx_auc = Vec::new();
    let mut pc_auc = Vec::new();
    let mut rbicxp_w = Vec::new();
    let mut bic_w = Vec::new();
    for fname in &functions {
        let f = by_name(fname).unwrap_or_else(|| panic!("unknown function {fname}"));
        let mut spec = ExperimentSpec::new(f, n, &methods);
        spec.design = Design::LogitNormal;
        spec.reps = reps;
        spec.test_size = args.get_usize("test", 20_000);
        spec.opts = opts.clone();
        let s = run_experiment(&spec);
        let idx = |name: &str| {
            s.iter()
                .position(|x| x.method == name)
                .expect("method in list")
        };
        let pc = &s[idx("Pc")];
        let bic = &s[idx("BIc")];
        println!(
            "| {fname} | {:+.1} | {:+.1} | {:+.1} | {:+.1} | {:+.1} |",
            100.0 * (s[idx("PBc")].pr_auc - pc.pr_auc) / pc.pr_auc.max(1e-9),
            100.0 * (s[idx("RPx")].pr_auc - pc.pr_auc) / pc.pr_auc.max(1e-9),
            100.0 * (s[idx("RPx")].precision - pc.precision) / pc.precision.max(1e-9),
            100.0 * (s[idx("BI")].wracc - bic.wracc) / bic.wracc.abs().max(1e-9),
            100.0 * (s[idx("RBIcxp")].wracc - bic.wracc) / bic.wracc.abs().max(1e-9),
        );
        rpx_auc.push(s[idx("RPx")].pr_auc);
        pc_auc.push(pc.pr_auc);
        rbicxp_w.push(s[idx("RBIcxp")].wracc);
        bic_w.push(bic.wracc);
        eprintln!("done: {fname}");
    }
    println!(
        "\npost-hoc RPx vs Pc (Wilcoxon signed-rank over functions): p = {:.2e}",
        wilcoxon_signed_rank(&rpx_auc, &pc_auc)
    );
    println!(
        "post-hoc RBIcxp vs BIc: p = {:.2e}",
        wilcoxon_signed_rank(&rbicxp_w, &bic_w)
    );
}
