//! Reproduces **Figure 6** (Example 8.1): why evaluations need
//! hyperparameter optimisation and independent test data. Runs BI and
//! BIc on `morris` datasets and reports WRAcc measured on the *training*
//! data ("tBI", "tBIc") versus the held-out test data ("BI", "BIc").
//!
//! Expected shape: hyperparameter optimisation helps (BIc > BI on test);
//! training-data evaluation is overly optimistic (tBI > BI) and flips
//! the ranking (tBI > tBIc but BIc > BI).
//!
//! ```text
//! cargo run --release -p reds-bench --bin fig6 -- [--reps 50] [--n 400]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds_bench::Args;
use reds_eval::{run_method, MethodOpts};
use reds_functions::by_name;
use reds_metrics::wracc;
use reds_sampling::{latin_hypercube, uniform};

fn main() {
    let args = Args::parse();
    let reps = args.get_usize("reps", 50);
    let n = args.get_usize("n", 400);
    let test_size = args.get_usize("test", 20_000);
    let f = by_name("morris").expect("registry");
    let mut test_rng = StdRng::seed_from_u64(0xF166);
    let test_points = uniform(test_size, f.m(), &mut test_rng);
    let test = f
        .label_dataset(test_points, &mut test_rng)
        .expect("consistent shape");
    let opts = MethodOpts::default();

    let mut stats: Vec<(String, Vec<f64>)> = ["BI", "BIc", "tBI", "tBIc"]
        .iter()
        .map(|s| (s.to_string(), Vec::new()))
        .collect();
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(1000 + rep as u64);
        let design = latin_hypercube(n, f.m(), &mut rng);
        let d = f.label_dataset(design, &mut rng).expect("consistent shape");
        for (name, optimized) in [("BI", false), ("BIc", true)] {
            let mut method_rng = StdRng::seed_from_u64(2000 + rep as u64);
            let method = if optimized { "BIc" } else { "BI" };
            let result = run_method(method, &d, &opts, &mut method_rng).expect("valid method");
            let b = result.last_box().expect("BI returns one box");
            let on_test = 100.0 * wracc(b, &test);
            let on_train = 100.0 * wracc(b, &d);
            stats
                .iter_mut()
                .find(|(k, _)| k == name)
                .expect("registered")
                .1
                .push(on_test);
            stats
                .iter_mut()
                .find(|(k, _)| *k == format!("t{name}"))
                .expect("registered")
                .1
                .push(on_train);
        }
        eprintln!("rep {}/{reps}", rep + 1);
    }

    println!("Figure 6: WRAcc (%) of BI variants on morris, N = {n}, {reps} repetitions");
    println!("| variant | mean | q25 | median | q75 |");
    println!("|---|---|---|---|---|");
    for (name, vals) in &mut stats {
        vals.sort_by(f64::total_cmp);
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let q = |p: f64| vals[((vals.len() - 1) as f64 * p) as usize];
        println!(
            "| {name} | {mean:.2} | {:.2} | {:.2} | {:.2} |",
            q(0.25),
            q(0.5),
            q(0.75)
        );
    }
}
