//! Reproduces **Figure 9**: wall-clock runtimes of PRIM-family and
//! BI-family methods contingent on the training size `N`, averaged over
//! functions and repetitions.
//!
//! ```text
//! cargo run --release -p reds-bench --bin fig9 -- \
//!     [--reps 5] [--ns 200,400,800] [--functions ...] [--all]
//! ```

use reds_bench::{function_names, Args};
use reds_eval::{run_experiment, ExperimentSpec, MethodOpts};
use reds_functions::by_name;

fn main() {
    let args = Args::parse();
    let reps = args.get_usize("reps", 5);
    let functions = function_names(&args);
    let ns: Vec<usize> = args
        .get_str("ns", "200,400,800")
        .split(',')
        .map(|s| s.trim().parse().expect("--ns expects integers"))
        .collect();
    let opts = MethodOpts {
        l_prim: args.get_usize("l", 20_000),
        l_bi: args.get_usize("l-bi", 10_000),
        bumping_q: args.get_usize("q", 20),
        ..Default::default()
    };
    let prim_methods = ["Pc", "PBc", "RPf", "RPx"];
    let bi_methods = ["BI", "BIc", "RBIcxp"];
    for (title, methods) in [
        ("PRIM-family", prim_methods.as_slice()),
        ("BI-family", bi_methods.as_slice()),
    ] {
        println!("\nFigure 9 ({title}): mean runtime in ms");
        println!("| N | {} |", methods.join(" | "));
        println!("|---|{}|", "---|".repeat(methods.len()));
        for n in &ns {
            let mut totals = vec![0.0; methods.len()];
            let mut count = 0.0;
            for fname in &functions {
                let f = by_name(fname).unwrap_or_else(|| panic!("unknown function {fname}"));
                let mut spec = ExperimentSpec::new(f, *n, methods);
                spec.reps = reps;
                spec.test_size = 4_000; // scoring size does not affect runtime of methods
                spec.opts = opts.clone();
                for (i, s) in run_experiment(&spec).iter().enumerate() {
                    totals[i] += s.runtime_ms;
                }
                count += 1.0;
            }
            let cells: Vec<String> = totals.iter().map(|t| format!("{:.0}", t / count)).collect();
            println!("| {n} | {} |", cells.join(" | "));
            eprintln!("done: N={n} ({title})");
        }
    }
    println!(
        "\nNote: REDS runtime is dominated by L (pseudo-label volume), so it scales\n\
         sublinearly in N — the paper's observation (§9.1.1). REDS is cheaper than\n\
         2–4x more simulation runs whenever one simulation exceeds ~2 s."
    );
}
