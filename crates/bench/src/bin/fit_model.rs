//! Trains `f^am` for a named benchmark function and saves it as a
//! serving artifact (model + training data) for `reds_serve`.
//!
//! ```text
//! cargo run --release -p reds-bench --bin fit_model -- \
//!     --function morris --n 400 [--seed 7] [--family f|x|s] \
//!     [--trees 200] [--rounds 150] --out model.json
//! ```
//!
//! `--out model.redsart` writes the mmap-able binary artifact instead
//! of JSON (see `docs/artifact-format.md`); both load identically in
//! `reds_serve`.
//!
//! The training run mirrors one repetition of the paper's experiments:
//! a Latin-hypercube design of `N` points on `[0,1]^M`, labelled by the
//! simulation function, fitted with the chosen metamodel family's
//! default hyperparameters. The same `--seed` always produces the same
//! artifact.

use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_bench::{cli_fail, resolve_function, Args};
use reds_metamodel::{
    Gbdt, GbdtParams, RandomForest, RandomForestParams, SavedModel, Svm, SvmParams,
};
use reds_sampling::latin_hypercube;
use reds_serve::ModelArtifact;

const USAGE: &str = "usage: fit_model --function NAME --out PATH \
[--n 400] [--seed 7] [--family f|x|s] [--trees N] [--rounds N]";

fn main() {
    let args = Args::parse();
    let fname = args.get_str("function", "");
    if fname.is_empty() {
        cli_fail("--function is required", USAGE);
    }
    let out = args.get_str("out", "");
    if out.is_empty() {
        cli_fail("--out is required", USAGE);
    }
    let f = resolve_function(&fname);
    let n = args.get_usize("n", 400);
    if n == 0 {
        cli_fail("--n must be positive", USAGE);
    }
    let seed = args.get_usize("seed", 7) as u64;
    let family = args.get_str("family", "f");

    let mut rng = StdRng::seed_from_u64(seed);
    let design = latin_hypercube(n, f.m(), &mut rng);
    let train = f
        .label_dataset(design, &mut rng)
        .expect("design shape matches the function");

    let model = match family.as_str() {
        "f" => {
            let params = RandomForestParams {
                n_trees: args.get_usize("trees", RandomForestParams::default().n_trees),
                ..Default::default()
            };
            SavedModel::Forest(RandomForest::fit(&train, &params, &mut rng))
        }
        "x" => {
            let params = GbdtParams {
                n_rounds: args.get_usize("rounds", GbdtParams::default().n_rounds),
                ..Default::default()
            };
            SavedModel::Gbdt(Gbdt::fit(&train, &params, &mut rng))
        }
        "s" => SavedModel::Svm(Svm::fit(&train, &SvmParams::default(), &mut rng)),
        other => cli_fail(
            format!("unknown family '{other}' (expected f, x, or s)"),
            USAGE,
        ),
    };

    // Drawn from the *continuation* of the training RNG stream, then
    // frozen into the artifact: a `discover_streaming` served without
    // an explicit seed streams exactly this pool, so the served run is
    // reproducible from the artifact file alone.
    let pool_seed = rng.gen::<u64>();

    let artifact = ModelArtifact {
        function: f.name().to_string(),
        seed,
        pool_seed,
        pool_design: reds_serve::POOL_DESIGN_UNIFORM.to_string(),
        model: model.into(),
        train,
    };
    // `.redsart` targets get the mmap-able binary container; anything
    // else stays on the `reds-json` interchange format.
    let result = if out.ends_with(".redsart") {
        artifact.save_art(Path::new(&out))
    } else {
        artifact.save(Path::new(&out))
    };
    if let Err(e) = result {
        eprintln!("error: cannot save {out}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "saved {} metamodel for '{}' (N = {}, m = {}, seed = {seed}) to {out}",
        artifact.model.family(),
        artifact.function,
        artifact.train.n(),
        artifact.train.m(),
    );
}
