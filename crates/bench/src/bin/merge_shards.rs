//! Recombines the shard checkpoints of a `table3`/`table4` sweep into
//! the final report.
//!
//! ```text
//! cargo run --release -p reds-bench --bin merge_shards -- \
//!     --table 3 --checkpoint-dir DIR \
//!     [<same sweep flags as the table binary>] [--json out.json]
//! ```
//!
//! Pass the *same* sweep flags (`--functions`, `--ns`, `--reps`, `--l`,
//! `--q`, `--test`, `--methods`, …) that the shards ran with: the sweep
//! configuration is fingerprinted, every checkpoint header carries the
//! producing run's fingerprint, and merging refuses configurations that
//! do not match. Duplicate units and incomplete grids are rejected; the
//! emitted report is byte-identical to a monolithic run of the same
//! sweep (wall-clock runtimes excepted — they are measured, not
//! derived, and only appear in `--json` output).

use std::path::PathBuf;
use std::process::ExitCode;

use reds_bench::sweep::{merge_dir, render, rows_json, Sweep};
use reds_bench::Args;

fn main() -> ExitCode {
    let args = Args::parse();
    let sweep = match args.get_str("table", "").as_str() {
        "3" => Sweep::table3(&args),
        "4" => Sweep::table4(&args),
        other => {
            eprintln!(
                "merge_shards: --table must be 3 or 4 (got {other:?}); pass the same sweep \
                 flags the shards ran with, plus --checkpoint-dir"
            );
            return ExitCode::from(2);
        }
    };
    let dir = args.get_str("checkpoint-dir", "");
    if dir.is_empty() {
        eprintln!("merge_shards: --checkpoint-dir is required");
        return ExitCode::from(2);
    }
    let results = match merge_dir(&sweep, &PathBuf::from(&dir)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("merge_shards: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", render(&sweep, &results));
    let json_path = args.get_str("json", "");
    if !json_path.is_empty() {
        if let Err(e) = std::fs::write(&json_path, rows_json(&sweep, &results).to_string_pretty()) {
            eprintln!("merge_shards: writing {json_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("rows written to {json_path}");
    }
    ExitCode::SUCCESS
}
