//! Machine-readable memory/runtime report for out-of-core discovery.
//!
//! Compares `Reds::run` (fully in-memory) against
//! `Reds::discover_out_of_core` (pool streamed to a scratch `.redsart`
//! artifact, search paging it back in through a bounded cache) at the
//! same seed, verifies bit-identical boxes, measures wall time and
//! **peak RSS** (`VmHWM`), and emits `BENCH_ooc.json`.
//!
//! ```text
//! cargo run --release -p reds-bench --bin ooc_report -- \
//!     [--l 2000000] [--m 12] [--mem-budget 64] [--cache-mib N] \
//!     [--page-rows 4096] [--chunk-rows 65536] [--algorithm prim|bi] \
//!     [--n 400] [--trees 50] [--seed 7] [--out-dir .] [--spill-dir DIR] \
//!     [--skip-inmem]
//! ```
//!
//! Each measured configuration runs in its **own subprocess** (the
//! binary re-execs itself with `--measure <mode>`): `VmHWM` is a
//! process-wide high-water mark, so two configurations measured in one
//! process would shadow each other.
//!
//! Pass/fail rules:
//!
//! * the out-of-core boxes must be **bit-identical** to the in-memory
//!   run (skipped with `--skip-inmem`, for paper-scale runs where the
//!   in-memory side alone needs more RAM than the machine has);
//! * the out-of-core child's peak RSS must stay **below
//!   `--mem-budget` MiB** (default 64). The paper-scale gate is
//!   `--l 10000000 --m 12`, where the in-memory pool alone
//!   (`12·8·L` points + labels + sort orders) exceeds 1.5 GiB.

use std::io::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_bench::{cli_fail, rss, Args};
use reds_core::{OocConfig, Reds, RedsConfig, StreamConfig};
use reds_data::Dataset;
use reds_json::Json;
use reds_metamodel::RandomForestParams;
use reds_subgroup::{BestInterval, Prim, SdResult, SubgroupDiscovery};

const USAGE: &str = "usage: ooc_report [--l N] [--m N] [--mem-budget MIB] [--cache-mib N] \
[--page-rows N] [--chunk-rows N] [--algorithm prim|bi] [--n N] [--trees N] [--seed N] \
[--out-dir DIR] [--spill-dir DIR] [--skip-inmem]";

#[derive(Clone)]
struct Spec {
    l: usize,
    m: usize,
    chunk_rows: usize,
    page_rows: u32,
    cache_bytes: usize,
    n_train: usize,
    trees: usize,
    seed: u64,
    algorithm: String,
    spill_dir: Option<String>,
}

impl Spec {
    fn from_args(args: &Args, mem_budget_mib: usize) -> Self {
        let spill = args.get_str("spill-dir", "");
        let algorithm = args.get_str("algorithm", "prim");
        if algorithm != "prim" && algorithm != "bi" {
            cli_fail(
                format!("--algorithm expects prim|bi, got '{algorithm}'"),
                USAGE,
            );
        }
        // By default the page cache takes half the process budget,
        // leaving the other half for the model, the chunk buffers, the
        // mask cache, and the allocator's own overhead.
        let cache_mib = args.get_usize("cache-mib", (mem_budget_mib / 2).max(1));
        Self {
            l: args.get_usize("l", 2_000_000),
            m: args.get_usize("m", 12),
            chunk_rows: args.get_usize("chunk-rows", 65_536),
            page_rows: args.get_usize("page-rows", 4_096) as u32,
            cache_bytes: cache_mib << 20,
            n_train: args.get_usize("n", 400),
            trees: args.get_usize("trees", 50),
            seed: args.get_usize("seed", 7) as u64,
            algorithm,
            spill_dir: if spill.is_empty() { None } else { Some(spill) },
        }
    }

    fn to_cli(&self) -> Vec<String> {
        let mut v = vec![
            "--l".into(),
            self.l.to_string(),
            "--m".into(),
            self.m.to_string(),
            "--chunk-rows".into(),
            self.chunk_rows.to_string(),
            "--page-rows".into(),
            self.page_rows.to_string(),
            "--cache-mib".into(),
            (self.cache_bytes >> 20).to_string(),
            "--n".into(),
            self.n_train.to_string(),
            "--trees".into(),
            self.trees.to_string(),
            "--seed".into(),
            self.seed.to_string(),
            "--algorithm".into(),
            self.algorithm.clone(),
        ];
        if let Some(dir) = &self.spill_dir {
            v.push("--spill-dir".into());
            v.push(dir.clone());
        }
        v
    }

    fn stream_config(&self) -> StreamConfig {
        let mut cfg = StreamConfig::new().with_chunk_rows(self.chunk_rows);
        if let Some(dir) = &self.spill_dir {
            cfg = cfg.with_spill_dir(dir.clone());
        }
        cfg
    }

    fn ooc_config(&self) -> OocConfig {
        OocConfig::new()
            .with_cache_bytes(self.cache_bytes)
            .with_page_rows(self.page_rows)
    }

    fn discovery(&self) -> Box<dyn SubgroupDiscovery> {
        match self.algorithm.as_str() {
            "bi" => Box::new(BestInterval::default()),
            _ => Box::new(Prim::default()),
        }
    }
}

/// The benchmark's training set (same shape as `stream_report`, so the
/// two reports exercise comparable workloads).
fn train_data(spec: &Spec) -> Dataset {
    let mut data_rng = StdRng::seed_from_u64(spec.seed ^ 0x5eed);
    Dataset::from_fn(
        (0..spec.n_train * spec.m)
            .map(|_| data_rng.gen::<f64>())
            .collect(),
        spec.m,
        |x| {
            if x[0] > 0.6 && x[1] > 0.6 {
                1.0
            } else {
                0.0
            }
        },
    )
    .expect("valid training shape")
}

fn boxes_digest(result: &SdResult) -> u64 {
    // FNV-1a over the bound bits of every box, coarsest first.
    let mut h: u64 = 0xcbf29ce484222325;
    let mut upd = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for b in &result.boxes {
        for j in 0..b.m() {
            let (lo, hi) = b.bound(j);
            upd(lo.to_bits());
            upd(hi.to_bits());
        }
    }
    h
}

/// One measured child configuration, printed as a JSON object.
fn run_measure(mode: &str, spec: &Spec) {
    let t0 = Instant::now();
    let train = train_data(spec);
    let params = RandomForestParams {
        n_trees: spec.trees,
        ..Default::default()
    };
    let reds = Reds::random_forest(params, RedsConfig::default().with_l(spec.l));
    let sd = spec.discovery();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let result = match mode {
        "inmem-discover" => reds
            .run(&train, sd.as_ref(), &mut rng)
            .unwrap_or_else(|e| cli_fail(format!("in-memory pipeline failed: {e}"), "")),
        "ooc-discover" => reds
            .discover_out_of_core(
                &train,
                sd.as_ref(),
                &mut rng,
                &spec.stream_config(),
                &spec.ooc_config(),
            )
            .unwrap_or_else(|e| cli_fail(format!("out-of-core pipeline failed: {e}"), "")),
        other => cli_fail(format!("unknown --measure mode '{other}'"), USAGE),
    };
    let runtime_ms = t0.elapsed().as_secs_f64() * 1e3;
    let pairs = vec![
        ("mode", Json::str(mode)),
        ("l", Json::num(spec.l as f64)),
        ("m", Json::num(spec.m as f64)),
        ("algorithm", Json::str(spec.algorithm.clone())),
        ("page_rows", Json::num(spec.page_rows as f64)),
        ("cache_bytes", Json::num(spec.cache_bytes as f64)),
        ("runtime_ms", Json::num(runtime_ms)),
        (
            "peak_rss_bytes",
            rss::peak_rss_bytes().map_or(Json::Null, |b| Json::num(b as f64)),
        ),
        ("digest", Json::str(boxes_digest(&result).to_string())),
        ("boxes", Json::num(result.boxes.len() as f64)),
    ];
    println!("{}", Json::obj(pairs).to_string_compact());
}

/// Re-execs this binary with `--measure mode`, parses the child's JSON.
fn spawn_measure(mode: &str, spec: &Spec) -> Json {
    let exe = std::env::current_exe()
        .unwrap_or_else(|e| cli_fail(format!("cannot locate own binary: {e}"), ""));
    let output = std::process::Command::new(exe)
        .arg("--measure")
        .arg(mode)
        .args(spec.to_cli())
        .output()
        .unwrap_or_else(|e| cli_fail(format!("cannot spawn measurement child: {e}"), ""));
    if !output.status.success() {
        let _ = std::io::stderr().write_all(&output.stderr);
        cli_fail(format!("measurement child '{mode}' failed"), "");
    }
    let text = String::from_utf8_lossy(&output.stdout);
    reds_json::from_str(text.trim())
        .unwrap_or_else(|e| cli_fail(format!("child '{mode}' emitted bad JSON: {e}"), ""))
}

fn field_str(doc: &Json, key: &str) -> String {
    doc.get(key)
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string()
}

fn field_f64(doc: &Json, key: &str) -> Option<f64> {
    doc.get(key).and_then(Json::as_f64)
}

fn main() {
    let args = Args::parse();
    let mem_budget_mib = args.get_usize("mem-budget", 64);
    let spec = Spec::from_args(&args, mem_budget_mib);
    let measure = args.get_str("measure", "");
    if !measure.is_empty() {
        run_measure(&measure, &spec);
        return;
    }

    let out_dir = args.get_str("out-dir", ".");
    let skip_inmem = args.has_flag("skip-inmem");
    let budget_bytes = (mem_budget_mib << 20) as f64;

    eprintln!(
        "ooc_report: L = {}, M = {}, {} — budget {} MiB (cache {} MiB, {} rows/page)",
        spec.l,
        spec.m,
        spec.algorithm,
        mem_budget_mib,
        spec.cache_bytes >> 20,
        spec.page_rows,
    );

    let mut rows: Vec<Json> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    let ooc = spawn_measure("ooc-discover", &spec);
    let ooc_peak = field_f64(&ooc, "peak_rss_bytes");
    let mut under_budget = None;
    if let Some(peak) = ooc_peak {
        let ok = peak < budget_bytes;
        under_budget = Some(ok);
        eprintln!(
            "  ooc-discover peak RSS {:.0} MiB vs budget {} MiB",
            peak / (1 << 20) as f64,
            mem_budget_mib
        );
        if !ok {
            failures.push(format!(
                "ooc-discover peak RSS {:.0} MiB is not below the {} MiB budget",
                peak / (1 << 20) as f64,
                mem_budget_mib
            ));
        }
    }

    let mut identical = None;
    let mut inmem_peak = None;
    if !skip_inmem {
        let inmem = spawn_measure("inmem-discover", &spec);
        inmem_peak = field_f64(&inmem, "peak_rss_bytes");
        let same = field_str(&inmem, "digest") == field_str(&ooc, "digest");
        identical = Some(same);
        if !same {
            failures.push(format!(
                "boxes differ between in-memory and out-of-core at L = {}",
                spec.l
            ));
        }
        if let (Some(ip), Some(op)) = (inmem_peak, ooc_peak) {
            eprintln!(
                "  peak RSS: inmem {:.0} MiB vs ooc {:.0} MiB",
                ip / (1 << 20) as f64,
                op / (1 << 20) as f64
            );
        }
        rows.push(inmem);
    }
    rows.push(ooc);

    let report = Json::obj([
        ("kind", Json::str("reds-ooc-report")),
        ("l", Json::num(spec.l as f64)),
        ("m", Json::num(spec.m as f64)),
        ("algorithm", Json::str(spec.algorithm.clone())),
        ("seed", Json::str(spec.seed.to_string())),
        ("page_rows", Json::num(spec.page_rows as f64)),
        ("cache_bytes", Json::num(spec.cache_bytes as f64)),
        ("mem_budget_bytes", Json::num(budget_bytes)),
        (
            "ooc_peak_below_budget",
            under_budget.map_or(Json::Null, Json::Bool),
        ),
        (
            "ooc_bit_identical",
            identical.map_or(Json::Null, Json::Bool),
        ),
        (
            "inmem_peak_rss_bytes",
            inmem_peak.map_or(Json::Null, Json::num),
        ),
        ("measurements", Json::arr(rows)),
    ]);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        cli_fail(format!("cannot create {out_dir}: {e}"), "");
    }
    let path = format!("{out_dir}/BENCH_ooc.json");
    let mut text = report.to_string_pretty();
    text.push('\n');
    if let Err(e) = std::fs::write(&path, text) {
        cli_fail(format!("cannot write {path}: {e}"), "");
    }
    eprintln!("wrote {path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "OK: out-of-core discovery under the {} MiB budget{}",
        mem_budget_mib,
        if skip_inmem {
            String::new()
        } else {
            " and bit-identical to the in-memory run".to_string()
        }
    );
}
