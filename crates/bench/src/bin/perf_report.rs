//! Machine-readable perf report for the presorted-column engine.
//!
//! Reproduces the `reds/vs_l` pipeline configuration (default
//! [`RedsConfig`] + PRIM) on both the optimized and the naive paths in
//! the same process, verifies the discovered boxes are **bit-identical**,
//! and emits `BENCH_prim.json` / `BENCH_forest.json`.
//!
//! ```text
//! cargo run --release -p reds-bench --bin perf_report -- \
//!     [--l 80000] [--n 400] [--m 10] [--reps 2] [--out-dir .]
//! ```
//!
//! The naive path is the pre-optimization implementation kept as the
//! reference oracle: per-step re-sorting PRIM, serial naive-builder
//! forest training, and per-point virtual-dispatch pseudo-labeling.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_bench::Args;
use reds_core::RedsConfig;
use reds_data::Dataset;
use reds_json::Json;
use reds_metamodel::{
    kernels, Gbdt, GbdtParams, Metamodel, NaiveRandomForest, RandomForest, RandomForestParams, Svm,
    SvmParams,
};
use reds_sampling::uniform;
use reds_subgroup::{HyperBox, NaivePrim, Prim, SdResult, SubgroupDiscovery};

fn corner_data(n: usize, m: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_fn((0..n * m).map(|_| rng.gen::<f64>()).collect(), m, |x| {
        if x[0] > 0.6 && x[1] > 0.6 {
            1.0
        } else {
            0.0
        }
    })
    .expect("valid shape")
}

/// Best-of-`reps` wall time of `f`, in milliseconds, plus its result.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let value = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("at least one rep"))
}

fn boxes_bits_equal(a: &SdResult, b: &SdResult) -> bool {
    a.boxes.len() == b.boxes.len()
        && a.boxes.iter().zip(&b.boxes).all(|(x, y)| {
            x.m() == y.m()
                && (0..x.m()).all(|j| {
                    let ((la, ha), (lb, hb)) = (x.bound(j), y.bound(j));
                    la.to_bits() == lb.to_bits() && ha.to_bits() == hb.to_bits()
                })
        })
}

/// One REDS pipeline run, replicating `Reds::run`'s exact RNG stream so
/// the optimized and naive paths see identical training draws, sampled
/// points, and subgroup-search seeds.
fn run_pipeline(d: &Dataset, config: &RedsConfig, naive: bool, seed: u64) -> SdResult {
    let params = RandomForestParams::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let m = d.m();
    if naive {
        // Pre-optimization path: serial enum-arena forest, L
        // virtual-dispatch predictions, re-sorting PRIM.
        let forest = NaiveRandomForest::fit(d, &params, &mut rng);
        let model: &dyn Metamodel = &forest;
        let points = uniform(config.l, m, &mut rng);
        let labels: Vec<f64> = points
            .chunks_exact(m)
            .map(|x| {
                if model.predict(x) > config.bnd {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let d_new = Dataset::new(points, labels, m).expect("valid shape");
        let mut sd_rng = StdRng::seed_from_u64(rng.gen());
        NaivePrim::default().discover(&d_new, d, &mut sd_rng)
    } else {
        let forest = RandomForest::fit(d, &params, &mut rng);
        let points = uniform(config.l, m, &mut rng);
        let labels: Vec<f64> = forest
            .predict_batch(&points, m)
            .into_iter()
            .map(|p| if p > config.bnd { 1.0 } else { 0.0 })
            .collect();
        let d_new = Dataset::new(points, labels, m).expect("valid shape");
        let mut sd_rng = StdRng::seed_from_u64(rng.gen());
        Prim::default().discover(&d_new, d, &mut sd_rng)
    }
}

fn box_summary(b: &HyperBox) -> Json {
    Json::arr((0..b.m()).map(|j| {
        let (lo, hi) = b.bound(j);
        Json::arr([Json::num(lo), Json::num(hi)])
    }))
}

fn main() {
    let args = Args::parse();
    let l = args.get_usize("l", 80_000);
    let n = args.get_usize("n", 400);
    let m = args.get_usize("m", 10);
    let reps = args.get_usize("reps", 2);
    let out_dir = args.get_str("out-dir", ".");

    // ---------------- PRIM: naive vs presorted peeling ----------------
    let mut prim_rows = Vec::new();
    for peel_n in [l / 4, l] {
        let d = corner_data(peel_n, m, 11);
        let (naive_ms, naive_result) = time_best(reps, || {
            NaivePrim::default().discover(&d, &d, &mut StdRng::seed_from_u64(12))
        });
        let (fast_ms, fast_result) = time_best(reps, || {
            Prim::default().discover(&d, &d, &mut StdRng::seed_from_u64(12))
        });
        let identical = boxes_bits_equal(&naive_result, &fast_result);
        assert!(identical, "PRIM paths diverged at n = {peel_n}");
        println!(
            "prim/peel n={peel_n} m={m}: naive {naive_ms:.1} ms, presorted {fast_ms:.1} ms \
             ({:.1}x), identical boxes: {identical}",
            naive_ms / fast_ms
        );
        prim_rows.push(Json::obj([
            ("n", Json::num(peel_n as f64)),
            ("m", Json::num(m as f64)),
            ("naive_ms", Json::num(naive_ms)),
            ("presorted_ms", Json::num(fast_ms)),
            ("speedup", Json::num(naive_ms / fast_ms)),
            ("identical_boxes", Json::Bool(identical)),
        ]));
    }

    // -------- Pipeline acceptance: reds/vs_l at the default config --------
    let config = RedsConfig::default().with_l(l);
    let train = corner_data(n, m, 1);
    let (naive_ms, naive_result) = time_best(reps, || run_pipeline(&train, &config, true, 2));
    let (fast_ms, fast_result) = time_best(reps, || run_pipeline(&train, &config, false, 2));
    let identical = boxes_bits_equal(&naive_result, &fast_result);
    let speedup = naive_ms / fast_ms;
    println!(
        "reds/vs_l l={l}: naive {naive_ms:.0} ms, optimized {fast_ms:.0} ms ({speedup:.1}x), \
         identical boxes: {identical} ({} boxes)",
        fast_result.boxes.len()
    );
    assert!(identical, "pipeline paths diverged");
    let pipeline = Json::obj([
        ("bench", Json::str("reds/vs_l")),
        ("l", Json::num(l as f64)),
        ("n_train", Json::num(n as f64)),
        ("m", Json::num(m as f64)),
        ("naive_ms", Json::num(naive_ms)),
        ("optimized_ms", Json::num(fast_ms)),
        ("speedup", Json::num(speedup)),
        ("identical_boxes", Json::Bool(identical)),
        ("n_boxes", Json::num(fast_result.boxes.len() as f64)),
        (
            "last_box",
            fast_result
                .last_box()
                .map(box_summary)
                .unwrap_or(Json::Null),
        ),
    ]);
    let prim_doc = Json::obj([("peel", Json::Arr(prim_rows)), ("pipeline", pipeline)]);
    let prim_path = format!("{out_dir}/BENCH_prim.json");
    std::fs::write(&prim_path, prim_doc.to_string_pretty()).expect("write BENCH_prim.json");
    println!("wrote {prim_path}");

    // ---------------- Forest: fit and predict paths ----------------
    let params = RandomForestParams::default();
    let (fit_naive_ms, slow_forest) = time_best(reps, || {
        NaiveRandomForest::fit(&train, &params, &mut StdRng::seed_from_u64(3))
    });
    let (fit_ms, fast_forest) = time_best(reps, || {
        RandomForest::fit(&train, &params, &mut StdRng::seed_from_u64(3))
    });
    let query = uniform(l, m, &mut StdRng::seed_from_u64(4));
    let (point_ms, point_preds) = time_best(reps, || {
        query
            .chunks_exact(m)
            .map(|x| slow_forest.predict(x))
            .collect::<Vec<f64>>()
    });
    let (batch_ms, batch_preds) = time_best(reps, || fast_forest.predict_batch(&query, m));
    let preds_identical = point_preds.len() == batch_preds.len()
        && point_preds
            .iter()
            .zip(&batch_preds)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(preds_identical, "forest prediction paths diverged");
    println!(
        "forest/fit n={n} trees={}: naive-serial {fit_naive_ms:.0} ms, presorted-parallel \
         {fit_ms:.0} ms ({:.1}x)",
        params.n_trees,
        fit_naive_ms / fit_ms
    );
    println!(
        "forest/predict l={l}: per-point {point_ms:.0} ms, batch {batch_ms:.0} ms ({:.1}x), \
         identical: {preds_identical}",
        point_ms / batch_ms
    );
    let forest_doc = Json::obj([
        (
            "fit",
            Json::obj([
                ("n_train", Json::num(n as f64)),
                ("m", Json::num(m as f64)),
                ("n_trees", Json::num(params.n_trees as f64)),
                ("naive_serial_ms", Json::num(fit_naive_ms)),
                ("presorted_parallel_ms", Json::num(fit_ms)),
                ("speedup", Json::num(fit_naive_ms / fit_ms)),
                ("threads", Json::num(reds_par::max_threads() as f64)),
            ]),
        ),
        (
            "predict",
            Json::obj([
                ("l", Json::num(l as f64)),
                ("per_point_ms", Json::num(point_ms)),
                ("batch_tree_major_ms", Json::num(batch_ms)),
                ("speedup", Json::num(point_ms / batch_ms)),
                ("identical_predictions", Json::Bool(preds_identical)),
            ]),
        ),
    ]);
    let forest_path = format!("{out_dir}/BENCH_forest.json");
    std::fs::write(&forest_path, forest_doc.to_string_pretty()).expect("write BENCH_forest.json");
    println!("wrote {forest_path}");

    // -------- Kernels: scalar vs runtime-dispatched SIMD --------
    //
    // Times every metamodel family's `predict_batch` under three
    // configurations — forced scalar with libm `exp` (the
    // pre-vexp baseline), forced scalar with the polynomial `exp`, and
    // runtime dispatch — asserts the two polynomial runs are
    // bit-identical (the kernel contract; libm is a deliberately
    // different function), and gates forest/GBDT at ≥ 1.5×
    // dispatched-vs-scalar and SVM at ≥ 2.5× dispatched-vs-scalar-libm
    // when the dispatched backend is actually SIMD.
    let dispatched = kernels::active();
    let exp_backend = kernels::vexp::backend();
    let gbdt = Gbdt::fit(
        &train,
        &GbdtParams::default(),
        &mut StdRng::seed_from_u64(5),
    );
    let svm = Svm::fit(&train, &SvmParams::default(), &mut StdRng::seed_from_u64(6));
    let mut kernel_rows = Vec::new();
    let mut gated_speedups: Vec<(&str, f64, f64)> = Vec::new();
    let mut svm_libm_speedup = 1.0f64;
    let families: [(&str, &dyn Metamodel, bool); 3] = [
        ("forest", &fast_forest, true),
        ("gbdt", &gbdt, true),
        ("svm", &svm, false),
    ];
    for (family, model, gated) in families {
        kernels::set_kernel(Some(kernels::Kernel::Scalar));
        kernels::vexp::set_backend(Some(kernels::ExpBackend::Libm));
        let (libm_ms, _) = time_best(reps, || model.predict_batch(&query, m));
        kernels::vexp::set_backend(None);
        let (scalar_ms, scalar_preds) = time_best(reps, || model.predict_batch(&query, m));
        kernels::set_kernel(None);
        let (simd_ms, simd_preds) = time_best(reps, || model.predict_batch(&query, m));
        let identical = scalar_preds.len() == simd_preds.len()
            && scalar_preds
                .iter()
                .zip(&simd_preds)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(
            identical,
            "{family}: scalar and {} kernels diverged",
            dispatched.name()
        );
        let kernel_speedup = scalar_ms / simd_ms;
        let libm_speedup = libm_ms / simd_ms;
        println!(
            "kernels/{family} l={l}: scalar-libm {libm_ms:.0} ms, scalar {scalar_ms:.0} ms, \
             {} {simd_ms:.0} ms ({kernel_speedup:.2}x vs scalar, {libm_speedup:.2}x vs libm), \
             identical: {identical}",
            dispatched.name()
        );
        if gated {
            gated_speedups.push((family, kernel_speedup, libm_speedup));
        } else {
            svm_libm_speedup = libm_speedup;
        }
        kernel_rows.push(Json::obj([
            ("family", Json::str(family)),
            ("l", Json::num(l as f64)),
            ("m", Json::num(m as f64)),
            ("scalar_libm_ms", Json::num(libm_ms)),
            ("scalar_ms", Json::num(scalar_ms)),
            ("dispatched_ms", Json::num(simd_ms)),
            ("speedup", Json::num(kernel_speedup)),
            ("speedup_vs_libm", Json::num(libm_speedup)),
            ("identical_predictions", Json::Bool(identical)),
            ("gated", Json::Bool(gated || family == "svm")),
        ]));
    }
    let kernels_doc = Json::obj([
        ("dispatched", Json::str(dispatched.name())),
        ("exp_backend", Json::str(exp_backend.name())),
        ("avx2_supported", Json::Bool(kernels::avx2_supported())),
        ("threads", Json::num(reds_par::max_threads() as f64)),
        ("families", Json::Arr(kernel_rows)),
    ]);
    let kernels_path = format!("{out_dir}/BENCH_kernels.json");
    std::fs::write(&kernels_path, kernels_doc.to_string_pretty())
        .expect("write BENCH_kernels.json");
    println!("wrote {kernels_path}");

    // The acceptance gates apply at the benchmark's reference size;
    // reduced-size CI runs only check equivalence. The kernel gate is
    // meaningful only where dispatch actually selects SIMD — on
    // scalar-only hardware (or under REDS_KERNEL=scalar) the comparison
    // is scalar-vs-scalar and the report is informational.
    let mut failed = false;
    if l >= 80_000 && speedup < 3.0 {
        eprintln!("WARNING: pipeline speedup {speedup:.2}x below the 3x acceptance target");
        failed = true;
    }
    if l >= 80_000 && dispatched != kernels::Kernel::Scalar {
        for (family, s, _) in gated_speedups {
            if s < 1.5 {
                eprintln!(
                    "WARNING: {family} kernel speedup {s:.2}x below the 1.5x acceptance target"
                );
                failed = true;
            }
        }
        // The SVM is exp-bound, so its gate measures the whole vexp
        // story: dispatched polynomial SIMD vs the scalar-libm
        // baseline the pre-vexp kernels were stuck at. Only meaningful
        // when the polynomial backend is active.
        if exp_backend == kernels::ExpBackend::Poly && svm_libm_speedup < 2.5 {
            eprintln!(
                "WARNING: svm dispatched-vs-scalar-libm speedup {svm_libm_speedup:.2}x below \
                 the 2.5x acceptance target"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
