//! Fleet coordinator: distributes a `table3`/`table4` sweep over
//! `reds_worker` processes and prints the same report, byte for byte.
//!
//! ```text
//! cargo run --release -p reds-bench --bin reds_coordinator -- \
//!     --table 3 --workers 127.0.0.1:9400,127.0.0.1:9401 \
//!     --checkpoint-dir DIR [--resume] \
//!     [sweep flags: --reps --l --l-bi --q --test --functions --ns --methods --all] \
//!     [--lease-units 4] [--lease-ttl-ms 30000] [--io-timeout-ms 10000] \
//!     [--max-park-rounds 40] [--seed 0] [--json out.json] [--shutdown-workers]
//! ```
//!
//! Work units are leased to workers in batches, results are ingested
//! exactly once into `DIR/shard-0-of-1.jsonl` (the PR 2 checkpoint
//! format — `merge_shards` and `--resume` work on it unchanged), and
//! every grant/ingest/expiry is journaled to `DIR/fleet-journal.jsonl`.
//! Kill the coordinator at any point and rerun with `--resume`: it
//! picks up from the last durable record. Because every unit is
//! bit-deterministic, the final report is identical to a monolithic
//! `table3`/`table4` run no matter how the fleet behaved.

use std::path::PathBuf;
use std::time::Duration;

use reds_bench::sweep::{aggregate, render, rows_json, Sweep};
use reds_bench::{cli_fail, Args};
use reds_fleet::{run_fleet, shutdown_workers, FleetConfig, FleetError};

const USAGE: &str = "usage: reds_coordinator --table 3|4 --workers HOST:PORT[,HOST:PORT...] \
                     --checkpoint-dir DIR [--resume] [sweep flags] [--lease-units N] \
                     [--lease-ttl-ms MS] [--io-timeout-ms MS] [--max-park-rounds N] \
                     [--seed N] [--json out.json] [--shutdown-workers]";

fn main() {
    let args = Args::parse();
    let sweep = match args.get_usize("table", 3) {
        3 => Sweep::table3(&args),
        4 => Sweep::table4(&args),
        other => cli_fail(format!("--table expects 3 or 4, got {other}"), USAGE),
    };
    let workers: Vec<String> = args
        .get_str("workers", "")
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if workers.is_empty() {
        cli_fail("--workers needs at least one HOST:PORT", USAGE);
    }
    let dir = args.get_str("checkpoint-dir", "");
    if dir.is_empty() {
        cli_fail(
            "--checkpoint-dir is required (results and journal live there)",
            USAGE,
        );
    }
    let dir = PathBuf::from(dir);
    let resume = args.has_flag("resume");

    let config = FleetConfig {
        workers,
        lease_units: args.get_usize("lease-units", 4),
        lease_ttl: Duration::from_millis(args.get_usize("lease-ttl-ms", 30_000) as u64),
        io_timeout: Duration::from_millis(args.get_usize("io-timeout-ms", 10_000) as u64),
        max_park_rounds: args.get_usize("max-park-rounds", 40) as u32,
        seed: args.get_usize("seed", 0) as u64,
        ..FleetConfig::default()
    };

    let fingerprint = sweep.fingerprint();
    let units = sweep.fleet_units();
    eprintln!(
        "coordinator: sweep {fingerprint}, {} unit(s), {} worker(s)",
        units.len(),
        config.workers.len()
    );
    let outcome = run_fleet(
        &fingerprint,
        &units,
        &dir.join("shard-0-of-1.jsonl"),
        &dir.join("fleet-journal.jsonl"),
        resume,
        &config,
    )
    .unwrap_or_else(|e| {
        match &e {
            FleetError::FleetLost { .. } => {
                eprintln!("error: {e}");
                eprintln!("rerun with --resume once workers are back");
            }
            _ => eprintln!("error: fleet run failed: {e}"),
        }
        std::process::exit(1)
    });
    eprintln!(
        "fleet done: {} ingested (+{} resumed), {} duplicate(s) discarded, {} lease(s) expired",
        outcome.ingested,
        outcome.records.len() - outcome.ingested,
        outcome.duplicates,
        outcome.expired_leases
    );

    if args.has_flag("shutdown-workers") {
        shutdown_workers(&config.workers, config.io_timeout);
    }

    let results = aggregate(&sweep, &outcome.records).unwrap_or_else(|e| {
        eprintln!("error: aggregation failed: {e}");
        std::process::exit(1)
    });
    print!("{}", render(&sweep, &results));
    let json_path = args.get_str("json", "");
    if !json_path.is_empty() {
        std::fs::write(&json_path, rows_json(&sweep, &results).to_string_pretty()).unwrap_or_else(
            |e| {
                eprintln!("error: cannot write {json_path}: {e}");
                std::process::exit(1)
            },
        );
        eprintln!("rows written to {json_path}");
    }
}
