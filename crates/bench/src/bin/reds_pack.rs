//! Repacks a serving artifact between `reds-json` and `.redsart`.
//!
//! ```text
//! cargo run --release -p reds-bench --bin reds_pack -- \
//!     --in model.json --out model.redsart
//! ```
//!
//! The input is a `reds-json` artifact (the interchange format the
//! fitting tools author); the output format follows the `--out`
//! extension: a `.redsart` target writes the mmap-able binary
//! container, anything else rewrites `reds-json`. Packing is lossless
//! for the model, the training data, and the provenance fields —
//! serving the packed artifact is bit-identical to serving the
//! original (pinned by `tests/art_format.rs` and the CI serving
//! smoke). Packing is one-way: a `.redsart` input is already packed
//! (copy the file instead), and `reds_pack` says so rather than
//! regenerating JSON from mapped bytes.

use std::path::Path;

use reds_bench::{cli_fail, Args};
use reds_serve::ModelArtifact;

const USAGE: &str = "usage: reds_pack --in PATH --out PATH";

fn main() {
    let args = Args::parse();
    let input = args.get_str("in", "");
    if input.is_empty() {
        cli_fail("--in is required", USAGE);
    }
    let out = args.get_str("out", "");
    if out.is_empty() {
        cli_fail("--out is required", USAGE);
    }

    let artifact = match ModelArtifact::load(Path::new(&input)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: cannot load {input}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "loaded {} artifact: {} metamodel for '{}' (N = {}, m = {})",
        artifact.format().name(),
        artifact.model.family(),
        artifact.function,
        artifact.train.n(),
        artifact.train.m(),
    );

    let result = if out.ends_with(".redsart") {
        artifact.save_art(Path::new(&out))
    } else {
        artifact.save(Path::new(&out))
    };
    if let Err(e) = result {
        eprintln!("error: cannot save {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
}
