//! Fleet worker: executes sweep work units leased to it by
//! `reds_coordinator` over the NDJSON fleet protocol.
//!
//! ```text
//! cargo run --release -p reds-bench --bin reds_worker -- \
//!     --table 3 --addr 127.0.0.1:9400 \
//!     [sweep flags: --reps --l --l-bi --q --test --functions --ns --methods --all] \
//!     [--die-after-units N]
//! ```
//!
//! The sweep flags must match the coordinator's exactly — the
//! handshake compares sweep fingerprints and refuses mismatches, so a
//! worker can never contribute wrong-configuration results.
//!
//! `--die-after-units N` is a deterministic fault hook for the test
//! suite: the worker crashes abruptly (record discarded, sockets cut)
//! after executing its `N`-th unit. The coordinator's lease deadline
//! reassigns the lost work.

use reds_bench::sweep::{Sweep, SweepExecutor};
use reds_bench::{cli_fail, Args};
use reds_fleet::{serve_worker, WorkerConfig};

const USAGE: &str = "usage: reds_worker --table 3|4 [--addr HOST:PORT] [sweep flags] \
                     [--die-after-units N]";

fn main() {
    let args = Args::parse();
    let sweep = match args.get_usize("table", 3) {
        3 => Sweep::table3(&args),
        4 => Sweep::table4(&args),
        other => cli_fail(format!("--table expects 3 or 4, got {other}"), USAGE),
    };
    let addr = args.get_str("addr", "127.0.0.1:0");
    let die_after = args.get_usize("die-after-units", 0);
    let config = WorkerConfig {
        die_after_units: (die_after > 0).then_some(die_after),
    };

    let fingerprint = sweep.fingerprint();
    let handle = serve_worker(SweepExecutor::new(sweep), &addr, config).unwrap_or_else(|e| {
        eprintln!("error: cannot bind worker on {addr}: {e}");
        std::process::exit(1)
    });
    // The test harness and quickstart docs scrape this line for the
    // bound port, so keep its shape stable.
    println!("worker listening on {}", handle.addr());
    eprintln!("sweep fingerprint {fingerprint}");
    if handle.join() {
        eprintln!("worker crashed via --die-after-units");
        std::process::exit(2);
    }
    eprintln!("worker shut down");
}
