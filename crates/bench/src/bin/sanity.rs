//! Internal sanity probe used during development (not a paper artefact).
fn main() {
    use reds_eval::{run_experiment, ExperimentSpec, MethodOpts};
    use reds_functions::by_name;
    for l in [4_000usize, 20_000] {
        let mut spec =
            ExperimentSpec::new(by_name("2").unwrap(), 200, &["RPx", "RPxp", "RPf", "RPfp"]);
        spec.reps = 8;
        spec.test_size = 5_000;
        spec.opts = MethodOpts {
            l_prim: l,
            ..Default::default()
        };
        println!("L = {l}");
        for s in run_experiment(&spec) {
            println!(
                "  {:5} PR AUC {:5.1} prec {:5.1} #restr {:4.2} #irrel {:4.2}",
                s.method, s.pr_auc, s.precision, s.n_restricted, s.n_irrel
            );
        }
    }
}
