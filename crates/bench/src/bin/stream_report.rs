//! Machine-readable memory/runtime report for the streaming pipeline.
//!
//! Compares the monolithic generate → `predict_batch` → argsort path
//! against the `reds-stream` bounded-memory pipeline at the same seed,
//! verifies bit-identity (order+label digest for construction, box
//! bounds for full discovery), measures wall time and **peak RSS**
//! (`VmHWM`), and emits `BENCH_stream.json`.
//!
//! ```text
//! cargo run --release -p reds-bench --bin stream_report -- \
//!     [--l 2000000] [--m 12] [--chunk-rows 65536] [--n 400] [--trees 50] \
//!     [--seed 7] [--discover-l 100000] [--out-dir .] [--spill-dir DIR] \
//!     [--construct-only] [--ooc [--mem-budget MIB]]
//! ```
//!
//! `--ooc` adds an `ooc-discover` measurement — the same discovery
//! served through `Reds::discover_out_of_core` (scratch `.redsart`
//! artifact + paged search) — which must be bit-identical to the
//! monolithic boxes and, when `--mem-budget` (MiB) is given, keep its
//! peak RSS below that budget. The dedicated `ooc_report` binary runs
//! the fuller out-of-core gate.
//!
//! Each measured configuration runs in its **own subprocess** (the
//! binary re-execs itself with `--measure <mode>`): `VmHWM` is a
//! process-wide high-water mark, so two configurations measured in one
//! process would shadow each other.
//!
//! The paper-scale gate (`--l 10000000 --m 12 --construct-only`) is not
//! part of CI's default run — CI smokes `L = 2·10⁶` — but uses the
//! same code path and the same pass/fail rules: construction digests
//! must match, and the streaming construction's peak RSS must stay
//! below the `L × M` point buffer the pipeline replaces (and below the
//! monolithic construction's peak).

use std::io::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_bench::{cli_fail, rss, Args};
use reds_core::{Reds, RedsConfig, StreamConfig};
use reds_data::{Dataset, SortedView};
use reds_json::Json;
use reds_metamodel::{Metamodel, RandomForest, RandomForestParams};
use reds_sampling::uniform;
use reds_stream::{digest_pool, stream_scan, Labeling, SamplerSource, StreamSampler};
use reds_subgroup::{Prim, SdResult};

const USAGE: &str = "usage: stream_report [--l N] [--m N] [--chunk-rows N] [--n N] \
[--trees N] [--seed N] [--discover-l N] [--out-dir DIR] [--spill-dir DIR] [--construct-only] \
[--ooc] [--mem-budget MIB]";

const BND: f64 = 0.5;

#[derive(Clone)]
struct Spec {
    l: usize,
    m: usize,
    chunk_rows: usize,
    n_train: usize,
    trees: usize,
    seed: u64,
    spill_dir: Option<String>,
}

impl Spec {
    fn from_args(args: &Args) -> Self {
        let spill = args.get_str("spill-dir", "");
        Self {
            l: args.get_usize("l", 2_000_000),
            m: args.get_usize("m", 12),
            chunk_rows: args.get_usize("chunk-rows", 65_536),
            n_train: args.get_usize("n", 400),
            trees: args.get_usize("trees", 50),
            seed: args.get_usize("seed", 7) as u64,
            spill_dir: if spill.is_empty() { None } else { Some(spill) },
        }
    }

    fn to_cli(&self, l: usize) -> Vec<String> {
        let mut v = vec![
            "--l".into(),
            l.to_string(),
            "--m".into(),
            self.m.to_string(),
            "--chunk-rows".into(),
            self.chunk_rows.to_string(),
            "--n".into(),
            self.n_train.to_string(),
            "--trees".into(),
            self.trees.to_string(),
            "--seed".into(),
            self.seed.to_string(),
        ];
        if let Some(dir) = &self.spill_dir {
            v.push("--spill-dir".into());
            v.push(dir.clone());
        }
        v
    }

    fn stream_config(&self) -> StreamConfig {
        let mut cfg = StreamConfig::new().with_chunk_rows(self.chunk_rows);
        if let Some(dir) = &self.spill_dir {
            cfg = cfg.with_spill_dir(dir.clone());
        }
        cfg
    }
}

/// The benchmark's training set — defined once so the construct-phase
/// and discover-phase measurements exercise the same workload.
fn train_data(spec: &Spec) -> Dataset {
    let mut data_rng = StdRng::seed_from_u64(spec.seed ^ 0x5eed);
    Dataset::from_fn(
        (0..spec.n_train * spec.m)
            .map(|_| data_rng.gen::<f64>())
            .collect(),
        spec.m,
        |x| {
            if x[0] > 0.6 && x[1] > 0.6 {
                1.0
            } else {
                0.0
            }
        },
    )
    .expect("valid training shape")
}

/// The shared setup of every mode: training data + fitted forest, with
/// the RNG left exactly where pool generation starts.
fn trained_model(spec: &Spec) -> (Dataset, RandomForest, StdRng) {
    let train = train_data(spec);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let params = RandomForestParams {
        n_trees: spec.trees,
        ..Default::default()
    };
    let forest = RandomForest::fit(&train, &params, &mut rng);
    (train, forest, rng)
}

fn boxes_digest(result: &SdResult) -> u64 {
    // FNV-1a over the bound bits of every box, coarsest first.
    let mut h: u64 = 0xcbf29ce484222325;
    let mut upd = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for b in &result.boxes {
        for j in 0..b.m() {
            let (lo, hi) = b.bound(j);
            upd(lo.to_bits());
            upd(hi.to_bits());
        }
    }
    h
}

/// One measured child configuration, printed as a JSON object.
fn run_measure(mode: &str, spec: &Spec) {
    let t0 = Instant::now();
    let (digest, extra): (u64, Vec<(&str, Json)>) = match mode {
        "mono-construct" => {
            let (_, forest, mut rng) = trained_model(spec);
            let points = uniform(spec.l, spec.m, &mut rng);
            let labels: Vec<f64> = forest
                .predict_batch(&points, spec.m)
                .into_iter()
                .map(|p| if p > BND { 1.0 } else { 0.0 })
                .collect();
            let d = Dataset::new(points, labels, spec.m).expect("valid pool");
            let cols = SortedView::new(&d).into_columns();
            (digest_pool(&cols, d.labels()), Vec::new())
        }
        "stream-construct" => {
            let (_, forest, rng) = trained_model(spec);
            let mut source = SamplerSource::new(StreamSampler::Uniform, spec.l, spec.m, rng);
            let stats = stream_scan(
                &mut source,
                &mut |pts, m| Ok(forest.predict_batch(pts, m)),
                Labeling::Hard { bnd: BND },
                &spec.stream_config(),
            )
            .unwrap_or_else(|e| cli_fail(format!("streaming scan failed: {e}"), ""));
            (
                stats.digest,
                vec![
                    ("runs_per_column", Json::num(stats.runs_per_column as f64)),
                    ("spilled_bytes", Json::num(stats.spilled_bytes as f64)),
                    ("positives", Json::num(stats.positives as f64)),
                ],
            )
        }
        "mono-discover" | "stream-discover" | "ooc-discover" => {
            let train = train_data(spec);
            let params = RandomForestParams {
                n_trees: spec.trees,
                ..Default::default()
            };
            let reds = Reds::random_forest(params, RedsConfig::default().with_l(spec.l));
            let mut rng = StdRng::seed_from_u64(spec.seed);
            let result = match mode {
                "mono-discover" => reds
                    .run(&train, &Prim::default(), &mut rng)
                    .unwrap_or_else(|e| cli_fail(format!("pipeline failed: {e}"), "")),
                "stream-discover" => reds
                    .discover_streaming(&train, &Prim::default(), &mut rng, &spec.stream_config())
                    .unwrap_or_else(|e| cli_fail(format!("streaming pipeline failed: {e}"), "")),
                _ => reds
                    .discover_out_of_core(
                        &train,
                        &Prim::default(),
                        &mut rng,
                        &spec.stream_config(),
                        &reds_core::OocConfig::default(),
                    )
                    .unwrap_or_else(|e| cli_fail(format!("out-of-core pipeline failed: {e}"), "")),
            };
            (
                boxes_digest(&result),
                vec![("boxes", Json::num(result.boxes.len() as f64))],
            )
        }
        other => cli_fail(format!("unknown --measure mode '{other}'"), USAGE),
    };
    let runtime_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut pairs = vec![
        ("mode", Json::str(mode)),
        ("l", Json::num(spec.l as f64)),
        ("m", Json::num(spec.m as f64)),
        ("chunk_rows", Json::num(spec.chunk_rows as f64)),
        ("runtime_ms", Json::num(runtime_ms)),
        (
            "peak_rss_bytes",
            rss::peak_rss_bytes().map_or(Json::Null, |b| Json::num(b as f64)),
        ),
        ("digest", Json::str(digest.to_string())),
    ];
    pairs.extend(extra);
    println!("{}", Json::obj(pairs).to_string_compact());
}

/// Re-execs this binary with `--measure mode`, parses the child's JSON.
fn spawn_measure(mode: &str, spec: &Spec, l: usize) -> Json {
    let exe = std::env::current_exe()
        .unwrap_or_else(|e| cli_fail(format!("cannot locate own binary: {e}"), ""));
    let output = std::process::Command::new(exe)
        .arg("--measure")
        .arg(mode)
        .args(spec.to_cli(l))
        .output()
        .unwrap_or_else(|e| cli_fail(format!("cannot spawn measurement child: {e}"), ""));
    if !output.status.success() {
        let _ = std::io::stderr().write_all(&output.stderr);
        cli_fail(format!("measurement child '{mode}' failed"), "");
    }
    let text = String::from_utf8_lossy(&output.stdout);
    reds_json::from_str(text.trim())
        .unwrap_or_else(|e| cli_fail(format!("child '{mode}' emitted bad JSON: {e}"), ""))
}

fn field_str(doc: &Json, key: &str) -> String {
    doc.get(key)
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string()
}

fn field_f64(doc: &Json, key: &str) -> Option<f64> {
    doc.get(key).and_then(Json::as_f64)
}

fn main() {
    let args = Args::parse();
    let spec = Spec::from_args(&args);
    let measure = args.get_str("measure", "");
    if !measure.is_empty() {
        run_measure(&measure, &spec);
        return;
    }

    let out_dir = args.get_str("out-dir", ".");
    let construct_only = args.has_flag("construct-only");
    let discover_l = args.get_usize("discover-l", 100_000.min(spec.l));
    let lxm_bytes = (spec.l * spec.m * 8) as f64;

    eprintln!(
        "stream_report: L = {}, M = {}, chunk = {} rows ({} runs/column)",
        spec.l,
        spec.m,
        spec.chunk_rows,
        spec.l.div_ceil(spec.chunk_rows),
    );

    let mut rows: Vec<Json> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    // ----- construction phase: the subsystem under test --------------
    let mono = spawn_measure("mono-construct", &spec, spec.l);
    let stream = spawn_measure("stream-construct", &spec, spec.l);
    let construct_identical = field_str(&mono, "digest") == field_str(&stream, "digest");
    if !construct_identical {
        failures.push("construction digests differ between mono and stream".into());
    }
    let mono_peak = field_f64(&mono, "peak_rss_bytes");
    let stream_peak = field_f64(&stream, "peak_rss_bytes");
    let mut stream_below_lxm = None;
    if let Some(sp) = stream_peak {
        let below = sp < lxm_bytes;
        stream_below_lxm = Some(below);
        if !below {
            failures.push(format!(
                "stream-construct peak RSS {:.0} MiB is not below the L×M buffer ({:.0} MiB)",
                sp / (1 << 20) as f64,
                lxm_bytes / (1 << 20) as f64
            ));
        }
    }
    if let (Some(mp), Some(sp)) = (mono_peak, stream_peak) {
        eprintln!(
            "  construct peak RSS: mono {:.0} MiB vs stream {:.0} MiB (L×M buffer alone: {:.0} MiB)",
            mp / (1 << 20) as f64,
            sp / (1 << 20) as f64,
            lxm_bytes / (1 << 20) as f64
        );
        if sp >= mp {
            failures.push(format!(
                "stream-construct peak RSS ({sp:.0} B) not below mono-construct ({mp:.0} B)"
            ));
        }
    }
    rows.push(mono);
    rows.push(stream);

    // ----- full discovery (bit-identity of the boxes) ----------------
    let mut discover_identical = None;
    let mut ooc_identical = None;
    let mut ooc_under_budget = None;
    let with_ooc = args.has_flag("ooc");
    let mem_budget_mib = args.get_usize("mem-budget", 0);
    if !construct_only {
        let mono_d = spawn_measure("mono-discover", &spec, discover_l);
        let stream_d = spawn_measure("stream-discover", &spec, discover_l);
        let same = field_str(&mono_d, "digest") == field_str(&stream_d, "digest");
        discover_identical = Some(same);
        if !same {
            failures.push(format!(
                "discover boxes differ between mono and stream at L = {discover_l}"
            ));
        }
        if with_ooc {
            let ooc_d = spawn_measure("ooc-discover", &spec, discover_l);
            let same = field_str(&mono_d, "digest") == field_str(&ooc_d, "digest");
            ooc_identical = Some(same);
            if !same {
                failures.push(format!(
                    "discover boxes differ between mono and out-of-core at L = {discover_l}"
                ));
            }
            if mem_budget_mib > 0 {
                if let Some(peak) = field_f64(&ooc_d, "peak_rss_bytes") {
                    let budget = (mem_budget_mib << 20) as f64;
                    let below = peak < budget;
                    ooc_under_budget = Some(below);
                    if !below {
                        failures.push(format!(
                            "ooc-discover peak RSS {:.0} MiB is not below the {} MiB budget",
                            peak / (1 << 20) as f64,
                            mem_budget_mib
                        ));
                    }
                }
            }
            rows.push(ooc_d);
        }
        rows.push(mono_d);
        rows.push(stream_d);
    }

    let report = Json::obj([
        ("kind", Json::str("reds-stream-report")),
        ("l", Json::num(spec.l as f64)),
        ("m", Json::num(spec.m as f64)),
        ("chunk_rows", Json::num(spec.chunk_rows as f64)),
        ("seed", Json::str(spec.seed.to_string())),
        ("lxm_buffer_bytes", Json::num(lxm_bytes)),
        ("construct_bit_identical", Json::Bool(construct_identical)),
        (
            "discover_bit_identical",
            discover_identical.map_or(Json::Null, Json::Bool),
        ),
        (
            "ooc_bit_identical",
            ooc_identical.map_or(Json::Null, Json::Bool),
        ),
        (
            "ooc_peak_below_budget",
            ooc_under_budget.map_or(Json::Null, Json::Bool),
        ),
        (
            "stream_peak_below_lxm_buffer",
            stream_below_lxm.map_or(Json::Null, Json::Bool),
        ),
        ("measurements", Json::arr(rows)),
    ]);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        cli_fail(format!("cannot create {out_dir}: {e}"), "");
    }
    let path = format!("{out_dir}/BENCH_stream.json");
    let mut text = report.to_string_pretty();
    text.push('\n');
    if let Err(e) = std::fs::write(&path, text) {
        cli_fail(format!("cannot write {path}: {e}"), "");
    }
    eprintln!("wrote {path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "OK: streaming construction bit-identical{} and within the memory bound",
        if construct_only {
            String::new()
        } else {
            format!(", discovery bit-identical at L = {discover_l}")
        }
    );
}
