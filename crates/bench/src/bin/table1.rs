//! Reproduces **Table 1**: the function inventory — name, number of
//! inputs `M`, number of influential inputs `I`, and the share of
//! interesting (`y = 1`) outcomes under uniform inputs.
//!
//! ```text
//! cargo run --release -p reds-bench --bin table1 [-- --points 20000]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds_bench::Args;
use reds_functions::{all_functions, lake_dataset, tgl_dataset};

fn main() {
    let args = Args::parse();
    let points = args.get_usize("points", 20_000);
    println!("Table 1: data sources (share estimated from {points} Monte-Carlo points)\n");
    println!("| function | M | I | share (%) |");
    println!("|---|---|---|---|");
    for f in all_functions() {
        // DSGC simulations are expensive; a smaller sample suffices for
        // a two-decimal share estimate.
        let n = if f.name() == "dsgc" {
            points.min(2_000)
        } else {
            points
        };
        let mut rng = StdRng::seed_from_u64(0x7AB1E);
        let share = 100.0 * f.estimate_share(n, &mut rng);
        println!(
            "| {} | {} | {} | {:.1} |",
            f.name(),
            f.m(),
            f.n_active(),
            share
        );
    }
    let tgl = tgl_dataset();
    println!("| TGL | {} | na | {:.1} |", tgl.m(), 100.0 * tgl.pos_rate());
    let lake = lake_dataset();
    println!(
        "| lake | {} | na | {:.1} |",
        lake.m(),
        100.0 * lake.pos_rate()
    );
}
