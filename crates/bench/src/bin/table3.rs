//! Reproduces **Table 3** (and the data behind **Figure 7**): quality of
//! PRIM-based methods — P, Pc, PB, PBc, RPf, RPx, RPs — across the
//! benchmark functions for several training sizes `N`, plus the
//! `morris`-at-`N = 800` row ("mor800"), the pairwise post-hoc Friedman
//! p-values, and the Spearman correlation between dimensionality and
//! REDS's PR AUC gain (§9.1.1).
//!
//! ```text
//! cargo run --release -p reds-bench --bin table3 -- \
//!     [--reps 10] [--l 20000] [--q 20] [--test 20000] [--all] \
//!     [--functions morris,sobol] [--ns 200,400,800] [--json out.json]
//! ```
//!
//! Paper-scale settings: `--all --reps 50 --l 100000 --q 50`.

use reds_bench::{function_names, Args};
use reds_eval::stats::{friedman_test, spearman, wilcoxon_signed_rank};
use reds_eval::{run_experiment, ExperimentSpec, MethodOpts, MethodSummary, PRIM_FAMILY};
use reds_functions::by_name;
use reds_json::Json;

struct Row {
    function: String,
    n: usize,
    method: String,
    pr_auc: f64,
    precision: f64,
    consistency: f64,
    n_restricted: f64,
    n_irrel: f64,
    runtime_ms: f64,
}

fn main() {
    let args = Args::parse();
    let reps = args.get_usize("reps", 10);
    let functions = function_names(&args);
    let ns: Vec<usize> = args
        .get_str("ns", "200,400,800")
        .split(',')
        .map(|s| s.trim().parse().expect("--ns expects integers"))
        .collect();
    let opts = MethodOpts {
        l_prim: args.get_usize("l", 20_000),
        l_bi: args.get_usize("l-bi", 10_000),
        bumping_q: args.get_usize("q", 20),
        ..Default::default()
    };
    let test_size = args.get_usize("test", 20_000);
    let methods: Vec<&str> = PRIM_FAMILY.to_vec();
    let mut rows: Vec<Row> = Vec::new();
    // Per-(function, N): mean per-method scores for aggregation; plus the
    // per-function PR AUC matrix at N = ns[middle] for the Friedman test.
    let mut per_function_auc: Vec<Vec<f64>> = Vec::new();
    let mut dims: Vec<f64> = Vec::new();
    let mut gains: Vec<f64> = Vec::new();
    let stat_n = ns.get(1).copied().unwrap_or(ns[0]);

    for n in &ns {
        for fname in &functions {
            let f = by_name(fname).unwrap_or_else(|| panic!("unknown function {fname}"));
            let mut spec = ExperimentSpec::new(f, *n, &methods);
            spec.reps = reps;
            spec.test_size = test_size;
            spec.opts = opts.clone();
            let summaries = run_experiment(&spec);
            if *n == stat_n {
                per_function_auc.push(summaries.iter().map(|s| s.pr_auc).collect());
                let pc = summaries
                    .iter()
                    .find(|s| s.method == "Pc")
                    .expect("Pc runs");
                let rpx = summaries
                    .iter()
                    .find(|s| s.method == "RPx")
                    .expect("RPx runs");
                dims.push(f.m() as f64);
                gains.push((rpx.pr_auc - pc.pr_auc) / pc.pr_auc.max(1e-9));
            }
            for s in &summaries {
                rows.push(Row {
                    function: fname.clone(),
                    n: *n,
                    method: s.method.clone(),
                    pr_auc: s.pr_auc,
                    precision: s.precision,
                    consistency: s.consistency,
                    n_restricted: s.n_restricted,
                    n_irrel: s.n_irrel,
                    runtime_ms: s.runtime_ms,
                });
            }
            eprintln!("done: {fname} N={n}");
        }
    }

    // "mor800": morris at N = 800, always included (Table 3's extra row).
    let mut mor_spec = ExperimentSpec::new(by_name("morris").expect("registry"), 800, &methods);
    mor_spec.reps = reps;
    mor_spec.test_size = test_size;
    mor_spec.opts = opts.clone();
    let mor800: Vec<MethodSummary> = run_experiment(&mor_spec);

    // ---- printing -------------------------------------------------
    type Metric = fn(&Row) -> f64;
    let metric_tables: [(&str, Metric); 5] = [
        ("(a) Average PR AUC", |r| r.pr_auc),
        ("(b) Average precision", |r| r.precision),
        ("(c) Average consistency", |r| r.consistency),
        ("(d) Average number of restricted inputs", |r| {
            r.n_restricted
        }),
        (
            "(e) Average number of irrelevantly restricted inputs",
            |r| r.n_irrel,
        ),
    ];
    for (title, metric) in metric_tables {
        println!("\nTable 3 {title}");
        println!("| N | {} |", methods.join(" | "));
        println!("|---|{}|", "---|".repeat(methods.len()));
        for n in &ns {
            let cells: Vec<String> = methods
                .iter()
                .map(|m| {
                    let vals: Vec<f64> = rows
                        .iter()
                        .filter(|r| r.n == *n && &r.method == m)
                        .map(metric)
                        .collect();
                    format!("{:.1}", vals.iter().sum::<f64>() / vals.len().max(1) as f64)
                })
                .collect();
            println!("| {n} | {} |", cells.join(" | "));
        }
        let mor_cells: Vec<String> = mor800
            .iter()
            .map(|s| {
                let v = match title.chars().nth(1) {
                    Some('a') => s.pr_auc,
                    Some('b') => s.precision,
                    Some('c') => s.consistency,
                    Some('d') => s.n_restricted,
                    _ => s.n_irrel,
                };
                format!("{v:.1}")
            })
            .collect();
        println!("| mor800 | {} |", mor_cells.join(" | "));
    }

    // Figure 7 data: per-function quality change relative to Pc, N = stat_n.
    println!("\nFigure 7: PR AUC change (%) relative to Pc at N = {stat_n} (per function)");
    println!("| function | {} |", methods.join(" | "));
    for fname in &functions {
        let pc = rows
            .iter()
            .find(|r| r.n == stat_n && &r.function == fname && r.method == "Pc")
            .expect("Pc row exists");
        let cells: Vec<String> = methods
            .iter()
            .map(|m| {
                let r = rows
                    .iter()
                    .find(|r| r.n == stat_n && &r.function == fname && &r.method == m)
                    .expect("row exists");
                format!(
                    "{:+.1}",
                    100.0 * (r.pr_auc - pc.pr_auc) / pc.pr_auc.max(1e-9)
                )
            })
            .collect();
        println!("| {fname} | {} |", cells.join(" | "));
    }

    // Statistics of §9.1.1.
    let (chi2, p) = friedman_test(&per_function_auc);
    println!("\nFriedman test over PR AUC at N = {stat_n}: chi2 = {chi2:.2}, p = {p:.2e}");
    let idx = |name: &str| {
        methods
            .iter()
            .position(|m| *m == name)
            .expect("method in family")
    };
    let rpx: Vec<f64> = per_function_auc.iter().map(|r| r[idx("RPx")]).collect();
    let pc: Vec<f64> = per_function_auc.iter().map(|r| r[idx("Pc")]).collect();
    let p_posthoc = wilcoxon_signed_rank(&rpx, &pc);
    println!("post-hoc RPx vs Pc (Wilcoxon signed-rank): p = {p_posthoc:.2e}");
    println!(
        "Spearman correlation (M vs relative PR AUC gain of RPx over Pc): {:.2}",
        spearman(&dims, &gains)
    );

    if let Some(path) = args_json(&args) {
        let doc = Json::arr(rows.iter().map(|r| {
            Json::obj([
                ("function", Json::str(r.function.clone())),
                ("n", Json::num(r.n as f64)),
                ("method", Json::str(r.method.clone())),
                ("pr_auc", Json::num(r.pr_auc)),
                ("precision", Json::num(r.precision)),
                ("consistency", Json::num(r.consistency)),
                ("n_restricted", Json::num(r.n_restricted)),
                ("n_irrel", Json::num(r.n_irrel)),
                ("runtime_ms", Json::num(r.runtime_ms)),
            ])
        }));
        std::fs::write(&path, doc.to_string_pretty()).expect("write json");
        eprintln!("rows written to {path}");
    }
}

fn args_json(args: &Args) -> Option<String> {
    let p = args.get_str("json", "");
    (!p.is_empty()).then_some(p)
}
