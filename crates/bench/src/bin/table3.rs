//! Reproduces **Table 3** (and the data behind **Figure 7**): quality of
//! PRIM-based methods — P, Pc, PB, PBc, RPf, RPx, RPs — across the
//! benchmark functions for several training sizes `N`, plus the
//! `morris`-at-`N = 800` row ("mor800"), the pairwise post-hoc Friedman
//! p-values, and the Spearman correlation between dimensionality and
//! REDS's PR AUC gain (§9.1.1).
//!
//! ```text
//! cargo run --release -p reds-bench --bin table3 -- \
//!     [--reps 10] [--l 20000] [--q 20] [--test 20000] [--all] \
//!     [--functions morris,sobol] [--ns 200,400,800] [--methods P,RPx] \
//!     [--json out.json] \
//!     [--shard i/k --checkpoint-dir DIR] [--resume]
//! ```
//!
//! Paper-scale settings: `--all --reps 50 --l 100000 --q 50`.
//!
//! Long sweeps can be split across processes/machines with
//! `--shard i/k` (every shard writes a JSONL checkpoint into
//! `--checkpoint-dir`, resumable after interruption with `--resume`)
//! and recombined by the `merge_shards` binary — bit-identically to a
//! monolithic run; see README "Running paper-scale sweeps".

use reds_bench::sweep::{run_cli, Sweep};
use reds_bench::Args;

fn main() {
    let args = Args::parse();
    let sweep = Sweep::table3(&args);
    run_cli(&sweep, &args);
}
