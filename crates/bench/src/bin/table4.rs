//! Reproduces **Table 4** (and the data behind **Figure 8**): quality of
//! BI-based methods — BI, BIc, BI5, RBIcfp, RBIcxp — plus the post-hoc
//! Friedman p-value between RBIcxp and BIc and the Spearman correlation
//! between dimensionality and the WRAcc gain (§9.1.1).
//!
//! ```text
//! cargo run --release -p reds-bench --bin table4 -- \
//!     [--reps 10] [--l-bi 10000] [--test 20000] [--all] \
//!     [--functions ...] [--ns 200,400,800]
//! ```

use reds_bench::{function_names, Args};
use reds_eval::stats::{spearman, wilcoxon_signed_rank};
use reds_eval::{run_experiment, ExperimentSpec, MethodOpts, BI_FAMILY};
use reds_functions::by_name;

fn main() {
    let args = Args::parse();
    let reps = args.get_usize("reps", 10);
    let functions = function_names(&args);
    let ns: Vec<usize> = args
        .get_str("ns", "200,400,800")
        .split(',')
        .map(|s| s.trim().parse().expect("--ns expects integers"))
        .collect();
    let opts = MethodOpts {
        l_prim: args.get_usize("l", 20_000),
        l_bi: args.get_usize("l-bi", 10_000),
        bumping_q: args.get_usize("q", 20),
        ..Default::default()
    };
    let test_size = args.get_usize("test", 20_000);
    let methods: Vec<&str> = BI_FAMILY.to_vec();
    let stat_n = ns.get(1).copied().unwrap_or(ns[0]);

    // rows[(n, function)][method] summary
    let mut summaries_by = Vec::new();
    for n in &ns {
        for fname in &functions {
            let f = by_name(fname).unwrap_or_else(|| panic!("unknown function {fname}"));
            let mut spec = ExperimentSpec::new(f, *n, &methods);
            spec.reps = reps;
            spec.test_size = test_size;
            spec.opts = opts.clone();
            summaries_by.push((*n, fname.clone(), run_experiment(&spec)));
            eprintln!("done: {fname} N={n}");
        }
    }
    let mut mor_spec = ExperimentSpec::new(by_name("morris").expect("registry"), 800, &methods);
    mor_spec.reps = reps;
    mor_spec.test_size = test_size;
    mor_spec.opts = opts;
    let mor800 = run_experiment(&mor_spec);

    type Metric = fn(&reds_eval::MethodSummary) -> f64;
    let tables: [(&str, Metric); 4] = [
        ("(a) Average WRAcc", |s| s.wracc),
        ("(b) Average consistency", |s| s.consistency),
        ("(c) Average number of restricted inputs", |s| {
            s.n_restricted
        }),
        (
            "(d) Average number of irrelevantly restricted inputs",
            |s| s.n_irrel,
        ),
    ];
    for (title, metric) in tables {
        println!("\nTable 4 {title}");
        println!("| N | {} |", methods.join(" | "));
        println!("|---|{}|", "---|".repeat(methods.len()));
        for n in &ns {
            let cells: Vec<String> = (0..methods.len())
                .map(|mi| {
                    let vals: Vec<f64> = summaries_by
                        .iter()
                        .filter(|(rn, _, _)| rn == n)
                        .map(|(_, _, s)| metric(&s[mi]))
                        .collect();
                    format!("{:.2}", vals.iter().sum::<f64>() / vals.len().max(1) as f64)
                })
                .collect();
            println!("| {n} | {} |", cells.join(" | "));
        }
        let cells: Vec<String> = mor800.iter().map(|s| format!("{:.2}", metric(s))).collect();
        println!("| mor800 | {} |", cells.join(" | "));
    }

    // Figure 8 data + §9.1.1 statistics at N = stat_n.
    println!("\nFigure 8: WRAcc change (%) relative to BIc at N = {stat_n}");
    let idx = |name: &str| methods.iter().position(|m| *m == name).expect("in family");
    let mut rbicxp = Vec::new();
    let mut bic = Vec::new();
    let mut dims = Vec::new();
    let mut gains = Vec::new();
    println!("| function | BI | RBIcxp |");
    for fname in &functions {
        let (_, _, s) = summaries_by
            .iter()
            .find(|(n, f, _)| *n == stat_n && f == fname)
            .expect("row exists");
        let base = s[idx("BIc")].wracc;
        println!(
            "| {fname} | {:+.1} | {:+.1} |",
            100.0 * (s[idx("BI")].wracc - base) / base.abs().max(1e-9),
            100.0 * (s[idx("RBIcxp")].wracc - base) / base.abs().max(1e-9),
        );
        rbicxp.push(s[idx("RBIcxp")].wracc);
        bic.push(base);
        dims.push(by_name(fname).expect("registry").m() as f64);
        gains.push((s[idx("RBIcxp")].wracc - base) / base.abs().max(1e-9));
    }
    println!(
        "\npost-hoc RBIcxp vs BIc (Wilcoxon signed-rank): p = {:.2e}",
        wilcoxon_signed_rank(&rbicxp, &bic)
    );
    println!(
        "Spearman correlation (M vs relative WRAcc gain of RBIcxp over BIc): {:.2}",
        spearman(&dims, &gains)
    );
}
