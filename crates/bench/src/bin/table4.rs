//! Reproduces **Table 4** (and the data behind **Figure 8**): quality of
//! BI-based methods — BI, BIc, BI5, RBIcfp, RBIcxp — plus the post-hoc
//! Friedman p-value between RBIcxp and BIc and the Spearman correlation
//! between dimensionality and the WRAcc gain (§9.1.1).
//!
//! ```text
//! cargo run --release -p reds-bench --bin table4 -- \
//!     [--reps 10] [--l-bi 10000] [--test 20000] [--all] \
//!     [--functions ...] [--ns 200,400,800] [--methods BI,BIc] \
//!     [--shard i/k --checkpoint-dir DIR] [--resume]
//! ```
//!
//! Supports the same sharding/checkpoint/resume workflow as `table3`;
//! see README "Running paper-scale sweeps".

use reds_bench::sweep::{run_cli, Sweep};
use reds_bench::Args;

fn main() {
    let args = Args::parse();
    let sweep = Sweep::table4(&args);
    run_cli(&sweep, &args);
}
