//! Reproduces **Table 5** and **Figure 13**: scenario discovery from
//! third-party data (`TGL` and `lake`) where no simulation model is
//! available. Methods Pc, RPf, RPfp are compared with 5-fold
//! cross-validation repeated several times; Figure 13's peeling
//! trajectories are reported on a recall grid.
//!
//! ```text
//! cargo run --release -p reds-bench --bin table5 -- [--repeats 10] [--l 20000]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds_bench::Args;
use reds_data::{Dataset, KFold};
use reds_eval::{run_method, MethodOpts};
use reds_functions::{lake_dataset, tgl_dataset};
use reds_metrics::{consistency, pr_auc, pr_points, score_box};
use reds_subgroup::HyperBox;

const METHODS: [&str; 3] = ["Pc", "RPf", "RPfp"];
const BINS: usize = 10;

struct Accum {
    pr_auc: Vec<f64>,
    precision: Vec<f64>,
    n_restricted: Vec<f64>,
    boxes: Vec<HyperBox>,
    curve: [(f64, usize); BINS],
}

impl Accum {
    fn new() -> Self {
        Self {
            pr_auc: Vec::new(),
            precision: Vec::new(),
            n_restricted: Vec::new(),
            boxes: Vec::new(),
            curve: [(0.0, 0); BINS],
        }
    }
}

fn evaluate_dataset(name: &str, data: &Dataset, repeats: usize, opts: &MethodOpts) {
    let mut accums: Vec<Accum> = METHODS.iter().map(|_| Accum::new()).collect();
    for repeat in 0..repeats {
        let mut fold_rng = StdRng::seed_from_u64(0x7AB5 + repeat as u64);
        let folds = KFold::new(data.n(), 5, &mut fold_rng).expect("dataset large enough");
        for (train, test) in folds.splits(data) {
            for (mi, method) in METHODS.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(0x5EED + (repeat * 13 + mi) as u64);
                let result = run_method(method, &train, opts, &mut rng).expect("valid method");
                let last = result.last_box().expect("non-empty result").clone();
                let s = score_box(&last, &test);
                let a = &mut accums[mi];
                a.pr_auc.push(100.0 * pr_auc(&result.boxes, &test));
                a.precision.push(100.0 * s.precision);
                a.n_restricted.push(s.n_restricted as f64);
                a.boxes.push(last);
                for p in pr_points(&result.boxes, &test) {
                    let bin = ((p.recall * BINS as f64) as usize).min(BINS - 1);
                    a.curve[bin].0 += p.precision;
                    a.curve[bin].1 += 1;
                }
            }
        }
        eprintln!("{name}: repeat {}/{repeats}", repeat + 1);
    }

    let ranges = data.column_ranges().expect("non-empty dataset");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!("\nTable 5 — {name}");
    println!("| metric | {} |", METHODS.join(" | "));
    println!("|---|---|---|---|");
    for (label, pick) in [
        ("PR AUC", 0usize),
        ("precision", 1),
        ("consistency", 2),
        ("# restricted", 3),
    ] {
        let cells: Vec<String> = accums
            .iter()
            .map(|a| match pick {
                0 => format!("{:.1}", mean(&a.pr_auc)),
                1 => format!("{:.1}", mean(&a.precision)),
                2 => format!("{:.1}", 100.0 * consistency(&a.boxes, &ranges)),
                _ => format!("{:.2}", mean(&a.n_restricted)),
            })
            .collect();
        println!("| {label} | {} |", cells.join(" | "));
    }

    println!("\nFigure 13 — {name}: smoothed peeling trajectories (precision per recall bin)");
    println!("| recall bin | {} |", METHODS.join(" | "));
    for bin in 0..BINS {
        let lo = bin as f64 / BINS as f64;
        let cells: Vec<String> = accums
            .iter()
            .map(|a| {
                let (sum, cnt) = a.curve[bin];
                if cnt == 0 {
                    "-".to_string()
                } else {
                    format!("{:.3}", sum / cnt as f64)
                }
            })
            .collect();
        println!("| {lo:.1}–{:.1} | {} |", lo + 0.1, cells.join(" | "));
    }
}

fn main() {
    let args = Args::parse();
    let repeats = args.get_usize("repeats", 10);
    let opts = MethodOpts {
        l_prim: args.get_usize("l", 20_000),
        ..Default::default()
    };
    evaluate_dataset("TGL", &tgl_dataset(), repeats, &opts);
    evaluate_dataset("lake", &lake_dataset(), repeats, &opts);
}
