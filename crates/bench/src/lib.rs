//! Shared plumbing for the table/figure reproduction binaries: a tiny
//! `--flag value` argument parser, result-row printing, JSON output,
//! and the sharded/checkpointable [`sweep`] driver.

#![warn(missing_docs)]

pub mod rss;
pub mod sweep;

use std::collections::HashMap;

/// Prints a CLI error (plus optional usage text) to stderr and exits
/// with status 2 — bad invocations must not produce panic backtraces.
pub fn cli_fail(message: impl std::fmt::Display, usage: &str) -> ! {
    eprintln!("error: {message}");
    if !usage.is_empty() {
        eprintln!("\n{usage}");
    }
    std::process::exit(2)
}

/// Looks up a benchmark function by name, exiting with a helpful
/// message (instead of a panic) when it does not exist.
pub fn resolve_function(name: &str) -> &'static reds_functions::BenchmarkFunction {
    reds_functions::by_name(name).unwrap_or_else(|| {
        cli_fail(
            format!(
                "unknown function '{name}' — valid names: {}",
                reds_functions::FUNCTION_NAMES.join(", ")
            ),
            "",
        )
    })
}

/// Minimal `--key value` command-line parser (no positional arguments).
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn parse() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parses an explicit token stream (used by tests).
    pub fn from_tokens(tokens: impl IntoIterator<Item = String>) -> Self {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        values.insert(key.to_string(), iter.next().expect("peeked"));
                    }
                    _ => flags.push(key.to_string()),
                }
            }
        }
        Self { values, flags }
    }

    /// Integer option with default; a malformed value exits with a
    /// message and status 2 (no panic backtrace).
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    cli_fail(format!("--{key} expects an integer, got '{v}'"), "")
                })
            })
            .unwrap_or(default)
    }

    /// Float option with default; a malformed value exits with a
    /// message and status 2 (no panic backtrace).
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    cli_fail(format!("--{key} expects a number, got '{v}'"), "")
                })
            })
            .unwrap_or(default)
    }

    /// String option with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Boolean flag (`--all` style).
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// The representative function subset the reproduction binaries use by
/// default (spanning low/high dimension, deterministic/stochastic,
/// easy/hard boundaries); `--all` switches to all 33.
pub const DEFAULT_FUNCTIONS: [&str; 10] = [
    "2",
    "102",
    "borehole",
    "ellipse",
    "hart3",
    "ishigami",
    "linketal06simple",
    "morris",
    "sobol",
    "willetal06",
];

/// Resolves the function list from `--functions a,b,c` / `--all`.
pub fn function_names(args: &Args) -> Vec<String> {
    if args.has_flag("all") {
        return reds_functions::FUNCTION_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    let raw = args.get_str("functions", &DEFAULT_FUNCTIONS.join(","));
    raw.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Prints one markdown-ish table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_reads_values_and_flags() {
        let args = Args::from_tokens(
            ["--n", "400", "--all", "--functions", "morris,sobol"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.get_usize("n", 0), 400);
        assert!(args.has_flag("all"));
        assert_eq!(args.get_str("functions", ""), "morris,sobol");
        assert_eq!(args.get_usize("missing", 7), 7);
    }

    #[test]
    fn function_names_resolves_custom_list() {
        let args = Args::from_tokens(
            ["--functions", "morris, sobol"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(function_names(&args), vec!["morris", "sobol"]);
    }

    #[test]
    fn all_flag_yields_33_functions() {
        let args = Args::from_tokens(["--all".to_string()]);
        assert_eq!(function_names(&args).len(), 33);
    }

    #[test]
    fn default_functions_exist_in_registry() {
        for name in DEFAULT_FUNCTIONS {
            assert!(reds_functions::by_name(name).is_some(), "{name}");
        }
    }
}
