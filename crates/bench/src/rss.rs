//! Peak-RSS instrumentation for the memory benchmarks.
//!
//! Linux exposes a process's resident-set high-water mark as the
//! `VmHWM` field of `/proc/self/status` (and the current RSS as
//! `VmRSS`). The streaming benches spawn one subprocess per measured
//! configuration precisely because `VmHWM` is a *high-water* mark: it
//! never decreases, so two configurations measured in one process
//! would shadow each other.

/// Peak resident set size (`VmHWM`) of this process, in bytes.
/// `None` on platforms without `/proc/self/status`.
pub fn peak_rss_bytes() -> Option<u64> {
    read_status_kb("VmHWM").map(|kb| kb * 1024)
}

/// Current resident set size (`VmRSS`) of this process, in bytes.
/// `None` on platforms without `/proc/self/status`.
pub fn current_rss_bytes() -> Option<u64> {
    read_status_kb("VmRSS").map(|kb| kb * 1024)
}

/// Reads one `kB`-denominated field from `/proc/self/status`.
fn read_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_kb(&status, field)
}

/// Parses `"<field>:   <n> kB"` out of a `/proc/<pid>/status` document.
///
/// A line that merely *starts* with `field` (`VmRSSAnon` when asked for
/// `VmRSS`, say) is not a match: the prefix must be followed by `:`.
/// Such near-misses skip to the next line rather than aborting the
/// scan — an earlier version `?`-returned from inside the loop, so one
/// prefix-sharing line could hide the real field below it.
fn parse_status_kb(status: &str, field: &str) -> Option<u64> {
    for line in status.lines() {
        let Some(rest) = line.strip_prefix(field) else {
            continue;
        };
        let Some(rest) = rest.strip_prefix(':') else {
            continue;
        };
        let digits = rest.split_whitespace().next()?;
        return digits.parse().ok();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_proc_status_format() {
        let doc = "Name:\tcargo\nVmRSS:\t  123456 kB\nVmHWM:\t  234567 kB\nThreads:\t8\n";
        assert_eq!(parse_status_kb(doc, "VmRSS"), Some(123_456));
        assert_eq!(parse_status_kb(doc, "VmHWM"), Some(234_567));
        assert_eq!(parse_status_kb(doc, "VmSwap"), None);
    }

    #[test]
    fn prefix_sharing_line_does_not_hide_the_real_field() {
        // `VmRSSx` shares the `VmRSS` prefix but is a different field;
        // it appears *before* the real one, which the buggy
        // early-return parser never reached.
        let doc = "Name:\tcargo\nVmRSSx:\t  999 kB\nVmRSS:\t  123456 kB\n";
        assert_eq!(parse_status_kb(doc, "VmRSS"), Some(123_456));
        // A document with only the near-miss yields None, not a wrong
        // number.
        let near_miss_only = "VmRSSx:\t  999 kB\n";
        assert_eq!(parse_status_kb(near_miss_only, "VmRSS"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn live_readings_are_sane() {
        let peak = peak_rss_bytes().expect("Linux exposes VmHWM");
        let now = current_rss_bytes().expect("Linux exposes VmRSS");
        // The kernel batches per-thread RSS accounting, so VmHWM can
        // trail VmRSS by a few pages at any instant — only a gross
        // inversion would indicate a parsing bug.
        assert!(
            peak * 2 >= now,
            "high-water {peak} implausibly below current {now}"
        );
        assert!(now > 1024 * 1024, "a test process uses > 1 MiB");
        assert!(peak > 1024 * 1024, "a test process peaks > 1 MiB");
    }

    #[test]
    fn peak_never_decreases_after_an_allocation() {
        let before = peak_rss_bytes();
        // Touch 32 MiB so the pages actually become resident.
        let mut v = vec![0u8; 32 << 20];
        for page in v.chunks_mut(4096) {
            page[0] = 1;
        }
        let after = peak_rss_bytes();
        drop(v);
        if let (Some(b), Some(a)) = (before, after) {
            assert!(a >= b);
            assert!(a - b >= 24 << 20, "HWM grew only {} bytes", a - b);
        }
    }
}
