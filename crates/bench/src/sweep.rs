//! The sharded, checkpointable sweep driver shared by the `table3`,
//! `table4`, and `merge_shards` binaries.
//!
//! A *sweep* is the full function × `N` grid of experiments behind one
//! of the paper's tables. Its work decomposes into the deterministic
//! [`WorkUnit`]s of `reds-eval`: every unit is assigned round-robin to
//! one of `--shard i/k` shards, executed with checkpointing
//! (`--checkpoint-dir`, `--resume`), and later recombined by
//! `merge_shards` into a report that is byte-identical to the
//! monolithic run (wall-clock runtimes excepted — they are measured,
//! not derived; every other number is bit-exact).

use std::collections::HashSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use reds_eval::checkpoint::{
    load_checkpoint, merge_records, CheckpointError, CheckpointHeader, CheckpointWriter,
    ShardCheckpoint, UnitRecord,
};
use reds_eval::stats::{friedman_test, spearman, wilcoxon_signed_rank};
use reds_eval::workunit::{enumerate_units, stable_hash};
use reds_eval::{
    aggregate_units, execute_units, execute_units_with, spec_fingerprint, Evaluation,
    ExperimentSpec, MethodOpts, MethodSummary, WorkUnit, BI_FAMILY, PRIM_FAMILY,
};
use reds_fleet::UnitExecutor;
use reds_functions::by_name;
use reds_json::Json;

use crate::{cli_fail, function_names, resolve_function, Args};

/// Usage text shared by the sweep binaries' CLI error paths.
pub const SWEEP_USAGE: &str = "sweep flags:
  --functions a,b,c     benchmark functions (--all for all 33)
  --ns 200,400,800      training sizes
  --reps N              repetitions per cell
  --l N / --l-bi N      pseudo-label sample sizes
  --q N                 bumping ensemble size
  --test N              held-out test size
  --methods P,RPf,...   method columns
  --json PATH           machine-readable rows
  --shard i/k           run shard i of k (requires --checkpoint-dir)
  --checkpoint-dir DIR  JSONL checkpoint directory
  --resume              skip units already checkpointed";

/// Which table's grid and report a sweep reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Table 3 / Figure 7: the PRIM family.
    Table3,
    /// Table 4 / Figure 8: the BI family.
    Table4,
}

/// A fully-resolved sweep: the unique experiment specs plus the
/// metadata the report renderer needs.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Table 3 or Table 4.
    pub kind: TableKind,
    /// Benchmark functions, in report order.
    pub functions: Vec<String>,
    /// Training sizes, in report order.
    pub ns: Vec<usize>,
    /// The `N` at which the §9.1.1 statistics are computed.
    pub stat_n: usize,
    /// Method names, in column order.
    pub methods: Vec<String>,
    /// Unique experiment specs (the grid plus the `mor800` row, which
    /// coincides with the grid cell when `morris`/`800` are swept —
    /// stable seeding makes the two bit-identical, so it is stored
    /// once).
    pub specs: Vec<ExperimentSpec>,
    fingerprints: Vec<String>,
}

impl Sweep {
    /// The Table 3 sweep for the binaries' shared CLI arguments.
    pub fn table3(args: &Args) -> Self {
        Self::build(TableKind::Table3, args, &PRIM_FAMILY)
    }

    /// The Table 4 sweep for the binaries' shared CLI arguments.
    pub fn table4(args: &Args) -> Self {
        Self::build(TableKind::Table4, args, &BI_FAMILY)
    }

    fn build(kind: TableKind, args: &Args, family: &[&str]) -> Self {
        let reps = args.get_usize("reps", 10);
        let functions = function_names(args);
        let raw_ns = args.get_str("ns", "200,400,800");
        let ns: Vec<usize> = raw_ns
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    cli_fail(
                        format!("--ns expects comma-separated integers, got '{raw_ns}'"),
                        SWEEP_USAGE,
                    )
                })
            })
            .collect();
        if ns.is_empty() {
            cli_fail("--ns needs at least one training size", SWEEP_USAGE);
        }
        let opts = MethodOpts {
            l_prim: args.get_usize("l", 20_000),
            l_bi: args.get_usize("l-bi", 10_000),
            bumping_q: args.get_usize("q", 20),
            ..Default::default()
        };
        let test_size = args.get_usize("test", 20_000);
        let methods: Vec<String> = args
            .get_str("methods", &family.join(","))
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let method_refs: Vec<&str> = methods.iter().map(String::as_str).collect();

        let make_spec = |fname: &str, n: usize| {
            let f = resolve_function(fname);
            let mut spec = ExperimentSpec::new(f, n, &method_refs);
            spec.reps = reps;
            spec.test_size = test_size;
            spec.opts = opts.clone();
            spec
        };

        let mut specs = Vec::new();
        let mut fingerprints = Vec::new();
        let mut push_unique = |spec: ExperimentSpec| {
            let fp = spec_fingerprint(&spec);
            if !fingerprints.contains(&fp) {
                specs.push(spec);
                fingerprints.push(fp);
            }
        };
        for n in &ns {
            for fname in &functions {
                push_unique(make_spec(fname, *n));
            }
        }
        // The tables' extra "mor800" row.
        push_unique(make_spec("morris", 800));

        let stat_n = ns.get(1).copied().unwrap_or(ns[0]);
        Self {
            kind,
            functions,
            ns,
            stat_n,
            methods,
            specs,
            fingerprints,
        }
    }

    /// Digest of the whole sweep configuration; shard checkpoints carry
    /// it so differently-configured partial results cannot be merged.
    pub fn fingerprint(&self) -> String {
        let kind = match self.kind {
            TableKind::Table3 => "table3",
            TableKind::Table4 => "table4",
        };
        let parts: Vec<&str> = std::iter::once(kind)
            .chain(self.fingerprints.iter().map(String::as_str))
            .collect();
        format!("{:016x}", stable_hash(&parts))
    }

    /// Total number of work units across all specs.
    pub fn total_units(&self) -> usize {
        self.specs.iter().map(|s| s.reps * s.methods.len()).sum()
    }

    /// Index of the spec covering `(function, n)`, if swept.
    pub fn spec_index(&self, function: &str, n: usize) -> Option<usize> {
        self.specs
            .iter()
            .position(|s| s.function.name() == function && s.n == n)
    }

    /// Per-spec fingerprints, aligned with [`Sweep::specs`].
    pub fn spec_fingerprints(&self) -> &[String] {
        &self.fingerprints
    }

    /// Every work unit of the sweep paired with its spec fingerprint,
    /// in the deterministic enumeration order `run_shard` walks — the
    /// unit list a fleet coordinator leases out.
    pub fn fleet_units(&self) -> Vec<(String, WorkUnit)> {
        let mut units = Vec::with_capacity(self.total_units());
        for (si, spec) in self.specs.iter().enumerate() {
            let fp = &self.fingerprints[si];
            for unit in enumerate_units(spec) {
                units.push((fp.clone(), unit));
            }
        }
        units
    }
}

/// Executes leased units for a fleet worker: the [`UnitExecutor`]
/// implementation bridging `reds-fleet` to the sweep machinery.
///
/// Every incoming unit is validated against the spec's own
/// deterministic enumeration (method, rep, *and* the derived seeds)
/// before it runs, so a corrupted or foreign unit is rejected instead
/// of silently producing a wrong-seeded result.
pub struct SweepExecutor {
    sweep: Sweep,
    fingerprint: String,
}

impl SweepExecutor {
    /// An executor serving `sweep`.
    pub fn new(sweep: Sweep) -> Self {
        let fingerprint = sweep.fingerprint();
        Self { sweep, fingerprint }
    }
}

impl UnitExecutor for SweepExecutor {
    fn fingerprint(&self) -> String {
        self.fingerprint.clone()
    }

    fn execute(&self, spec: &str, unit: &WorkUnit) -> Result<Evaluation, String> {
        let si = self
            .sweep
            .spec_fingerprints()
            .iter()
            .position(|fp| fp == spec)
            .ok_or_else(|| format!("unknown spec fingerprint {spec}"))?;
        let spec = &self.sweep.specs[si];
        if !enumerate_units(spec).iter().any(|u| u == unit) {
            return Err(format!(
                "unit {}/{} does not match the spec's enumeration (tampered seeds?)",
                unit.method, unit.rep
            ));
        }
        let mut results = execute_units(spec, std::slice::from_ref(unit));
        match results.pop() {
            Some((_, eval)) if results.is_empty() => Ok(eval),
            _ => Err("executor returned an unexpected result count".to_string()),
        }
    }
}

/// What `run_shard` did.
#[derive(Debug)]
pub struct RunOutcome {
    /// Every record of the shard: resumed from the checkpoint plus
    /// newly executed.
    pub records: Vec<UnitRecord>,
    /// Units executed by this invocation.
    pub executed: usize,
    /// Units skipped because the checkpoint already had them.
    pub skipped: usize,
}

/// Executes shard `shard` of `of` of the sweep, appending each
/// completed unit to `<checkpoint_dir>/shard-<shard>-of-<of>.jsonl`
/// when a directory is given. With `resume`, previously completed units
/// are loaded from that file and skipped.
pub fn run_shard(
    sweep: &Sweep,
    shard: usize,
    of: usize,
    checkpoint_dir: Option<&Path>,
    resume: bool,
) -> Result<RunOutcome, CheckpointError> {
    assert!(
        of > 0 && shard < of,
        "shard index {shard} out of range 0..{of}"
    );
    let header = CheckpointHeader::new(sweep.fingerprint(), shard, of);
    let path = checkpoint_dir.map(|dir| dir.join(shard_file_name(shard, of)));
    let (mut writer, done) = match &path {
        Some(p) if resume && p.exists() => {
            let (w, done) = CheckpointWriter::resume(p, &header)?;
            (Some(w), done)
        }
        Some(p) => {
            if let Some(dir) = p.parent() {
                std::fs::create_dir_all(dir)?;
            }
            (Some(CheckpointWriter::create(p, &header)?), Vec::new())
        }
        None => (None, Vec::new()),
    };

    let done_keys: HashSet<(String, String, usize)> = done
        .iter()
        .map(|r| (r.spec.clone(), r.unit.method.clone(), r.unit.rep))
        .collect();
    let skipped = done.len();
    let mut records = done;
    let mut executed = 0usize;
    let mut global = 0usize;
    for (si, spec) in sweep.specs.iter().enumerate() {
        let fp = &sweep.fingerprints[si];
        let todo: Vec<WorkUnit> = enumerate_units(spec)
            .into_iter()
            .filter(|u| {
                let mine = global % of == shard;
                global += 1;
                mine && !done_keys.contains(&(fp.clone(), u.method.clone(), u.rep))
            })
            .collect();
        if todo.is_empty() {
            continue;
        }
        let mut append_error: Option<CheckpointError> = None;
        let results = execute_units_with(spec, &todo, |unit, eval| {
            if append_error.is_some() {
                return;
            }
            if let Some(w) = &mut writer {
                let record = UnitRecord {
                    spec: fp.clone(),
                    unit: unit.clone(),
                    eval: eval.clone(),
                    attempt: 0,
                };
                if let Err(e) = w.append(&record) {
                    append_error = Some(e);
                }
            }
        });
        if let Some(e) = append_error {
            return Err(e);
        }
        executed += results.len();
        records.extend(results.into_iter().map(|(unit, eval)| UnitRecord {
            spec: fp.clone(),
            unit,
            eval,
            attempt: 0,
        }));
        eprintln!(
            "done: {} N={} ({} units)",
            spec.function.name(),
            spec.n,
            records.len(),
        );
    }
    Ok(RunOutcome {
        records,
        executed,
        skipped,
    })
}

/// Checkpoint file name of one shard.
pub fn shard_file_name(shard: usize, of: usize) -> String {
    format!("shard-{shard}-of-{of}.jsonl")
}

/// Groups merged unit records back into per-spec summaries, in
/// `sweep.specs` order. Fails when a record belongs to no spec of the
/// sweep or any grid is incomplete/duplicated.
pub fn aggregate(sweep: &Sweep, records: &[UnitRecord]) -> Result<Vec<Vec<MethodSummary>>, String> {
    let mut by_spec: Vec<Vec<(WorkUnit, Evaluation)>> = vec![Vec::new(); sweep.specs.len()];
    for r in records {
        let si = sweep
            .fingerprints
            .iter()
            .position(|fp| fp == &r.spec)
            .ok_or_else(|| format!("record for unknown spec fingerprint {}", r.spec))?;
        by_spec[si].push((r.unit.clone(), r.eval.clone()));
    }
    sweep
        .specs
        .iter()
        .zip(by_spec)
        .map(|(spec, rs)| {
            aggregate_units(spec, &rs)
                .map_err(|e| format!("{} N={}: {e}", spec.function.name(), spec.n))
        })
        .collect()
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

/// Renders the sweep's full report — the same bytes whether the
/// summaries come from a monolithic run or from merged shards.
pub fn render(sweep: &Sweep, results: &[Vec<MethodSummary>]) -> String {
    match sweep.kind {
        TableKind::Table3 => render_table3(sweep, results),
        TableKind::Table4 => render_table4(sweep, results),
    }
}

fn render_table3(sweep: &Sweep, results: &[Vec<MethodSummary>]) -> String {
    let mut out = String::new();
    let methods = &sweep.methods;
    let stat_n = sweep.stat_n;
    let cell = |fname: &str, n: usize| {
        sweep
            .spec_index(fname, n)
            .map(|si| &results[si])
            .unwrap_or_else(|| panic!("no spec for {fname} N={n}"))
    };

    type Metric = fn(&MethodSummary) -> f64;
    let metric_tables: [(&str, Metric); 5] = [
        ("(a) Average PR AUC", |s| s.pr_auc),
        ("(b) Average precision", |s| s.precision),
        ("(c) Average consistency", |s| s.consistency),
        ("(d) Average number of restricted inputs", |s| {
            s.n_restricted
        }),
        (
            "(e) Average number of irrelevantly restricted inputs",
            |s| s.n_irrel,
        ),
    ];
    for (title, metric) in metric_tables {
        let _ = writeln!(out, "\nTable 3 {title}");
        let _ = writeln!(out, "| N | {} |", methods.join(" | "));
        let _ = writeln!(out, "|---|{}|", "---|".repeat(methods.len()));
        for n in &sweep.ns {
            let cells: Vec<String> = (0..methods.len())
                .map(|mi| {
                    format!(
                        "{:.1}",
                        mean(sweep.functions.iter().map(|f| metric(&cell(f, *n)[mi])))
                    )
                })
                .collect();
            let _ = writeln!(out, "| {n} | {} |", cells.join(" | "));
        }
        let mor800 = cell("morris", 800);
        let mor_cells: Vec<String> = mor800.iter().map(|s| format!("{:.1}", metric(s))).collect();
        let _ = writeln!(out, "| mor800 | {} |", mor_cells.join(" | "));
    }

    // Figure 7 data: per-function quality change relative to Pc, N = stat_n.
    let idx = |name: &str| methods.iter().position(|m| m == name);
    if let Some(pc) = idx("Pc") {
        let _ = writeln!(
            out,
            "\nFigure 7: PR AUC change (%) relative to Pc at N = {stat_n} (per function)"
        );
        let _ = writeln!(out, "| function | {} |", methods.join(" | "));
        for fname in &sweep.functions {
            let s = cell(fname, stat_n);
            let base = s[pc].pr_auc;
            let cells: Vec<String> = s
                .iter()
                .map(|m| format!("{:+.1}", 100.0 * (m.pr_auc - base) / base.max(1e-9)))
                .collect();
            let _ = writeln!(out, "| {fname} | {} |", cells.join(" | "));
        }
    }

    // Statistics of §9.1.1.
    let per_function_auc: Vec<Vec<f64>> = sweep
        .functions
        .iter()
        .map(|f| cell(f, stat_n).iter().map(|s| s.pr_auc).collect())
        .collect();
    let (chi2, p) = friedman_test(&per_function_auc);
    let _ = writeln!(
        out,
        "\nFriedman test over PR AUC at N = {stat_n}: chi2 = {chi2:.2}, p = {p:.2e}"
    );
    if let (Some(pc), Some(rpx)) = (idx("Pc"), idx("RPx")) {
        let rpx_auc: Vec<f64> = per_function_auc.iter().map(|r| r[rpx]).collect();
        let pc_auc: Vec<f64> = per_function_auc.iter().map(|r| r[pc]).collect();
        let _ = writeln!(
            out,
            "post-hoc RPx vs Pc (Wilcoxon signed-rank): p = {:.2e}",
            wilcoxon_signed_rank(&rpx_auc, &pc_auc)
        );
        let dims: Vec<f64> = sweep
            .functions
            .iter()
            .map(|f| by_name(f).expect("registry").m() as f64)
            .collect();
        let gains: Vec<f64> = rpx_auc
            .iter()
            .zip(&pc_auc)
            .map(|(r, p)| (r - p) / p.max(1e-9))
            .collect();
        let _ = writeln!(
            out,
            "Spearman correlation (M vs relative PR AUC gain of RPx over Pc): {:.2}",
            spearman(&dims, &gains)
        );
    }
    out
}

fn render_table4(sweep: &Sweep, results: &[Vec<MethodSummary>]) -> String {
    let mut out = String::new();
    let methods = &sweep.methods;
    let stat_n = sweep.stat_n;
    let cell = |fname: &str, n: usize| {
        sweep
            .spec_index(fname, n)
            .map(|si| &results[si])
            .unwrap_or_else(|| panic!("no spec for {fname} N={n}"))
    };

    type Metric = fn(&MethodSummary) -> f64;
    let tables: [(&str, Metric); 4] = [
        ("(a) Average WRAcc", |s| s.wracc),
        ("(b) Average consistency", |s| s.consistency),
        ("(c) Average number of restricted inputs", |s| {
            s.n_restricted
        }),
        (
            "(d) Average number of irrelevantly restricted inputs",
            |s| s.n_irrel,
        ),
    ];
    for (title, metric) in tables {
        let _ = writeln!(out, "\nTable 4 {title}");
        let _ = writeln!(out, "| N | {} |", methods.join(" | "));
        let _ = writeln!(out, "|---|{}|", "---|".repeat(methods.len()));
        for n in &sweep.ns {
            let cells: Vec<String> = (0..methods.len())
                .map(|mi| {
                    format!(
                        "{:.2}",
                        mean(sweep.functions.iter().map(|f| metric(&cell(f, *n)[mi])))
                    )
                })
                .collect();
            let _ = writeln!(out, "| {n} | {} |", cells.join(" | "));
        }
        let mor800 = cell("morris", 800);
        let cells: Vec<String> = mor800.iter().map(|s| format!("{:.2}", metric(s))).collect();
        let _ = writeln!(out, "| mor800 | {} |", cells.join(" | "));
    }

    // Figure 8 data + §9.1.1 statistics at N = stat_n.
    let idx = |name: &str| methods.iter().position(|m| m == name);
    if let (Some(bic), Some(bi), Some(rbicxp)) = (idx("BIc"), idx("BI"), idx("RBIcxp")) {
        let _ = writeln!(
            out,
            "\nFigure 8: WRAcc change (%) relative to BIc at N = {stat_n}"
        );
        let _ = writeln!(out, "| function | BI | RBIcxp |");
        let mut rbicxp_w = Vec::new();
        let mut bic_w = Vec::new();
        let mut dims = Vec::new();
        let mut gains = Vec::new();
        for fname in &sweep.functions {
            let s = cell(fname, stat_n);
            let base = s[bic].wracc;
            let _ = writeln!(
                out,
                "| {fname} | {:+.1} | {:+.1} |",
                100.0 * (s[bi].wracc - base) / base.abs().max(1e-9),
                100.0 * (s[rbicxp].wracc - base) / base.abs().max(1e-9),
            );
            rbicxp_w.push(s[rbicxp].wracc);
            bic_w.push(base);
            dims.push(by_name(fname).expect("registry").m() as f64);
            gains.push((s[rbicxp].wracc - base) / base.abs().max(1e-9));
        }
        let _ = writeln!(
            out,
            "\npost-hoc RBIcxp vs BIc (Wilcoxon signed-rank): p = {:.2e}",
            wilcoxon_signed_rank(&rbicxp_w, &bic_w)
        );
        let _ = writeln!(
            out,
            "Spearman correlation (M vs relative WRAcc gain of RBIcxp over BIc): {:.2}",
            spearman(&dims, &gains)
        );
    }
    out
}

/// Machine-readable rows of the grid (one object per function × N ×
/// method cell), for `--json`.
pub fn rows_json(sweep: &Sweep, results: &[Vec<MethodSummary>]) -> Json {
    let mut rows = Vec::new();
    for n in &sweep.ns {
        for fname in &sweep.functions {
            let si = sweep.spec_index(fname, *n).expect("grid spec exists");
            for s in &results[si] {
                rows.push(Json::obj([
                    ("function", Json::str(fname.clone())),
                    ("n", Json::num(*n as f64)),
                    ("method", Json::str(s.method.clone())),
                    ("pr_auc", Json::num(s.pr_auc)),
                    ("precision", Json::num(s.precision)),
                    ("wracc", Json::num(s.wracc)),
                    ("consistency", Json::num(s.consistency)),
                    ("n_restricted", Json::num(s.n_restricted)),
                    ("n_irrel", Json::num(s.n_irrel)),
                    ("runtime_ms", Json::num(s.runtime_ms)),
                ]));
            }
        }
    }
    Json::Arr(rows)
}

/// Parses `--shard i/k` (default `0/1` — the monolithic run),
/// returning a message suitable for the CLI on malformed input.
pub fn try_parse_shard(args: &Args) -> Result<(usize, usize), String> {
    let raw = args.get_str("shard", "0/1");
    let parse = || -> Option<(usize, usize)> {
        let (i, k) = raw.split_once('/')?;
        let (i, k) = (i.trim().parse().ok()?, k.trim().parse().ok()?);
        (k > 0 && i < k).then_some((i, k))
    };
    parse().ok_or_else(|| format!("--shard expects i/k with i < k, got '{raw}'"))
}

/// CLI wrapper of [`try_parse_shard`]: exits with status 2 and the
/// usage text on malformed input instead of panicking.
pub fn parse_shard(args: &Args) -> (usize, usize) {
    try_parse_shard(args).unwrap_or_else(|e| cli_fail(e, SWEEP_USAGE))
}

/// The shared CLI driver of `table3` and `table4`: executes this
/// process's shard (with optional checkpointing/resume) and, when the
/// run is monolithic, aggregates and prints the report.
pub fn run_cli(sweep: &Sweep, args: &Args) {
    let (shard, of) = parse_shard(args);
    let dir = args.get_str("checkpoint-dir", "");
    let checkpoint_dir = (!dir.is_empty()).then(|| PathBuf::from(&dir));
    let resume = args.has_flag("resume");
    if resume && checkpoint_dir.is_none() {
        cli_fail("--resume requires --checkpoint-dir", SWEEP_USAGE);
    }
    if of > 1 && checkpoint_dir.is_none() {
        cli_fail(
            format!("--shard {shard}/{of} requires --checkpoint-dir to store partial results"),
            SWEEP_USAGE,
        );
    }

    let outcome =
        run_shard(sweep, shard, of, checkpoint_dir.as_deref(), resume).unwrap_or_else(|e| {
            eprintln!("error: shard execution failed: {e}");
            std::process::exit(1)
        });
    eprintln!(
        "shard {shard}/{of}: executed {} unit(s), resumed {} (of {} total in the sweep)",
        outcome.executed,
        outcome.skipped,
        sweep.total_units()
    );

    if of == 1 {
        let results = aggregate(sweep, &outcome.records).unwrap_or_else(|e| {
            eprintln!("error: aggregation failed: {e}");
            std::process::exit(1)
        });
        print!("{}", render(sweep, &results));
        let json_path = args.get_str("json", "");
        if !json_path.is_empty() {
            std::fs::write(&json_path, rows_json(sweep, &results).to_string_pretty())
                .unwrap_or_else(|e| {
                    eprintln!("error: cannot write {json_path}: {e}");
                    std::process::exit(1)
                });
            eprintln!("rows written to {json_path}");
        }
    } else {
        eprintln!(
            "partial results in {dir}/{}; combine all shards with the merge_shards binary \
             (same sweep flags plus --checkpoint-dir)",
            shard_file_name(shard, of)
        );
    }
}

/// Loads every `*.jsonl` checkpoint in `dir` (sorted by file name),
/// returning each with its path.
pub fn load_checkpoint_dir(dir: &Path) -> Result<Vec<(PathBuf, ShardCheckpoint)>, CheckpointError> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let ck = load_checkpoint(&p)?;
            if ck.truncated {
                eprintln!(
                    "warning: {} ends in a partial record (interrupted run?) — dropped",
                    p.display()
                );
            }
            Ok((p, ck))
        })
        .collect()
}

/// Checks that the loaded checkpoints form one consistent shard set —
/// a single `of`, each shard index at most once — so leftovers from an
/// abandoned run with a different shard count fail with a message
/// naming the offending files instead of a puzzling duplicate-unit
/// error downstream.
fn validate_shard_set(shards: &[(PathBuf, ShardCheckpoint)]) -> Result<(), String> {
    let describe = |(p, ck): &(PathBuf, ShardCheckpoint)| {
        format!(
            "{} (shard {}/{})",
            p.display(),
            ck.header.shard,
            ck.header.of
        )
    };
    let of = shards[0].1.header.of;
    if let Some(other) = shards.iter().find(|(_, ck)| ck.header.of != of) {
        return Err(format!(
            "checkpoints from different shard decompositions in one directory: {} vs {} — \
             remove the files of the abandoned run",
            describe(&shards[0]),
            describe(other),
        ));
    }
    for (i, a) in shards.iter().enumerate() {
        if let Some(b) = shards[i + 1..]
            .iter()
            .find(|(_, ck)| ck.header.shard == a.1.header.shard)
        {
            return Err(format!(
                "two checkpoints claim the same shard: {} and {} — remove one",
                describe(a),
                describe(b),
            ));
        }
    }
    Ok(())
}

/// Merges the shard checkpoints of `dir` into the sweep's final
/// summaries, validating fingerprints, shard-set consistency, and grid
/// completeness.
pub fn merge_dir(sweep: &Sweep, dir: &Path) -> Result<Vec<Vec<MethodSummary>>, String> {
    let shards = load_checkpoint_dir(dir).map_err(|e| e.to_string())?;
    if shards.is_empty() {
        return Err(format!("no *.jsonl checkpoints in {}", dir.display()));
    }
    validate_shard_set(&shards)?;
    let checkpoints: Vec<ShardCheckpoint> = shards.into_iter().map(|(_, ck)| ck).collect();
    let records = merge_records(&sweep.fingerprint(), &checkpoints).map_err(|e| e.to_string())?;
    aggregate(sweep, &records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_args() -> Args {
        Args::from_tokens(
            [
                "--functions",
                "2",
                "--ns",
                "60,90",
                "--reps",
                "2",
                "--l",
                "800",
                "--l-bi",
                "600",
                "--q",
                "3",
                "--test",
                "500",
                "--methods",
                "P,RPf",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
    }

    #[test]
    fn sweep_dedupes_specs_and_counts_units() {
        let sweep = Sweep::table3(&tiny_args());
        // 2 grid cells + mor800 (not in the grid here).
        assert_eq!(sweep.specs.len(), 3);
        assert_eq!(sweep.total_units(), 3 * 2 * 2);
        assert!(sweep.spec_index("morris", 800).is_some());

        // With morris/800 swept, mor800 collapses into the grid cell.
        let args = Args::from_tokens(
            ["--functions", "morris", "--ns", "800", "--reps", "1"]
                .iter()
                .map(|s| s.to_string()),
        );
        let sweep = Sweep::table3(&args);
        assert_eq!(sweep.specs.len(), 1);
    }

    #[test]
    fn merge_dir_rejects_mixed_and_duplicated_shard_sets() {
        let sweep = Sweep::table3(&tiny_args());
        let dir = std::env::temp_dir().join(format!("reds-mixed-shards-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let fp = sweep.fingerprint();

        // Leftover of an abandoned 2-way run next to a 4-way run.
        let mk = |shard: usize, of: usize| {
            let path = dir.join(shard_file_name(shard, of));
            CheckpointWriter::create(&path, &CheckpointHeader::new(fp.clone(), shard, of))
                .expect("create");
        };
        mk(0, 2);
        mk(0, 4);
        let err = merge_dir(&sweep, &dir).expect_err("mixed shard counts");
        assert!(
            err.contains("different shard decompositions"),
            "unexpected message: {err}"
        );

        // Same `of`, same shard index twice (copied file).
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("tmp dir");
        mk(1, 4);
        let path = dir.join("shard-1-of-4-copy.jsonl");
        std::fs::copy(dir.join(shard_file_name(1, 4)), &path).expect("copy");
        let err = merge_dir(&sweep, &dir).expect_err("duplicated shard index");
        assert!(
            err.contains("claim the same shard"),
            "unexpected message: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_fingerprint_tracks_configuration() {
        let base = Sweep::table3(&tiny_args()).fingerprint();
        assert_eq!(base, Sweep::table3(&tiny_args()).fingerprint());
        assert_ne!(base, Sweep::table4(&tiny_args()).fingerprint());
        let mut tokens: Vec<String> = [
            "--functions",
            "2",
            "--ns",
            "60,90",
            "--reps",
            "3",
            "--l",
            "800",
            "--l-bi",
            "600",
            "--q",
            "3",
            "--test",
            "500",
            "--methods",
            "P,RPf",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_ne!(
            base,
            Sweep::table3(&Args::from_tokens(tokens.clone())).fingerprint(),
            "reps changed"
        );
        tokens[5] = "2".to_string();
        assert_eq!(
            base,
            Sweep::table3(&Args::from_tokens(tokens)).fingerprint()
        );
    }

    #[test]
    fn shard_parsing_accepts_valid_and_rejects_invalid() {
        let args = Args::from_tokens(["--shard", "1/3"].iter().map(|s| s.to_string()));
        assert_eq!(try_parse_shard(&args), Ok((1, 3)));
        assert_eq!(try_parse_shard(&Args::default()), Ok((0, 1)));
        for bad in ["3/3", "4/3", "x/3", "2", "1/0", "-1/3"] {
            let args = Args::from_tokens(["--shard", bad].iter().map(|s| s.to_string()));
            let err = try_parse_shard(&args).expect_err(bad);
            assert!(err.contains("--shard"), "{bad} → {err}");
        }
    }
}
