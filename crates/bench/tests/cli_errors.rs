//! Regression tests for the CLI hardening: bad invocations must exit
//! with status 2 and a readable message — never a panic backtrace.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .env("RUST_BACKTRACE", "1") // a panic would be loud and detectable
        .output()
        .expect("binary runs")
}

fn assert_usage_error(out: &Output, expect_in_stderr: &str, context: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{context}: expected exit 2, got {:?}\nstderr: {stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains(expect_in_stderr),
        "{context}: stderr missing '{expect_in_stderr}':\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{context}: panic backtrace leaked to the user:\n{stderr}"
    );
}

#[test]
fn table3_rejects_malformed_shard_without_panicking() {
    let out = run(env!("CARGO_BIN_EXE_table3"), &["--shard", "3/3"]);
    assert_usage_error(&out, "--shard", "shard out of range");
    let out = run(env!("CARGO_BIN_EXE_table3"), &["--shard", "banana"]);
    assert_usage_error(&out, "--shard", "non-numeric shard");
    // Sharding without a checkpoint directory is a usage error too.
    let out = run(
        env!("CARGO_BIN_EXE_table3"),
        &[
            "--shard",
            "0/2",
            "--functions",
            "2",
            "--ns",
            "60",
            "--reps",
            "1",
        ],
    );
    assert_usage_error(&out, "--checkpoint-dir", "shard without checkpoint dir");
}

#[test]
fn table3_rejects_malformed_ns_and_reps() {
    let out = run(env!("CARGO_BIN_EXE_table3"), &["--ns", "2x0,400"]);
    assert_usage_error(&out, "--ns", "malformed --ns");
    let out = run(env!("CARGO_BIN_EXE_table3"), &["--reps", "many"]);
    assert_usage_error(&out, "--reps", "malformed --reps");
}

#[test]
fn table4_rejects_unknown_function_names() {
    let out = run(
        env!("CARGO_BIN_EXE_table4"),
        &["--functions", "no-such-function"],
    );
    assert_usage_error(&out, "unknown function", "unknown function");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("morris"),
        "error should list valid names:\n{stderr}"
    );
}

#[test]
fn fit_model_requires_its_flags_and_validates_them() {
    let out = run(env!("CARGO_BIN_EXE_fit_model"), &[]);
    assert_usage_error(&out, "--function", "missing --function");
    let out = run(
        env!("CARGO_BIN_EXE_fit_model"),
        &["--function", "nope", "--out", "/tmp/x.json"],
    );
    assert_usage_error(&out, "unknown function", "unknown function");
    let out = run(
        env!("CARGO_BIN_EXE_fit_model"),
        &["--function", "2", "--out", "/tmp/x.json", "--family", "q"],
    );
    assert_usage_error(&out, "unknown family", "unknown family");
    let out = run(
        env!("CARGO_BIN_EXE_fit_model"),
        &["--function", "2", "--out", "/tmp/x.json", "--n", "0"],
    );
    assert_usage_error(&out, "--n", "zero n");
}
