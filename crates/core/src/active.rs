//! Active-learning REDS — the future-work direction of §10: instead of
//! spending the whole simulation budget on one up-front space-filling
//! design, spend part of it iteratively on the points where the
//! intermediate metamodel is most *uncertain*, then run REDS as usual.
//!
//! The loop is classic pool-based uncertainty sampling (Settles 2009,
//! [86] in the paper): train `AM` on the labeled set, score a large
//! candidate pool by `|f^am(x) − ½|` (distance from the decision
//! boundary), simulate the most uncertain batch, repeat. The paper
//! suggests exactly this combination ("Combining REDS with active
//! learning is another future research direction").

use rand::rngs::StdRng;
use rand::Rng;
use reds_data::Dataset;
use reds_sampling::latin_hypercube;
use reds_subgroup::{SdResult, SubgroupDiscovery};

use crate::{Reds, RedsError};

/// A simulation model: the expensive labeling oracle of scenario
/// discovery. Implemented by any closure `(point, rng) -> label`.
pub trait Simulator {
    /// Runs one simulation at `x`, returning the binary outcome.
    fn simulate(&self, x: &[f64], rng: &mut StdRng) -> f64;
}

impl<F> Simulator for F
where
    F: Fn(&[f64], &mut StdRng) -> f64,
{
    fn simulate(&self, x: &[f64], rng: &mut StdRng) -> f64 {
        self(x, rng)
    }
}

/// Budget split of the active-learning loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveConfig {
    /// Simulations spent on the initial Latin-hypercube design.
    pub initial_n: usize,
    /// Simulations added per uncertainty-sampling round.
    pub batch_size: usize,
    /// Number of uncertainty-sampling rounds.
    pub rounds: usize,
    /// Size of the uniform candidate pool scored each round.
    pub pool_size: usize,
}

impl Default for ActiveConfig {
    fn default() -> Self {
        Self {
            initial_n: 200,
            batch_size: 50,
            rounds: 4,
            pool_size: 5_000,
        }
    }
}

impl ActiveConfig {
    /// Total number of simulations the loop will run.
    pub fn total_budget(&self) -> usize {
        self.initial_n + self.batch_size * self.rounds
    }
}

/// Active-learning REDS: an uncertainty-sampling acquisition loop
/// wrapped around a [`Reds`] pipeline.
pub struct ActiveReds {
    reds: Reds,
    config: ActiveConfig,
}

impl ActiveReds {
    /// Combines a REDS pipeline with an acquisition configuration.
    pub fn new(reds: Reds, config: ActiveConfig) -> Self {
        assert!(config.initial_n >= 2, "need at least two initial runs");
        assert!(config.pool_size > 0, "candidate pool must be non-empty");
        Self { reds, config }
    }

    /// The acquisition configuration.
    pub fn config(&self) -> &ActiveConfig {
        &self.config
    }

    /// Runs the acquisition loop, returning the labeled dataset it
    /// assembled (callers can inspect how the budget was spent).
    ///
    /// # Errors
    ///
    /// Propagates [`RedsError::EmptyTrainingData`] (cannot happen with a
    /// valid config, but metamodel training is fallible by contract).
    pub fn acquire(
        &self,
        m: usize,
        sim: &dyn Simulator,
        rng: &mut StdRng,
    ) -> Result<Dataset, RedsError> {
        let design = latin_hypercube(self.config.initial_n, m, rng);
        let mut data = Dataset::from_fn(design, m, |x| {
            // Split borrows: labeling needs &mut rng while from_fn holds
            // the closure, so thread a local binding through.
            sim.simulate(x, rng)
        })
        .expect("LHS design has consistent shape");
        for _ in 0..self.config.rounds {
            if self.config.batch_size == 0 {
                break;
            }
            let model = self.reds.train_metamodel(&data, rng)?;
            // Score a fresh uniform pool by decision-boundary distance.
            let pool: Vec<f64> = (0..self.config.pool_size * m).map(|_| rng.gen()).collect();
            let mut scored: Vec<(f64, usize)> = pool
                .chunks_exact(m)
                .enumerate()
                .map(|(i, x)| ((model.predict(x) - 0.5).abs(), i))
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0));
            for &(_, i) in scored.iter().take(self.config.batch_size) {
                let x = &pool[i * m..(i + 1) * m];
                let y = sim.simulate(x, rng);
                data.push(x, y);
            }
        }
        Ok(data)
    }

    /// Full pipeline: acquire simulations actively, then run REDS with
    /// the given subgroup-discovery algorithm on the assembled data.
    ///
    /// # Errors
    ///
    /// Propagates any [`RedsError`] from the inner pipeline.
    pub fn run(
        &self,
        m: usize,
        sim: &dyn Simulator,
        sd: &dyn SubgroupDiscovery,
        rng: &mut StdRng,
    ) -> Result<(SdResult, Dataset), RedsError> {
        let data = self.acquire(m, sim, rng)?;
        let result = self.reds.run(&data, sd, rng)?;
        Ok((result, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RedsConfig;
    use rand::SeedableRng;
    use reds_metamodel::RandomForestParams;
    use reds_subgroup::Prim;

    fn corner(x: &[f64], _rng: &mut StdRng) -> f64 {
        if x[0] > 0.6 && x[1] > 0.6 {
            1.0
        } else {
            0.0
        }
    }

    fn quick_reds(l: usize) -> Reds {
        Reds::random_forest(
            RandomForestParams {
                n_trees: 50,
                ..Default::default()
            },
            RedsConfig::default().with_l(l),
        )
    }

    fn quick_config() -> ActiveConfig {
        ActiveConfig {
            initial_n: 60,
            batch_size: 20,
            rounds: 3,
            pool_size: 1_000,
        }
    }

    #[test]
    fn budget_accounting_is_exact() {
        let cfg = quick_config();
        assert_eq!(cfg.total_budget(), 120);
        let active = ActiveReds::new(quick_reds(1_000), cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let data = active
            .acquire(2, &corner, &mut rng)
            .expect("acquisition runs");
        assert_eq!(data.n(), 120);
    }

    #[test]
    fn acquisition_concentrates_near_the_boundary() {
        let active = ActiveReds::new(quick_reds(1_000), quick_config());
        let mut rng = StdRng::seed_from_u64(2);
        let data = active
            .acquire(2, &corner, &mut rng)
            .expect("acquisition runs");
        // The actively chosen tail of the dataset should lie closer to
        // the corner boundary (0.6, 0.6) than uniform points would.
        let boundary_dist = |x: &[f64]| {
            let dx = (x[0] - 0.6).abs();
            let dy = (x[1] - 0.6).abs();
            dx.min(dy)
        };
        let initial: Vec<f64> = (0..60).map(|i| boundary_dist(data.point(i))).collect();
        let acquired: Vec<f64> = (60..120).map(|i| boundary_dist(data.point(i))).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&acquired) < mean(&initial),
            "acquired points ({:.3}) should hug the boundary better than LHS ({:.3})",
            mean(&acquired),
            mean(&initial)
        );
    }

    #[test]
    fn full_active_pipeline_finds_the_corner() {
        let active = ActiveReds::new(quick_reds(3_000), quick_config());
        let mut rng = StdRng::seed_from_u64(3);
        let (result, data) = active
            .run(2, &corner, &Prim::default(), &mut rng)
            .expect("pipeline runs");
        assert_eq!(data.n(), 120);
        let b = result.last_box().expect("non-empty");
        // Evaluate on a fresh uniform grid.
        let mut hits = 0.0;
        let mut covered = 0.0;
        for i in 0..50 {
            for j in 0..50 {
                let x = [i as f64 / 49.0, j as f64 / 49.0];
                if b.contains(&x) {
                    covered += 1.0;
                    hits += corner(&x, &mut rng);
                }
            }
        }
        assert!(covered > 0.0);
        assert!(hits / covered > 0.8, "precision {}", hits / covered);
    }

    #[test]
    fn zero_rounds_degenerates_to_plain_lhs() {
        let cfg = ActiveConfig {
            rounds: 0,
            ..quick_config()
        };
        let active = ActiveReds::new(quick_reds(500), cfg);
        let mut rng = StdRng::seed_from_u64(4);
        let data = active
            .acquire(2, &corner, &mut rng)
            .expect("acquisition runs");
        assert_eq!(data.n(), 60);
    }

    #[test]
    #[should_panic(expected = "two initial runs")]
    fn degenerate_config_panics() {
        let cfg = ActiveConfig {
            initial_n: 1,
            ..Default::default()
        };
        let _ = ActiveReds::new(quick_reds(100), cfg);
    }
}
