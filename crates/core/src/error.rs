use std::fmt;

/// Errors of the REDS pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedsError {
    /// Training data is empty — no metamodel can be fitted.
    EmptyTrainingData,
    /// The requested pseudo-label sample size is zero.
    ZeroNewPoints,
    /// The unlabeled pool handed to the semi-supervised entry point has
    /// the wrong width.
    PoolShapeMismatch {
        /// Width implied by the pool buffer.
        pool_len: usize,
        /// Expected number of columns.
        m: usize,
    },
    /// A point handed to the pipeline contains NaN (datasets reject
    /// NaN input coordinates).
    NanInPoints {
        /// Row of the offending coordinate.
        row: usize,
        /// Column of the offending coordinate.
        column: usize,
    },
}

impl fmt::Display for RedsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyTrainingData => write!(f, "cannot run REDS on empty training data"),
            Self::ZeroNewPoints => write!(f, "REDS needs L > 0 new points"),
            Self::PoolShapeMismatch { pool_len, m } => write!(
                f,
                "unlabeled pool of {pool_len} values is not a multiple of m = {m}"
            ),
            Self::NanInPoints { row, column } => {
                write!(f, "NaN input coordinate at row {row}, column {column}")
            }
        }
    }
}

impl std::error::Error for RedsError {}

/// Errors of the streaming pipeline entry points
/// (`Reds::discover_streaming`): either an ordinary pipeline error or a
/// failure of the bounded-memory machinery (spill I/O, corrupt runs,
/// an unstreamable sampling design, …).
#[derive(Debug)]
pub enum StreamingError {
    /// The pipeline-level failure the in-memory path would also report.
    Pipeline(RedsError),
    /// A failure specific to the streaming machinery.
    Stream(reds_stream::StreamError),
    /// A failure of the out-of-core store (artifact verification,
    /// paged I/O, mask scratch file).
    OutOfCore(reds_ooc::OocError),
    /// The subgroup algorithm (or its configuration — e.g. PRIM with
    /// pasting) has no out-of-core code path.
    NoPagedPath {
        /// `SubgroupDiscovery::name` of the algorithm.
        algorithm: &'static str,
    },
}

impl std::fmt::Display for StreamingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Pipeline(e) => e.fmt(f),
            Self::Stream(e) => e.fmt(f),
            Self::OutOfCore(e) => e.fmt(f),
            Self::NoPagedPath { algorithm } => {
                write!(f, "algorithm {algorithm} has no out-of-core code path")
            }
        }
    }
}

impl std::error::Error for StreamingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Pipeline(e) => Some(e),
            Self::Stream(e) => Some(e),
            Self::OutOfCore(e) => Some(e),
            Self::NoPagedPath { .. } => None,
        }
    }
}

impl From<RedsError> for StreamingError {
    fn from(e: RedsError) -> Self {
        Self::Pipeline(e)
    }
}

impl From<reds_stream::StreamError> for StreamingError {
    fn from(e: reds_stream::StreamError) -> Self {
        Self::Stream(e)
    }
}

impl From<reds_ooc::OocError> for StreamingError {
    fn from(e: reds_ooc::OocError) -> Self {
        Self::OutOfCore(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(RedsError::EmptyTrainingData.to_string().contains("empty"));
        assert!(RedsError::ZeroNewPoints.to_string().contains("L > 0"));
        assert!(RedsError::PoolShapeMismatch { pool_len: 7, m: 2 }
            .to_string()
            .contains("7"));
    }
}
