use std::fmt;

/// Errors of the REDS pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedsError {
    /// Training data is empty — no metamodel can be fitted.
    EmptyTrainingData,
    /// The requested pseudo-label sample size is zero.
    ZeroNewPoints,
    /// The unlabeled pool handed to the semi-supervised entry point has
    /// the wrong width.
    PoolShapeMismatch {
        /// Width implied by the pool buffer.
        pool_len: usize,
        /// Expected number of columns.
        m: usize,
    },
    /// A point handed to the pipeline contains NaN (datasets reject
    /// NaN input coordinates).
    NanInPoints {
        /// Row of the offending coordinate.
        row: usize,
        /// Column of the offending coordinate.
        column: usize,
    },
}

impl fmt::Display for RedsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyTrainingData => write!(f, "cannot run REDS on empty training data"),
            Self::ZeroNewPoints => write!(f, "REDS needs L > 0 new points"),
            Self::PoolShapeMismatch { pool_len, m } => write!(
                f,
                "unlabeled pool of {pool_len} values is not a multiple of m = {m}"
            ),
            Self::NanInPoints { row, column } => {
                write!(f, "NaN input coordinate at row {row}, column {column}")
            }
        }
    }
}

impl std::error::Error for RedsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(RedsError::EmptyTrainingData.to_string().contains("empty"));
        assert!(RedsError::ZeroNewPoints.to_string().contains("L > 0"));
        assert!(RedsError::PoolShapeMismatch { pool_len: 7, m: 2 }
            .to_string()
            .contains("7"));
    }
}
