//! REDS — Rule Extraction for Discovering Scenarios (Algorithm 4).
//!
//! The paper's contribution: instead of running a subgroup-discovery
//! algorithm directly on the few available simulation results `D`, REDS
//!
//! 1. trains an accurate metamodel `AM` on `D`;
//! 2. samples `L ≫ N` new points from the same input distribution;
//! 3. pseudo-labels them with the metamodel — hard labels
//!    `I(f^am(x) > bnd)`, or the raw probabilities `f^am(x)` in the
//!    "p" variants (§6.1);
//! 4. hands the pseudo-labelled `D_new` to a conventional
//!    subgroup-discovery algorithm.
//!
//! §6.2 shows why this wins: the subgroup algorithm's per-box mean
//! estimates switch from high-variance Bernoulli averages over few
//! simulated points (`Var = μ(1−μ)/n'`) to low-variance averages over
//! arbitrarily many metamodel labels, whose only error is the metamodel's
//! bias. Proposition 1 adds that probability labels have pointwise lower
//! variance than hard labels even at `L = N`.
//!
//! [`ActiveReds`] additionally implements the paper's §10 future-work
//! proposal: an uncertainty-sampling acquisition loop that spends part
//! of the simulation budget where the metamodel is least certain.

#![warn(missing_docs)]

mod active;
mod error;
mod pipeline;

pub use active::{ActiveConfig, ActiveReds, Simulator};
pub use error::{RedsError, StreamingError};
pub use pipeline::{NewPointSampler, Reds, RedsConfig};
// Streaming configuration re-exported so `Reds::discover_streaming`
// callers need no direct `reds-stream` dependency.
pub use reds_stream::{StreamConfig, StreamError, DEFAULT_CHUNK_ROWS};
// Out-of-core configuration re-exported for `Reds::discover_out_of_core`.
pub use reds_ooc::{OocConfig, OocError, OocPool, OocStats, DEFAULT_CACHE_BYTES};
