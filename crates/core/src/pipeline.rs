//! The REDS pipeline (Algorithm 4).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::Dataset;
use reds_metamodel::{GbdtParams, Metamodel, RandomForestParams, SvmParams, Trainer};
use reds_ooc::{OocConfig, OocPool};
use reds_sampling::{logit_normal, mixed_design, uniform};
use reds_stream::{
    stream_art, stream_pool, Labeling, SamplerSource, SliceSource, StreamConfig, StreamError,
    StreamSampler,
};
use reds_subgroup::{SdResult, SubgroupDiscovery};

use crate::{RedsError, StreamingError};

/// A unique scratch path for the pool artifact of one out-of-core run,
/// under the stream config's spill parent (or the system temp dir).
fn scratch_artifact_path(stream: &StreamConfig) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let parent = stream.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    parent.join(format!("reds-ooc-{}-{seq}.redsart", std::process::id()))
}

/// Removes the scratch artifact when the run ends, error paths
/// included (the in-flight write itself is covered by `ArtWriter`'s
/// own drop guard).
struct ScratchFile(PathBuf);

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Distribution from which REDS draws the `L` new points (Algorithm 4,
/// line 3). Must match the distribution `p(x)` of the original data —
/// the statistical argument of §6.2 relies on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NewPointSampler {
    /// i.i.d. uniform on `[0,1]^M` — the deep-uncertainty default.
    Uniform,
    /// Even-indexed inputs on the discrete grid `{0.1,…,0.9}`, odd ones
    /// continuous (the mixed-inputs experiment, §9.1.2).
    MixedEven,
    /// i.i.d. logit-normal per coordinate (the semi-supervised
    /// experiment, §9.4).
    LogitNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
}

impl NewPointSampler {
    fn sample(&self, n: usize, m: usize, rng: &mut StdRng) -> Vec<f64> {
        match *self {
            Self::Uniform => uniform(n, m, rng),
            Self::MixedEven => mixed_design(n, m, rng),
            Self::LogitNormal { mu, sigma } => logit_normal(n, m, mu, sigma, rng),
        }
    }

    /// The chunkable equivalent of this sampler, when one exists.
    /// `MixedEven` has none: its Latin-hypercube half stratifies over
    /// the *total* row count, so chunked generation cannot reproduce
    /// the monolithic design.
    fn streamable(&self) -> Result<StreamSampler, StreamError> {
        match *self {
            Self::Uniform => Ok(StreamSampler::Uniform),
            Self::LogitNormal { mu, sigma } => Ok(StreamSampler::LogitNormal { mu, sigma }),
            Self::MixedEven => Err(StreamError::UnstreamableSampler {
                name: "mixed-inputs (Latin hypercube)",
            }),
        }
    }
}

/// REDS configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RedsConfig {
    /// Number of pseudo-labelled points `L` (paper defaults: 10⁵ with
    /// PRIM, 10⁴ with BI — Table 2).
    pub l: usize,
    /// Hard-label threshold `bnd` on the metamodel output.
    pub bnd: f64,
    /// Use raw metamodel probabilities instead of hard labels — the "p"
    /// variants (`y_new = f^am(x)`, §6.1).
    pub probability_labels: bool,
    /// Distribution of the new points.
    pub sampler: NewPointSampler,
}

impl Default for RedsConfig {
    fn default() -> Self {
        Self {
            l: 100_000,
            bnd: 0.5,
            probability_labels: false,
            sampler: NewPointSampler::Uniform,
        }
    }
}

impl RedsConfig {
    /// Sets the number of new points `L`.
    pub fn with_l(mut self, l: usize) -> Self {
        self.l = l;
        self
    }

    /// Switches to probability pseudo-labels (the "p" variants).
    pub fn with_probability_labels(mut self) -> Self {
        self.probability_labels = true;
        self
    }

    /// Sets the new-point distribution.
    pub fn with_sampler(mut self, sampler: NewPointSampler) -> Self {
        self.sampler = sampler;
        self
    }
}

/// The REDS scenario-discovery pipeline: a metamodel trainer plus a
/// resampling configuration, applied to any subgroup-discovery
/// algorithm.
pub struct Reds {
    trainer: Box<dyn Trainer>,
    config: RedsConfig,
}

impl Reds {
    /// REDS with an arbitrary metamodel trainer.
    pub fn new(trainer: Box<dyn Trainer>, config: RedsConfig) -> Self {
        Self { trainer, config }
    }

    /// REDS with a random-forest metamodel ("Rf" family).
    pub fn random_forest(params: RandomForestParams, config: RedsConfig) -> Self {
        Self::new(Box::new(params), config)
    }

    /// REDS with an XGBoost-style boosted-tree metamodel ("Rx" family).
    pub fn xgboost(params: GbdtParams, config: RedsConfig) -> Self {
        Self::new(Box::new(params), config)
    }

    /// REDS with an RBF-SVM metamodel ("Rs" family; hard labels only).
    pub fn svm(params: SvmParams, config: RedsConfig) -> Self {
        Self::new(Box::new(params), config)
    }

    /// The configuration in use.
    pub fn config(&self) -> &RedsConfig {
        &self.config
    }

    /// Metamodel family tag ("f", "x", or "s").
    pub fn metamodel_tag(&self) -> &'static str {
        self.trainer.tag()
    }

    /// Trains the metamodel on `d` (Algorithm 4, line 2). Exposed so
    /// callers can inspect or reuse `f^am`.
    pub fn train_metamodel(
        &self,
        d: &Dataset,
        rng: &mut StdRng,
    ) -> Result<Box<dyn Metamodel>, RedsError> {
        if d.is_empty() {
            return Err(RedsError::EmptyTrainingData);
        }
        Ok(self.trainer.train(d, rng))
    }

    /// Pseudo-labels `points` with a fitted metamodel (lines 4–6).
    ///
    /// Labeling all `L` points is a single [`Metamodel::predict_batch`]
    /// call rather than `L` virtual dispatches: ensemble models override
    /// `predict_batch` with cache-friendly tree-major kernels that fan
    /// out across threads and dispatch per call to the runtime-selected
    /// SIMD backend (`reds_metamodel::kernels`, scalar ≡ AVX2 bit for
    /// bit), which is the hot path at the paper's default `L = 10⁵`.
    fn pseudo_label(
        &self,
        model: &dyn Metamodel,
        points: Vec<f64>,
        m: usize,
    ) -> Result<Dataset, RedsError> {
        if !points.len().is_multiple_of(m) {
            return Err(RedsError::PoolShapeMismatch {
                pool_len: points.len(),
                m,
            });
        }
        // Datasets reject NaN coordinates; surface that as a pipeline
        // error instead of panicking below (user-supplied pools can
        // contain anything).
        if let Some(at) = points.iter().position(|v| v.is_nan()) {
            return Err(RedsError::NanInPoints {
                row: at / m,
                column: at % m,
            });
        }
        // One definition of the label mapping, shared with the
        // streaming path — the bit-identity contract between `run` and
        // `discover_streaming` hangs on these two paths never drifting.
        let labeling = self.labeling();
        let labels = model
            .predict_batch(&points, m)
            .into_iter()
            .map(|p| labeling.apply(p))
            .collect();
        Ok(Dataset::new(points, labels, m).expect("shape and finiteness checked above"))
    }

    /// Runs the full REDS pipeline (Algorithm 4): train `AM` on `d`,
    /// pseudo-label `L` fresh points, run `sd` on them.
    ///
    /// # Errors
    ///
    /// [`RedsError::EmptyTrainingData`] when `d` is empty;
    /// [`RedsError::ZeroNewPoints`] when `config.l == 0`.
    pub fn run(
        &self,
        d: &Dataset,
        sd: &dyn SubgroupDiscovery,
        rng: &mut StdRng,
    ) -> Result<SdResult, RedsError> {
        if self.config.l == 0 {
            return Err(RedsError::ZeroNewPoints);
        }
        let model = self.train_metamodel(d, rng)?;
        let points = self.config.sampler.sample(self.config.l, d.m(), rng);
        let d_new = self.pseudo_label(model.as_ref(), points, d.m())?;
        let mut sd_rng = StdRng::seed_from_u64(rng.gen());
        // The validation data stays the *original* simulated dataset
        // (`D_val = D`, §8.5): PRIM's stopping rule and best-box choice
        // are anchored to real labels, so the pseudo-labelled search
        // cannot shrink the box below the support of the evidence.
        Ok(sd.discover(&d_new, d, &mut sd_rng))
    }

    /// The labeling rule of this configuration (hard threshold or the
    /// probability "p" variant), shared with the streaming path so
    /// both produce bit-identical pseudo-labels.
    fn labeling(&self) -> Labeling {
        if self.config.probability_labels {
            Labeling::Probability
        } else {
            Labeling::Hard {
                bnd: self.config.bnd,
            }
        }
    }

    /// Streaming REDS (Algorithm 4 in bounded memory): identical to
    /// [`Reds::run`] — bit for bit, for every chunk size — but the `L`
    /// new points are generated, pseudo-labeled, and argsorted in
    /// chunks of `stream.chunk_rows` rows, with the per-column sort
    /// runs spilled to disk and k-way merged. The full `L × M` point
    /// buffer is materialized only once, at the final hand-off to the
    /// subgroup-discovery algorithm (which needs random access to the
    /// values); the construction pipeline itself never holds more than
    /// one chunk plus `O(runs)` merge state.
    ///
    /// The discovered boxes are bit-identical to [`Reds::run`] with the
    /// same `rng` because (1) the streamable samplers draw
    /// element-sequentially, so chunked generation replays the
    /// monolithic draw stream and leaves `rng` in the same state;
    /// (2) `predict_batch` outputs are per-row, independent of batch
    /// composition; (3) the out-of-core merge reproduces
    /// `SortedView::new`'s `(value, row)` order exactly, and the
    /// algorithms consume it through
    /// [`SubgroupDiscovery::discover_presorted`].
    ///
    /// # Errors
    ///
    /// Everything [`Reds::run`] reports (wrapped in
    /// [`StreamingError::Pipeline`]), plus
    /// [`reds_stream::StreamError::UnstreamableSampler`] for the
    /// mixed-inputs design and spill-store failures
    /// ([`StreamingError::Stream`]).
    pub fn discover_streaming(
        &self,
        d: &Dataset,
        sd: &dyn SubgroupDiscovery,
        rng: &mut StdRng,
        stream: &StreamConfig,
    ) -> Result<SdResult, StreamingError> {
        if self.config.l == 0 {
            return Err(RedsError::ZeroNewPoints.into());
        }
        let model = self.train_metamodel(d, rng)?;
        let sampler = self.config.sampler.streamable()?;
        let mut source = SamplerSource::new(sampler, self.config.l, d.m(), rng.clone());
        let pool = stream_pool(
            &mut source,
            &mut |points, m| Ok(model.predict_batch(points, m)),
            self.labeling(),
            stream,
        )?;
        // Adopt the advanced generator state so the SD seed below (and
        // anything the caller draws later) matches the monolithic path.
        *rng = source.into_rng();
        let mut sd_rng = StdRng::seed_from_u64(rng.gen());
        Ok(sd.discover_presorted(&pool.dataset, pool.view, d, &mut sd_rng))
    }

    /// Out-of-core REDS: like [`Reds::discover_streaming`], but the
    /// pseudo-labeled pool is **never materialized in memory at all**.
    /// The streaming pipeline writes it to a `.redsart` artifact
    /// (sorted columns with per-page key fences), and subgroup
    /// discovery runs against a paged, rank-addressable column store
    /// over that artifact ([`reds_ooc::OocPool`]) whose resident set is
    /// bounded by [`OocConfig::cache_bytes`] — independent of `L`. The
    /// validation data `d` (the paper's `D_val = D`) stays in memory.
    ///
    /// The discovered boxes are bit-identical to [`Reds::run`] and
    /// [`Reds::discover_streaming`] with the same `rng`: the store
    /// serves every scan in the exact `(value, row)` /
    /// ascending-row orders of the in-memory `SortedView` path, and
    /// the generic peel/search implementations keep every float
    /// summation in the same association.
    ///
    /// The artifact and the membership-mask scratch file live beside
    /// the spill directory (`stream.spill_dir`, defaulting to the
    /// system temp dir) and are removed when the run ends, on error
    /// paths included.
    ///
    /// # Errors
    ///
    /// Everything [`Reds::discover_streaming`] reports, plus
    /// [`StreamingError::OutOfCore`] for artifact/paging failures and
    /// [`StreamingError::NoPagedPath`] when `sd` (or its configuration
    /// — e.g. PRIM with pasting) cannot run without random access to
    /// the full pool.
    pub fn discover_out_of_core(
        &self,
        d: &Dataset,
        sd: &dyn SubgroupDiscovery,
        rng: &mut StdRng,
        stream: &StreamConfig,
        ooc: &OocConfig,
    ) -> Result<SdResult, StreamingError> {
        if self.config.l == 0 {
            return Err(RedsError::ZeroNewPoints.into());
        }
        let model = self.train_metamodel(d, rng)?;
        let sampler = self.config.sampler.streamable()?;
        let mut source = SamplerSource::new(sampler, self.config.l, d.m(), rng.clone());
        let art_path = scratch_artifact_path(stream);
        if let Some(parent) = art_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let _guard = ScratchFile(art_path.clone());
        stream_art(
            &mut source,
            &mut |points, m| Ok(model.predict_batch(points, m)),
            self.labeling(),
            stream,
            &art_path,
            ooc.page_rows,
        )?;
        // Adopt the advanced generator state so the SD seed below (and
        // anything the caller draws later) matches the monolithic path.
        *rng = source.into_rng();
        let mut sd_rng = StdRng::seed_from_u64(rng.gen());
        let mut pool = OocPool::open(&art_path, ooc)?;
        let result = sd.discover_paged(&mut pool, d, &mut sd_rng);
        drop(pool);
        result.ok_or(StreamingError::NoPagedPath {
            algorithm: sd.name(),
        })
    }

    /// Streaming variant of [`Reds::run_on_pool`]: pseudo-labels a
    /// caller-provided pool chunk by chunk with the out-of-core sort.
    /// Bit-identical to [`Reds::run_on_pool`] for every chunk size.
    ///
    /// # Errors
    ///
    /// As [`Reds::run_on_pool`], with shape/NaN problems reported
    /// through [`StreamingError::Stream`].
    pub fn discover_streaming_on_pool(
        &self,
        d: &Dataset,
        pool: &[f64],
        sd: &dyn SubgroupDiscovery,
        rng: &mut StdRng,
        stream: &StreamConfig,
    ) -> Result<SdResult, StreamingError> {
        if pool.is_empty() {
            return Err(RedsError::ZeroNewPoints.into());
        }
        let model = self.train_metamodel(d, rng)?;
        let mut source = SliceSource::new(pool, d.m())?;
        let streamed = stream_pool(
            &mut source,
            &mut |points, m| Ok(model.predict_batch(points, m)),
            self.labeling(),
            stream,
        )?;
        let mut sd_rng = StdRng::seed_from_u64(rng.gen());
        Ok(sd.discover_presorted(&streamed.dataset, streamed.view, d, &mut sd_rng))
    }

    /// Semi-supervised REDS (§6.1, §9.4): instead of sampling fresh
    /// points, pseudo-labels a caller-provided unlabeled pool drawn from
    /// the same `p(x)` as `d` and runs `sd` on it.
    ///
    /// # Errors
    ///
    /// [`RedsError::EmptyTrainingData`] when `d` is empty;
    /// [`RedsError::ZeroNewPoints`] when the pool is empty;
    /// [`RedsError::PoolShapeMismatch`] when the pool width disagrees
    /// with `d.m()`.
    pub fn run_on_pool(
        &self,
        d: &Dataset,
        pool: &[f64],
        sd: &dyn SubgroupDiscovery,
        rng: &mut StdRng,
    ) -> Result<SdResult, RedsError> {
        if pool.is_empty() {
            return Err(RedsError::ZeroNewPoints);
        }
        let model = self.train_metamodel(d, rng)?;
        let d_new = self.pseudo_label(model.as_ref(), pool.to_vec(), d.m())?;
        let mut sd_rng = StdRng::seed_from_u64(rng.gen());
        Ok(sd.discover(&d_new, d, &mut sd_rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reds_subgroup::{BestInterval, Prim};

    fn corner_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * 2).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
            if x[0] > 0.55 && x[1] > 0.55 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    fn quick_forest() -> RandomForestParams {
        RandomForestParams {
            n_trees: 50,
            ..Default::default()
        }
    }

    #[test]
    fn reds_with_prim_finds_the_corner() {
        let d = corner_data(200, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default().with_l(3_000));
        let result = reds.run(&d, &Prim::default(), &mut rng).unwrap();
        let b = result.last_box().unwrap();
        let test = corner_data(2_000, 3);
        let precision = b.mean_inside(&test).unwrap();
        assert!(precision > 0.8, "test precision {precision}");
    }

    #[test]
    fn probability_labels_produce_soft_dataset_behaviour() {
        let d = corner_data(150, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let reds = Reds::random_forest(
            quick_forest(),
            RedsConfig::default()
                .with_l(2_000)
                .with_probability_labels(),
        );
        let result = reds.run(&d, &Prim::default(), &mut rng).unwrap();
        assert!(!result.boxes.is_empty());
    }

    #[test]
    fn reds_with_bi_returns_single_box() {
        let d = corner_data(200, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let reds = Reds::xgboost(
            GbdtParams {
                n_rounds: 40,
                ..Default::default()
            },
            RedsConfig::default().with_l(2_000),
        );
        let result = reds.run(&d, &BestInterval::default(), &mut rng).unwrap();
        assert_eq!(result.boxes.len(), 1);
    }

    #[test]
    fn svm_variant_runs() {
        let d = corner_data(150, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let reds = Reds::svm(SvmParams::default(), RedsConfig::default().with_l(1_000));
        let result = reds.run(&d, &Prim::default(), &mut rng).unwrap();
        assert!(!result.boxes.is_empty());
        assert_eq!(reds.metamodel_tag(), "s");
    }

    #[test]
    fn empty_data_errors() {
        let d = Dataset::empty(2).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default());
        assert!(matches!(
            reds.run(&d, &Prim::default(), &mut rng),
            Err(RedsError::EmptyTrainingData)
        ));
    }

    #[test]
    fn zero_l_errors() {
        let d = corner_data(50, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default().with_l(0));
        assert!(matches!(
            reds.run(&d, &Prim::default(), &mut rng),
            Err(RedsError::ZeroNewPoints)
        ));
    }

    #[test]
    fn pool_with_nan_returns_an_error_not_a_panic() {
        let d = corner_data(60, 20);
        let mut rng = StdRng::seed_from_u64(21);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default());
        let mut pool = vec![0.5; 10];
        pool[3] = f64::NAN;
        assert!(matches!(
            reds.run_on_pool(&d, &pool, &Prim::default(), &mut rng),
            Err(RedsError::NanInPoints { row: 1, column: 1 })
        ));
    }

    #[test]
    fn pool_entry_point_validates_shape() {
        let d = corner_data(80, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default());
        let bad_pool = vec![0.5; 5]; // not a multiple of m = 2
        assert!(matches!(
            reds.run_on_pool(&d, &bad_pool, &Prim::default(), &mut rng),
            Err(RedsError::PoolShapeMismatch { .. })
        ));
        let pool = uniform(500, 2, &mut rng);
        let result = reds
            .run_on_pool(&d, &pool, &Prim::default(), &mut rng)
            .unwrap();
        assert!(!result.boxes.is_empty());
    }

    #[test]
    fn mixed_sampler_respects_discrete_grid() {
        let mut rng = StdRng::seed_from_u64(15);
        let pts = NewPointSampler::MixedEven.sample(100, 4, &mut rng);
        for row in pts.chunks_exact(4) {
            assert!(reds_sampling::DISCRETE_LEVELS
                .iter()
                .any(|&l| (row[0] - l).abs() < 1e-12));
        }
    }

    fn bounds_bits(result: &SdResult) -> Vec<(u64, u64)> {
        result
            .boxes
            .iter()
            .flat_map(|b| {
                (0..b.m()).map(|j| {
                    let (lo, hi) = b.bound(j);
                    (lo.to_bits(), hi.to_bits())
                })
            })
            .collect()
    }

    #[test]
    fn streaming_discover_is_bit_identical_to_run() {
        let d = corner_data(150, 30);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default().with_l(2_000));
        let reference = reds
            .run(&d, &Prim::default(), &mut StdRng::seed_from_u64(31))
            .unwrap();
        for chunk in [1usize, 97, 2_000, 5_000] {
            let cfg = StreamConfig::new().with_chunk_rows(chunk);
            let streamed = reds
                .discover_streaming(&d, &Prim::default(), &mut StdRng::seed_from_u64(31), &cfg)
                .unwrap();
            assert_eq!(
                bounds_bits(&reference),
                bounds_bits(&streamed),
                "chunk = {chunk}"
            );
        }
    }

    #[test]
    fn streaming_leaves_the_rng_in_the_monolithic_state() {
        let d = corner_data(100, 40);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default().with_l(500));
        let mut rng_a = StdRng::seed_from_u64(41);
        let mut rng_b = StdRng::seed_from_u64(41);
        reds.run(&d, &Prim::default(), &mut rng_a).unwrap();
        reds.discover_streaming(
            &d,
            &Prim::default(),
            &mut rng_b,
            &StreamConfig::new().with_chunk_rows(37),
        )
        .unwrap();
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn streaming_on_pool_matches_run_on_pool() {
        let d = corner_data(90, 50);
        let mut rng = StdRng::seed_from_u64(51);
        let pool = uniform(700, 2, &mut rng);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default());
        let reference = reds
            .run_on_pool(&d, &pool, &Prim::default(), &mut StdRng::seed_from_u64(52))
            .unwrap();
        let streamed = reds
            .discover_streaming_on_pool(
                &d,
                &pool,
                &Prim::default(),
                &mut StdRng::seed_from_u64(52),
                &StreamConfig::new().with_chunk_rows(64),
            )
            .unwrap();
        assert_eq!(bounds_bits(&reference), bounds_bits(&streamed));
    }

    #[test]
    fn mixed_design_is_rejected_as_unstreamable() {
        let d = corner_data(80, 60);
        let reds = Reds::random_forest(
            quick_forest(),
            RedsConfig::default()
                .with_l(500)
                .with_sampler(NewPointSampler::MixedEven),
        );
        let err = reds
            .discover_streaming(
                &d,
                &Prim::default(),
                &mut StdRng::seed_from_u64(61),
                &StreamConfig::new(),
            )
            .expect_err("LHS-based designs cannot stream");
        assert!(matches!(
            err,
            crate::StreamingError::Stream(StreamError::UnstreamableSampler { .. })
        ));
    }

    #[test]
    fn streaming_nan_pool_reports_position() {
        let d = corner_data(60, 70);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default());
        let mut pool = vec![0.5; 10];
        pool[7] = f64::NAN;
        let err = reds
            .discover_streaming_on_pool(
                &d,
                &pool,
                &Prim::default(),
                &mut StdRng::seed_from_u64(71),
                &StreamConfig::new().with_chunk_rows(2),
            )
            .expect_err("NaN pool");
        assert!(matches!(
            err,
            crate::StreamingError::Stream(StreamError::NanInPoint { row: 3, column: 1 })
        ));
    }

    #[test]
    fn out_of_core_discover_is_bit_identical_to_run() {
        let d = corner_data(150, 80);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default().with_l(2_000));
        for sd in [
            &Prim::default() as &dyn SubgroupDiscovery,
            &BestInterval::default(),
        ] {
            let reference = reds.run(&d, sd, &mut StdRng::seed_from_u64(81)).unwrap();
            // Pathological page sizes and a tiny cache stress paging;
            // bit-identity must hold regardless.
            for (page_rows, cache) in [(1u32, 1usize << 10), (257, 64 << 10), (4096, 48 << 20)] {
                let ooc = OocConfig::new()
                    .with_page_rows(page_rows)
                    .with_cache_bytes(cache);
                let paged = reds
                    .discover_out_of_core(
                        &d,
                        sd,
                        &mut StdRng::seed_from_u64(81),
                        &StreamConfig::new().with_chunk_rows(173),
                        &ooc,
                    )
                    .unwrap();
                assert_eq!(
                    bounds_bits(&reference),
                    bounds_bits(&paged),
                    "{} page_rows = {page_rows}",
                    sd.name()
                );
            }
        }
    }

    #[test]
    fn out_of_core_leaves_the_rng_in_the_monolithic_state() {
        let d = corner_data(100, 90);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default().with_l(500));
        let mut rng_a = StdRng::seed_from_u64(91);
        let mut rng_b = StdRng::seed_from_u64(91);
        reds.run(&d, &Prim::default(), &mut rng_a).unwrap();
        reds.discover_out_of_core(
            &d,
            &Prim::default(),
            &mut rng_b,
            &StreamConfig::new().with_chunk_rows(37),
            &OocConfig::new(),
        )
        .unwrap();
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn pasting_prim_has_no_paged_path() {
        let d = corner_data(80, 95);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default().with_l(500));
        let prim = Prim::new(reds_subgroup::PrimParams {
            paste: true,
            ..Default::default()
        });
        let err = reds
            .discover_out_of_core(
                &d,
                &prim,
                &mut StdRng::seed_from_u64(96),
                &StreamConfig::new(),
                &OocConfig::new(),
            )
            .expect_err("pasting needs random access");
        assert!(matches!(
            err,
            crate::StreamingError::NoPagedPath { algorithm: "P" }
        ));
    }

    #[test]
    fn seeded_pipeline_is_deterministic() {
        let d = corner_data(120, 16);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default().with_l(1_000));
        let a = reds
            .run(&d, &Prim::default(), &mut StdRng::seed_from_u64(17))
            .unwrap();
        let b = reds
            .run(&d, &Prim::default(), &mut StdRng::seed_from_u64(17))
            .unwrap();
        assert_eq!(a.boxes.len(), b.boxes.len());
        assert_eq!(
            a.last_box().unwrap().bounds(),
            b.last_box().unwrap().bounds()
        );
    }
}
