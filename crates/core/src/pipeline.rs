//! The REDS pipeline (Algorithm 4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::Dataset;
use reds_metamodel::{GbdtParams, Metamodel, RandomForestParams, SvmParams, Trainer};
use reds_sampling::{logit_normal, mixed_design, uniform};
use reds_subgroup::{SdResult, SubgroupDiscovery};

use crate::RedsError;

/// Distribution from which REDS draws the `L` new points (Algorithm 4,
/// line 3). Must match the distribution `p(x)` of the original data —
/// the statistical argument of §6.2 relies on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NewPointSampler {
    /// i.i.d. uniform on `[0,1]^M` — the deep-uncertainty default.
    Uniform,
    /// Even-indexed inputs on the discrete grid `{0.1,…,0.9}`, odd ones
    /// continuous (the mixed-inputs experiment, §9.1.2).
    MixedEven,
    /// i.i.d. logit-normal per coordinate (the semi-supervised
    /// experiment, §9.4).
    LogitNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
}

impl NewPointSampler {
    fn sample(&self, n: usize, m: usize, rng: &mut StdRng) -> Vec<f64> {
        match *self {
            Self::Uniform => uniform(n, m, rng),
            Self::MixedEven => mixed_design(n, m, rng),
            Self::LogitNormal { mu, sigma } => logit_normal(n, m, mu, sigma, rng),
        }
    }
}

/// REDS configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RedsConfig {
    /// Number of pseudo-labelled points `L` (paper defaults: 10⁵ with
    /// PRIM, 10⁴ with BI — Table 2).
    pub l: usize,
    /// Hard-label threshold `bnd` on the metamodel output.
    pub bnd: f64,
    /// Use raw metamodel probabilities instead of hard labels — the "p"
    /// variants (`y_new = f^am(x)`, §6.1).
    pub probability_labels: bool,
    /// Distribution of the new points.
    pub sampler: NewPointSampler,
}

impl Default for RedsConfig {
    fn default() -> Self {
        Self {
            l: 100_000,
            bnd: 0.5,
            probability_labels: false,
            sampler: NewPointSampler::Uniform,
        }
    }
}

impl RedsConfig {
    /// Sets the number of new points `L`.
    pub fn with_l(mut self, l: usize) -> Self {
        self.l = l;
        self
    }

    /// Switches to probability pseudo-labels (the "p" variants).
    pub fn with_probability_labels(mut self) -> Self {
        self.probability_labels = true;
        self
    }

    /// Sets the new-point distribution.
    pub fn with_sampler(mut self, sampler: NewPointSampler) -> Self {
        self.sampler = sampler;
        self
    }
}

/// The REDS scenario-discovery pipeline: a metamodel trainer plus a
/// resampling configuration, applied to any subgroup-discovery
/// algorithm.
pub struct Reds {
    trainer: Box<dyn Trainer>,
    config: RedsConfig,
}

impl Reds {
    /// REDS with an arbitrary metamodel trainer.
    pub fn new(trainer: Box<dyn Trainer>, config: RedsConfig) -> Self {
        Self { trainer, config }
    }

    /// REDS with a random-forest metamodel ("Rf" family).
    pub fn random_forest(params: RandomForestParams, config: RedsConfig) -> Self {
        Self::new(Box::new(params), config)
    }

    /// REDS with an XGBoost-style boosted-tree metamodel ("Rx" family).
    pub fn xgboost(params: GbdtParams, config: RedsConfig) -> Self {
        Self::new(Box::new(params), config)
    }

    /// REDS with an RBF-SVM metamodel ("Rs" family; hard labels only).
    pub fn svm(params: SvmParams, config: RedsConfig) -> Self {
        Self::new(Box::new(params), config)
    }

    /// The configuration in use.
    pub fn config(&self) -> &RedsConfig {
        &self.config
    }

    /// Metamodel family tag ("f", "x", or "s").
    pub fn metamodel_tag(&self) -> &'static str {
        self.trainer.tag()
    }

    /// Trains the metamodel on `d` (Algorithm 4, line 2). Exposed so
    /// callers can inspect or reuse `f^am`.
    pub fn train_metamodel(
        &self,
        d: &Dataset,
        rng: &mut StdRng,
    ) -> Result<Box<dyn Metamodel>, RedsError> {
        if d.is_empty() {
            return Err(RedsError::EmptyTrainingData);
        }
        Ok(self.trainer.train(d, rng))
    }

    /// Pseudo-labels `points` with a fitted metamodel (lines 4–6).
    ///
    /// Labeling all `L` points is a single [`Metamodel::predict_batch`]
    /// call rather than `L` virtual dispatches: ensemble models override
    /// `predict_batch` with cache-friendly tree-major kernels that fan
    /// out across threads, which is the hot path at the paper's default
    /// `L = 10⁵`.
    fn pseudo_label(
        &self,
        model: &dyn Metamodel,
        points: Vec<f64>,
        m: usize,
    ) -> Result<Dataset, RedsError> {
        if !points.len().is_multiple_of(m) {
            return Err(RedsError::PoolShapeMismatch {
                pool_len: points.len(),
                m,
            });
        }
        // Datasets reject NaN coordinates; surface that as a pipeline
        // error instead of panicking below (user-supplied pools can
        // contain anything).
        if let Some(at) = points.iter().position(|v| v.is_nan()) {
            return Err(RedsError::NanInPoints {
                row: at / m,
                column: at % m,
            });
        }
        let labels = model
            .predict_batch(&points, m)
            .into_iter()
            .map(|p| {
                if self.config.probability_labels {
                    p.clamp(0.0, 1.0)
                } else if p > self.config.bnd {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        Ok(Dataset::new(points, labels, m).expect("shape and finiteness checked above"))
    }

    /// Runs the full REDS pipeline (Algorithm 4): train `AM` on `d`,
    /// pseudo-label `L` fresh points, run `sd` on them.
    ///
    /// # Errors
    ///
    /// [`RedsError::EmptyTrainingData`] when `d` is empty;
    /// [`RedsError::ZeroNewPoints`] when `config.l == 0`.
    pub fn run(
        &self,
        d: &Dataset,
        sd: &dyn SubgroupDiscovery,
        rng: &mut StdRng,
    ) -> Result<SdResult, RedsError> {
        if self.config.l == 0 {
            return Err(RedsError::ZeroNewPoints);
        }
        let model = self.train_metamodel(d, rng)?;
        let points = self.config.sampler.sample(self.config.l, d.m(), rng);
        let d_new = self.pseudo_label(model.as_ref(), points, d.m())?;
        let mut sd_rng = StdRng::seed_from_u64(rng.gen());
        // The validation data stays the *original* simulated dataset
        // (`D_val = D`, §8.5): PRIM's stopping rule and best-box choice
        // are anchored to real labels, so the pseudo-labelled search
        // cannot shrink the box below the support of the evidence.
        Ok(sd.discover(&d_new, d, &mut sd_rng))
    }

    /// Semi-supervised REDS (§6.1, §9.4): instead of sampling fresh
    /// points, pseudo-labels a caller-provided unlabeled pool drawn from
    /// the same `p(x)` as `d` and runs `sd` on it.
    ///
    /// # Errors
    ///
    /// [`RedsError::EmptyTrainingData`] when `d` is empty;
    /// [`RedsError::ZeroNewPoints`] when the pool is empty;
    /// [`RedsError::PoolShapeMismatch`] when the pool width disagrees
    /// with `d.m()`.
    pub fn run_on_pool(
        &self,
        d: &Dataset,
        pool: &[f64],
        sd: &dyn SubgroupDiscovery,
        rng: &mut StdRng,
    ) -> Result<SdResult, RedsError> {
        if pool.is_empty() {
            return Err(RedsError::ZeroNewPoints);
        }
        let model = self.train_metamodel(d, rng)?;
        let d_new = self.pseudo_label(model.as_ref(), pool.to_vec(), d.m())?;
        let mut sd_rng = StdRng::seed_from_u64(rng.gen());
        Ok(sd.discover(&d_new, d, &mut sd_rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reds_subgroup::{BestInterval, Prim};

    fn corner_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * 2).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
            if x[0] > 0.55 && x[1] > 0.55 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    fn quick_forest() -> RandomForestParams {
        RandomForestParams {
            n_trees: 50,
            ..Default::default()
        }
    }

    #[test]
    fn reds_with_prim_finds_the_corner() {
        let d = corner_data(200, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default().with_l(3_000));
        let result = reds.run(&d, &Prim::default(), &mut rng).unwrap();
        let b = result.last_box().unwrap();
        let test = corner_data(2_000, 3);
        let precision = b.mean_inside(&test).unwrap();
        assert!(precision > 0.8, "test precision {precision}");
    }

    #[test]
    fn probability_labels_produce_soft_dataset_behaviour() {
        let d = corner_data(150, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let reds = Reds::random_forest(
            quick_forest(),
            RedsConfig::default()
                .with_l(2_000)
                .with_probability_labels(),
        );
        let result = reds.run(&d, &Prim::default(), &mut rng).unwrap();
        assert!(!result.boxes.is_empty());
    }

    #[test]
    fn reds_with_bi_returns_single_box() {
        let d = corner_data(200, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let reds = Reds::xgboost(
            GbdtParams {
                n_rounds: 40,
                ..Default::default()
            },
            RedsConfig::default().with_l(2_000),
        );
        let result = reds.run(&d, &BestInterval::default(), &mut rng).unwrap();
        assert_eq!(result.boxes.len(), 1);
    }

    #[test]
    fn svm_variant_runs() {
        let d = corner_data(150, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let reds = Reds::svm(SvmParams::default(), RedsConfig::default().with_l(1_000));
        let result = reds.run(&d, &Prim::default(), &mut rng).unwrap();
        assert!(!result.boxes.is_empty());
        assert_eq!(reds.metamodel_tag(), "s");
    }

    #[test]
    fn empty_data_errors() {
        let d = Dataset::empty(2).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default());
        assert!(matches!(
            reds.run(&d, &Prim::default(), &mut rng),
            Err(RedsError::EmptyTrainingData)
        ));
    }

    #[test]
    fn zero_l_errors() {
        let d = corner_data(50, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default().with_l(0));
        assert!(matches!(
            reds.run(&d, &Prim::default(), &mut rng),
            Err(RedsError::ZeroNewPoints)
        ));
    }

    #[test]
    fn pool_with_nan_returns_an_error_not_a_panic() {
        let d = corner_data(60, 20);
        let mut rng = StdRng::seed_from_u64(21);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default());
        let mut pool = vec![0.5; 10];
        pool[3] = f64::NAN;
        assert!(matches!(
            reds.run_on_pool(&d, &pool, &Prim::default(), &mut rng),
            Err(RedsError::NanInPoints { row: 1, column: 1 })
        ));
    }

    #[test]
    fn pool_entry_point_validates_shape() {
        let d = corner_data(80, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default());
        let bad_pool = vec![0.5; 5]; // not a multiple of m = 2
        assert!(matches!(
            reds.run_on_pool(&d, &bad_pool, &Prim::default(), &mut rng),
            Err(RedsError::PoolShapeMismatch { .. })
        ));
        let pool = uniform(500, 2, &mut rng);
        let result = reds
            .run_on_pool(&d, &pool, &Prim::default(), &mut rng)
            .unwrap();
        assert!(!result.boxes.is_empty());
    }

    #[test]
    fn mixed_sampler_respects_discrete_grid() {
        let mut rng = StdRng::seed_from_u64(15);
        let pts = NewPointSampler::MixedEven.sample(100, 4, &mut rng);
        for row in pts.chunks_exact(4) {
            assert!(reds_sampling::DISCRETE_LEVELS
                .iter()
                .any(|&l| (row[0] - l).abs() < 1e-12));
        }
    }

    #[test]
    fn seeded_pipeline_is_deterministic() {
        let d = corner_data(120, 16);
        let reds = Reds::random_forest(quick_forest(), RedsConfig::default().with_l(1_000));
        let a = reds
            .run(&d, &Prim::default(), &mut StdRng::seed_from_u64(17))
            .unwrap();
        let b = reds
            .run(&d, &Prim::default(), &mut StdRng::seed_from_u64(17))
            .unwrap();
        assert_eq!(a.boxes.len(), b.boxes.len());
        assert_eq!(
            a.last_box().unwrap().bounds(),
            b.last_box().unwrap().bounds()
        );
    }
}
