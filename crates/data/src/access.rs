//! Backing-agnostic column access for subgroup search.
//!
//! PRIM peeling and BestInterval only ever touch a pool through a
//! narrow surface: sorted-column scans from either end, label sums in
//! fixed orders, row deactivation at a value bound, and sequential
//! row iteration. [`ColumnAccess`] names that surface, so one generic
//! search implementation runs over both the in-memory
//! [`SortedView`]-backed pool ([`ViewAccess`]) and the out-of-core
//! paged column store (`reds-ooc`), with **bit-identical** results:
//! every method pins down the exact floating-point visit order the
//! in-memory path uses, and both backings honor it.
//!
//! All methods take `&mut self` because a paged backing mutates its
//! page cache on every read; the in-memory implementation simply
//! ignores the mutability.

use crate::{Dataset, SortedView};

/// Callback of [`ColumnAccess::scan_column_points`]:
/// `f(value, row, point, label)`.
pub type PointVisitor<'a> = dyn FnMut(f64, u32, &[f64], f64) + 'a;

/// The column/row surface subgroup search consumes, generic over the
/// storage backing (in-memory [`SortedView`] or an out-of-core paged
/// store).
///
/// Ordering contracts (the bit-identity guarantees rest on these):
///
/// * column scans visit active entries in ascending (front) or
///   descending (back) `(value, row id)` order — the `SortedView`
///   total order;
/// * [`active_label_sum`](ColumnAccess::active_label_sum) sums labels
///   of active rows in **ascending row order**;
/// * [`scan_rows`](ColumnAccess::scan_rows) visits **all** rows (the
///   membership mask is not consulted) in ascending row order;
/// * deactivation is monotone — a deactivated row never comes back.
pub trait ColumnAccess {
    /// Number of input dimensions.
    fn m(&self) -> usize;

    /// Total number of rows in the pool (active or not).
    fn n_rows(&self) -> usize;

    /// Number of rows still active.
    fn n_active(&self) -> usize;

    /// `true` when `row` is still active.
    fn is_active(&mut self, row: u32) -> bool;

    /// The label of `row`.
    fn label(&mut self, row: u32) -> f64;

    /// Sum of the labels of all **active** rows, accumulated in
    /// ascending row order.
    fn active_label_sum(&mut self) -> f64;

    /// Visits the active entries of `dim`'s sorted column front to
    /// back — ascending `(value, row id)` — until `f` returns `false`
    /// or the column is exhausted.
    fn scan_active_front(&mut self, dim: usize, f: &mut dyn FnMut(f64, u32) -> bool);

    /// Visits the active entries of `dim`'s sorted column back to
    /// front — descending `(value, row id)` — until `f` returns
    /// `false` or the column is exhausted.
    fn scan_active_back(&mut self, dim: usize, f: &mut dyn FnMut(f64, u32) -> bool);

    /// Visits the active entries of `dim`'s sorted column front to
    /// back, handing `f` the full point and label of each row:
    /// `f(value, row, point, label)`.
    fn scan_column_points(&mut self, dim: usize, f: &mut PointVisitor<'_>);

    /// Visits **every** row (the membership mask is not consulted) in
    /// ascending row order: `f(row, point, label)`.
    fn scan_rows(&mut self, f: &mut dyn FnMut(u32, &[f64], f64));

    /// Deactivates every active row whose value in `dim` is strictly
    /// below `bound` (a PRIM "low" cut — the new lower bound is
    /// inclusive). Returns the number of rows removed.
    fn deactivate_below(&mut self, dim: usize, bound: f64) -> usize;

    /// Deactivates every active row whose value in `dim` is strictly
    /// above `bound` (a PRIM "high" cut). Returns the number of rows
    /// removed.
    fn deactivate_above(&mut self, dim: usize, bound: f64) -> usize;
}

/// The in-memory [`ColumnAccess`] backing: a [`SortedView`] over a
/// [`Dataset`], plus the ascending active-row list the PRIM peel loop
/// historically carried (so label sums cost `O(n_active)`, not `O(n)`).
pub struct ViewAccess<'a> {
    d: &'a Dataset,
    view: SortedView,
    /// Active rows in ascending row order (mirrors the view's mask).
    in_rows: Vec<u32>,
}

impl<'a> ViewAccess<'a> {
    /// Wraps a dataset and its sorted view.
    ///
    /// # Panics
    ///
    /// Panics when the view's active-row count disagrees with the
    /// dataset (the view must have been built over `d`, with no rows
    /// deactivated yet).
    pub fn new(d: &'a Dataset, view: SortedView) -> Self {
        assert_eq!(
            view.n_active(),
            d.n(),
            "view must be fresh over the dataset"
        );
        let in_rows = (0..d.n() as u32).collect();
        Self { d, view, in_rows }
    }
}

impl ColumnAccess for ViewAccess<'_> {
    fn m(&self) -> usize {
        self.d.m()
    }

    fn n_rows(&self) -> usize {
        self.d.n()
    }

    fn n_active(&self) -> usize {
        self.view.n_active()
    }

    fn is_active(&mut self, row: u32) -> bool {
        self.view.is_active(row as usize)
    }

    fn label(&mut self, row: u32) -> f64 {
        self.d.label(row as usize)
    }

    fn active_label_sum(&mut self) -> f64 {
        self.in_rows.iter().map(|&i| self.d.label(i as usize)).sum()
    }

    fn scan_active_front(&mut self, dim: usize, f: &mut dyn FnMut(f64, u32) -> bool) {
        for &row in self.view.column(dim) {
            if !f(self.d.value(row as usize, dim), row) {
                break;
            }
        }
    }

    fn scan_active_back(&mut self, dim: usize, f: &mut dyn FnMut(f64, u32) -> bool) {
        for &row in self.view.column(dim).iter().rev() {
            if !f(self.d.value(row as usize, dim), row) {
                break;
            }
        }
    }

    fn scan_column_points(&mut self, dim: usize, f: &mut PointVisitor<'_>) {
        for &row in self.view.column(dim) {
            let i = row as usize;
            f(self.d.value(i, dim), row, self.d.point(i), self.d.label(i));
        }
    }

    fn scan_rows(&mut self, f: &mut dyn FnMut(u32, &[f64], f64)) {
        for (row, (point, label)) in self.d.iter().enumerate() {
            f(row as u32, point, label);
        }
    }

    fn deactivate_below(&mut self, dim: usize, bound: f64) -> usize {
        let removed = self.view.retain_at_least(self.d, dim, bound);
        if removed > 0 {
            let d = self.d;
            self.in_rows.retain(|&i| d.value(i as usize, dim) >= bound);
        }
        removed
    }

    fn deactivate_above(&mut self, dim: usize, bound: f64) -> usize {
        let removed = self.view.retain_at_most(self.d, dim, bound);
        if removed > 0 {
            let d = self.d;
            self.in_rows.retain(|&i| d.value(i as usize, dim) <= bound);
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // Column 0: 3 1 2 1 0 ; column 1: 5 4 3 2 1
        Dataset::new(
            vec![3.0, 5.0, 1.0, 4.0, 2.0, 3.0, 1.0, 2.0, 0.0, 1.0],
            vec![0.0, 1.0, 0.0, 1.0, 0.0],
            2,
        )
        .unwrap()
    }

    #[test]
    fn front_scan_visits_sorted_order_and_stops() {
        let d = toy();
        let mut a = ViewAccess::new(&d, SortedView::new(&d));
        let mut seen = Vec::new();
        a.scan_active_front(0, &mut |v, row| {
            seen.push((v, row));
            seen.len() < 3
        });
        assert_eq!(seen, vec![(0.0, 4), (1.0, 1), (1.0, 3)]);
        seen.clear();
        a.scan_active_back(0, &mut |v, row| {
            seen.push((v, row));
            true
        });
        assert_eq!(seen.first(), Some(&(3.0, 0)));
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn deactivation_tracks_the_view_and_label_sums() {
        let d = toy();
        let mut a = ViewAccess::new(&d, SortedView::new(&d));
        assert_eq!(a.active_label_sum(), 2.0);
        assert_eq!(a.deactivate_below(0, 1.0), 1); // row 4 (value 0)
        assert_eq!(a.n_active(), 4);
        assert!(!a.is_active(4));
        assert_eq!(a.active_label_sum(), 2.0);
        assert_eq!(a.deactivate_above(1, 3.0), 2); // rows 0 (5), 1 (4)
        assert_eq!(a.n_active(), 2);
        assert_eq!(a.active_label_sum(), 1.0);
        let mut rows = Vec::new();
        a.scan_active_front(1, &mut |_, row| {
            rows.push(row);
            true
        });
        assert_eq!(rows, vec![3, 2]);
    }

    #[test]
    fn scan_rows_ignores_the_mask() {
        let d = toy();
        let mut a = ViewAccess::new(&d, SortedView::new(&d));
        a.deactivate_below(0, 10.0);
        assert_eq!(a.n_active(), 0);
        let mut count = 0;
        a.scan_rows(&mut |row, point, label| {
            assert_eq!(point, d.point(row as usize));
            assert_eq!(label, d.label(row as usize));
            count += 1;
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn column_point_scan_hands_full_rows() {
        let d = toy();
        let mut a = ViewAccess::new(&d, SortedView::new(&d));
        let mut seen = Vec::new();
        a.scan_column_points(1, &mut |v, row, point, label| {
            assert_eq!(v, point[1]);
            seen.push((row, label));
        });
        assert_eq!(seen, vec![(4, 0.0), (3, 1.0), (2, 0.0), (1, 1.0), (0, 0.0)]);
    }
}
