use rand::Rng;

use crate::Dataset;

/// Draws a bootstrap sample: `data.n()` rows sampled uniformly with
/// replacement (Algorithm 2, line 4 — the `D^bs` of PRIM with bumping).
///
/// Returns an empty dataset when `data` is empty.
pub fn bootstrap_sample(data: &Dataset, rng: &mut impl Rng) -> Dataset {
    let n = data.n();
    if n == 0 {
        return data.clone();
    }
    let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
    data.select_rows(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_preserves_size_and_columns() {
        let data =
            Dataset::from_fn((0..40).map(|i| i as f64 / 40.0).collect(), 2, |x| x[0]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let bs = bootstrap_sample(&data, &mut rng);
        assert_eq!(bs.n(), data.n());
        assert_eq!(bs.m(), data.m());
    }

    #[test]
    fn sample_draws_with_replacement() {
        // With 100 rows the expected number of distinct rows is ~63; any
        // seed giving all-distinct rows would indicate sampling without
        // replacement.
        let data = Dataset::from_fn((0..100).map(|i| i as f64).collect(), 1, |_| 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let bs = bootstrap_sample(&data, &mut rng);
        let mut values: Vec<f64> = bs.points().to_vec();
        values.sort_by(f64::total_cmp);
        values.dedup();
        assert!(values.len() < 100, "bootstrap must duplicate some rows");
    }

    #[test]
    fn empty_data_stays_empty() {
        let data = Dataset::empty(3).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(bootstrap_sample(&data, &mut rng).is_empty());
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let data = Dataset::from_fn((0..20).map(|i| i as f64).collect(), 1, |_| 1.0).unwrap();
        let a = bootstrap_sample(&data, &mut StdRng::seed_from_u64(4));
        let b = bootstrap_sample(&data, &mut StdRng::seed_from_u64(4));
        assert_eq!(a.points(), b.points());
    }
}
