use crate::DataError;

/// A tabular dataset: `n` rows of `m` input columns plus one label column.
///
/// Points are stored row-major in a single contiguous buffer, which keeps
/// PRIM's per-dimension quantile scans and the tree learners cache-friendly.
/// Labels are `f64`: hard labels are exactly `0.0`/`1.0`, soft pseudo-labels
/// (REDS "p" variants) lie in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    points: Vec<f64>,
    labels: Vec<f64>,
    m: usize,
}

impl Dataset {
    /// Creates a dataset from a row-major point buffer and labels.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ShapeMismatch`] when `points.len()` is not a
    /// multiple of `m` or the row count disagrees with `labels.len()`,
    /// [`DataError::ZeroDimensional`] when `m == 0`, and
    /// [`DataError::NanPoint`] when any input coordinate is NaN (the
    /// presorted hot paths require a NaN-free input matrix; infinities
    /// are allowed).
    pub fn new(points: Vec<f64>, labels: Vec<f64>, m: usize) -> Result<Self, DataError> {
        if m == 0 {
            return Err(DataError::ZeroDimensional);
        }
        if !points.len().is_multiple_of(m) || points.len() / m != labels.len() {
            return Err(DataError::ShapeMismatch {
                points: points.len(),
                labels: labels.len(),
                m,
            });
        }
        if let Some(at) = points.iter().position(|v| v.is_nan()) {
            return Err(DataError::NanPoint {
                row: at / m,
                column: at % m,
            });
        }
        Ok(Self { points, labels, m })
    }

    /// Creates an empty dataset with `m` input columns.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ZeroDimensional`] when `m == 0`.
    pub fn empty(m: usize) -> Result<Self, DataError> {
        Self::new(Vec::new(), Vec::new(), m)
    }

    /// Builds a dataset by labeling `points` with `f`.
    ///
    /// This is the paper's step (2) of scenario discovery: run the
    /// simulation (or a metamodel) on each sampled point.
    ///
    /// # Errors
    ///
    /// Propagates the shape errors of [`Dataset::new`].
    pub fn from_fn(
        points: Vec<f64>,
        m: usize,
        f: impl FnMut(&[f64]) -> f64,
    ) -> Result<Self, DataError> {
        if m == 0 {
            return Err(DataError::ZeroDimensional);
        }
        let labels = points.chunks_exact(m).map(f).collect();
        Self::new(points, labels, m)
    }

    /// Number of rows `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.labels.len()
    }

    /// Number of input columns `M`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// `true` when the dataset has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The `i`-th point (input row). Panics when `i >= n()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.points[i * self.m..(i + 1) * self.m]
    }

    /// The `i`-th label. Panics when `i >= n()`.
    #[inline]
    pub fn label(&self, i: usize) -> f64 {
        self.labels[i]
    }

    /// All labels.
    #[inline]
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Raw row-major point buffer.
    #[inline]
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Value of input column `j` in row `i`.
    #[inline]
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.points[i * self.m + j]
    }

    /// Iterator over `(point, label)` rows.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64)> + '_ {
        self.points
            .chunks_exact(self.m)
            .zip(self.labels.iter().copied())
    }

    /// Appends a row. Panics when `point.len() != m()` or the point
    /// contains NaN (see [`Dataset::new`]).
    pub fn push(&mut self, point: &[f64], label: f64) {
        assert_eq!(point.len(), self.m, "point dimensionality mismatch");
        assert!(
            point.iter().all(|v| !v.is_nan()),
            "NaN input coordinate in pushed point"
        );
        self.points.extend_from_slice(point);
        self.labels.push(label);
    }

    /// Sum of labels, `N⁺` in the paper's notation.
    ///
    /// With hard labels this is the count of interesting examples; with
    /// soft labels it is the expected count.
    pub fn n_pos(&self) -> f64 {
        self.labels.iter().sum()
    }

    /// Mean label, the global positive rate `N⁺ / N` (0 for empty data).
    pub fn pos_rate(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.n_pos() / self.n() as f64
        }
    }

    /// New dataset containing the rows at `indices` (duplicates allowed,
    /// which is what bootstrap resampling needs). Panics on out-of-range
    /// indices.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut points = Vec::with_capacity(indices.len() * self.m);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            points.extend_from_slice(self.point(i));
            labels.push(self.labels[i]);
        }
        Self {
            points,
            labels,
            m: self.m,
        }
    }

    /// New dataset keeping only the input columns in `columns`
    /// (PRIM-with-bumping's random feature subsets, Algorithm 2, line 6).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::ColumnOutOfRange`] when any index is `>= m()`
    /// and [`DataError::ZeroDimensional`] when `columns` is empty.
    pub fn select_columns(&self, columns: &[usize]) -> Result<Self, DataError> {
        if columns.is_empty() {
            return Err(DataError::ZeroDimensional);
        }
        if let Some(&bad) = columns.iter().find(|&&c| c >= self.m) {
            return Err(DataError::ColumnOutOfRange {
                column: bad,
                m: self.m,
            });
        }
        let mut points = Vec::with_capacity(self.n() * columns.len());
        for i in 0..self.n() {
            let row = self.point(i);
            points.extend(columns.iter().map(|&c| row[c]));
        }
        Ok(Self {
            points,
            labels: self.labels.clone(),
            m: columns.len(),
        })
    }

    /// Replaces every label with `1.0` when it exceeds `threshold`, else
    /// `0.0`. This is the binarization step of §8.3 (`y = 1` iff the raw
    /// output is *below* `thr` in the paper; callers choose the comparison
    /// by pre-negating, we binarize on `> threshold` for pseudo-labels as
    /// in Algorithm 4, line 5).
    pub fn binarize(&mut self, threshold: f64) {
        for y in &mut self.labels {
            *y = if *y > threshold { 1.0 } else { 0.0 };
        }
    }

    /// Column-wise minimum and maximum over all rows, or `None` when empty.
    ///
    /// Needed by the consistency metric (§4) to replace unbounded box
    /// edges with the observed input ranges.
    pub fn column_ranges(&self) -> Option<Vec<(f64, f64)>> {
        if self.is_empty() {
            return None;
        }
        let mut ranges = vec![(f64::INFINITY, f64::NEG_INFINITY); self.m];
        for row in self.points.chunks_exact(self.m) {
            for (j, &v) in row.iter().enumerate() {
                if v < ranges[j].0 {
                    ranges[j].0 = v;
                }
                if v > ranges[j].1 {
                    ranges[j].1 = v;
                }
            }
        }
        Some(ranges)
    }

    /// Consumes the dataset, returning `(points, labels, m)`.
    pub fn into_parts(self) -> (Vec<f64>, Vec<f64>, usize) {
        (self.points, self.labels, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0],
            vec![0.0, 1.0, 0.0, 1.0],
            2,
        )
        .unwrap()
    }

    #[test]
    fn new_rejects_bad_shapes() {
        assert!(matches!(
            Dataset::new(vec![1.0, 2.0, 3.0], vec![0.0], 2),
            Err(DataError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![1.0, 2.0], vec![0.0, 1.0], 2),
            Err(DataError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![], vec![], 0),
            Err(DataError::ZeroDimensional)
        ));
    }

    #[test]
    fn new_rejects_nan_points_but_accepts_infinities() {
        assert!(matches!(
            Dataset::new(vec![0.1, f64::NAN, 0.3, 0.4], vec![0.0, 1.0], 2),
            Err(DataError::NanPoint { row: 0, column: 1 })
        ));
        assert!(Dataset::new(vec![f64::INFINITY, f64::NEG_INFINITY], vec![0.0, 1.0], 1).is_ok());
    }

    #[test]
    fn accessors_agree_with_layout() {
        let d = toy();
        assert_eq!(d.n(), 4);
        assert_eq!(d.m(), 2);
        assert_eq!(d.point(2), &[0.0, 1.0]);
        assert_eq!(d.value(2, 1), 1.0);
        assert_eq!(d.label(3), 1.0);
        assert_eq!(d.n_pos(), 2.0);
        assert!((d.pos_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_fn_labels_each_row() {
        let d = Dataset::from_fn(vec![0.2, 0.8, 0.9, 0.1], 2, |x| {
            if x[0] > 0.5 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap();
        assert_eq!(d.labels(), &[0.0, 1.0]);
    }

    #[test]
    fn select_rows_allows_duplicates() {
        let d = toy();
        let s = d.select_rows(&[3, 3, 0]);
        assert_eq!(s.n(), 3);
        assert_eq!(s.point(0), &[1.0, 1.0]);
        assert_eq!(s.point(1), &[1.0, 1.0]);
        assert_eq!(s.label(2), 0.0);
    }

    #[test]
    fn select_columns_projects() {
        let d = toy();
        let s = d.select_columns(&[1]).unwrap();
        assert_eq!(s.m(), 1);
        assert_eq!(s.points(), &[0.0, 0.0, 1.0, 1.0]);
        assert_eq!(s.labels(), d.labels());
        assert!(matches!(
            d.select_columns(&[2]),
            Err(DataError::ColumnOutOfRange { column: 2, m: 2 })
        ));
        assert!(d.select_columns(&[]).is_err());
    }

    #[test]
    fn binarize_thresholds_labels() {
        let mut d = Dataset::new(vec![0.0, 1.0, 2.0], vec![0.2, 0.5, 0.9], 1).unwrap();
        d.binarize(0.5);
        assert_eq!(d.labels(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn column_ranges_cover_all_rows() {
        let d = toy();
        assert_eq!(d.column_ranges().unwrap(), vec![(0.0, 1.0), (0.0, 1.0)]);
        assert!(Dataset::empty(3).unwrap().column_ranges().is_none());
    }

    #[test]
    fn push_extends() {
        let mut d = Dataset::empty(2).unwrap();
        d.push(&[0.5, 0.5], 1.0);
        assert_eq!(d.n(), 1);
        assert!((d.pos_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_pos_rate_is_zero() {
        assert_eq!(Dataset::empty(1).unwrap().pos_rate(), 0.0);
    }
}
