use std::fmt;

/// Errors produced by dataset construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Point buffer, label vector, and `m` disagree about the row count.
    ShapeMismatch {
        /// Length of the flat point buffer.
        points: usize,
        /// Number of labels.
        labels: usize,
        /// Declared number of input columns.
        m: usize,
    },
    /// A dataset must have at least one input column.
    ZeroDimensional,
    /// A column index exceeded the dataset width.
    ColumnOutOfRange {
        /// Offending column index.
        column: usize,
        /// Dataset width.
        m: usize,
    },
    /// Fewer rows than cross-validation folds.
    TooFewRows {
        /// Number of rows available.
        rows: usize,
        /// Number of folds / parts requested.
        required: usize,
    },
    /// A presorted column handed to `SortedView::from_presorted_columns`
    /// is not a permutation of the row ids `0..n` (wrong length, a
    /// duplicate, or an out-of-range id) — the spilled sort runs it was
    /// merged from were inconsistent.
    NotAPermutation {
        /// Offending column index.
        column: usize,
    },
    /// An input coordinate was NaN. NaN has no place on the presorted
    /// columns the hot paths rely on (its ordering under `total_cmp`
    /// disagrees with the `<`/`>=` comparisons box membership uses), so
    /// datasets reject it at construction.
    NanPoint {
        /// Row of the offending value.
        row: usize,
        /// Column of the offending value.
        column: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { points, labels, m } => write!(
                f,
                "shape mismatch: {points} point values with m={m} cannot match {labels} labels"
            ),
            Self::ZeroDimensional => write!(f, "dataset must have at least one input column"),
            Self::ColumnOutOfRange { column, m } => {
                write!(f, "column {column} out of range for m={m}")
            }
            Self::TooFewRows { rows, required } => {
                write!(f, "need at least {required} rows, got {rows}")
            }
            Self::NotAPermutation { column } => {
                write!(
                    f,
                    "presorted column {column} is not a permutation of the row ids"
                )
            }
            Self::NanPoint { row, column } => {
                write!(f, "NaN input value at row {row}, column {column}")
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DataError::ShapeMismatch {
            points: 7,
            labels: 3,
            m: 2,
        };
        assert!(e.to_string().contains("shape mismatch"));
        assert!(DataError::ZeroDimensional.to_string().contains("column"));
        assert!(DataError::ColumnOutOfRange { column: 5, m: 3 }
            .to_string()
            .contains('5'));
        assert!(DataError::TooFewRows {
            rows: 1,
            required: 5
        }
        .to_string()
        .contains('5'));
    }
}
