use rand::seq::SliceRandom;
use rand::Rng;

use crate::{DataError, Dataset};

/// Shuffled k-fold cross-validation indices.
///
/// Used for the hyperparameter optimisation of §8.4 (selecting PRIM's α
/// and the `m` of bumping/BI via 5-fold CV) and for the `TGL`/`lake`
/// third-party experiments of §9.3 (5-fold CV repeated 10 times).
#[derive(Debug, Clone)]
pub struct KFold {
    folds: Vec<Vec<usize>>,
}

impl KFold {
    /// Shuffles `0..n` and deals the indices into `k` folds whose sizes
    /// differ by at most one.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::TooFewRows`] when `n < k` or `k < 2`.
    pub fn new(n: usize, k: usize, rng: &mut impl Rng) -> Result<Self, DataError> {
        if k < 2 || n < k {
            return Err(DataError::TooFewRows {
                rows: n,
                required: k.max(2),
            });
        }
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(rng);
        let mut folds = vec![Vec::with_capacity(n / k + 1); k];
        for (pos, idx) in indices.into_iter().enumerate() {
            folds[pos % k].push(idx);
        }
        Ok(Self { folds })
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// Row indices of fold `i`. Panics when `i >= k()`.
    pub fn fold(&self, i: usize) -> &[usize] {
        &self.folds[i]
    }

    /// Materialises the train/test datasets for fold `i` (test = fold `i`,
    /// train = all other folds). Panics when `i >= k()`.
    pub fn split(&self, data: &Dataset, i: usize) -> (Dataset, Dataset) {
        let test = data.select_rows(&self.folds[i]);
        let train_idx: Vec<usize> = self
            .folds
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        (data.select_rows(&train_idx), test)
    }

    /// Iterator over `(train, test)` pairs for every fold.
    pub fn splits<'a>(
        &'a self,
        data: &'a Dataset,
    ) -> impl Iterator<Item = (Dataset, Dataset)> + 'a {
        (0..self.k()).map(move |i| self.split(data, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn folds_partition_the_index_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let kf = KFold::new(23, 5, &mut rng).unwrap();
        let mut all: Vec<usize> = (0..5).flat_map(|i| kf.fold(i).to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        for i in 0..5 {
            let len = kf.fold(i).len();
            assert!(len == 4 || len == 5, "fold sizes differ by at most one");
        }
    }

    #[test]
    fn split_materialises_complement() {
        let data = Dataset::from_fn((0..10).map(|i| i as f64).collect(), 1, |x| x[0]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let kf = KFold::new(10, 5, &mut rng).unwrap();
        let (train, test) = kf.split(&data, 0);
        assert_eq!(train.n(), 8);
        assert_eq!(test.n(), 2);
        let mut union: Vec<f64> = train
            .points()
            .iter()
            .chain(test.points())
            .copied()
            .collect();
        union.sort_by(f64::total_cmp);
        assert_eq!(union, (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(KFold::new(3, 5, &mut rng).is_err());
        assert!(KFold::new(10, 1, &mut rng).is_err());
    }

    #[test]
    fn splits_iterator_covers_all_folds() {
        let data = Dataset::from_fn((0..12).map(|i| i as f64).collect(), 1, |_| 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let kf = KFold::new(12, 4, &mut rng).unwrap();
        let total_test: usize = kf.splits(&data).map(|(_, t)| t.n()).sum();
        assert_eq!(total_test, 12);
    }
}
