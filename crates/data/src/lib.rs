//! Dataset substrate for the REDS reproduction.
//!
//! The paper (§3.1) works with a dataset `D` of `N` rows: the first `M`
//! columns hold the simulation inputs (a *point* `x_i`), the last column
//! the binary simulation output `y_i`. This crate provides that tabular
//! abstraction plus the resampling utilities every other layer relies on:
//! train/validation/test splits, bootstrap samples (PRIM with bumping,
//! Algorithm 2), k-fold cross-validation indices (hyperparameter
//! optimisation, §8.4), and column sub-selection (random feature subsets).
//!
//! Labels are stored as `f64` so the same container carries hard `{0,1}`
//! labels and the soft probability pseudo-labels of the REDS "p" variants
//! (§6.1).

#![warn(missing_docs)]

mod access;
mod bootstrap;
mod dataset;
mod error;
mod folds;
mod sorted;
mod split;

pub use access::{ColumnAccess, PointVisitor, ViewAccess};
pub use bootstrap::bootstrap_sample;
pub use dataset::Dataset;
pub use error::DataError;
pub use folds::KFold;
pub use sorted::{argsort_stable, ord_key, ord_key_inverse, SortedView};
pub use split::{train_test_split, Split};
