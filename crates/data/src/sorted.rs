//! Presorted columnar index over a [`Dataset`].
//!
//! The paper's §7 complexity analysis assumes every input dimension is
//! sorted **once** — `O(M·N log N)` — after which each PRIM peeling step
//! touches each surviving point a constant number of times, for
//! `O(M·N/α)` total peeling work. [`SortedView`] is that index: one
//! argsorted row-id array per dimension plus a row-membership mask,
//! maintained incrementally under subsetting so consumers never re-sort.
//!
//! Ordering is total and deterministic: rows are sorted by
//! `(value, row id)` (`f64::total_cmp` then index). Consumers that sum
//! labels in column order therefore produce **bit-identical** floating
//! point results to a reference that sorts fresh `(value, row)` pairs
//! with the same key — the property the `naive`-vs-optimized
//! equivalence tests rely on.

use crate::{DataError, Dataset};

/// Per-dimension argsorted row indices plus a membership bitmask,
/// built once in `O(M·N log N)` and compacted in `O(M·n)` per
/// subsetting step (`n` = surviving rows).
///
/// The view stores row *indices only*; callers pass the owning
/// [`Dataset`] back in when values are needed. All methods assume the
/// same dataset (same shape and order) is used throughout the view's
/// lifetime.
#[derive(Debug, Clone)]
pub struct SortedView {
    /// `cols[j]` lists the active rows sorted by `(value_j, row)`.
    cols: Vec<Vec<u32>>,
    /// Membership mask over the original rows.
    active: Vec<bool>,
    n_active: usize,
}

impl SortedView {
    /// Builds the index: argsorts every dimension by `(value, row id)`.
    ///
    /// # Panics
    ///
    /// Panics when the dataset has more than `u32::MAX` rows.
    pub fn new(d: &Dataset) -> Self {
        let n = d.n();
        assert!(n <= u32::MAX as usize, "dataset too large for u32 row ids");
        let mut keys = vec![0u64; n];
        let cols = (0..d.m())
            .map(|j| {
                for (i, key) in keys.iter_mut().enumerate() {
                    *key = ord_key(d.value(i, j));
                }
                argsort_stable(&keys)
            })
            .collect();
        Self {
            cols,
            active: vec![true; n],
            n_active: n,
        }
    }

    /// Builds the index from externally presorted columns — the
    /// entry point of out-of-core construction, where each column's
    /// `(value, row id)` order was produced by merging spilled
    /// chunk-local runs instead of one in-memory argsort.
    ///
    /// `cols[j]` must list **every** row id `0..n` exactly once, in
    /// ascending `(value_j, row id)` order. The permutation property is
    /// validated (`O(M·n)`, the same cost as one subsetting step);
    /// the sort order itself is the caller's contract — it cannot be
    /// checked without the value buffer, which out-of-core callers
    /// deliberately do not hold.
    ///
    /// # Errors
    ///
    /// [`DataError::NotAPermutation`] when a column's length is not `n`
    /// or a row id is missing, duplicated, or out of range.
    pub fn from_presorted_columns(cols: Vec<Vec<u32>>, n: usize) -> Result<Self, DataError> {
        let mut seen = vec![false; n];
        for (j, col) in cols.iter().enumerate() {
            if col.len() != n {
                return Err(DataError::NotAPermutation { column: j });
            }
            seen.iter_mut().for_each(|s| *s = false);
            for &row in col {
                if (row as usize) >= n || seen[row as usize] {
                    return Err(DataError::NotAPermutation { column: j });
                }
                seen[row as usize] = true;
            }
        }
        Ok(Self {
            cols,
            active: vec![true; n],
            n_active: n,
        })
    }

    /// Number of dimensions indexed.
    pub fn m(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows still active.
    pub fn n_active(&self) -> usize {
        self.n_active
    }

    /// `true` when row `i` is still active.
    pub fn is_active(&self, i: usize) -> bool {
        self.active[i]
    }

    /// The active rows of dimension `j`, sorted ascending by
    /// `(value, row id)`.
    pub fn column(&self, j: usize) -> &[u32] {
        &self.cols[j]
    }

    /// Consumes the view, returning every column's sorted row ids —
    /// for consumers that only need the initial argsort (no
    /// subsetting) and want to avoid copying it.
    pub fn into_columns(self) -> Vec<Vec<u32>> {
        self.cols
    }

    /// Deactivates every active row whose value in `dim` is strictly
    /// below `bound` (a PRIM "low" cut: the new lower bound is
    /// inclusive) and compacts all columns. Returns the number of rows
    /// removed. `O(M·n)`.
    pub fn retain_at_least(&mut self, d: &Dataset, dim: usize, bound: f64) -> usize {
        self.deactivate_prefix(d, dim, |v| v < bound)
    }

    /// Deactivates every active row whose value in `dim` is strictly
    /// above `bound` (a PRIM "high" cut) and compacts all columns.
    /// Returns the number of rows removed. `O(M·n)`.
    pub fn retain_at_most(&mut self, d: &Dataset, dim: usize, bound: f64) -> usize {
        self.deactivate_suffix(d, dim, |v| v > bound)
    }

    fn deactivate_prefix(&mut self, d: &Dataset, dim: usize, out: impl Fn(f64) -> bool) -> usize {
        let mut removed = 0;
        for &row in &self.cols[dim] {
            if out(d.value(row as usize, dim)) {
                self.active[row as usize] = false;
                removed += 1;
            } else {
                break; // column is sorted: the rest satisfies the bound
            }
        }
        self.finish_removal(removed)
    }

    fn deactivate_suffix(&mut self, d: &Dataset, dim: usize, out: impl Fn(f64) -> bool) -> usize {
        let mut removed = 0;
        for &row in self.cols[dim].iter().rev() {
            if out(d.value(row as usize, dim)) {
                self.active[row as usize] = false;
                removed += 1;
            } else {
                break;
            }
        }
        self.finish_removal(removed)
    }

    fn finish_removal(&mut self, removed: usize) -> usize {
        if removed > 0 {
            self.n_active -= removed;
            let active = &self.active;
            for col in &mut self.cols {
                col.retain(|&row| active[row as usize]);
            }
        }
        removed
    }
}

/// Order-preserving bit mapping: `ord_key(a) < ord_key(b)` iff
/// `a.total_cmp(&b) == Less` (sign-magnitude flip, the same order
/// `f64::total_cmp` implements).
///
/// Public so out-of-core sorted-run producers (`reds-stream`) key their
/// spill records with **exactly** the order `SortedView` sorts by — the
/// k-way merge of chunk runs is then bit-identical to the in-memory
/// argsort.
#[inline]
pub fn ord_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b & (1 << 63) != 0 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`ord_key`]: recovers the exact `f64` bits a key was
/// built from (the mapping is a bijection on the 64-bit space).
///
/// Out-of-core column readers rely on this: a `(key, row)` record
/// carries the value itself, so sorted-column scans never need to
/// touch the row-major point pages.
#[inline]
pub fn ord_key_inverse(key: u64) -> f64 {
    let b = if key & (1 << 63) != 0 {
        key & !(1 << 63)
    } else {
        !key
    };
    f64::from_bits(b)
}

/// Stable LSD radix argsort: returns the row ids `0..n` ordered by
/// `(keys[row], row)`. `O(n)` per 8-bit digit, skipping digits on
/// which all keys agree — typically 3–5 effective passes on real data,
/// well below comparison sorting for the `N ≥ 10⁴` columns REDS
/// presorts.
///
/// Public so chunk-local run sorting (`reds-stream`) shares the exact
/// ordering (and tie-breaking) of [`SortedView::new`].
pub fn argsort_stable(keys: &[u64]) -> Vec<u32> {
    let n = keys.len();
    let mut idx: Vec<u32> = (0..n as u32).collect();
    if n < 64 {
        // Radix setup costs more than a small comparison sort.
        idx.sort_unstable_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]).then(a.cmp(&b)));
        return idx;
    }
    let mut tmp: Vec<u32> = vec![0; n];
    for pass in 0..8 {
        let shift = pass * 8;
        let mut hist = [0usize; 256];
        for &i in &idx {
            hist[((keys[i as usize] >> shift) & 255) as usize] += 1;
        }
        if hist.contains(&n) {
            continue; // every key shares this digit — nothing to reorder
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0usize;
        for (o, h) in offsets.iter_mut().zip(&hist) {
            *o = acc;
            acc += h;
        }
        for &i in &idx {
            let bucket = ((keys[i as usize] >> shift) & 255) as usize;
            tmp[offsets[bucket]] = i;
            offsets[bucket] += 1;
        }
        std::mem::swap(&mut idx, &mut tmp);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ord_key_round_trips_exact_bits() {
        for v in [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            0.5,
            2.0,
            f64::INFINITY,
            f64::NAN,
        ] {
            let back = ord_key_inverse(ord_key(v));
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn ord_key_matches_total_cmp() {
        let vals = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            0.5,
            2.0,
            f64::INFINITY,
            f64::NAN,
        ];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(ord_key(a).cmp(&ord_key(b)), a.total_cmp(&b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn radix_argsort_matches_comparison_sort() {
        // > 64 rows to exercise the radix path, with ties.
        let keys: Vec<u64> = (0..500)
            .map(|i| ord_key(((i * 7919) % 83) as f64 / 83.0))
            .collect();
        let radix = argsort_stable(&keys);
        let mut reference: Vec<u32> = (0..500).collect();
        reference.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]).then(a.cmp(&b)));
        assert_eq!(radix, reference);
    }

    fn toy() -> Dataset {
        // Column 0: 3 1 2 1 0 ; column 1: 5 4 3 2 1
        Dataset::new(
            vec![3.0, 5.0, 1.0, 4.0, 2.0, 3.0, 1.0, 2.0, 0.0, 1.0],
            vec![0.0, 1.0, 0.0, 1.0, 0.0],
            2,
        )
        .unwrap()
    }

    #[test]
    fn columns_are_sorted_with_ties_by_row() {
        let d = toy();
        let v = SortedView::new(&d);
        assert_eq!(v.column(0), &[4, 1, 3, 2, 0]); // values 0 1 1 2 3, tie 1@rows{1,3}
        assert_eq!(v.column(1), &[4, 3, 2, 1, 0]);
        assert_eq!(v.n_active(), 5);
        assert_eq!(v.m(), 2);
    }

    #[test]
    fn low_cut_removes_the_strict_prefix() {
        let d = toy();
        let mut v = SortedView::new(&d);
        // Lower bound 1.0 on dim 0: only row 4 (value 0) goes.
        assert_eq!(v.retain_at_least(&d, 0, 1.0), 1);
        assert_eq!(v.n_active(), 4);
        assert!(!v.is_active(4));
        assert_eq!(v.column(0), &[1, 3, 2, 0]);
        assert_eq!(v.column(1), &[3, 2, 1, 0]); // compacted everywhere
    }

    #[test]
    fn high_cut_removes_the_strict_suffix() {
        let d = toy();
        let mut v = SortedView::new(&d);
        assert_eq!(v.retain_at_most(&d, 1, 3.0), 2); // rows 0 (5) and 1 (4)
        assert_eq!(v.n_active(), 3);
        assert_eq!(v.column(0), &[4, 3, 2]);
    }

    #[test]
    fn ties_at_the_bound_survive() {
        let d = Dataset::new(vec![1.0, 1.0, 1.0, 2.0, 3.0], vec![0.0; 5], 1).unwrap();
        let mut v = SortedView::new(&d);
        assert_eq!(v.retain_at_least(&d, 0, 1.0), 0); // nothing strictly below
        assert_eq!(v.n_active(), 5);
        assert_eq!(v.retain_at_most(&d, 0, 1.0), 2);
        assert_eq!(v.column(0), &[0, 1, 2]);
    }

    #[test]
    fn repeated_cuts_compose() {
        let d = toy();
        let mut v = SortedView::new(&d);
        v.retain_at_least(&d, 0, 1.0);
        v.retain_at_most(&d, 1, 3.0);
        // Survivors: rows with x0 >= 1 and x1 <= 3 -> rows 2, 3.
        assert_eq!(v.n_active(), 2);
        assert_eq!(v.column(0), &[3, 2]);
        assert_eq!(v.column(1), &[3, 2]);
    }

    #[test]
    fn presorted_columns_reconstruct_the_view() {
        let d = toy();
        let reference = SortedView::new(&d);
        let rebuilt =
            SortedView::from_presorted_columns(reference.cols.clone(), d.n()).expect("valid");
        assert_eq!(rebuilt.column(0), reference.column(0));
        assert_eq!(rebuilt.column(1), reference.column(1));
        assert_eq!(rebuilt.n_active(), d.n());
        // Cuts behave identically on the rebuilt view.
        let mut a = reference.clone();
        let mut b = rebuilt;
        assert_eq!(a.retain_at_least(&d, 0, 1.0), b.retain_at_least(&d, 0, 1.0));
        assert_eq!(a.column(1), b.column(1));
    }

    #[test]
    fn invalid_presorted_columns_are_rejected() {
        // Wrong length.
        assert!(matches!(
            SortedView::from_presorted_columns(vec![vec![0, 1]], 3),
            Err(DataError::NotAPermutation { column: 0 })
        ));
        // Duplicate id (second column).
        assert!(matches!(
            SortedView::from_presorted_columns(vec![vec![0, 1, 2], vec![0, 0, 2]], 3),
            Err(DataError::NotAPermutation { column: 1 })
        ));
        // Out-of-range id.
        assert!(matches!(
            SortedView::from_presorted_columns(vec![vec![0, 3, 2]], 3),
            Err(DataError::NotAPermutation { column: 0 })
        ));
        // Empty is fine.
        assert!(SortedView::from_presorted_columns(vec![Vec::new()], 0).is_ok());
    }

    #[test]
    fn empty_dataset_yields_empty_view() {
        let d = Dataset::empty(2).unwrap();
        let v = SortedView::new(&d);
        assert_eq!(v.n_active(), 0);
        assert!(v.column(0).is_empty());
    }
}
