use rand::seq::SliceRandom;
use rand::Rng;

use crate::{DataError, Dataset};

/// A train/test partition of a dataset.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training part.
    pub train: Dataset,
    /// Held-out part.
    pub test: Dataset,
}

/// Randomly partitions `data` into a training part with a `train_fraction`
/// share of the rows and a test part with the rest.
///
/// The row order inside each part is the shuffled order, so downstream
/// consumers see i.i.d.-looking data regardless of how `data` was built.
///
/// # Errors
///
/// Returns [`DataError::TooFewRows`] when either side would be empty
/// (requires `n >= 2` and `0 < train_fraction < 1` to produce two
/// non-empty parts).
pub fn train_test_split(
    data: &Dataset,
    train_fraction: f64,
    rng: &mut impl Rng,
) -> Result<Split, DataError> {
    let n = data.n();
    let n_train = (n as f64 * train_fraction).round() as usize;
    if n < 2 || n_train == 0 || n_train >= n {
        return Err(DataError::TooFewRows {
            rows: n,
            required: 2,
        });
    }
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);
    let train = data.select_rows(&indices[..n_train]);
    let test = data.select_rows(&indices[n_train..]);
    Ok(Split { train, test })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line(n: usize) -> Dataset {
        Dataset::from_fn((0..n).map(|i| i as f64).collect(), 1, |x| x[0] % 2.0).unwrap()
    }

    #[test]
    fn split_sizes_match_fraction() {
        let d = line(100);
        let mut rng = StdRng::seed_from_u64(7);
        let s = train_test_split(&d, 0.8, &mut rng).unwrap();
        assert_eq!(s.train.n(), 80);
        assert_eq!(s.test.n(), 20);
    }

    #[test]
    fn split_is_a_partition() {
        let d = line(50);
        let mut rng = StdRng::seed_from_u64(1);
        let s = train_test_split(&d, 0.5, &mut rng).unwrap();
        let mut seen: Vec<f64> = s
            .train
            .points()
            .iter()
            .chain(s.test.points())
            .copied()
            .collect();
        seen.sort_by(f64::total_cmp);
        let expected: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn degenerate_splits_error() {
        let d = line(10);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(train_test_split(&d, 0.0, &mut rng).is_err());
        assert!(train_test_split(&d, 1.0, &mut rng).is_err());
        assert!(train_test_split(&line(1), 0.5, &mut rng).is_err());
    }

    #[test]
    fn seeded_split_is_deterministic() {
        let d = line(30);
        let a = train_test_split(&d, 0.7, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = train_test_split(&d, 0.7, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a.train.points(), b.train.points());
        assert_eq!(a.test.points(), b.test.points());
    }
}
