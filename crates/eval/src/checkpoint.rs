//! JSONL shard checkpoints for long experiment sweeps.
//!
//! A checkpoint file records the completed [`WorkUnit`]s of one shard
//! of a sweep so an interrupted run can resume and so shards executed
//! on different machines can be recombined by `merge_shards`. The
//! format is line-delimited JSON:
//!
//! ```text
//! {"schema_version":1,"fingerprint":"d3b0…","shard":0,"of":2}   ← header
//! {"spec":"9a41…","unit":{…},"eval":{…}}                        ← one per unit
//! ```
//!
//! * **Atomic appends** — each completed unit is serialized and written
//!   as a single `write_all` of one full line, then flushed. A crash
//!   can leave at most one partial trailing line, which
//!   [`load_checkpoint`] detects and drops (`truncated`); resuming
//!   rewrites the file from its valid prefix via a temp-file rename
//!   before appending again.
//! * **Fingerprints** — the header carries the producing run's
//!   fingerprint and each record its spec's fingerprint (see
//!   [`crate::workunit::spec_fingerprint`]), so partial results from a
//!   different configuration are rejected instead of merged silently.
//! * **Exact floats** — `reds-json` serializes `f64` with
//!   shortest-round-trip formatting, so every score survives
//!   serialize → parse → merge bit-for-bit.

use std::collections::HashSet;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

use reds_json::{from_str, Json};
use reds_subgroup::HyperBox;

use crate::experiment::Evaluation;
use crate::workunit::WorkUnit;

/// Version of the checkpoint file layout; bump on incompatible change.
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 1;

/// First line of a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// File-layout version ([`CHECKPOINT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Fingerprint of the producing run's full configuration.
    pub fingerprint: String,
    /// Shard index, `0 .. of`.
    pub shard: usize,
    /// Total number of shards (1 = monolithic).
    pub of: usize,
}

impl CheckpointHeader {
    /// A header for shard `shard` of `of` of a run with `fingerprint`.
    pub fn new(fingerprint: impl Into<String>, shard: usize, of: usize) -> Self {
        Self {
            schema_version: CHECKPOINT_SCHEMA_VERSION,
            fingerprint: fingerprint.into(),
            shard,
            of,
        }
    }
}

/// One completed work unit with its result.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitRecord {
    /// Fingerprint of the [`ExperimentSpec`](crate::ExperimentSpec) the
    /// unit belongs to (a sweep checkpoints many specs into one file).
    pub spec: String,
    /// The grid cell.
    pub unit: WorkUnit,
    /// Its result.
    pub eval: Evaluation,
    /// Lease attempt that produced the record: `0` for in-process
    /// execution (monolithic and sharded runs), `>= 1` when a fleet
    /// coordinator ingested the unit from a remote worker's lease.
    /// Results are bit-identical across attempts (stable seeding), so
    /// this is provenance, not payload; files written before the field
    /// existed load as attempt 0.
    pub attempt: u32,
}

/// The identity under which completed units are deduplicated — one
/// string per grid cell, shared by checkpoint merging, fleet lease
/// journals, and idempotent result ingestion.
pub fn unit_key(spec_fingerprint: &str, unit: &WorkUnit) -> String {
    format!("{spec_fingerprint}/{}/{}", unit.method, unit.rep)
}

/// A parsed checkpoint file.
#[derive(Debug, Clone)]
pub struct ShardCheckpoint {
    /// The header line.
    pub header: CheckpointHeader,
    /// All fully-written unit records, in append order.
    pub records: Vec<UnitRecord>,
    /// `true` when a partial trailing line (interrupted final append)
    /// was dropped.
    pub truncated: bool,
}

/// Failure to read, validate, or merge checkpoints.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A fully-written line does not parse as the expected record shape.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The file was written by an incompatible layout version.
    SchemaMismatch {
        /// Version found in the header.
        found: u32,
    },
    /// The file belongs to a differently-configured run.
    FingerprintMismatch {
        /// Fingerprint of the current configuration.
        expected: String,
        /// Fingerprint found in the header.
        found: String,
    },
    /// The file's shard coordinates differ from the resuming run's.
    ShardMismatch {
        /// Header of the resuming run.
        expected: CheckpointHeader,
        /// Header found in the file.
        found: CheckpointHeader,
    },
    /// The same grid cell appears more than once across the merged
    /// checkpoints.
    DuplicateUnit {
        /// Spec fingerprint of the duplicated unit.
        spec: String,
        /// Method name of the duplicated unit.
        method: String,
        /// Repetition of the duplicated unit.
        rep: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::Corrupt { line, message } => {
                write!(f, "corrupt checkpoint at line {line}: {message}")
            }
            Self::SchemaMismatch { found } => write!(
                f,
                "checkpoint schema version {found} is not {CHECKPOINT_SCHEMA_VERSION}"
            ),
            Self::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found} does not match this run's configuration \
                 ({expected}) — it was produced with different settings"
            ),
            Self::ShardMismatch { expected, found } => write!(
                f,
                "checkpoint is shard {}/{} but this run is shard {}/{}",
                found.shard, found.of, expected.shard, expected.of
            ),
            Self::DuplicateUnit { spec, method, rep } => write!(
                f,
                "unit (spec {spec}, method {method}, rep {rep}) appears more than once"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

// ---- JSON conversions -------------------------------------------------

fn u64_to_json(v: u64) -> Json {
    // u64 does not fit f64 losslessly; decimal strings do.
    Json::str(v.to_string())
}

fn u64_from_json(v: &Json) -> Result<u64, String> {
    v.as_str()
        .ok_or_else(|| "expected a decimal string".to_string())?
        .parse()
        .map_err(|e| format!("bad u64: {e}"))
}

fn usize_from_json(v: &Json, what: &str) -> Result<usize, String> {
    let f = v
        .as_f64()
        .ok_or_else(|| format!("{what}: expected a number"))?;
    if f < 0.0 || f.fract() != 0.0 || f > (1u64 << 53) as f64 {
        return Err(format!("{what}: {f} is not a valid count"));
    }
    Ok(f as usize)
}

fn f64_from_json(v: &Json, what: &str) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("{what}: expected a number"))
}

fn header_to_json(h: &CheckpointHeader) -> Json {
    Json::obj([
        ("schema_version", Json::num(h.schema_version as f64)),
        ("fingerprint", Json::str(h.fingerprint.clone())),
        ("shard", Json::num(h.shard as f64)),
        ("of", Json::num(h.of as f64)),
    ])
}

fn header_from_json(doc: &Json) -> Result<CheckpointHeader, String> {
    let field = |k: &str| doc.get(k).ok_or_else(|| format!("header missing '{k}'"));
    Ok(CheckpointHeader {
        schema_version: usize_from_json(field("schema_version")?, "schema_version")? as u32,
        fingerprint: field("fingerprint")?
            .as_str()
            .ok_or("fingerprint: expected a string")?
            .to_string(),
        shard: usize_from_json(field("shard")?, "shard")?,
        of: usize_from_json(field("of")?, "of")?,
    })
}

/// Wire/JSONL form of a [`WorkUnit`] (public so the fleet protocol's
/// lease frames serialize units exactly like checkpoints do).
pub fn unit_to_json(u: &WorkUnit) -> Json {
    Json::obj([
        ("function", Json::str(u.function.clone())),
        ("n", Json::num(u.n as f64)),
        ("method", Json::str(u.method.clone())),
        ("method_index", Json::num(u.method_index as f64)),
        ("rep", Json::num(u.rep as f64)),
        ("rep_seed", u64_to_json(u.rep_seed)),
        ("method_seed", u64_to_json(u.method_seed)),
    ])
}

/// Inverse of [`unit_to_json`].
pub fn unit_from_json(doc: &Json) -> Result<WorkUnit, String> {
    let field = |k: &str| doc.get(k).ok_or_else(|| format!("unit missing '{k}'"));
    Ok(WorkUnit {
        function: field("function")?
            .as_str()
            .ok_or("function: expected a string")?
            .to_string(),
        n: usize_from_json(field("n")?, "n")?,
        method: field("method")?
            .as_str()
            .ok_or("method: expected a string")?
            .to_string(),
        method_index: usize_from_json(field("method_index")?, "method_index")?,
        rep: usize_from_json(field("rep")?, "rep")?,
        rep_seed: u64_from_json(field("rep_seed")?).map_err(|e| format!("rep_seed: {e}"))?,
        method_seed: u64_from_json(field("method_seed")?)
            .map_err(|e| format!("method_seed: {e}"))?,
    })
}

fn eval_to_json(e: &Evaluation) -> Json {
    Json::obj([
        ("pr_auc", Json::Num(e.pr_auc)),
        ("precision", Json::Num(e.precision)),
        ("recall", Json::Num(e.recall)),
        ("wracc", Json::Num(e.wracc)),
        ("n_restricted", Json::num(e.n_restricted as f64)),
        ("n_irrel", Json::num(e.n_irrel as f64)),
        ("runtime_ms", Json::Num(e.runtime_ms)),
        ("last_box", e.last_box.to_json()),
    ])
}

fn eval_from_json(doc: &Json) -> Result<Evaluation, String> {
    let field = |k: &str| doc.get(k).ok_or_else(|| format!("eval missing '{k}'"));
    Ok(Evaluation {
        pr_auc: f64_from_json(field("pr_auc")?, "pr_auc")?,
        precision: f64_from_json(field("precision")?, "precision")?,
        recall: f64_from_json(field("recall")?, "recall")?,
        wracc: f64_from_json(field("wracc")?, "wracc")?,
        n_restricted: usize_from_json(field("n_restricted")?, "n_restricted")?,
        n_irrel: usize_from_json(field("n_irrel")?, "n_irrel")?,
        runtime_ms: f64_from_json(field("runtime_ms")?, "runtime_ms")?,
        last_box: HyperBox::from_json(field("last_box")?).ok_or("last_box: bad shape")?,
    })
}

/// JSON form of one record line (public for property tests).
pub fn record_to_json(r: &UnitRecord) -> Json {
    Json::obj([
        ("spec", Json::str(r.spec.clone())),
        ("unit", unit_to_json(&r.unit)),
        ("eval", eval_to_json(&r.eval)),
        ("attempt", Json::num(r.attempt as f64)),
    ])
}

/// Parses one record line (public for property tests).
pub fn record_from_json(doc: &Json) -> Result<UnitRecord, String> {
    let field = |k: &str| doc.get(k).ok_or_else(|| format!("record missing '{k}'"));
    // Pre-fleet checkpoints have no attempt field: in-process execution.
    let attempt = match doc.get("attempt") {
        None => 0,
        Some(v) => usize_from_json(v, "attempt")? as u32,
    };
    Ok(UnitRecord {
        spec: field("spec")?
            .as_str()
            .ok_or("spec: expected a string")?
            .to_string(),
        unit: unit_from_json(field("unit")?)?,
        eval: eval_from_json(field("eval")?)?,
        attempt,
    })
}

// ---- file I/O ---------------------------------------------------------

/// Appends completed units to a checkpoint file, one line per unit.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: File,
}

impl CheckpointWriter {
    /// Creates (or truncates) the file and writes the header line.
    pub fn create(path: &Path, header: &CheckpointHeader) -> Result<Self, CheckpointError> {
        let mut file = File::create(path)?;
        let mut line = header_to_json(header).to_string_compact();
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.flush()?;
        Ok(Self { file })
    }

    /// Reopens an interrupted checkpoint: validates the header against
    /// `header`, rewrites the file from its valid prefix (dropping a
    /// partial trailing line) via a temp-file rename, and returns the
    /// writer positioned for appending plus the already-completed
    /// records.
    pub fn resume(
        path: &Path,
        header: &CheckpointHeader,
    ) -> Result<(Self, Vec<UnitRecord>), CheckpointError> {
        let ck = load_checkpoint(path)?;
        if ck.header.schema_version != header.schema_version {
            return Err(CheckpointError::SchemaMismatch {
                found: ck.header.schema_version,
            });
        }
        if ck.header.fingerprint != header.fingerprint {
            return Err(CheckpointError::FingerprintMismatch {
                expected: header.fingerprint.clone(),
                found: ck.header.fingerprint,
            });
        }
        if (ck.header.shard, ck.header.of) != (header.shard, header.of) {
            return Err(CheckpointError::ShardMismatch {
                expected: header.clone(),
                found: ck.header,
            });
        }
        // Rewrite the valid prefix so a dropped partial line can never
        // corrupt subsequent appends; the rename is atomic.
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            let mut text = header_to_json(&ck.header).to_string_compact();
            text.push('\n');
            for r in &ck.records {
                text.push_str(&record_to_json(r).to_string_compact());
                text.push('\n');
            }
            f.write_all(text.as_bytes())?;
            f.flush()?;
        }
        std::fs::rename(&tmp, path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok((Self { file }, ck.records))
    }

    /// Appends one completed unit as a single atomic line write.
    pub fn append(&mut self, record: &UnitRecord) -> Result<(), CheckpointError> {
        let mut line = record_to_json(record).to_string_compact();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        Ok(())
    }
}

/// Parses a checkpoint file. A partial trailing line (no terminating
/// newline — an append interrupted mid-write) is dropped and flagged via
/// [`ShardCheckpoint::truncated`]; any other malformed line is an
/// error.
pub fn load_checkpoint(path: &Path) -> Result<ShardCheckpoint, CheckpointError> {
    let text = std::fs::read_to_string(path)?;
    let complete = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    let parse_line = |i: usize, line: &str| -> Result<Json, CheckpointError> {
        from_str(line).map_err(|e| CheckpointError::Corrupt {
            line: i + 1,
            message: e.to_string(),
        })
    };
    let Some((first, rest)) = lines.split_first() else {
        return Err(CheckpointError::Corrupt {
            line: 1,
            message: "empty file".to_string(),
        });
    };
    let header = header_from_json(&parse_line(0, first)?)
        .map_err(|message| CheckpointError::Corrupt { line: 1, message })?;
    let mut records = Vec::with_capacity(rest.len());
    let mut truncated = false;
    for (i, line) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        let parsed = parse_line(i + 1, line).and_then(|doc| {
            record_from_json(&doc).map_err(|message| CheckpointError::Corrupt {
                line: i + 2,
                message,
            })
        });
        match parsed {
            Ok(r) => records.push(r),
            Err(e) => {
                if last && !complete {
                    // Interrupted final append — recoverable.
                    truncated = true;
                } else {
                    return Err(e);
                }
            }
        }
    }
    Ok(ShardCheckpoint {
        header,
        records,
        truncated,
    })
}

/// Validates and concatenates the records of several shard checkpoints:
/// every header must carry the current schema version and
/// `expected_fingerprint`, and no grid cell may appear twice. Shards
/// may arrive in any order; completeness is checked downstream by
/// [`aggregate_units`](crate::aggregate_units).
pub fn merge_records(
    expected_fingerprint: &str,
    shards: &[ShardCheckpoint],
) -> Result<Vec<UnitRecord>, CheckpointError> {
    let mut seen: HashSet<(String, String, usize)> = HashSet::new();
    let mut merged = Vec::new();
    for shard in shards {
        if shard.header.schema_version != CHECKPOINT_SCHEMA_VERSION {
            return Err(CheckpointError::SchemaMismatch {
                found: shard.header.schema_version,
            });
        }
        if shard.header.fingerprint != expected_fingerprint {
            return Err(CheckpointError::FingerprintMismatch {
                expected: expected_fingerprint.to_string(),
                found: shard.header.fingerprint.clone(),
            });
        }
        for r in &shard.records {
            let key = (r.spec.clone(), r.unit.method.clone(), r.unit.rep);
            if !seen.insert(key) {
                return Err(CheckpointError::DuplicateUnit {
                    spec: r.spec.clone(),
                    method: r.unit.method.clone(),
                    rep: r.unit.rep,
                });
            }
            merged.push(r.clone());
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn record(rep: usize, score: f64) -> UnitRecord {
        UnitRecord {
            spec: "00000000deadbeef".to_string(),
            unit: WorkUnit {
                function: "2".to_string(),
                n: 100,
                method: "P".to_string(),
                method_index: 0,
                rep,
                rep_seed: u64::MAX - rep as u64,
                method_seed: 0x1234_5678_9abc_def0 + rep as u64,
            },
            eval: Evaluation {
                pr_auc: score,
                precision: 0.75,
                recall: 1e-300,
                wracc: -0.0,
                n_restricted: 3,
                n_irrel: 0,
                runtime_ms: 12.5,
                last_box: HyperBox::from_bounds(vec![(0.25, f64::INFINITY), (-0.5, 0.5)]),
            },
            attempt: rep as u32 % 3,
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("reds-ckpt-test-{}-{name}", std::process::id()))
    }

    fn bitwise_eq(a: &UnitRecord, b: &UnitRecord) -> bool {
        a.spec == b.spec
            && a.unit == b.unit
            && a.eval.pr_auc.to_bits() == b.eval.pr_auc.to_bits()
            && a.eval.precision.to_bits() == b.eval.precision.to_bits()
            && a.eval.recall.to_bits() == b.eval.recall.to_bits()
            && a.eval.wracc.to_bits() == b.eval.wracc.to_bits()
            && a.eval.n_restricted == b.eval.n_restricted
            && a.eval.n_irrel == b.eval.n_irrel
            && a.eval.runtime_ms.to_bits() == b.eval.runtime_ms.to_bits()
            && a.eval.last_box == b.eval.last_box
            && a.attempt == b.attempt
    }

    #[test]
    fn file_round_trip_is_bitwise_exact() {
        let path = tmp_path("roundtrip.jsonl");
        let header = CheckpointHeader::new("cafe", 1, 3);
        let mut w = CheckpointWriter::create(&path, &header).expect("create");
        let records: Vec<UnitRecord> = (0..4).map(|r| record(r, 0.1 + 0.2 * r as f64)).collect();
        for r in &records {
            w.append(r).expect("append");
        }
        drop(w);
        let ck = load_checkpoint(&path).expect("load");
        assert_eq!(ck.header, header);
        assert!(!ck.truncated);
        assert_eq!(ck.records.len(), records.len());
        for (a, b) in ck.records.iter().zip(&records) {
            assert!(bitwise_eq(a, b), "{a:?}\n!=\n{b:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partial_trailing_line_is_dropped_and_flagged() {
        let path = tmp_path("truncated.jsonl");
        let header = CheckpointHeader::new("cafe", 0, 1);
        let mut w = CheckpointWriter::create(&path, &header).expect("create");
        w.append(&record(0, 0.5)).expect("append");
        drop(w);
        // Simulate a crash mid-append: half a record, no newline.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"spec\":\"00000000deadbeef\",\"unit\":{\"function\":");
        std::fs::write(&path, &text).unwrap();

        let ck = load_checkpoint(&path).expect("load tolerates the tail");
        assert!(ck.truncated);
        assert_eq!(ck.records.len(), 1);

        // Resume rewrites the valid prefix and appends cleanly after it.
        let (mut w, done) = CheckpointWriter::resume(&path, &header).expect("resume");
        assert_eq!(done.len(), 1);
        w.append(&record(1, 0.75)).expect("append after resume");
        drop(w);
        let ck = load_checkpoint(&path).expect("reload");
        assert!(!ck.truncated);
        assert_eq!(ck.records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_interior_line_is_an_error() {
        let path = tmp_path("corrupt.jsonl");
        let header = CheckpointHeader::new("cafe", 0, 1);
        let mut w = CheckpointWriter::create(&path, &header).expect("create");
        w.append(&record(0, 0.5)).expect("append");
        drop(w);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("not json\n");
        text.push_str(&record_to_json(&record(1, 0.75)).to_string_compact());
        text.push('\n');
        std::fs::write(&path, &text).unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Corrupt { line: 3, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_foreign_headers() {
        let path = tmp_path("foreign.jsonl");
        let header = CheckpointHeader::new("cafe", 0, 2);
        CheckpointWriter::create(&path, &header).expect("create");
        assert!(matches!(
            CheckpointWriter::resume(&path, &CheckpointHeader::new("beef", 0, 2)),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
        assert!(matches!(
            CheckpointWriter::resume(&path, &CheckpointHeader::new("cafe", 1, 2)),
            Err(CheckpointError::ShardMismatch { .. })
        ));
        let mut wrong_schema = header.clone();
        wrong_schema.schema_version = 99;
        assert!(matches!(
            CheckpointWriter::resume(&path, &wrong_schema),
            Err(CheckpointError::SchemaMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_validates_fingerprints_and_duplicates() {
        let a = ShardCheckpoint {
            header: CheckpointHeader::new("cafe", 0, 2),
            records: vec![record(0, 0.5)],
            truncated: false,
        };
        let b = ShardCheckpoint {
            header: CheckpointHeader::new("cafe", 1, 2),
            records: vec![record(1, 0.6)],
            truncated: false,
        };
        let merged = merge_records("cafe", &[b.clone(), a.clone()]).expect("merges");
        assert_eq!(merged.len(), 2);

        assert!(matches!(
            merge_records("beef", std::slice::from_ref(&a)),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
        assert!(matches!(
            merge_records("cafe", &[a.clone(), a.clone()]),
            Err(CheckpointError::DuplicateUnit { .. })
        ));
    }

    #[test]
    fn empty_shard_round_trips() {
        let path = tmp_path("empty.jsonl");
        let header = CheckpointHeader::new("cafe", 2, 5);
        CheckpointWriter::create(&path, &header).expect("create");
        let ck = load_checkpoint(&path).expect("load");
        assert_eq!(ck.header, header);
        assert!(ck.records.is_empty() && !ck.truncated);
        assert!(merge_records("cafe", &[ck]).expect("merges").is_empty());
        std::fs::remove_file(&path).ok();
    }
}
