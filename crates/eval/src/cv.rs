//! Hyperparameter optimisation for the subgroup-discovery algorithms —
//! the "c" suffix of the paper's method names (§8.4, Table 2).
//!
//! * PRIM's `α` is selected from `{0.03, 0.05, 0.07, 0.1, 0.13, 0.16,
//!   0.2}` by 5-fold CV on the PR AUC of the discovered trajectory;
//! * the feature-count `m` of PRIM-with-bumping and of BI is selected
//!   from `{M − k⌈M/6⌉}` by 5-fold CV (PR AUC for bumping, WRAcc for
//!   BI).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::{Dataset, KFold};
use reds_metrics::{pr_auc, wracc};
use reds_subgroup::{
    BestInterval, BiParams, Prim, PrimBumping, PrimBumpingParams, PrimParams, SubgroupDiscovery,
};

/// The α grid of Table 2.
pub const ALPHA_GRID: [f64; 7] = [0.03, 0.05, 0.07, 0.1, 0.13, 0.16, 0.2];

/// Number of folds of the paper's CV (§8.4).
const FOLDS: usize = 5;

/// The `m` grid `{M − k⌈M/6⌉ : k ≥ 0, result > 0}` of Table 2.
pub fn m_grid(m: usize) -> Vec<usize> {
    let step = m.div_ceil(6);
    let mut grid = Vec::new();
    let mut v = m as isize;
    while v > 0 {
        grid.push(v as usize);
        v -= step as isize;
    }
    grid
}

/// Mean CV score of an SD algorithm built by `make` for each fold.
fn cv_score(
    d: &Dataset,
    rng: &mut StdRng,
    make: &dyn Fn() -> Box<dyn SubgroupDiscovery>,
    score: &dyn Fn(&reds_subgroup::SdResult, &Dataset) -> f64,
) -> f64 {
    let k = FOLDS.min(d.n());
    if k < 2 {
        return f64::NEG_INFINITY;
    }
    let Ok(folds) = KFold::new(d.n(), k, rng) else {
        return f64::NEG_INFINITY;
    };
    let mut total = 0.0;
    let mut count = 0;
    for (train, test) in folds.splits(d) {
        if train.is_empty() || test.is_empty() {
            continue;
        }
        let mut run_rng = StdRng::seed_from_u64(rng.gen());
        let result = make().discover(&train, &train, &mut run_rng);
        total += score(&result, &test);
        count += 1;
    }
    if count == 0 {
        f64::NEG_INFINITY
    } else {
        total / count as f64
    }
}

/// Selects PRIM's peeling fraction `α` by CV on trajectory PR AUC.
pub fn select_prim_alpha(d: &Dataset, rng: &mut StdRng) -> f64 {
    let mut best = (f64::NEG_INFINITY, PrimParams::default().alpha);
    for &alpha in &ALPHA_GRID {
        let make = move || -> Box<dyn SubgroupDiscovery> {
            Box::new(Prim::new(PrimParams {
                alpha,
                ..Default::default()
            }))
        };
        let s = cv_score(d, rng, &make, &|result, test| pr_auc(&result.boxes, test));
        if s > best.0 {
            best = (s, alpha);
        }
    }
    best.1
}

/// Selects the feature-subset size `m` of PRIM with bumping by CV on
/// PR AUC. `alpha` is the (already selected) peeling fraction; the CV
/// runs use a reduced `Q` to keep the search tractable (the selection
/// only needs a ranking, not final-quality boxes).
pub fn select_bumping_m(d: &Dataset, alpha: f64, rng: &mut StdRng) -> usize {
    let mut best = (f64::NEG_INFINITY, d.m());
    for m in m_grid(d.m()) {
        let make = move || -> Box<dyn SubgroupDiscovery> {
            Box::new(PrimBumping::new(PrimBumpingParams {
                prim: PrimParams {
                    alpha,
                    ..Default::default()
                },
                q: 15,
                m_features: Some(m),
            }))
        };
        let s = cv_score(d, rng, &make, &|result, test| pr_auc(&result.boxes, test));
        if s > best.0 {
            best = (s, m);
        }
    }
    best.1
}

/// Selects BI's depth limit `m` by CV on WRAcc of the returned box.
pub fn select_bi_m(d: &Dataset, beam_size: usize, rng: &mut StdRng) -> usize {
    let mut best = (f64::NEG_INFINITY, d.m());
    for m in m_grid(d.m()) {
        let make = move || -> Box<dyn SubgroupDiscovery> {
            Box::new(BestInterval::new(BiParams {
                max_restricted: Some(m),
                beam_size,
                ..Default::default()
            }))
        };
        let s = cv_score(d, rng, &make, &|result, test| {
            result
                .last_box()
                .map_or(f64::NEG_INFINITY, |b| wracc(b, test))
        });
        if s > best.0 {
            best = (s, m);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_grid_follows_table2() {
        // M = 20: ⌈20/6⌉ = 4 → {20, 16, 12, 8, 4}.
        assert_eq!(m_grid(20), vec![20, 16, 12, 8, 4]);
        // M = 5: ⌈5/6⌉ = 1 → {5, 4, 3, 2, 1}.
        assert_eq!(m_grid(5), vec![5, 4, 3, 2, 1]);
        assert_eq!(m_grid(1), vec![1]);
    }

    fn corner_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * 3).map(|_| rng.gen::<f64>()).collect(), 3, |x| {
            if x[0] > 0.5 && x[1] > 0.5 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    #[test]
    fn alpha_selection_returns_grid_member() {
        let d = corner_data(200, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let alpha = select_prim_alpha(&d, &mut rng);
        assert!(ALPHA_GRID.contains(&alpha));
    }

    #[test]
    fn bi_m_selection_returns_grid_member() {
        let d = corner_data(200, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let m = select_bi_m(&d, 1, &mut rng);
        assert!(m_grid(3).contains(&m));
    }

    #[test]
    fn bumping_m_selection_returns_grid_member() {
        let d = corner_data(150, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let m = select_bumping_m(&d, 0.05, &mut rng);
        assert!(m_grid(3).contains(&m));
    }

    #[test]
    fn tiny_data_falls_back_to_defaults() {
        let d = corner_data(3, 7);
        let mut rng = StdRng::seed_from_u64(8);
        // Must not panic; any grid member is acceptable.
        let _ = select_prim_alpha(&d, &mut rng);
    }
}
