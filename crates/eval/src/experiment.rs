//! The repeated-run experiment driver behind every table and figure of
//! §9: generate a training design, label it with a benchmark function,
//! run each method, score on a large held-out test set, and aggregate
//! over repetitions — in parallel across repetitions.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds_core::NewPointSampler;
use reds_functions::BenchmarkFunction;
use reds_metrics::{consistency, n_irrelevantly_restricted, pr_auc, score_box};
use reds_sampling::{halton_offset, latin_hypercube, logit_normal, mixed_design, uniform};
use reds_subgroup::HyperBox;

use crate::methods::{run_method, MethodOpts};

/// Training-design family of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Design {
    /// Latin hypercube sampling (the default of §8.5).
    Lhs,
    /// Halton sequence (used for `dsgc`).
    Halton,
    /// Mixed continuous/discrete design (§9.1.2).
    MixedEven,
    /// Logit-normal i.i.d. inputs (§9.4).
    LogitNormal,
}

impl Design {
    /// The paper's design for a given function name.
    pub fn for_function(name: &str) -> Self {
        if name == "dsgc" {
            Self::Halton
        } else {
            Self::Lhs
        }
    }

    fn sample(&self, n: usize, m: usize, rep: usize, rng: &mut StdRng) -> Vec<f64> {
        match self {
            Self::Lhs => latin_hypercube(n, m, rng),
            Self::Halton => halton_offset(n, m, 1 + (rep * n) as u64),
            Self::MixedEven => mixed_design(n, m, rng),
            Self::LogitNormal => logit_normal(n, m, 0.0, 1.0, rng),
        }
    }

    /// REDS must resample from the same input distribution (§6.1).
    fn sampler(&self) -> NewPointSampler {
        match self {
            Self::Lhs | Self::Halton => NewPointSampler::Uniform,
            Self::MixedEven => NewPointSampler::MixedEven,
            Self::LogitNormal => NewPointSampler::LogitNormal {
                mu: 0.0,
                sigma: 1.0,
            },
        }
    }

    /// Test data follows the same distribution as the training design
    /// (i.i.d. rather than space-filling).
    fn sample_test(&self, n: usize, m: usize, rng: &mut StdRng) -> Vec<f64> {
        match self {
            Self::Lhs | Self::Halton => uniform(n, m, rng),
            Self::MixedEven => mixed_design(n, m, rng),
            Self::LogitNormal => logit_normal(n, m, 0.0, 1.0, rng),
        }
    }
}

/// One experiment: a function, a training size, methods, repetitions.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Benchmark function under study.
    pub function: &'static BenchmarkFunction,
    /// Training-set size `N`.
    pub n: usize,
    /// Number of repetitions (the paper uses 50).
    pub reps: usize,
    /// Paper-style method names to compare.
    pub methods: Vec<String>,
    /// Shared method options (`L`, `Q`, …).
    pub opts: MethodOpts,
    /// Training design.
    pub design: Design,
    /// Held-out test size (the paper uses 20 000).
    pub test_size: usize,
    /// Base seed; repetition `r` uses `seed + r`.
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl ExperimentSpec {
    /// A spec with the paper's structure but scaled-down driver defaults.
    pub fn new(function: &'static BenchmarkFunction, n: usize, methods: &[&str]) -> Self {
        Self {
            function,
            n,
            reps: 10,
            methods: methods.iter().map(|s| s.to_string()).collect(),
            opts: MethodOpts::default(),
            design: Design::for_function(function.name()),
            test_size: 20_000,
            seed: 0xC0FFEE,
            threads: 0,
        }
    }
}

/// Scores of one method in one repetition.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// PR AUC of the returned box sequence on the test data.
    pub pr_auc: f64,
    /// Test precision of the final box.
    pub precision: f64,
    /// Test recall of the final box.
    pub recall: f64,
    /// Test WRAcc of the final box.
    pub wracc: f64,
    /// Restricted inputs of the final box.
    pub n_restricted: usize,
    /// Irrelevantly restricted inputs of the final box.
    pub n_irrel: usize,
    /// Wall-clock runtime of the method, milliseconds.
    pub runtime_ms: f64,
    /// The final box (consistency is computed across repetitions).
    pub last_box: HyperBox,
}

/// Aggregated scores of one method across repetitions.
#[derive(Debug, Clone)]
pub struct MethodSummary {
    /// Method name.
    pub method: String,
    /// Mean PR AUC (%).
    pub pr_auc: f64,
    /// Mean final-box precision (%).
    pub precision: f64,
    /// Mean final-box WRAcc (%).
    pub wracc: f64,
    /// Mean pairwise consistency across repetitions (%).
    pub consistency: f64,
    /// Mean number of restricted inputs.
    pub n_restricted: f64,
    /// Mean number of irrelevantly restricted inputs.
    pub n_irrel: f64,
    /// Mean runtime (ms).
    pub runtime_ms: f64,
    /// Raw per-repetition scores (for statistical tests).
    pub per_rep: Vec<Evaluation>,
}

/// Runs the experiment: every method on every repetition's dataset, in
/// parallel over repetitions. Returns one summary per method, in the
/// order of `spec.methods`.
///
/// # Panics
///
/// Panics when a method name is invalid (validate names with
/// [`run_method`] first when handling user input).
pub fn run_experiment(spec: &ExperimentSpec) -> Vec<MethodSummary> {
    let m = spec.function.m();
    // One shared test set per experiment, drawn from the design's
    // distribution with a seed decoupled from the training reps.
    let mut test_rng = StdRng::seed_from_u64(spec.seed ^ 0x7E57_DA7A);
    let test_points = spec.design.sample_test(spec.test_size, m, &mut test_rng);
    let test = spec
        .function
        .label_dataset(test_points, &mut test_rng)
        .expect("test design shape is consistent");
    let mut opts = spec.opts.clone();
    opts.sampler = spec.design.sampler();

    let results: Vec<Mutex<Vec<Option<Evaluation>>>> = spec
        .methods
        .iter()
        .map(|_| Mutex::new(vec![None; spec.reps]))
        .collect();
    let next_rep = AtomicUsize::new(0);
    let threads = if spec.threads == 0 {
        std::thread::available_parallelism().map_or(4, |p| p.get())
    } else {
        spec.threads
    }
    .min(spec.reps.max(1));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let rep = next_rep.fetch_add(1, Ordering::Relaxed);
                if rep >= spec.reps {
                    break;
                }
                let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(rep as u64));
                let design = spec.design.sample(spec.n, m, rep, &mut rng);
                let d = spec
                    .function
                    .label_dataset(design, &mut rng)
                    .expect("training design shape is consistent");
                for (mi, name) in spec.methods.iter().enumerate() {
                    let mut method_rng =
                        StdRng::seed_from_u64(spec.seed.wrapping_add((rep * 7919 + mi) as u64));
                    let start = Instant::now();
                    let result = run_method(name, &d, &opts, &mut method_rng)
                        .unwrap_or_else(|e| panic!("method {name}: {e}"));
                    let runtime_ms = start.elapsed().as_secs_f64() * 1e3;
                    let last = result
                        .last_box()
                        .cloned()
                        .unwrap_or_else(|| HyperBox::unbounded(m));
                    let s = score_box(&last, &test);
                    let eval = Evaluation {
                        pr_auc: pr_auc(&result.boxes, &test),
                        precision: s.precision,
                        recall: s.recall,
                        wracc: s.wracc,
                        n_restricted: s.n_restricted,
                        n_irrel: n_irrelevantly_restricted(&last, spec.function.active_inputs()),
                        runtime_ms,
                        last_box: last,
                    };
                    results[mi].lock().expect("no poisoned locks")[rep] = Some(eval);
                }
            });
        }
    });

    let ranges = vec![(0.0, 1.0); m];
    spec.methods
        .iter()
        .zip(results)
        .map(|(name, cell)| {
            let per_rep: Vec<Evaluation> = cell
                .into_inner()
                .expect("no poisoned locks")
                .into_iter()
                .map(|e| e.expect("every repetition completed"))
                .collect();
            let k = per_rep.len() as f64;
            let boxes: Vec<HyperBox> = per_rep.iter().map(|e| e.last_box.clone()).collect();
            MethodSummary {
                method: name.clone(),
                pr_auc: 100.0 * per_rep.iter().map(|e| e.pr_auc).sum::<f64>() / k,
                precision: 100.0 * per_rep.iter().map(|e| e.precision).sum::<f64>() / k,
                wracc: 100.0 * per_rep.iter().map(|e| e.wracc).sum::<f64>() / k,
                consistency: 100.0 * consistency(&boxes, &ranges),
                n_restricted: per_rep.iter().map(|e| e.n_restricted as f64).sum::<f64>() / k,
                n_irrel: per_rep.iter().map(|e| e.n_irrel as f64).sum::<f64>() / k,
                runtime_ms: per_rep.iter().map(|e| e.runtime_ms).sum::<f64>() / k,
                per_rep,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reds_functions::by_name;

    fn tiny_spec(methods: &[&str]) -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(by_name("2").unwrap(), 100, methods);
        spec.reps = 3;
        spec.test_size = 2_000;
        spec.opts = MethodOpts {
            l_prim: 1_500,
            l_bi: 1_500,
            bumping_q: 5,
            ..Default::default()
        };
        spec
    }

    #[test]
    fn experiment_produces_summaries_in_method_order() {
        let spec = tiny_spec(&["P", "RPx"]);
        let summaries = run_experiment(&spec);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].method, "P");
        assert_eq!(summaries[1].method, "RPx");
        for s in &summaries {
            assert_eq!(s.per_rep.len(), 3);
            assert!(s.pr_auc > 0.0 && s.pr_auc <= 100.0, "{}", s.pr_auc);
            assert!((0.0..=100.0).contains(&s.consistency));
            assert!(s.runtime_ms > 0.0);
        }
    }

    #[test]
    fn experiment_is_reproducible() {
        let spec = tiny_spec(&["P"]);
        let a = run_experiment(&spec);
        let b = run_experiment(&spec);
        assert_eq!(a[0].pr_auc, b[0].pr_auc);
        assert_eq!(a[0].precision, b[0].precision);
    }

    #[test]
    fn irrelevant_restrictions_use_ground_truth() {
        // Function "2" has 2 active of 5 inputs; any restriction beyond
        // the first two is irrelevant and must be counted.
        let spec = tiny_spec(&["P"]);
        let summaries = run_experiment(&spec);
        for e in &summaries[0].per_rep {
            assert!(e.n_irrel <= e.n_restricted);
        }
    }

    #[test]
    fn design_for_function_uses_halton_for_dsgc() {
        assert_eq!(Design::for_function("dsgc"), Design::Halton);
        assert_eq!(Design::for_function("morris"), Design::Lhs);
    }
}
