//! The repeated-run experiment driver behind every table and figure of
//! §9: generate a training design, label it with a benchmark function,
//! run each method, score on a large held-out test set, and aggregate
//! over repetitions.
//!
//! The grid of work is decomposed into deterministic
//! [`WorkUnit`]s (see [`crate::workunit`]): the monolithic
//! [`run_experiment`] enumerates every unit and executes them in
//! parallel in-process, while sharded sweeps execute any subset via
//! [`execute_units`] and later recombine partial results with
//! [`aggregate_units`] — bit-identically to the monolithic run.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds_core::NewPointSampler;
use reds_data::Dataset;
use reds_functions::BenchmarkFunction;
use reds_metrics::{consistency, n_irrelevantly_restricted, pr_auc, score_box};
use reds_sampling::{halton_offset, latin_hypercube, logit_normal, mixed_design, uniform};
use reds_subgroup::HyperBox;

use crate::methods::{run_method, MethodOpts};
use crate::workunit::{enumerate_units, test_seed, WorkUnit};

/// Training-design family of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Design {
    /// Latin hypercube sampling (the default of §8.5).
    Lhs,
    /// Halton sequence (used for `dsgc`).
    Halton,
    /// Mixed continuous/discrete design (§9.1.2).
    MixedEven,
    /// Logit-normal i.i.d. inputs (§9.4).
    LogitNormal,
}

impl Design {
    /// The paper's design for a given function name.
    pub fn for_function(name: &str) -> Self {
        if name == "dsgc" {
            Self::Halton
        } else {
            Self::Lhs
        }
    }

    fn sample(&self, n: usize, m: usize, rep: usize, rng: &mut StdRng) -> Vec<f64> {
        match self {
            Self::Lhs => latin_hypercube(n, m, rng),
            Self::Halton => halton_offset(n, m, 1 + (rep * n) as u64),
            Self::MixedEven => mixed_design(n, m, rng),
            Self::LogitNormal => logit_normal(n, m, 0.0, 1.0, rng),
        }
    }

    /// REDS must resample from the same input distribution (§6.1).
    fn sampler(&self) -> NewPointSampler {
        match self {
            Self::Lhs | Self::Halton => NewPointSampler::Uniform,
            Self::MixedEven => NewPointSampler::MixedEven,
            Self::LogitNormal => NewPointSampler::LogitNormal {
                mu: 0.0,
                sigma: 1.0,
            },
        }
    }

    /// Test data follows the same distribution as the training design
    /// (i.i.d. rather than space-filling).
    fn sample_test(&self, n: usize, m: usize, rng: &mut StdRng) -> Vec<f64> {
        match self {
            Self::Lhs | Self::Halton => uniform(n, m, rng),
            Self::MixedEven => mixed_design(n, m, rng),
            Self::LogitNormal => logit_normal(n, m, 0.0, 1.0, rng),
        }
    }
}

/// One experiment: a function, a training size, methods, repetitions.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Benchmark function under study.
    pub function: &'static BenchmarkFunction,
    /// Training-set size `N`.
    pub n: usize,
    /// Number of repetitions (the paper uses 50).
    pub reps: usize,
    /// Paper-style method names to compare.
    pub methods: Vec<String>,
    /// Shared method options (`L`, `Q`, …).
    pub opts: MethodOpts,
    /// Training design.
    pub design: Design,
    /// Held-out test size (the paper uses 20 000).
    pub test_size: usize,
    /// Base seed; repetition `r` uses `seed + r`.
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl ExperimentSpec {
    /// A spec with the paper's structure but scaled-down driver defaults.
    pub fn new(function: &'static BenchmarkFunction, n: usize, methods: &[&str]) -> Self {
        Self {
            function,
            n,
            reps: 10,
            methods: methods.iter().map(|s| s.to_string()).collect(),
            opts: MethodOpts::default(),
            design: Design::for_function(function.name()),
            test_size: 20_000,
            seed: 0xC0FFEE,
            threads: 0,
        }
    }
}

/// Scores of one method in one repetition.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// PR AUC of the returned box sequence on the test data.
    pub pr_auc: f64,
    /// Test precision of the final box.
    pub precision: f64,
    /// Test recall of the final box.
    pub recall: f64,
    /// Test WRAcc of the final box.
    pub wracc: f64,
    /// Restricted inputs of the final box.
    pub n_restricted: usize,
    /// Irrelevantly restricted inputs of the final box.
    pub n_irrel: usize,
    /// Wall-clock runtime of the method, milliseconds.
    pub runtime_ms: f64,
    /// The final box (consistency is computed across repetitions).
    pub last_box: HyperBox,
}

/// Aggregated scores of one method across repetitions.
#[derive(Debug, Clone)]
pub struct MethodSummary {
    /// Method name.
    pub method: String,
    /// Mean PR AUC (%).
    pub pr_auc: f64,
    /// Mean final-box precision (%).
    pub precision: f64,
    /// Mean final-box WRAcc (%).
    pub wracc: f64,
    /// Mean pairwise consistency across repetitions (%).
    pub consistency: f64,
    /// Mean number of restricted inputs.
    pub n_restricted: f64,
    /// Mean number of irrelevantly restricted inputs.
    pub n_irrel: f64,
    /// Mean runtime (ms).
    pub runtime_ms: f64,
    /// Raw per-repetition scores (for statistical tests).
    pub per_rep: Vec<Evaluation>,
}

/// A shard's partial results cannot be recombined into the full grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggregationError {
    /// A grid cell has no result.
    Missing {
        /// Method name of the missing cell.
        method: String,
        /// Repetition of the missing cell.
        rep: usize,
    },
    /// A grid cell has more than one result.
    Duplicate {
        /// Method name of the duplicated cell.
        method: String,
        /// Repetition of the duplicated cell.
        rep: usize,
    },
    /// A result's unit does not match the spec's grid (wrong function,
    /// size, seed derivation, or out-of-range coordinates).
    Foreign(
        /// The offending unit.
        Box<WorkUnit>,
    ),
}

impl fmt::Display for AggregationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Missing { method, rep } => {
                write!(f, "no result for method {method}, repetition {rep}")
            }
            Self::Duplicate { method, rep } => {
                write!(f, "duplicate result for method {method}, repetition {rep}")
            }
            Self::Foreign(unit) => write!(
                f,
                "unit (function {}, N {}, method {}, rep {}) does not belong to this experiment",
                unit.function, unit.n, unit.method, unit.rep
            ),
        }
    }
}

impl std::error::Error for AggregationError {}

/// The shared held-out test set of the experiment (one per spec, drawn
/// from the design's distribution with a seed decoupled from the
/// training repetitions).
pub fn experiment_test_set(spec: &ExperimentSpec) -> Dataset {
    let m = spec.function.m();
    let mut test_rng = StdRng::seed_from_u64(test_seed(spec));
    let test_points = spec.design.sample_test(spec.test_size, m, &mut test_rng);
    spec.function
        .label_dataset(test_points, &mut test_rng)
        .expect("test design shape is consistent")
}

/// Executes one grid cell: regenerate the repetition's training set
/// from the unit's seeds, run the method, and score it on `test`.
/// Deterministic given `(spec, unit)` — except for `runtime_ms`, which
/// is measured wall-clock.
///
/// # Panics
///
/// Panics when the unit's method name is invalid.
pub fn execute_unit(spec: &ExperimentSpec, test: &Dataset, unit: &WorkUnit) -> Evaluation {
    let m = spec.function.m();
    let mut opts = spec.opts.clone();
    opts.sampler = spec.design.sampler();
    let mut rng = StdRng::seed_from_u64(unit.rep_seed);
    let design = spec.design.sample(spec.n, m, unit.rep, &mut rng);
    let d = spec
        .function
        .label_dataset(design, &mut rng)
        .expect("training design shape is consistent");
    let mut method_rng = StdRng::seed_from_u64(unit.method_seed);
    let start = Instant::now();
    let result = run_method(&unit.method, &d, &opts, &mut method_rng)
        .unwrap_or_else(|e| panic!("method {}: {e}", unit.method));
    let runtime_ms = start.elapsed().as_secs_f64() * 1e3;
    let last = result
        .last_box()
        .cloned()
        .unwrap_or_else(|| HyperBox::unbounded(m));
    let s = score_box(&last, test);
    Evaluation {
        pr_auc: pr_auc(&result.boxes, test),
        precision: s.precision,
        recall: s.recall,
        wracc: s.wracc,
        n_restricted: s.n_restricted,
        n_irrel: n_irrelevantly_restricted(&last, spec.function.active_inputs()),
        runtime_ms,
        last_box: last,
    }
}

/// Executes a set of units in parallel (`spec.threads` workers; 0 = all
/// cores), invoking `on_complete` under a lock as each unit finishes —
/// the checkpoint hook. Returns results in the order of `units`.
pub fn execute_units_with<F>(
    spec: &ExperimentSpec,
    units: &[WorkUnit],
    on_complete: F,
) -> Vec<(WorkUnit, Evaluation)>
where
    F: FnMut(&WorkUnit, &Evaluation) + Send,
{
    if units.is_empty() {
        return Vec::new();
    }
    let test = experiment_test_set(spec);
    let cells: Vec<Mutex<Option<Evaluation>>> = units.iter().map(|_| Mutex::new(None)).collect();
    let sink = Mutex::new(on_complete);
    let next = AtomicUsize::new(0);
    let threads = if spec.threads == 0 {
        std::thread::available_parallelism().map_or(4, |p| p.get())
    } else {
        spec.threads
    }
    .min(units.len());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= units.len() {
                    break;
                }
                let eval = execute_unit(spec, &test, &units[i]);
                {
                    let mut hook = sink.lock().expect("no poisoned locks");
                    (*hook)(&units[i], &eval);
                }
                *cells[i].lock().expect("no poisoned locks") = Some(eval);
            });
        }
    });

    units
        .iter()
        .cloned()
        .zip(cells)
        .map(|(u, cell)| {
            let eval = cell
                .into_inner()
                .expect("no poisoned locks")
                .expect("every unit completed");
            (u, eval)
        })
        .collect()
}

/// [`execute_units_with`] without a completion hook.
pub fn execute_units(spec: &ExperimentSpec, units: &[WorkUnit]) -> Vec<(WorkUnit, Evaluation)> {
    execute_units_with(spec, units, |_, _| {})
}

/// Recombines unit results — from any number of shards, in any order —
/// into the per-method summaries of the monolithic run. Every cell of
/// the rep × method grid must be present exactly once, and every unit
/// must match the spec's own enumeration (including derived seeds, so
/// results produced under a different spec are rejected).
pub fn aggregate_units(
    spec: &ExperimentSpec,
    results: &[(WorkUnit, Evaluation)],
) -> Result<Vec<MethodSummary>, AggregationError> {
    let expected = enumerate_units(spec);
    let n_methods = spec.methods.len();
    let mut grid: Vec<Option<&Evaluation>> = vec![None; expected.len()];
    for (unit, eval) in results {
        let idx = unit.rep * n_methods + unit.method_index;
        if unit.rep >= spec.reps || unit.method_index >= n_methods || expected[idx] != *unit {
            return Err(AggregationError::Foreign(Box::new(unit.clone())));
        }
        if grid[idx].is_some() {
            return Err(AggregationError::Duplicate {
                method: unit.method.clone(),
                rep: unit.rep,
            });
        }
        grid[idx] = Some(eval);
    }
    if let Some(hole) = grid.iter().position(Option::is_none) {
        return Err(AggregationError::Missing {
            method: spec.methods[hole % n_methods].clone(),
            rep: hole / n_methods,
        });
    }

    let ranges = vec![(0.0, 1.0); spec.function.m()];
    Ok(spec
        .methods
        .iter()
        .enumerate()
        .map(|(mi, name)| {
            let per_rep: Vec<Evaluation> = (0..spec.reps)
                .map(|rep| grid[rep * n_methods + mi].expect("validated above").clone())
                .collect();
            let k = per_rep.len() as f64;
            let boxes: Vec<HyperBox> = per_rep.iter().map(|e| e.last_box.clone()).collect();
            MethodSummary {
                method: name.clone(),
                pr_auc: 100.0 * per_rep.iter().map(|e| e.pr_auc).sum::<f64>() / k,
                precision: 100.0 * per_rep.iter().map(|e| e.precision).sum::<f64>() / k,
                wracc: 100.0 * per_rep.iter().map(|e| e.wracc).sum::<f64>() / k,
                consistency: 100.0 * consistency(&boxes, &ranges),
                n_restricted: per_rep.iter().map(|e| e.n_restricted as f64).sum::<f64>() / k,
                n_irrel: per_rep.iter().map(|e| e.n_irrel as f64).sum::<f64>() / k,
                runtime_ms: per_rep.iter().map(|e| e.runtime_ms).sum::<f64>() / k,
                per_rep,
            }
        })
        .collect())
}

/// Zeroes every wall-clock runtime in place. All other fields of an
/// experiment are bit-identical across shard decompositions, resume
/// orders, and thread counts; runtimes are measured and therefore the
/// one exception — strip them before comparing runs for equality.
pub fn strip_runtimes(summaries: &mut [MethodSummary]) {
    for s in summaries {
        s.runtime_ms = 0.0;
        for e in &mut s.per_rep {
            e.runtime_ms = 0.0;
        }
    }
}

/// Runs the experiment: every method on every repetition's dataset, in
/// parallel over the rep × method grid. Returns one summary per method,
/// in the order of `spec.methods`.
///
/// # Panics
///
/// Panics when a method name is invalid (validate names with
/// [`run_method`] first when handling user input).
pub fn run_experiment(spec: &ExperimentSpec) -> Vec<MethodSummary> {
    let units = enumerate_units(spec);
    let results = execute_units(spec, &units);
    aggregate_units(spec, &results).expect("a full enumeration aggregates cleanly")
}

#[cfg(test)]
mod tests {
    use super::*;
    use reds_functions::by_name;

    fn tiny_spec(methods: &[&str]) -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(by_name("2").unwrap(), 100, methods);
        spec.reps = 3;
        spec.test_size = 2_000;
        spec.opts = MethodOpts {
            l_prim: 1_500,
            l_bi: 1_500,
            bumping_q: 5,
            ..Default::default()
        };
        spec
    }

    #[test]
    fn experiment_produces_summaries_in_method_order() {
        let spec = tiny_spec(&["P", "RPx"]);
        let summaries = run_experiment(&spec);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].method, "P");
        assert_eq!(summaries[1].method, "RPx");
        for s in &summaries {
            assert_eq!(s.per_rep.len(), 3);
            assert!(s.pr_auc > 0.0 && s.pr_auc <= 100.0, "{}", s.pr_auc);
            assert!((0.0..=100.0).contains(&s.consistency));
            assert!(s.runtime_ms > 0.0);
        }
    }

    #[test]
    fn experiment_is_reproducible() {
        let spec = tiny_spec(&["P"]);
        let a = run_experiment(&spec);
        let b = run_experiment(&spec);
        assert_eq!(a[0].pr_auc, b[0].pr_auc);
        assert_eq!(a[0].precision, b[0].precision);
    }

    #[test]
    fn irrelevant_restrictions_use_ground_truth() {
        // Function "2" has 2 active of 5 inputs; any restriction beyond
        // the first two is irrelevant and must be counted.
        let spec = tiny_spec(&["P"]);
        let summaries = run_experiment(&spec);
        for e in &summaries[0].per_rep {
            assert!(e.n_irrel <= e.n_restricted);
        }
    }

    #[test]
    fn design_for_function_uses_halton_for_dsgc() {
        assert_eq!(Design::for_function("dsgc"), Design::Halton);
        assert_eq!(Design::for_function("morris"), Design::Lhs);
    }

    fn assert_bit_identical(a: &[MethodSummary], b: &[MethodSummary]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.method, y.method);
            assert_eq!(x.pr_auc.to_bits(), y.pr_auc.to_bits());
            assert_eq!(x.precision.to_bits(), y.precision.to_bits());
            assert_eq!(x.wracc.to_bits(), y.wracc.to_bits());
            assert_eq!(x.consistency.to_bits(), y.consistency.to_bits());
            assert_eq!(x.per_rep.len(), y.per_rep.len());
            for (e, f) in x.per_rep.iter().zip(&y.per_rep) {
                assert_eq!(e.pr_auc.to_bits(), f.pr_auc.to_bits());
                assert_eq!(e.last_box, f.last_box);
            }
        }
    }

    #[test]
    fn two_shards_merge_bit_identically_to_the_monolithic_run() {
        use crate::workunit::{enumerate_units, shard_units};
        let spec = tiny_spec(&["P"]);
        let mut mono = run_experiment(&spec);
        let units = enumerate_units(&spec);
        let mut merged: Vec<_> = execute_units(&spec, &shard_units(&units, 1, 2));
        merged.extend(execute_units(&spec, &shard_units(&units, 0, 2)));
        let mut sharded = aggregate_units(&spec, &merged).expect("complete grid");
        strip_runtimes(&mut mono);
        strip_runtimes(&mut sharded);
        assert_bit_identical(&mono, &sharded);
    }

    #[test]
    fn results_are_invariant_under_thread_count() {
        let mut one = tiny_spec(&["P"]);
        one.threads = 1;
        let mut three = tiny_spec(&["P"]);
        three.threads = 3;
        let mut a = run_experiment(&one);
        let mut b = run_experiment(&three);
        strip_runtimes(&mut a);
        strip_runtimes(&mut b);
        assert_bit_identical(&a, &b);
    }

    #[test]
    fn aggregation_rejects_incomplete_and_duplicated_grids() {
        use crate::workunit::enumerate_units;
        let spec = tiny_spec(&["P"]);
        let units = enumerate_units(&spec);
        let results = execute_units(&spec, &units);

        let partial = &results[..results.len() - 1];
        assert!(matches!(
            aggregate_units(&spec, partial),
            Err(AggregationError::Missing { .. })
        ));

        let mut doubled = results.clone();
        doubled.push(results[0].clone());
        assert!(matches!(
            aggregate_units(&spec, &doubled),
            Err(AggregationError::Duplicate { .. })
        ));

        let mut foreign = results.clone();
        foreign[0].0.rep_seed ^= 1;
        assert!(matches!(
            aggregate_units(&spec, &foreign),
            Err(AggregationError::Foreign(_))
        ));
    }
}
