//! Experiment harness reproducing the paper's evaluation (§8–§9).
//!
//! * [`methods`] — the method registry (paper naming scheme: `P`, `Pc`,
//!   `PB`, `PBc`, `RPf`, `RPx`, `RPs`, `RPxp`, `BI`, `BIc`, `RBIcxp`, …);
//! * [`cv`] — hyperparameter optimisation of SD algorithms (the "c"
//!   suffix, Table 2);
//! * [`experiment`] — the repeated-run driver with per-repetition
//!   parallelism and consistency aggregation;
//! * [`stats`] — Wilcoxon rank-sum / signed-rank, Friedman, Spearman;
//! * [`report`] — markdown rendering of experiment summaries;
//! * [`savings`] — the "X % fewer simulations" analysis from learning
//!   curves (the paper's headline number).

#![warn(missing_docs)]

pub mod cv;
pub mod experiment;
pub mod methods;
pub mod report;
pub mod savings;
pub mod stats;

pub use experiment::{run_experiment, Design, Evaluation, ExperimentSpec, MethodSummary};
pub use methods::{run_method, MethodOpts, UnknownMethod, BI_FAMILY, PRIM_FAMILY};
