//! Experiment harness reproducing the paper's evaluation (§8–§9).
//!
//! * [`methods`] — the method registry (paper naming scheme: `P`, `Pc`,
//!   `PB`, `PBc`, `RPf`, `RPx`, `RPs`, `RPxp`, `BI`, `BIc`, `RBIcxp`, …);
//! * [`cv`] — hyperparameter optimisation of SD algorithms (the "c"
//!   suffix, Table 2);
//! * [`experiment`] — the repeated-run driver with grid-level
//!   parallelism and consistency aggregation;
//! * [`workunit`] — the deterministic rep × method work-unit
//!   decomposition (stable seeding, spec fingerprints, sharding);
//! * [`checkpoint`] — JSONL shard checkpoints: atomic appends,
//!   crash-tolerant loading, fingerprint-validated merging;
//! * [`stats`] — Wilcoxon rank-sum / signed-rank, Friedman, Spearman;
//! * [`report`] — markdown rendering of experiment summaries;
//! * [`savings`] — the "X % fewer simulations" analysis from learning
//!   curves (the paper's headline number).

#![warn(missing_docs)]

pub mod checkpoint;
pub mod cv;
pub mod experiment;
pub mod methods;
pub mod report;
pub mod savings;
pub mod stats;
pub mod workunit;

pub use checkpoint::{
    load_checkpoint, merge_records, unit_key, CheckpointError, CheckpointHeader, CheckpointWriter,
    ShardCheckpoint, UnitRecord, CHECKPOINT_SCHEMA_VERSION,
};
pub use experiment::{
    aggregate_units, execute_unit, execute_units, execute_units_with, experiment_test_set,
    run_experiment, strip_runtimes, AggregationError, Design, Evaluation, ExperimentSpec,
    MethodSummary,
};
pub use methods::{run_method, MethodOpts, UnknownMethod, BI_FAMILY, PRIM_FAMILY};
pub use workunit::{enumerate_units, shard_units, spec_fingerprint, WorkUnit};
