//! The method registry: builds and runs any method of the paper's
//! naming scheme (§8.2).
//!
//! Grammar of method names:
//!
//! ```text
//! name  ::= sd | "R" sd-core ["c"] am ["p"]
//! sd    ::= "P" ["c"] | "PB" ["c"] | "BI" ["5"] | "BIc"
//! sd-core ::= "P" | "BI"
//! am    ::= "f" (random forest) | "x" (XGBoost) | "s" (SVM)
//! ```
//!
//! Examples: `P`, `Pc`, `PB`, `PBc`, `BI`, `BI5`, `BIc`, `RPf`, `RPx`,
//! `RPs`, `RPxp`, `RPcxp`, `RBIcfp`, `RBIcxp`.

use rand::rngs::StdRng;
use reds_core::{NewPointSampler, Reds, RedsConfig};
use reds_data::Dataset;
use reds_metamodel::{GbdtParams, RandomForestParams, SvmParams, Trainer};
use reds_subgroup::{
    BestInterval, BiParams, Prim, PrimBumping, PrimBumpingParams, PrimParams, SdResult,
    SubgroupDiscovery,
};

use crate::cv::{select_bi_m, select_bumping_m, select_prim_alpha};

/// Shared experiment options (scaled-down defaults for laptop runs; the
/// paper's values are `l_prim = 10⁵`, `l_bi = 10⁴`, `bumping_q = 50`).
#[derive(Debug, Clone, PartialEq)]
pub struct MethodOpts {
    /// `L` for REDS with PRIM-family SD algorithms.
    pub l_prim: usize,
    /// `L` for REDS with BI.
    pub l_bi: usize,
    /// Bootstrap repetitions `Q` of PRIM with bumping.
    pub bumping_q: usize,
    /// Distribution of REDS's new points (must match the data's `p(x)`).
    pub sampler: NewPointSampler,
    /// Tune metamodel hyperparameters by CV before training (the paper
    /// uses caret's default tuning; off by default here for speed —
    /// the tuned and default models rank methods identically).
    pub tune_metamodel: bool,
}

impl Default for MethodOpts {
    fn default() -> Self {
        Self {
            l_prim: 100_000,
            l_bi: 10_000,
            bumping_q: 50,
            sampler: NewPointSampler::Uniform,
            tune_metamodel: false,
        }
    }
}

/// Failure to interpret or run a method name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMethod(pub String);

impl std::fmt::Display for UnknownMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown method name: {}", self.0)
    }
}

impl std::error::Error for UnknownMethod {}

/// Parsed method description.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Parsed {
    reds: bool,
    sd: SdKind,
    optimize_sd: bool,
    metamodel: Option<char>,
    probability: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SdKind {
    Prim,
    Bumping,
    Bi { beam: usize },
}

fn parse(name: &str) -> Option<Parsed> {
    let mut s = name;
    let reds = if let Some(rest) = s.strip_prefix('R') {
        s = rest;
        true
    } else {
        false
    };
    let sd = if let Some(rest) = s.strip_prefix("PB") {
        s = rest;
        SdKind::Bumping
    } else if let Some(rest) = s.strip_prefix("BI") {
        s = rest;
        if let Some(rest5) = s.strip_prefix('5') {
            s = rest5;
            SdKind::Bi { beam: 5 }
        } else {
            SdKind::Bi { beam: 1 }
        }
    } else if let Some(rest) = s.strip_prefix('P') {
        s = rest;
        SdKind::Prim
    } else {
        return None;
    };
    if reds && sd == SdKind::Bumping {
        return None; // the paper never combines REDS with bumping
    }
    let optimize_sd = if let Some(rest) = s.strip_prefix('c') {
        s = rest;
        true
    } else {
        false
    };
    let metamodel = if reds {
        let c = s.chars().next()?;
        if !matches!(c, 'f' | 'x' | 's') {
            return None;
        }
        s = &s[1..];
        Some(c)
    } else {
        None
    };
    let probability = if let Some(rest) = s.strip_prefix('p') {
        s = rest;
        true
    } else {
        false
    };
    if !s.is_empty() || (probability && !reds) || (probability && metamodel == Some('s')) {
        return None;
    }
    Some(Parsed {
        reds,
        sd,
        optimize_sd,
        metamodel,
        probability,
    })
}

fn make_trainer(tag: char, d: &Dataset, tune: bool, rng: &mut StdRng) -> Box<dyn Trainer> {
    match tag {
        'f' => {
            let params = if tune {
                reds_metamodel::tune::tune_random_forest(d, rng)
            } else {
                RandomForestParams::default()
            };
            Box::new(params)
        }
        'x' => {
            let params = if tune {
                reds_metamodel::tune::tune_gbdt(d, rng)
            } else {
                GbdtParams::default()
            };
            Box::new(params)
        }
        's' => {
            let params = if tune {
                reds_metamodel::tune::tune_svm(d, rng)
            } else {
                SvmParams::default()
            };
            Box::new(params)
        }
        _ => unreachable!("parser admits only f/x/s"),
    }
}

/// Runs the named method on `d` (with `D_val = D`, §8.5) and returns its
/// box sequence.
///
/// # Errors
///
/// Returns [`UnknownMethod`] when the name is not in the paper's scheme.
pub fn run_method(
    name: &str,
    d: &Dataset,
    opts: &MethodOpts,
    rng: &mut StdRng,
) -> Result<SdResult, UnknownMethod> {
    let parsed = parse(name).ok_or_else(|| UnknownMethod(name.to_string()))?;
    // Resolve SD hyperparameters on the original data D (the paper
    // optimises SD hyperparameters on D even inside REDS, §8.4.3).
    let alpha = match (&parsed.sd, parsed.optimize_sd) {
        (SdKind::Prim | SdKind::Bumping, true) => select_prim_alpha(d, rng),
        _ => PrimParams::default().alpha,
    };
    let sd: Box<dyn SubgroupDiscovery> = match parsed.sd {
        SdKind::Prim => Box::new(Prim::new(PrimParams {
            alpha,
            ..Default::default()
        })),
        SdKind::Bumping => {
            let m_features = if parsed.optimize_sd {
                Some(select_bumping_m(d, alpha, rng))
            } else {
                None
            };
            Box::new(PrimBumping::new(PrimBumpingParams {
                prim: PrimParams {
                    alpha,
                    ..Default::default()
                },
                q: opts.bumping_q,
                m_features,
            }))
        }
        SdKind::Bi { beam } => {
            let max_restricted = if parsed.optimize_sd {
                Some(select_bi_m(d, beam, rng))
            } else {
                None
            };
            Box::new(BestInterval::new(BiParams {
                max_restricted,
                beam_size: beam,
                ..Default::default()
            }))
        }
    };
    if !parsed.reds {
        return Ok(sd.discover(d, d, rng));
    }
    let l = match parsed.sd {
        SdKind::Bi { .. } => opts.l_bi,
        _ => opts.l_prim,
    };
    let mut config = RedsConfig::default().with_l(l).with_sampler(opts.sampler);
    if parsed.probability {
        config = config.with_probability_labels();
    }
    let trainer = make_trainer(
        parsed.metamodel.expect("REDS methods carry a metamodel"),
        d,
        opts.tune_metamodel,
        rng,
    );
    let reds = Reds::new(trainer, config);
    reds.run(d, sd.as_ref(), rng)
        .map_err(|e| UnknownMethod(format!("{name}: {e}")))
}

/// All method names evaluated in the paper's main experiments.
pub const PRIM_FAMILY: [&str; 7] = ["P", "Pc", "PB", "PBc", "RPf", "RPx", "RPs"];

/// BI-family method names of Table 4.
pub const BI_FAMILY: [&str; 5] = ["BI", "BIc", "BI5", "RBIcfp", "RBIcxp"];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parser_accepts_all_paper_names() {
        for name in PRIM_FAMILY.iter().chain(BI_FAMILY.iter()) {
            assert!(parse(name).is_some(), "{name} rejected");
        }
        for name in ["RPxp", "RPfp", "RPcxp", "RBIcfp", "Pc", "PBc"] {
            assert!(parse(name).is_some(), "{name} rejected");
        }
    }

    #[test]
    fn parser_rejects_nonsense() {
        for name in ["", "X", "Rp", "RPB", "RPq", "Pp", "RPsp", "BIcx", "P c"] {
            assert!(parse(name).is_none(), "{name} accepted");
        }
    }

    #[test]
    fn parsed_structure_matches_naming_convention() {
        let p = parse("RBIcxp").unwrap();
        assert!(p.reds);
        assert_eq!(p.sd, SdKind::Bi { beam: 1 });
        assert!(p.optimize_sd);
        assert_eq!(p.metamodel, Some('x'));
        assert!(p.probability);
        let q = parse("PB").unwrap();
        assert!(!q.reds);
        assert_eq!(q.sd, SdKind::Bumping);
        assert!(!q.optimize_sd);
    }

    fn corner_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * 2).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
            if x[0] > 0.5 && x[1] > 0.5 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    fn fast_opts() -> MethodOpts {
        MethodOpts {
            l_prim: 2_000,
            l_bi: 2_000,
            bumping_q: 8,
            ..Default::default()
        }
    }

    #[test]
    fn every_family_method_runs() {
        let d = corner_data(120, 1);
        for name in PRIM_FAMILY.iter().chain(BI_FAMILY.iter()) {
            let mut rng = StdRng::seed_from_u64(2);
            let result = run_method(name, &d, &fast_opts(), &mut rng);
            assert!(result.is_ok(), "{name} failed: {result:?}");
            assert!(
                !result.unwrap().boxes.is_empty(),
                "{name} returned no boxes"
            );
        }
    }

    #[test]
    fn unknown_method_errors() {
        let d = corner_data(50, 3);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(run_method("ZZZ", &d, &fast_opts(), &mut rng).is_err());
    }

    #[test]
    fn reds_prim_beats_plain_prim_on_tiny_data() {
        // The headline claim on a miniature instance: REDS's box should
        // have at least comparable test precision to plain PRIM's.
        let d = corner_data(80, 5);
        let test = corner_data(2_000, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let plain = run_method("P", &d, &fast_opts(), &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let reds = run_method("RPx", &d, &fast_opts(), &mut rng).unwrap();
        let precision = |r: &SdResult| {
            r.last_box()
                .and_then(|b| b.mean_inside(&test))
                .unwrap_or(0.0)
        };
        assert!(precision(&reds) + 0.1 >= precision(&plain));
    }
}

#[cfg(test)]
mod tune_tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use reds_data::Dataset;

    #[test]
    fn tuned_metamodel_path_runs_for_every_family() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Dataset::from_fn(
            (0..150 * 2).map(|_| rng.gen::<f64>()).collect::<Vec<_>>(),
            2,
            |x| if x[0] > 0.5 { 1.0 } else { 0.0 },
        )
        .expect("valid shape");
        let opts = MethodOpts {
            l_prim: 1_000,
            l_bi: 1_000,
            tune_metamodel: true,
            ..Default::default()
        };
        for name in ["RPf", "RPx", "RPs"] {
            let mut run_rng = StdRng::seed_from_u64(2);
            let result =
                run_method(name, &d, &opts, &mut run_rng).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!result.boxes.is_empty(), "{name}");
        }
    }
}
