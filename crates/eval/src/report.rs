//! Markdown rendering of experiment results — the row format used by
//! EXPERIMENTS.md and the reproduction binaries.

use std::fmt::Write as _;

use crate::experiment::MethodSummary;

/// The metric columns a summary table can show.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Column {
    /// Mean PR AUC (%).
    PrAuc,
    /// Mean final-box precision (%).
    Precision,
    /// Mean final-box WRAcc (%).
    Wracc,
    /// Mean pairwise consistency (%).
    Consistency,
    /// Mean number of restricted inputs.
    Restricted,
    /// Mean number of irrelevantly restricted inputs.
    Irrelevant,
    /// Mean runtime in milliseconds.
    RuntimeMs,
}

impl Column {
    /// Column header text.
    pub fn header(&self) -> &'static str {
        match self {
            Self::PrAuc => "PR AUC",
            Self::Precision => "precision",
            Self::Wracc => "WRAcc",
            Self::Consistency => "consistency",
            Self::Restricted => "# restricted",
            Self::Irrelevant => "# irrel",
            Self::RuntimeMs => "runtime (ms)",
        }
    }

    /// Extracts the column value from a summary.
    pub fn value(&self, s: &MethodSummary) -> f64 {
        match self {
            Self::PrAuc => s.pr_auc,
            Self::Precision => s.precision,
            Self::Wracc => s.wracc,
            Self::Consistency => s.consistency,
            Self::Restricted => s.n_restricted,
            Self::Irrelevant => s.n_irrel,
            Self::RuntimeMs => s.runtime_ms,
        }
    }
}

/// Renders one experiment's summaries as a markdown table with methods
/// as rows and the requested metrics as columns.
pub fn markdown_table(summaries: &[MethodSummary], columns: &[Column]) -> String {
    let mut out = String::new();
    let _ = write!(out, "| method |");
    for c in columns {
        let _ = write!(out, " {} |", c.header());
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in columns {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    for s in summaries {
        let _ = write!(out, "| {} |", s.method);
        for c in columns {
            let _ = write!(out, " {:.2} |", c.value(s));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the relative change (%) of each summary against a baseline
/// method for one metric — the Figure 7/8/10/14 row format.
///
/// # Panics
///
/// Panics when `baseline` is not among the summaries.
pub fn relative_change_row(summaries: &[MethodSummary], baseline: &str, column: Column) -> String {
    let base = summaries
        .iter()
        .find(|s| s.method == baseline)
        .unwrap_or_else(|| panic!("baseline {baseline} not in summaries"));
    let base_value = column.value(base);
    let mut out = String::new();
    for s in summaries {
        let change = 100.0 * (column.value(s) - base_value) / base_value.abs().max(1e-9);
        let _ = write!(out, "| {:+.1} ", change);
    }
    out.push('|');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Evaluation;
    use reds_subgroup::HyperBox;

    fn summary(method: &str, pr_auc: f64, precision: f64) -> MethodSummary {
        MethodSummary {
            method: method.to_string(),
            pr_auc,
            precision,
            wracc: 1.0,
            consistency: 50.0,
            n_restricted: 3.0,
            n_irrel: 0.1,
            runtime_ms: 10.0,
            per_rep: vec![Evaluation {
                pr_auc: pr_auc / 100.0,
                precision: precision / 100.0,
                recall: 0.5,
                wracc: 0.01,
                n_restricted: 3,
                n_irrel: 0,
                runtime_ms: 10.0,
                last_box: HyperBox::unbounded(2),
            }],
        }
    }

    #[test]
    fn table_renders_headers_and_rows() {
        let s = vec![summary("P", 40.0, 60.0), summary("RPx", 50.0, 80.0)];
        let table = markdown_table(&s, &[Column::PrAuc, Column::Precision]);
        assert!(table.contains("| method | PR AUC | precision |"));
        assert!(table.contains("| P | 40.00 | 60.00 |"));
        assert!(table.contains("| RPx | 50.00 | 80.00 |"));
    }

    #[test]
    fn relative_changes_are_computed_against_the_baseline() {
        let s = vec![summary("P", 40.0, 60.0), summary("RPx", 50.0, 80.0)];
        let row = relative_change_row(&s, "P", Column::PrAuc);
        assert!(row.contains("+0.0"), "{row}");
        assert!(row.contains("+25.0"), "{row}");
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn missing_baseline_panics() {
        let s = vec![summary("P", 40.0, 60.0)];
        let _ = relative_change_row(&s, "Pc", Column::PrAuc);
    }

    #[test]
    fn every_column_extracts_a_value() {
        let s = summary("P", 40.0, 60.0);
        for c in [
            Column::PrAuc,
            Column::Precision,
            Column::Wracc,
            Column::Consistency,
            Column::Restricted,
            Column::Irrelevant,
            Column::RuntimeMs,
        ] {
            assert!(c.value(&s).is_finite());
            assert!(!c.header().is_empty());
        }
    }
}
