//! Simulation-savings analysis: the paper's headline claim is that REDS
//! needs "50–75 % fewer simulations" for the same scenario quality
//! (§1, §9.1.1). Given the learning curves of two methods — quality as
//! a function of the number of simulations `N` — this module computes
//! how many simulations the better method saves.

/// One point of a learning curve: `(n, quality)`.
pub type CurvePoint = (f64, f64);

/// Linearly interpolates the number of simulations a method described
/// by `curve` needs to reach `quality`. The curve must be sorted by
/// `n`; non-monotone quality dips are handled by taking the *first*
/// crossing. Returns `None` when the quality is never reached.
pub fn n_required(curve: &[CurvePoint], quality: f64) -> Option<f64> {
    if curve.is_empty() {
        return None;
    }
    if curve[0].1 >= quality {
        return Some(curve[0].0);
    }
    for w in curve.windows(2) {
        let (n0, q0) = w[0];
        let (n1, q1) = w[1];
        if q0 < quality && q1 >= quality {
            let t = (quality - q0) / (q1 - q0);
            return Some(n0 + t * (n1 - n0));
        }
    }
    None
}

/// Fraction of simulations saved by `fast` relative to `slow` at the
/// quality level `slow` reaches with `n_reference` simulations:
/// `1 − N_fast(q) / n_reference`. Returns `None` when either curve
/// cannot answer (reference point missing or quality unreachable).
pub fn savings_at(slow: &[CurvePoint], fast: &[CurvePoint], n_reference: f64) -> Option<f64> {
    // Quality the slow method attains at the reference budget.
    let quality = interpolate(slow, n_reference)?;
    let n_fast = n_required(fast, quality)?;
    Some(1.0 - n_fast / n_reference)
}

/// Mean savings over every curve point of `slow` that `fast` can match —
/// the aggregate "REDS needs X % fewer simulations on average" number.
pub fn mean_savings(slow: &[CurvePoint], fast: &[CurvePoint]) -> Option<f64> {
    let vals: Vec<f64> = slow
        .iter()
        .filter_map(|&(n, _)| savings_at(slow, fast, n))
        .collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// Quality of a curve at budget `n` (linear interpolation; `None`
/// outside the observed range).
fn interpolate(curve: &[CurvePoint], n: f64) -> Option<f64> {
    if curve.is_empty() || n < curve[0].0 || n > curve[curve.len() - 1].0 {
        return None;
    }
    for w in curve.windows(2) {
        let (n0, q0) = w[0];
        let (n1, q1) = w[1];
        if n >= n0 && n <= n1 {
            if n1 == n0 {
                return Some(q0);
            }
            let t = (n - n0) / (n1 - n0);
            return Some(q0 + t * (q1 - q0));
        }
    }
    curve.last().map(|&(_, q)| q)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A slow learner: quality q(n) = n / 100.
    fn slow() -> Vec<CurvePoint> {
        vec![(100.0, 1.0), (200.0, 2.0), (400.0, 4.0), (800.0, 8.0)]
    }

    /// Twice as fast: reaches the same quality with half the budget.
    fn fast() -> Vec<CurvePoint> {
        vec![(50.0, 1.0), (100.0, 2.0), (200.0, 4.0), (400.0, 8.0)]
    }

    #[test]
    fn n_required_interpolates() {
        assert_eq!(n_required(&slow(), 2.0), Some(200.0));
        assert_eq!(n_required(&slow(), 3.0), Some(300.0));
        assert_eq!(n_required(&slow(), 1.0), Some(100.0));
        assert_eq!(n_required(&slow(), 9.0), None);
        assert_eq!(n_required(&[], 1.0), None);
    }

    #[test]
    fn savings_of_a_double_speed_learner_is_half() {
        let s = savings_at(&slow(), &fast(), 400.0).expect("within range");
        assert!((s - 0.5).abs() < 1e-9, "savings {s}");
        let mean = mean_savings(&slow(), &fast()).expect("computable");
        assert!((mean - 0.5).abs() < 1e-9, "mean savings {mean}");
    }

    #[test]
    fn identical_curves_save_nothing() {
        let s = savings_at(&slow(), &slow(), 400.0).expect("within range");
        assert!(s.abs() < 1e-9);
    }

    #[test]
    fn unreachable_quality_yields_none() {
        let weak = vec![(100.0, 0.5), (800.0, 1.5)];
        assert_eq!(savings_at(&slow(), &weak, 800.0), None);
    }

    #[test]
    fn out_of_range_reference_yields_none() {
        assert_eq!(savings_at(&slow(), &fast(), 50.0), None);
        assert_eq!(savings_at(&slow(), &fast(), 10_000.0), None);
    }
}
