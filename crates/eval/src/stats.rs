//! Statistical tests used by the evaluation (§9): Wilcoxon–Mann–Whitney
//! rank-sum, Wilcoxon signed-rank (the pairwise post-hoc test), the
//! Friedman test, and Spearman rank correlation — all hand-rolled with
//! normal / χ² approximations.

/// Average ranks of `values` (1-based), ties receiving the mean rank.
pub fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7).
pub fn norm_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * x.abs());
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let erf = if x >= 0.0 { erf } else { -erf };
    0.5 * (1.0 + erf)
}

/// Two-sided Wilcoxon–Mann–Whitney rank-sum test (normal approximation
/// with tie correction). Returns the p-value, or 1.0 for degenerate
/// inputs (an empty sample).
pub fn wilcoxon_rank_sum(a: &[f64], b: &[f64]) -> f64 {
    let (n1, n2) = (a.len() as f64, b.len() as f64);
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let combined: Vec<f64> = a.iter().chain(b).copied().collect();
    let ranks = average_ranks(&combined);
    let r1: f64 = ranks[..a.len()].iter().sum();
    let u = r1 - n1 * (n1 + 1.0) / 2.0;
    let mean = n1 * n2 / 2.0;
    // Tie correction on the variance.
    let n = n1 + n2;
    let mut sorted = combined;
    sorted.sort_by(f64::total_cmp);
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let var = n1 * n2 / 12.0 * (n + 1.0 - tie_term / (n * (n - 1.0)));
    if var <= 0.0 {
        return 1.0;
    }
    let z = (u - mean).abs() / var.sqrt();
    2.0 * (1.0 - norm_cdf(z))
}

/// Two-sided Wilcoxon signed-rank test for paired samples (normal
/// approximation). Zero differences are dropped (Wilcoxon's rule).
/// Returns 1.0 when fewer than 6 non-zero pairs remain.
///
/// # Panics
///
/// Panics when the samples have different lengths.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "paired test needs equal lengths");
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n < 6 {
        return 1.0;
    }
    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let ranks = average_ranks(&abs);
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| r)
        .sum();
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0;
    let z = (w_plus - mean).abs() / var.sqrt();
    2.0 * (1.0 - norm_cdf(z))
}

/// Regularised lower incomplete gamma `P(a, x)` (series for `x < a+1`,
/// continued fraction otherwise) — used by the χ² CDF.
fn gamma_p(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    let ln_gamma_a = ln_gamma(a);
    if x < a + 1.0 {
        // series expansion
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma_a).exp()
    } else {
        // Lentz continued fraction for Q(a, x)
        let mut b = x + 1.0 - a;
        let mut c = 1e300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        1.0 - (-x + a * x.ln() - ln_gamma_a).exp() * h
    }
}

/// Lanczos log-gamma.
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Survival function of the χ² distribution with `k` degrees of freedom.
pub fn chi2_sf(x: f64, k: usize) -> f64 {
    (1.0 - gamma_p(k as f64 / 2.0, x / 2.0)).clamp(0.0, 1.0)
}

/// Friedman test over a `blocks × treatments` score matrix (each row one
/// dataset, each column one method; higher scores are better but only
/// ranks matter). Returns `(chi², p-value)`; `(0, 1)` for degenerate
/// shapes.
pub fn friedman_test(scores: &[Vec<f64>]) -> (f64, f64) {
    let n = scores.len();
    if n == 0 {
        return (0.0, 1.0);
    }
    let k = scores[0].len();
    if k < 2 || scores.iter().any(|row| row.len() != k) {
        return (0.0, 1.0);
    }
    let mut rank_sums = vec![0.0; k];
    for row in scores {
        for (j, r) in average_ranks(row).into_iter().enumerate() {
            rank_sums[j] += r;
        }
    }
    let nf = n as f64;
    let kf = k as f64;
    let sum_sq: f64 = rank_sums.iter().map(|r| r * r).sum();
    let chi2 = 12.0 / (nf * kf * (kf + 1.0)) * sum_sq - 3.0 * nf * (kf + 1.0);
    (chi2, chi2_sf(chi2.max(0.0), k - 1))
}

/// Spearman rank correlation of two equal-length samples; 0.0 for
/// degenerate inputs.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation needs equal lengths");
    if a.len() < 2 {
        return 0.0;
    }
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    pearson(&ra, &rb)
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va * vb).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_handle_ties() {
        let r = average_ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn norm_cdf_reference_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((norm_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn rank_sum_detects_shifted_samples() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| i as f64 + 25.0).collect();
        assert!(wilcoxon_rank_sum(&a, &b) < 0.001);
    }

    #[test]
    fn rank_sum_accepts_identical_distributions() {
        let a: Vec<f64> = (0..40).map(|i| (i % 10) as f64).collect();
        let b = a.clone();
        assert!(wilcoxon_rank_sum(&a, &b) > 0.9);
    }

    #[test]
    fn signed_rank_detects_paired_shift() {
        let a: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
        assert!(wilcoxon_signed_rank(&b, &a) < 0.001);
    }

    #[test]
    fn signed_rank_small_samples_are_inconclusive() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 3.0, 4.0];
        assert_eq!(wilcoxon_signed_rank(&a, &b), 1.0);
    }

    #[test]
    fn chi2_sf_reference_values() {
        // χ²(1): P(X > 3.841) ≈ 0.05
        assert!((chi2_sf(3.841, 1) - 0.05).abs() < 2e-3);
        // χ²(5): P(X > 11.07) ≈ 0.05
        assert!((chi2_sf(11.07, 5) - 0.05).abs() < 2e-3);
    }

    #[test]
    fn friedman_flags_a_consistently_better_method() {
        // Method 2 always best, method 0 always worst over 20 blocks.
        let scores: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, i as f64 + 1.0, i as f64 + 2.0])
            .collect();
        let (chi2, p) = friedman_test(&scores);
        assert!(chi2 > 10.0, "chi2 {chi2}");
        assert!(p < 0.001, "p {p}");
    }

    #[test]
    fn friedman_accepts_random_rankings() {
        let scores: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                let base = (i * 7 % 5) as f64;
                vec![base, (i * 3 % 5) as f64, (i * 11 % 5) as f64]
            })
            .collect();
        let (_, p) = friedman_test(&scores);
        assert!(p > 0.01, "p {p}");
    }

    #[test]
    fn spearman_detects_monotone_relations() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x * x).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let c: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_degenerate_inputs() {
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }
}
