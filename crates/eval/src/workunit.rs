//! Deterministic work-unit decomposition of an experiment's
//! rep × method grid.
//!
//! [`run_experiment`](crate::run_experiment) at paper scale
//! (`--all --reps 50`) runs for hours; to split it across processes or
//! machines, the grid is enumerated as self-describing [`WorkUnit`]s
//! that any worker can execute independently and any consumer can merge
//! back into the monolithic [`MethodSummary`](crate::MethodSummary)
//! aggregation.
//!
//! Two invariants make the decomposition safe:
//!
//! * **Stable seeding.** Every RNG seed is a stable FNV-1a hash of the
//!   experiment's identity (function, `N`, base seed) and the unit's
//!   coordinates (`rep`, method name) — never of loop positions, thread
//!   ids, or execution order. Results are therefore bit-identical under
//!   any shard decomposition, any resume order, and any thread count;
//!   raising `reps` or appending methods extends a grid without
//!   changing already-computed units.
//! * **Fingerprinting.** [`spec_fingerprint`] condenses every
//!   result-affecting field of an [`ExperimentSpec`] into a hex token.
//!   Checkpoints record it so that partial results from *different*
//!   configurations can never be merged silently.

use reds_core::NewPointSampler;

use crate::experiment::{Design, ExperimentSpec};

/// Version tag mixed into every derived seed; bump when the meaning of
/// the derivation changes so old checkpoints are rejected rather than
/// silently reinterpreted.
const SEED_DOMAIN: &str = "reds-workunit-v1";

/// One cell of the rep × method grid: everything a worker needs to
/// reproduce the cell's result bit-for-bit, independent of which
/// process executes it or in which order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkUnit {
    /// Benchmark-function name (resolves via `reds_functions::by_name`).
    pub function: String,
    /// Training-set size `N`.
    pub n: usize,
    /// Paper-style method name.
    pub method: String,
    /// Position of the method in `spec.methods` (summary ordering).
    pub method_index: usize,
    /// Repetition index, `0 .. spec.reps`.
    pub rep: usize,
    /// Seed of the training-design RNG — shared by all methods of the
    /// same repetition so they see the same dataset.
    pub rep_seed: u64,
    /// Seed of the method RNG — unique per (rep, method name).
    pub method_seed: u64,
}

/// FNV-1a over separator-delimited parts (a separator is mixed in
/// between parts so `["ab", "c"]` and `["a", "bc"]` hash differently).
/// The single hash definition behind every seed and fingerprint in the
/// sharding machinery — checkpoint compatibility depends on it, so
/// derive new digests from this function rather than re-implementing
/// the loop.
pub fn stable_hash(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= 0x1F;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The experiment-identity prefix shared by all seed derivations: only
/// fields that select *which data* a repetition sees belong here, so
/// that e.g. adding a method or raising `reps` leaves existing units'
/// seeds untouched.
fn seed_scope(spec: &ExperimentSpec) -> [String; 4] {
    [
        SEED_DOMAIN.to_string(),
        spec.function.name().to_string(),
        spec.n.to_string(),
        spec.seed.to_string(),
    ]
}

fn derive(scope: &[String; 4], tail: &[&str]) -> u64 {
    let mut parts: Vec<&str> = scope.iter().map(String::as_str).collect();
    parts.extend_from_slice(tail);
    stable_hash(&parts)
}

/// Seed of the training-design RNG of repetition `rep`.
pub fn rep_seed(spec: &ExperimentSpec, rep: usize) -> u64 {
    derive(&seed_scope(spec), &["rep", &rep.to_string()])
}

/// Seed of the RNG handed to `method` in repetition `rep`. Depends on
/// the method *name*, not its position, so reordering or extending
/// `spec.methods` never shifts other methods' streams.
pub fn method_seed(spec: &ExperimentSpec, rep: usize, method: &str) -> u64 {
    derive(&seed_scope(spec), &["method", method, &rep.to_string()])
}

/// Seed of the shared held-out test set RNG.
pub fn test_seed(spec: &ExperimentSpec) -> u64 {
    derive(&seed_scope(spec), &["test"])
}

/// Enumerates the full rep × method grid in canonical order
/// (repetition-major, methods in `spec.methods` order).
pub fn enumerate_units(spec: &ExperimentSpec) -> Vec<WorkUnit> {
    let mut units = Vec::with_capacity(spec.reps * spec.methods.len());
    for rep in 0..spec.reps {
        let rs = rep_seed(spec, rep);
        for (method_index, method) in spec.methods.iter().enumerate() {
            units.push(WorkUnit {
                function: spec.function.name().to_string(),
                n: spec.n,
                method: method.clone(),
                method_index,
                rep,
                rep_seed: rs,
                method_seed: method_seed(spec, rep, method),
            });
        }
    }
    units
}

/// The subset of `units` assigned to `shard` of `of` (round-robin over
/// the canonical enumeration order, so shards are load-balanced across
/// repetitions and methods).
///
/// # Panics
///
/// Panics when `of == 0` or `shard >= of`.
pub fn shard_units(units: &[WorkUnit], shard: usize, of: usize) -> Vec<WorkUnit> {
    assert!(of > 0, "shard count must be positive");
    assert!(shard < of, "shard index {shard} out of range 0..{of}");
    units
        .iter()
        .enumerate()
        .filter(|(i, _)| i % of == shard)
        .map(|(_, u)| u.clone())
        .collect()
}

fn sampler_token(s: &NewPointSampler) -> String {
    match s {
        NewPointSampler::Uniform => "uniform".to_string(),
        NewPointSampler::MixedEven => "mixed-even".to_string(),
        NewPointSampler::LogitNormal { mu, sigma } => {
            // Bit patterns, so the encoding is exact for any parameters.
            format!(
                "logit-normal:{:016x}:{:016x}",
                mu.to_bits(),
                sigma.to_bits()
            )
        }
    }
}

fn design_token(d: Design) -> &'static str {
    match d {
        Design::Lhs => "lhs",
        Design::Halton => "halton",
        Design::MixedEven => "mixed-even",
        Design::LogitNormal => "logit-normal",
    }
}

/// A 16-hex-digit digest of every result-affecting field of the spec
/// (`threads` is deliberately excluded: results are thread-count
/// invariant). Two specs with equal fingerprints produce bit-identical
/// grids; checkpoints refuse to merge across differing fingerprints.
pub fn spec_fingerprint(spec: &ExperimentSpec) -> String {
    let parts: Vec<String> = vec![
        SEED_DOMAIN.to_string(),
        spec.function.name().to_string(),
        spec.n.to_string(),
        spec.reps.to_string(),
        spec.methods.join(","),
        spec.opts.l_prim.to_string(),
        spec.opts.l_bi.to_string(),
        spec.opts.bumping_q.to_string(),
        sampler_token(&spec.opts.sampler),
        spec.opts.tune_metamodel.to_string(),
        design_token(spec.design).to_string(),
        spec.test_size.to_string(),
        spec.seed.to_string(),
    ];
    let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    format!("{:016x}", stable_hash(&refs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodOpts;
    use reds_functions::by_name;

    fn spec() -> ExperimentSpec {
        let mut s = ExperimentSpec::new(by_name("2").unwrap(), 100, &["P", "RPx"]);
        s.reps = 3;
        s
    }

    #[test]
    fn enumeration_is_rep_major_and_complete() {
        let s = spec();
        let units = enumerate_units(&s);
        assert_eq!(units.len(), 6);
        assert_eq!((units[0].rep, units[0].method.as_str()), (0, "P"));
        assert_eq!((units[1].rep, units[1].method.as_str()), (0, "RPx"));
        assert_eq!((units[5].rep, units[5].method.as_str()), (2, "RPx"));
        for u in &units {
            assert_eq!(u.function, "2");
            assert_eq!(u.n, 100);
        }
    }

    #[test]
    fn seeds_are_stable_under_grid_extension() {
        let s = spec();
        let mut wider = s.clone();
        wider.reps = 7;
        wider.methods.push("RPf".to_string());
        let a = enumerate_units(&s);
        let b = enumerate_units(&wider);
        // Every original unit reappears in the extended grid with
        // identical seeds.
        for u in &a {
            assert!(
                b.iter().any(|v| v.method == u.method
                    && v.rep == u.rep
                    && v.rep_seed == u.rep_seed
                    && v.method_seed == u.method_seed),
                "unit {u:?} lost by extension"
            );
        }
    }

    #[test]
    fn seeds_differ_across_reps_and_methods() {
        let s = spec();
        let units = enumerate_units(&s);
        let mut seeds: Vec<u64> = units.iter().map(|u| u.method_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), units.len(), "method seed collision");
        assert_ne!(rep_seed(&s, 0), rep_seed(&s, 1));
        assert_ne!(test_seed(&s), rep_seed(&s, 0));
    }

    #[test]
    fn sharding_partitions_the_grid() {
        let s = spec();
        let units = enumerate_units(&s);
        for of in [1, 2, 3, 7] {
            let mut seen = Vec::new();
            for shard in 0..of {
                seen.extend(shard_units(&units, shard, of));
            }
            assert_eq!(seen.len(), units.len());
            for u in &units {
                assert_eq!(seen.iter().filter(|v| *v == u).count(), 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_must_be_in_range() {
        let s = spec();
        let units = enumerate_units(&s);
        let _ = shard_units(&units, 2, 2);
    }

    #[test]
    fn fingerprint_tracks_result_affecting_fields() {
        let s = spec();
        let base = spec_fingerprint(&s);
        assert_eq!(base.len(), 16);
        assert_eq!(base, spec_fingerprint(&s.clone()), "deterministic");

        let mut threads = s.clone();
        threads.threads = 3;
        assert_eq!(base, spec_fingerprint(&threads), "threads are excluded");

        let mut reps = s.clone();
        reps.reps = 4;
        assert_ne!(base, spec_fingerprint(&reps));
        let mut opts = s.clone();
        opts.opts = MethodOpts {
            l_prim: 123,
            ..s.opts.clone()
        };
        assert_ne!(base, spec_fingerprint(&opts));
        let mut seed = s.clone();
        seed.seed = 1;
        assert_ne!(base, spec_fingerprint(&seed));
    }
}
