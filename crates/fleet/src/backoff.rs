//! Re-export of the shared backoff schedule.
//!
//! The full-jitter implementation moved to `reds_serve::backoff` so
//! the serving client can reuse it without a dependency cycle
//! (`reds-fleet` depends on `reds-serve` for the wire module). The
//! `reds_fleet::backoff::Backoff` and `reds_fleet::Backoff` paths keep
//! working unchanged.

pub use reds_serve::backoff::Backoff;
