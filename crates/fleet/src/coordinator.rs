//! The fleet coordinator: leases work to remote workers, ingests
//! results idempotently, and survives every failure the fault harness
//! can throw at it.
//!
//! The coordinator owns the sweep's unit list and two durable files —
//! the PR 2 result checkpoint (shard 0/1) and the lease
//! [`journal`](crate::journal). Its single-threaded round loop:
//!
//! 1. **Connect** — every worker without a link gets a `fleet_hello`
//!    (fingerprint + protocol validated). A reconnecting worker that
//!    still holds a lease this coordinator knows is re-adopted; a
//!    stray lease is aborted.
//! 2. **Poll** — every leased worker is polled from the coordinator's
//!    cursor; each returned record is ingested **first-wins** on its
//!    `unit_key` (a duplicate from a redundant attempt is journaled
//!    and discarded — results are bit-identical across attempts, so
//!    either copy is correct, but only one is ever accepted). A
//!    successful poll is the lease's heartbeat: the deadline extends.
//! 3. **Grant** — idle linked workers receive the next batch of
//!    pending units under a fresh lease id and a bumped attempt.
//! 4. **Reap** — leases past their deadline are journaled `expire`
//!    and their un-ingested units requeued.
//! 5. **Park** — with zero live workers and work outstanding, the
//!    coordinator parks under backoff and keeps retrying; acknowledged
//!    work is already durable, so parking loses nothing. A configured
//!    park budget bounds how long it waits before giving up with an
//!    error (resume later with the same files).
//!
//! Every socket operation runs under a per-request timeout with a
//! bounded retry budget and exponential backoff + full jitter; a
//! worker that keeps failing is marked down and retried on its own
//! backoff schedule. The final merged records are byte-identical to a
//! monolithic run because units are bit-identical regardless of where
//! (or how many times) they execute, and the checkpoint/merge layer
//! already validates fingerprints and completeness.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::io::BufReader;
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

use reds_eval::checkpoint::unit_key;
use reds_eval::{CheckpointError, CheckpointHeader, CheckpointWriter, UnitRecord, WorkUnit};
use reds_json::Json;
use reds_serve::wire::{self, Frame, RetryBudget};

use crate::backoff::Backoff;
use crate::journal::{JournalError, JournalEvent, JournalState, LeaseJournal};
use crate::protocol::{
    FleetErrorCode, FleetRequest, HelloReply, PollReply, MAX_FLEET_FRAME_BYTES, PROTO_VERSION,
};

/// Coordinator tuning. The defaults suit integration tests; real
/// sweeps raise the TTLs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker addresses (`host:port`), possibly behind fault proxies.
    pub workers: Vec<String>,
    /// Units per lease.
    pub lease_units: usize,
    /// Lease deadline; every successful poll extends it by this much.
    pub lease_ttl: Duration,
    /// Total patience per socket request before it counts as failed.
    pub io_timeout: Duration,
    /// Pause between coordinator rounds.
    pub poll_interval: Duration,
    /// Bounded retries of one request (reconnect + resend) before the
    /// worker is marked down.
    pub max_request_retries: u32,
    /// First backoff delay ceiling.
    pub backoff_base: Duration,
    /// Backoff ceiling cap.
    pub backoff_cap: Duration,
    /// Consecutive zero-worker parked rounds tolerated before the run
    /// returns [`FleetError::FleetLost`].
    pub max_park_rounds: u32,
    /// Seed of the backoff jitter streams.
    pub seed: u64,
    /// Test hook: stop (as if killed) after this many fresh ingests.
    pub halt_after_ingests: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            workers: Vec::new(),
            lease_units: 4,
            lease_ttl: Duration::from_secs(30),
            io_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(25),
            max_request_retries: 4,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(500),
            max_park_rounds: 40,
            seed: 0,
            halt_after_ingests: None,
        }
    }
}

/// What a fleet run produced.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Every ingested record: resumed from the checkpoint plus newly
    /// ingested, exactly one per unit when complete.
    pub records: Vec<UnitRecord>,
    /// Fresh (non-duplicate) ingests performed by this invocation.
    pub ingested: usize,
    /// Records discarded as duplicates of an earlier attempt.
    pub duplicates: usize,
    /// Leases given up on (deadline, worker lost, abort).
    pub expired_leases: usize,
    /// Rounds spent parked with zero live workers.
    pub parked_rounds: u32,
    /// `true` when the run stopped early via `halt_after_ingests`
    /// (simulated coordinator crash) — resume with the same files.
    pub halted: bool,
}

/// A fleet run failure.
#[derive(Debug)]
pub enum FleetError {
    /// Checkpoint I/O or validation failed.
    Checkpoint(CheckpointError),
    /// Journal I/O or validation failed.
    Journal(JournalError),
    /// Every worker stayed unreachable past the park budget.
    FleetLost {
        /// Units still without an ingested record.
        pending: usize,
    },
    /// The configuration is unusable.
    Config(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "fleet checkpoint error: {e}"),
            Self::Journal(e) => write!(f, "fleet journal error: {e}"),
            Self::FleetLost { pending } => write!(
                f,
                "no worker reachable within the park budget; {pending} unit(s) pending \
                 (acknowledged work is checkpointed — restart workers and resume)"
            ),
            Self::Config(m) => write!(f, "fleet configuration error: {m}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<CheckpointError> for FleetError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<JournalError> for FleetError {
    fn from(e: JournalError) -> Self {
        Self::Journal(e)
    }
}

/// Socket read timeout slice; the per-request total is the budget.
const READ_SLICE: Duration = Duration::from_millis(25);

/// One live connection to a worker.
struct Link {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

/// Why a request failed.
enum LinkError {
    /// Connection-level failure; drop the link and reconnect.
    Transport(String),
    /// No matching reply within the budget; the link may still be
    /// usable, but the caller treats it like transport failure.
    Timeout,
    /// The worker answered with a structured error.
    Remote(FleetErrorCode, String),
}

impl Link {
    fn connect(addr: &str, io_timeout: Duration) -> Result<Self, LinkError> {
        let to_err = |e: std::io::Error| LinkError::Transport(e.to_string());
        let mut last = LinkError::Transport(format!("no addresses resolve for {addr}"));
        use std::net::ToSocketAddrs;
        for sock in addr.to_socket_addrs().map_err(to_err)? {
            match TcpStream::connect_timeout(&sock, io_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    stream.set_read_timeout(Some(READ_SLICE)).map_err(to_err)?;
                    let clone = stream.try_clone().map_err(to_err)?;
                    return Ok(Self {
                        reader: BufReader::new(clone),
                        writer: stream,
                        next_id: 1,
                    });
                }
                Err(e) => last = LinkError::Transport(e.to_string()),
            }
        }
        Err(last)
    }

    /// Sends one request and waits for its reply. Frames with a
    /// different id are stale duplicates of earlier exchanges (the
    /// fault proxy can duplicate or delay frames) and are skipped
    /// without consuming extra patience beyond the shared budget.
    fn request(
        &mut self,
        mut request: FleetRequest,
        io_timeout: Duration,
    ) -> Result<Json, LinkError> {
        let id = self.next_id;
        self.next_id += 1;
        set_request_id(&mut request, id);
        wire::write_frame(&mut self.writer, &request.to_json())
            .map_err(|e| LinkError::Transport(e.to_string()))?;
        let mut budget = RetryBudget::for_total(io_timeout, READ_SLICE);
        loop {
            let frame = wire::read_frame(&mut self.reader, MAX_FLEET_FRAME_BYTES, &mut budget)
                .map_err(|e| LinkError::Transport(e.to_string()))?;
            let line = match frame {
                Frame::Line(line) => line,
                Frame::Eof => return Err(LinkError::Transport("worker closed".to_string())),
                Frame::TooLarge => return Err(LinkError::Transport("oversized reply".to_string())),
                Frame::TimedOut => return Err(LinkError::Timeout),
            };
            let text = String::from_utf8_lossy(&line);
            let doc = match reds_json::from_str(text.trim()) {
                Ok(doc) => doc,
                // A torn frame (connection cut mid-line) is a transport
                // failure, not a protocol error.
                Err(e) => return Err(LinkError::Transport(format!("bad reply: {e}"))),
            };
            let got = doc
                .get("id")
                .and_then(crate::protocol::small_uint)
                .unwrap_or(0);
            if got != id {
                continue; // stale duplicate from an earlier exchange
            }
            return match doc.get("ok").and_then(Json::as_bool) {
                Some(true) => doc
                    .get("result")
                    .cloned()
                    .ok_or_else(|| LinkError::Transport("reply missing 'result'".to_string())),
                Some(false) => {
                    let error = doc.get("error");
                    let code = error
                        .and_then(|e| e.get("code"))
                        .and_then(Json::as_str)
                        .and_then(FleetErrorCode::from_wire)
                        .unwrap_or(FleetErrorCode::Internal);
                    let message = error
                        .and_then(|e| e.get("message"))
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string();
                    Err(LinkError::Remote(code, message))
                }
                None => Err(LinkError::Transport("reply missing 'ok'".to_string())),
            };
        }
    }
}

fn set_request_id(request: &mut FleetRequest, new_id: u64) {
    match request {
        FleetRequest::Hello { id, .. }
        | FleetRequest::Grant { id, .. }
        | FleetRequest::Poll { id, .. }
        | FleetRequest::Abort { id, .. }
        | FleetRequest::Shutdown { id } => *id = new_id,
    }
}

/// A lease the coordinator is tracking.
struct Lease {
    unit_idxs: Vec<usize>,
    deadline: Instant,
    cursor: usize,
    worker: usize,
}

/// Per-worker slot state.
struct Slot {
    addr: String,
    link: Option<Link>,
    lease: Option<u64>,
    backoff: Backoff,
    /// Do not try to reconnect before this instant.
    retry_at: Instant,
    /// Request failures since the last success (bounds per-request
    /// retry before the worker is marked down).
    failures: u32,
}

/// Runs the sweep's `units` over the configured fleet. `units` pairs
/// each [`WorkUnit`] with its spec fingerprint; `fingerprint` is the
/// sweep-level digest both files are keyed on. With `resume`, the
/// checkpoint and journal at the given paths are reloaded and the run
/// continues where the previous coordinator stopped.
pub fn run_fleet(
    fingerprint: &str,
    units: &[(String, WorkUnit)],
    checkpoint_path: &Path,
    journal_path: &Path,
    resume: bool,
    config: &FleetConfig,
) -> Result<FleetOutcome, FleetError> {
    if config.workers.is_empty() {
        return Err(FleetError::Config("no workers configured".to_string()));
    }
    if config.lease_units == 0 {
        return Err(FleetError::Config(
            "lease_units must be positive".to_string(),
        ));
    }

    // --- durable state -------------------------------------------------
    let header = CheckpointHeader::new(fingerprint, 0, 1);
    let (mut writer, done_records) = if resume && checkpoint_path.exists() {
        CheckpointWriter::resume(checkpoint_path, &header)?
    } else {
        if let Some(dir) = checkpoint_path.parent() {
            std::fs::create_dir_all(dir).map_err(CheckpointError::Io)?;
        }
        (
            CheckpointWriter::create(checkpoint_path, &header)?,
            Vec::new(),
        )
    };
    let (mut journal, journal_state) = if resume && journal_path.exists() {
        LeaseJournal::resume(journal_path, fingerprint)?
    } else {
        (
            LeaseJournal::create(journal_path, fingerprint)?,
            JournalState::default(),
        )
    };

    let keys: Vec<String> = units.iter().map(|(fp, u)| unit_key(fp, u)).collect();
    let mut ingested_keys: HashSet<String> = done_records
        .iter()
        .map(|r| unit_key(&r.spec, &r.unit))
        .collect();
    let mut attempts: HashMap<String, u32> = journal_state.attempts;
    let mut next_lease: u64 = journal_state.max_lease + 1;

    let mut records = done_records;
    let mut pending: VecDeque<usize> = (0..units.len())
        .filter(|&i| !ingested_keys.contains(&keys[i]))
        .collect();

    // --- volatile state ------------------------------------------------
    let now = Instant::now();
    let mut slots: Vec<Slot> = config
        .workers
        .iter()
        .enumerate()
        .map(|(i, addr)| Slot {
            addr: addr.clone(),
            link: None,
            lease: None,
            backoff: Backoff::new(
                config.backoff_base,
                config.backoff_cap,
                // Distinct jitter stream per worker, derived from the
                // run seed so a replay is exact.
                config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64),
            ),
            retry_at: now,
            failures: 0,
        })
        .collect();
    let mut leases: HashMap<u64, Lease> = HashMap::new();
    let mut park_backoff = Backoff::new(
        config.backoff_base,
        config.backoff_cap,
        config.seed ^ 0x5bd1_e995,
    );

    let mut outcome = FleetOutcome {
        records: Vec::new(),
        ingested: 0,
        duplicates: journal_state.duplicates,
        expired_leases: 0,
        parked_rounds: 0,
        halted: false,
    };

    // One place to give up on a lease: journal it, requeue what the
    // checkpoint does not already hold, free the slot.
    #[allow(clippy::too_many_arguments)] // plain borrows of the round loop's state
    fn expire_lease(
        lease_id: u64,
        reason: &str,
        leases: &mut HashMap<u64, Lease>,
        slots: &mut [Slot],
        pending: &mut VecDeque<usize>,
        ingested_keys: &HashSet<String>,
        keys: &[String],
        journal: &mut LeaseJournal,
        expired: &mut usize,
    ) -> Result<(), FleetError> {
        let Some(lease) = leases.remove(&lease_id) else {
            return Ok(());
        };
        journal.record(&JournalEvent::Expire {
            lease: lease_id,
            reason: reason.to_string(),
        })?;
        *expired += 1;
        for idx in lease.unit_idxs {
            if !ingested_keys.contains(&keys[idx]) {
                pending.push_back(idx);
            }
        }
        if let Some(slot) = slots.get_mut(lease.worker) {
            if slot.lease == Some(lease_id) {
                slot.lease = None;
            }
        }
        Ok(())
    }

    let total = units.len();
    let mut consecutive_parked = 0u32;
    loop {
        // Complete?
        if ingested_keys.len() == total {
            break;
        }
        if let Some(halt) = config.halt_after_ingests {
            if outcome.ingested >= halt {
                outcome.halted = true;
                eprintln!("coordinator: halting after {halt} ingest(s) (test hook)");
                break;
            }
        }

        let round_start = Instant::now();

        // ---- reap expired leases -------------------------------------
        let expired_now: Vec<u64> = leases
            .iter()
            .filter(|(_, l)| round_start >= l.deadline)
            .map(|(&id, _)| id)
            .collect();
        for lease_id in expired_now {
            eprintln!("coordinator: lease {lease_id} passed its deadline — reassigning");
            expire_lease(
                lease_id,
                "deadline",
                &mut leases,
                &mut slots,
                &mut pending,
                &ingested_keys,
                &keys,
                &mut journal,
                &mut outcome.expired_leases,
            )?;
        }

        // ---- drive every slot ----------------------------------------
        let mut live = 0usize;
        for si in 0..slots.len() {
            // (Re)connect + handshake.
            if slots[si].link.is_none() {
                if Instant::now() < slots[si].retry_at {
                    continue;
                }
                match Link::connect(&slots[si].addr, config.io_timeout) {
                    Err(LinkError::Transport(m)) | Err(LinkError::Remote(_, m)) => {
                        let delay = slots[si].backoff.next_delay();
                        slots[si].retry_at = Instant::now() + delay;
                        eprintln!(
                            "coordinator: worker {} unreachable ({m}); retry in {delay:?}",
                            slots[si].addr
                        );
                        continue;
                    }
                    Err(LinkError::Timeout) => {
                        let delay = slots[si].backoff.next_delay();
                        slots[si].retry_at = Instant::now() + delay;
                        continue;
                    }
                    Ok(mut link) => {
                        let hello = FleetRequest::Hello {
                            id: 0,
                            fingerprint: fingerprint.to_string(),
                            proto: PROTO_VERSION,
                        };
                        match link.request(hello, config.io_timeout) {
                            Ok(result) => match HelloReply::from_json(&result) {
                                Ok(reply) => {
                                    slots[si].link = Some(link);
                                    slots[si].backoff.reset();
                                    slots[si].failures = 0;
                                    // Adopt or abort whatever lease the
                                    // worker still holds.
                                    match reply.active_lease {
                                        Some((lease_id, _, _))
                                            if leases
                                                .get(&lease_id)
                                                .is_some_and(|l| l.worker == si) =>
                                        {
                                            slots[si].lease = Some(lease_id);
                                        }
                                        Some((lease_id, _, _)) => {
                                            let abort = FleetRequest::Abort {
                                                id: 0,
                                                lease: lease_id,
                                            };
                                            let link = slots[si].link.as_mut().expect("just set");
                                            let _ = link.request(abort, config.io_timeout);
                                        }
                                        None => {}
                                    }
                                }
                                Err(m) => {
                                    let delay = slots[si].backoff.next_delay();
                                    slots[si].retry_at = Instant::now() + delay;
                                    eprintln!(
                                        "coordinator: worker {} bad hello ({m}); retry in {delay:?}",
                                        slots[si].addr
                                    );
                                    continue;
                                }
                            },
                            Err(LinkError::Remote(FleetErrorCode::FingerprintMismatch, m)) => {
                                // Persistent config error — never retry
                                // into a wrong-sweep worker.
                                return Err(FleetError::Config(format!(
                                    "worker {}: {m}",
                                    slots[si].addr
                                )));
                            }
                            Err(_) => {
                                let delay = slots[si].backoff.next_delay();
                                slots[si].retry_at = Instant::now() + delay;
                                continue;
                            }
                        }
                    }
                }
            }
            live += 1;

            // Poll the active lease.
            if let Some(lease_id) = slots[si].lease {
                let cursor = leases.get(&lease_id).map(|l| l.cursor).unwrap_or(0);
                let poll = FleetRequest::Poll {
                    id: 0,
                    lease: lease_id,
                    cursor,
                };
                let link = slots[si].link.as_mut().expect("linked");
                match link.request(poll, config.io_timeout) {
                    Ok(result) => match PollReply::from_json(&result) {
                        Ok(reply) => {
                            slots[si].failures = 0;
                            let lease = leases.get_mut(&lease_id).expect("tracked lease");
                            // Heartbeat: a live worker extends its lease.
                            lease.deadline = Instant::now() + config.lease_ttl;
                            // The reply's base echoes our cursor; records
                            // are the suffix from there.
                            let mut fresh = 0usize;
                            for record in reply.records {
                                let key = unit_key(&record.spec, &record.unit);
                                let duplicate = ingested_keys.contains(&key);
                                journal.record(&JournalEvent::Ingest {
                                    lease: lease_id,
                                    attempt: record.attempt,
                                    key: key.clone(),
                                    duplicate,
                                })?;
                                if duplicate {
                                    outcome.duplicates += 1;
                                } else {
                                    writer.append(&record)?;
                                    ingested_keys.insert(key);
                                    records.push(record);
                                    outcome.ingested += 1;
                                    fresh += 1;
                                }
                                lease.cursor += 1;
                            }
                            let _ = fresh;
                            if reply.done && lease.cursor >= reply.executed {
                                leases.remove(&lease_id);
                                slots[si].lease = None;
                            }
                        }
                        Err(m) => {
                            eprintln!("coordinator: bad poll reply from {} ({m})", slots[si].addr);
                            slots[si].failures += 1;
                        }
                    },
                    Err(LinkError::Remote(FleetErrorCode::UnknownLease, _)) => {
                        // The worker restarted (or aborted us): the lease
                        // is gone there, so give it up here and requeue.
                        expire_lease(
                            lease_id,
                            "worker-lost",
                            &mut leases,
                            &mut slots,
                            &mut pending,
                            &ingested_keys,
                            &keys,
                            &mut journal,
                            &mut outcome.expired_leases,
                        )?;
                    }
                    Err(LinkError::Remote(_, m)) => {
                        eprintln!("coordinator: poll rejected by {} ({m})", slots[si].addr);
                        slots[si].failures += 1;
                    }
                    Err(LinkError::Timeout) | Err(LinkError::Transport(_)) => {
                        slots[si].failures += 1;
                        if slots[si].failures > config.max_request_retries {
                            // Worker down: drop the link; its lease stays
                            // until the deadline (it may come back).
                            slots[si].link = None;
                            let delay = slots[si].backoff.next_delay();
                            slots[si].retry_at = Instant::now() + delay;
                            slots[si].failures = 0;
                            live -= 1;
                            eprintln!(
                                "coordinator: worker {} not answering; backing off {delay:?}",
                                slots[si].addr
                            );
                        }
                    }
                }
                continue;
            }

            // Idle + linked: grant the next batch.
            if pending.is_empty() {
                continue;
            }
            let mut unit_idxs: Vec<usize> = Vec::with_capacity(config.lease_units);
            while unit_idxs.len() < config.lease_units {
                let Some(idx) = pending.front().copied() else {
                    break;
                };
                // Lease batches never span specs: worker execution
                // groups per spec, and single-spec leases keep the
                // protocol simple.
                if let Some(&first) = unit_idxs.first() {
                    if units[idx].0 != units[first].0 {
                        break;
                    }
                }
                pending.pop_front();
                unit_idxs.push(idx);
            }
            if unit_idxs.is_empty() {
                continue;
            }
            let attempt = 1 + unit_idxs
                .iter()
                .map(|&i| attempts.get(&keys[i]).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            let lease_id = next_lease;
            next_lease += 1;
            let lease_keys: Vec<String> = unit_idxs.iter().map(|&i| keys[i].clone()).collect();
            journal.record(&JournalEvent::Grant {
                lease: lease_id,
                attempt,
                worker: slots[si].addr.clone(),
                keys: lease_keys.clone(),
            })?;
            for k in &lease_keys {
                attempts.insert(k.clone(), attempt);
            }
            let grant = FleetRequest::Grant {
                id: 0,
                lease: lease_id,
                attempt,
                spec: units[unit_idxs[0]].0.clone(),
                units: unit_idxs.iter().map(|&i| units[i].1.clone()).collect(),
                deadline_ms: config.lease_ttl.as_millis() as u64,
            };
            let link = slots[si].link.as_mut().expect("linked");
            match link.request(grant, config.io_timeout) {
                Ok(_) => {
                    leases.insert(
                        lease_id,
                        Lease {
                            unit_idxs,
                            deadline: Instant::now() + config.lease_ttl,
                            cursor: 0,
                            worker: si,
                        },
                    );
                    slots[si].lease = Some(lease_id);
                }
                Err(e) => {
                    // The worker may or may not have accepted the grant
                    // (e.g. the reply was dropped). Track the lease with
                    // its deadline anyway: if the worker took it, the
                    // next hello/poll adopts it; if not, the deadline
                    // expires it and the units requeue.
                    leases.insert(
                        lease_id,
                        Lease {
                            unit_idxs,
                            deadline: Instant::now() + config.lease_ttl,
                            cursor: 0,
                            worker: si,
                        },
                    );
                    slots[si].lease = Some(lease_id);
                    if let LinkError::Remote(FleetErrorCode::Busy, m) = &e {
                        // Our bookkeeping said idle but the worker holds
                        // another lease (e.g. adopt raced): expire ours
                        // immediately so the units requeue.
                        eprintln!("coordinator: {} busy ({m})", slots[si].addr);
                        expire_lease(
                            lease_id,
                            "abort",
                            &mut leases,
                            &mut slots,
                            &mut pending,
                            &ingested_keys,
                            &keys,
                            &mut journal,
                            &mut outcome.expired_leases,
                        )?;
                    } else {
                        slots[si].failures += 1;
                    }
                }
            }
        }

        // ---- park when the fleet is gone ------------------------------
        if live == 0 {
            consecutive_parked += 1;
            outcome.parked_rounds += 1;
            if consecutive_parked > config.max_park_rounds {
                return Err(FleetError::FleetLost {
                    pending: total - ingested_keys.len(),
                });
            }
            let delay = park_backoff.next_delay();
            eprintln!(
                "coordinator: zero live workers ({} unit(s) pending) — parked, retrying in {delay:?}",
                total - ingested_keys.len()
            );
            std::thread::sleep(delay);
            continue;
        }
        consecutive_parked = 0;
        park_backoff.reset();
        std::thread::sleep(config.poll_interval);
    }

    // Best-effort cleanup: abort leases that are still out (halted runs
    // resume against workers whose hello reports them anyway).
    for (lease_id, lease) in &leases {
        if let Some(slot) = slots.get_mut(lease.worker) {
            if let Some(link) = slot.link.as_mut() {
                let _ = link.request(
                    FleetRequest::Abort {
                        id: 0,
                        lease: *lease_id,
                    },
                    config.io_timeout,
                );
            }
        }
    }

    outcome.records = records;
    Ok(outcome)
}

/// Sends `fleet_shutdown` to every worker (best effort) — the
/// coordinator binary calls this after a successful sweep when asked
/// to wind the fleet down.
pub fn shutdown_workers(workers: &[String], io_timeout: Duration) {
    for addr in workers {
        if let Ok(mut link) = Link::connect(addr, io_timeout) {
            let _ = link.request(FleetRequest::Shutdown { id: 0 }, io_timeout);
        }
    }
}
