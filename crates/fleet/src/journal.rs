//! The coordinator's lease journal: an append-only JSONL audit of
//! every grant, ingest, and expiry, with crash-tolerant resume.
//!
//! The journal is the coordinator's second durable file next to the
//! result checkpoint. The checkpoint holds *what* was computed; the
//! journal holds *how it got there* — which lease carried each unit,
//! at which attempt, and whether an ingested record was fresh or a
//! duplicate of an earlier attempt. Resuming a crashed coordinator
//! restores the per-unit attempt counters from it (so reassigned
//! leases keep strictly increasing attempt numbers), and the
//! fault-injection suite audits it to prove that no unit's result was
//! accepted twice.
//!
//! The file format mirrors the checkpoint's durability contract: one
//! JSON object per line, each appended with a single `write_all` +
//! flush, a header line carrying the sweep fingerprint, and a loader
//! that tolerates (and drops) one partial trailing line.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

use reds_json::{from_str, Json};

use crate::protocol::small_uint;

/// Format tag of the journal's header line.
pub const JOURNAL_FORMAT: &str = "reds-fleet-journal-v1";

/// One journal line (after the header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEvent {
    /// A lease was granted to a worker.
    Grant {
        /// Lease id.
        lease: u64,
        /// Attempt number carried by the lease.
        attempt: u32,
        /// Worker address the lease went to.
        worker: String,
        /// `unit_key`s of the leased units.
        keys: Vec<String>,
    },
    /// A record arrived from a worker and was examined.
    Ingest {
        /// Lease that delivered the record.
        lease: u64,
        /// The record's attempt number.
        attempt: u32,
        /// The record's `unit_key`.
        key: String,
        /// `false`: first arrival, appended to the checkpoint.
        /// `true`: the unit was already ingested (an earlier attempt
        /// won); the record was discarded.
        duplicate: bool,
    },
    /// A lease was given up on (deadline passed, worker lost, or
    /// abort); its un-ingested units were requeued.
    Expire {
        /// The expired lease.
        lease: u64,
        /// Why ("deadline", "worker-lost", "abort").
        reason: String,
    },
}

/// Journal I/O or validation failure.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A fully-written line does not parse.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The journal belongs to a differently-configured sweep.
    FingerprintMismatch {
        /// Fingerprint of the resuming run.
        expected: String,
        /// Fingerprint in the journal header.
        found: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "journal I/O error: {e}"),
            Self::Corrupt { line, message } => {
                write!(f, "corrupt journal at line {line}: {message}")
            }
            Self::FingerprintMismatch { expected, found } => write!(
                f,
                "journal fingerprint {found} does not match this sweep ({expected})"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn event_to_json(ev: &JournalEvent) -> Json {
    match ev {
        JournalEvent::Grant {
            lease,
            attempt,
            worker,
            keys,
        } => Json::obj([
            ("ev", Json::str("grant")),
            ("lease", Json::num(*lease as f64)),
            ("attempt", Json::num(*attempt as f64)),
            ("worker", Json::str(worker.clone())),
            ("keys", Json::arr(keys.iter().map(|k| Json::str(k.clone())))),
        ]),
        JournalEvent::Ingest {
            lease,
            attempt,
            key,
            duplicate,
        } => Json::obj([
            ("ev", Json::str("ingest")),
            ("lease", Json::num(*lease as f64)),
            ("attempt", Json::num(*attempt as f64)),
            ("key", Json::str(key.clone())),
            ("duplicate", Json::Bool(*duplicate)),
        ]),
        JournalEvent::Expire { lease, reason } => Json::obj([
            ("ev", Json::str("expire")),
            ("lease", Json::num(*lease as f64)),
            ("reason", Json::str(reason.clone())),
        ]),
    }
}

fn event_from_json(doc: &Json) -> Result<JournalEvent, String> {
    let ev = doc.get("ev").and_then(Json::as_str).ok_or("missing 'ev'")?;
    let uint = |key: &str| {
        doc.get(key)
            .and_then(small_uint)
            .ok_or_else(|| format!("missing '{key}'"))
    };
    let text = |key: &str| {
        doc.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing '{key}'"))
    };
    Ok(match ev {
        "grant" => JournalEvent::Grant {
            lease: uint("lease")?,
            attempt: uint("attempt")? as u32,
            worker: text("worker")?,
            keys: doc
                .get("keys")
                .and_then(Json::as_array)
                .ok_or("missing 'keys'")?
                .iter()
                .map(|k| k.as_str().map(str::to_string).ok_or("bad key".to_string()))
                .collect::<Result<_, _>>()?,
        },
        "ingest" => JournalEvent::Ingest {
            lease: uint("lease")?,
            attempt: uint("attempt")? as u32,
            key: text("key")?,
            duplicate: doc
                .get("duplicate")
                .and_then(Json::as_bool)
                .ok_or("missing 'duplicate'")?,
        },
        "expire" => JournalEvent::Expire {
            lease: uint("lease")?,
            reason: text("reason")?,
        },
        other => return Err(format!("unknown event '{other}'")),
    })
}

/// The coordinator state a journal replay restores.
#[derive(Debug, Clone, Default)]
pub struct JournalState {
    /// Highest attempt granted so far, per `unit_key` — a resumed
    /// coordinator keeps attempt numbers strictly increasing.
    pub attempts: HashMap<String, u32>,
    /// The attempt whose record was accepted, per ingested `unit_key`.
    pub ingested: HashMap<String, u32>,
    /// Ingests that were discarded as duplicates.
    pub duplicates: usize,
    /// Highest lease id seen, so new leases stay unique after resume.
    pub max_lease: u64,
}

impl JournalState {
    /// Folds one event into the state (also used during replay).
    pub fn apply(&mut self, ev: &JournalEvent) {
        match ev {
            JournalEvent::Grant {
                lease,
                attempt,
                keys,
                ..
            } => {
                self.max_lease = self.max_lease.max(*lease);
                for k in keys {
                    let a = self.attempts.entry(k.clone()).or_insert(0);
                    *a = (*a).max(*attempt);
                }
            }
            JournalEvent::Ingest {
                attempt,
                key,
                duplicate,
                ..
            } => {
                if *duplicate {
                    self.duplicates += 1;
                } else {
                    self.ingested.insert(key.clone(), *attempt);
                }
            }
            JournalEvent::Expire { lease, .. } => {
                self.max_lease = self.max_lease.max(*lease);
            }
        }
    }
}

/// Parses a journal file: the header fingerprint, the replayed state,
/// and the raw event list (for audits). A partial trailing line — an
/// append interrupted by a crash — is dropped; any other malformed
/// line is an error.
pub fn load_journal(
    path: &Path,
) -> Result<(String, JournalState, Vec<JournalEvent>), JournalError> {
    let text = std::fs::read_to_string(path)?;
    let complete = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    let Some((first, rest)) = lines.split_first() else {
        return Err(JournalError::Corrupt {
            line: 1,
            message: "empty file".to_string(),
        });
    };
    let header = from_str(first).map_err(|e| JournalError::Corrupt {
        line: 1,
        message: e.to_string(),
    })?;
    if header.get("journal").and_then(Json::as_str) != Some(JOURNAL_FORMAT) {
        return Err(JournalError::Corrupt {
            line: 1,
            message: format!("header is not a {JOURNAL_FORMAT} header"),
        });
    }
    let fingerprint = header
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or(JournalError::Corrupt {
            line: 1,
            message: "header missing 'fingerprint'".to_string(),
        })?
        .to_string();
    let mut state = JournalState::default();
    let mut events = Vec::with_capacity(rest.len());
    for (i, line) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        let parsed = from_str(line)
            .map_err(|e| e.to_string())
            .and_then(|doc| event_from_json(&doc));
        match parsed {
            Ok(ev) => {
                state.apply(&ev);
                events.push(ev);
            }
            Err(message) => {
                if last && !complete {
                    break; // interrupted final append — recoverable
                }
                return Err(JournalError::Corrupt {
                    line: i + 2,
                    message,
                });
            }
        }
    }
    Ok((fingerprint, state, events))
}

/// Appends lease events durably, one line per event.
#[derive(Debug)]
pub struct LeaseJournal {
    file: File,
}

impl LeaseJournal {
    /// Creates (or truncates) the journal with a fresh header.
    pub fn create(path: &Path, fingerprint: &str) -> Result<Self, JournalError> {
        let mut file = File::create(path)?;
        let mut line = Json::obj([
            ("journal", Json::str(JOURNAL_FORMAT)),
            ("fingerprint", Json::str(fingerprint)),
        ])
        .to_string_compact();
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.flush()?;
        Ok(Self { file })
    }

    /// Reopens an interrupted journal: validates the fingerprint,
    /// rewrites the valid prefix via a temp-file rename (dropping a
    /// torn trailing line), and returns the writer plus the replayed
    /// state.
    pub fn resume(path: &Path, fingerprint: &str) -> Result<(Self, JournalState), JournalError> {
        let (found, state, events) = load_journal(path)?;
        if found != fingerprint {
            return Err(JournalError::FingerprintMismatch {
                expected: fingerprint.to_string(),
                found,
            });
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            let mut text = Json::obj([
                ("journal", Json::str(JOURNAL_FORMAT)),
                ("fingerprint", Json::str(fingerprint)),
            ])
            .to_string_compact();
            text.push('\n');
            for ev in &events {
                text.push_str(&event_to_json(ev).to_string_compact());
                text.push('\n');
            }
            f.write_all(text.as_bytes())?;
            f.flush()?;
        }
        std::fs::rename(&tmp, path)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok((Self { file }, state))
    }

    /// Appends one event as a single atomic line write.
    pub fn record(&mut self, ev: &JournalEvent) -> Result<(), JournalError> {
        let mut line = event_to_json(ev).to_string_compact();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("reds-journal-test-{}-{name}", std::process::id()))
    }

    fn sample_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::Grant {
                lease: 1,
                attempt: 1,
                worker: "127.0.0.1:9".to_string(),
                keys: vec!["fp/P/0".to_string(), "fp/P/1".to_string()],
            },
            JournalEvent::Ingest {
                lease: 1,
                attempt: 1,
                key: "fp/P/0".to_string(),
                duplicate: false,
            },
            JournalEvent::Expire {
                lease: 1,
                reason: "deadline".to_string(),
            },
            JournalEvent::Grant {
                lease: 2,
                attempt: 2,
                worker: "127.0.0.1:10".to_string(),
                keys: vec!["fp/P/1".to_string()],
            },
            JournalEvent::Ingest {
                lease: 2,
                attempt: 2,
                key: "fp/P/1".to_string(),
                duplicate: false,
            },
            JournalEvent::Ingest {
                lease: 1,
                attempt: 1,
                key: "fp/P/1".to_string(),
                duplicate: true,
            },
        ]
    }

    #[test]
    fn journal_round_trips_and_replays_state() {
        let path = tmp_path("roundtrip.jsonl");
        let mut j = LeaseJournal::create(&path, "cafe").expect("create");
        for ev in sample_events() {
            j.record(&ev).expect("record");
        }
        drop(j);
        let (fp, state, events) = load_journal(&path).expect("load");
        assert_eq!(fp, "cafe");
        assert_eq!(events, sample_events());
        assert_eq!(state.max_lease, 2);
        assert_eq!(state.attempts.get("fp/P/0"), Some(&1));
        assert_eq!(state.attempts.get("fp/P/1"), Some(&2));
        assert_eq!(state.ingested.get("fp/P/0"), Some(&1));
        assert_eq!(state.ingested.get("fp/P/1"), Some(&2));
        assert_eq!(state.duplicates, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_resume_rewrites_it() {
        let path = tmp_path("torn.jsonl");
        let mut j = LeaseJournal::create(&path, "cafe").expect("create");
        j.record(&sample_events()[0]).expect("record");
        drop(j);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"ev\":\"ingest\",\"lease\":1,");
        std::fs::write(&path, &text).unwrap();

        let (_, state, events) = load_journal(&path).expect("tolerates the tail");
        assert_eq!(events.len(), 1);
        assert_eq!(state.duplicates, 0);

        let (mut j, state) = LeaseJournal::resume(&path, "cafe").expect("resume");
        assert_eq!(state.max_lease, 1);
        j.record(&sample_events()[1]).expect("append after resume");
        drop(j);
        let (_, _, events) = load_journal(&path).expect("reload");
        assert_eq!(events.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_a_foreign_fingerprint_and_corrupt_interiors() {
        let path = tmp_path("foreign.jsonl");
        LeaseJournal::create(&path, "cafe").expect("create");
        assert!(matches!(
            LeaseJournal::resume(&path, "beef"),
            Err(JournalError::FingerprintMismatch { .. })
        ));
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("not json\n{\"ev\":\"expire\",\"lease\":1,\"reason\":\"x\"}\n");
        std::fs::write(&path, &text).unwrap();
        assert!(matches!(
            load_journal(&path),
            Err(JournalError::Corrupt { line: 2, .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
