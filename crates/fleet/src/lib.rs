//! `reds-fleet`: fault-tolerant distributed execution of REDS
//! evaluation sweeps.
//!
//! The monolithic benchmark harness (`reds-bench`) enumerates a sweep
//! into deterministic [`WorkUnit`](reds_eval::WorkUnit)s whose results
//! are bit-identical regardless of where, when, or how many times they
//! execute. This crate exploits that determinism to spread a sweep
//! across unreliable machines without ever risking the report:
//!
//! - [`worker`] — a small TCP server that executes leased unit batches
//!   and serves results incrementally (cursor-polled, so every request
//!   is idempotent).
//! - [`coordinator`] — [`run_fleet`](coordinator::run_fleet) leases
//!   batches to workers, heartbeats via polls, reaps expired leases
//!   back into the queue, ingests results first-wins through the PR 2
//!   checkpoint, and records every grant/ingest/expiry in a durable
//!   [`journal`] so a crashed coordinator resumes exactly.
//! - [`backoff`] — seeded full-jitter exponential backoff used for
//!   every retry schedule.
//! - [`protocol`] — the NDJSON request/reply frames, built on
//!   [`reds_serve::wire`].
//! - [`proxy`] — a deterministic fault-injection proxy (drop /
//!   duplicate / delay / truncate, per seeded plan) used by the tier-1
//!   fault suite to prove the merged report stays byte-identical to a
//!   monolithic run under adversarial networks.

#![warn(missing_docs)]

pub mod backoff;
pub mod coordinator;
pub mod journal;
pub mod protocol;
pub mod proxy;
pub mod worker;

pub use backoff::Backoff;
pub use coordinator::{run_fleet, shutdown_workers, FleetConfig, FleetError, FleetOutcome};
pub use journal::{load_journal, JournalError, JournalEvent, JournalState, LeaseJournal};
pub use protocol::{FleetErrorCode, FleetRequest, HelloReply, PollReply, PROTO_VERSION};
pub use proxy::{FaultAction, FaultPlan, FaultProxy, FaultStats};
pub use worker::{serve_worker, UnitExecutor, WorkerConfig, WorkerHandle};
