//! The fleet wire protocol: NDJSON frames between a sweep coordinator
//! and its workers.
//!
//! Frames reuse the serving layer's transport (`reds_serve::wire`) and
//! response envelope (`{"id":…,"ok":…,"result"/"error":…}`), with a
//! fleet-specific command set:
//!
//! * `fleet_hello` — handshake: protocol version and sweep fingerprint
//!   must match, and the worker reports its active lease (if any) so a
//!   reconnecting coordinator can resume polling or abort a stray one.
//! * `fleet_grant` — hands the worker a *lease*: a batch of
//!   [`WorkUnit`]s, the attempt number, the owning spec fingerprint,
//!   and the coordinator's deadline. Re-granting the same lease id is
//!   idempotent, so a lost response is safe to retry.
//! * `fleet_poll` — cursor-based fetch of the lease's completed
//!   records. Every poll doubles as a heartbeat (the coordinator
//!   extends the lease deadline on success), and because the cursor
//!   names the resume point, a duplicated or re-sent poll can never
//!   double-deliver a record.
//! * `fleet_abort` — discards a lease the coordinator no longer wants.
//! * `fleet_shutdown` — stops the worker process.
//!
//! Every request carries a client-chosen `id` which the response
//! echoes; a coordinator that re-sends after a timeout skips stale
//! frames (lower ids) until its own answer arrives, which makes the
//! whole protocol safe under dropped, delayed, and duplicated frames.

use reds_eval::checkpoint::{record_from_json, record_to_json, unit_from_json, unit_to_json};
use reds_eval::{UnitRecord, WorkUnit};
use reds_json::Json;

/// Version of the fleet protocol; a mismatch fails the handshake.
pub const PROTO_VERSION: u32 = 1;

/// Upper bound on one fleet frame. Lease grants carry whole unit
/// batches and polls whole record batches, so this is roomier than the
/// serving default — but still finite, so a corrupt peer cannot
/// balloon memory.
pub const MAX_FLEET_FRAME_BYTES: usize = 64 << 20;

/// Machine-readable error codes of the fleet protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetErrorCode {
    /// The frame was not valid JSON or not a valid command.
    Parse,
    /// The command was well-formed but semantically invalid.
    BadRequest,
    /// Handshake fingerprint or protocol version does not match.
    FingerprintMismatch,
    /// The worker already runs a different, unfinished lease.
    Busy,
    /// The named lease is not (or no longer) held by the worker.
    UnknownLease,
    /// The worker failed internally (executor error, panic).
    Internal,
}

impl FleetErrorCode {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Parse => "parse",
            Self::BadRequest => "bad_request",
            Self::FingerprintMismatch => "fingerprint_mismatch",
            Self::Busy => "busy",
            Self::UnknownLease => "unknown_lease",
            Self::Internal => "internal",
        }
    }

    /// Inverse of [`FleetErrorCode::as_str`].
    pub fn from_wire(token: &str) -> Option<Self> {
        Some(match token {
            "parse" => Self::Parse,
            "bad_request" => Self::BadRequest,
            "fingerprint_mismatch" => Self::FingerprintMismatch,
            "busy" => Self::Busy,
            "unknown_lease" => Self::UnknownLease,
            "internal" => Self::Internal,
            _ => return None,
        })
    }
}

/// A parsed coordinator → worker request.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetRequest {
    /// Handshake.
    Hello {
        /// Request id.
        id: u64,
        /// Sweep fingerprint the coordinator executes.
        fingerprint: String,
        /// Coordinator's protocol version.
        proto: u32,
    },
    /// Lease a batch of units to the worker.
    Grant {
        /// Request id.
        id: u64,
        /// Lease id (coordinator-unique, monotonic).
        lease: u64,
        /// Attempt number recorded into every produced record.
        attempt: u32,
        /// Fingerprint of the spec every unit in the batch belongs to.
        spec: String,
        /// The units to execute.
        units: Vec<WorkUnit>,
        /// Coordinator-side lease TTL in milliseconds (informational;
        /// the coordinator enforces it).
        deadline_ms: u64,
    },
    /// Fetch completed records of a lease from `cursor` on.
    Poll {
        /// Request id.
        id: u64,
        /// Lease id.
        lease: u64,
        /// Number of records the coordinator has already ingested.
        cursor: usize,
    },
    /// Discard a lease.
    Abort {
        /// Request id.
        id: u64,
        /// Lease id.
        lease: u64,
    },
    /// Stop the worker process.
    Shutdown {
        /// Request id.
        id: u64,
    },
}

impl FleetRequest {
    /// The request's id.
    pub fn id(&self) -> u64 {
        match self {
            Self::Hello { id, .. }
            | Self::Grant { id, .. }
            | Self::Poll { id, .. }
            | Self::Abort { id, .. }
            | Self::Shutdown { id } => *id,
        }
    }

    /// Wire form of the request.
    pub fn to_json(&self) -> Json {
        match self {
            Self::Hello {
                id,
                fingerprint,
                proto,
            } => Json::obj([
                ("id", Json::num(*id as f64)),
                ("cmd", Json::str("fleet_hello")),
                ("fingerprint", Json::str(fingerprint.clone())),
                ("proto", Json::num(*proto as f64)),
            ]),
            Self::Grant {
                id,
                lease,
                attempt,
                spec,
                units,
                deadline_ms,
            } => Json::obj([
                ("id", Json::num(*id as f64)),
                ("cmd", Json::str("fleet_grant")),
                ("lease", Json::num(*lease as f64)),
                ("attempt", Json::num(*attempt as f64)),
                ("spec", Json::str(spec.clone())),
                ("units", Json::arr(units.iter().map(unit_to_json))),
                ("deadline_ms", Json::num(*deadline_ms as f64)),
            ]),
            Self::Poll { id, lease, cursor } => Json::obj([
                ("id", Json::num(*id as f64)),
                ("cmd", Json::str("fleet_poll")),
                ("lease", Json::num(*lease as f64)),
                ("cursor", Json::num(*cursor as f64)),
            ]),
            Self::Abort { id, lease } => Json::obj([
                ("id", Json::num(*id as f64)),
                ("cmd", Json::str("fleet_abort")),
                ("lease", Json::num(*lease as f64)),
            ]),
            Self::Shutdown { id } => Json::obj([
                ("id", Json::num(*id as f64)),
                ("cmd", Json::str("fleet_shutdown")),
            ]),
        }
    }

    /// Parses a request frame. On failure returns the best-effort id
    /// (0 when even that is unreadable) plus code and message, ready
    /// for [`error_response`].
    pub fn from_json(doc: &Json) -> Result<Self, (u64, FleetErrorCode, String)> {
        let id = doc.get("id").and_then(small_uint).unwrap_or(0);
        let fail = |code, msg: String| Err((id, code, msg));
        let Some(cmd) = doc.get("cmd").and_then(Json::as_str) else {
            return fail(FleetErrorCode::Parse, "missing 'cmd'".to_string());
        };
        let uint = |key: &str| -> Result<u64, (u64, FleetErrorCode, String)> {
            doc.get(key).and_then(small_uint).ok_or((
                id,
                FleetErrorCode::BadRequest,
                format!("missing '{key}'"),
            ))
        };
        match cmd {
            "fleet_hello" => {
                let fingerprint = doc
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .ok_or((
                        id,
                        FleetErrorCode::BadRequest,
                        "missing 'fingerprint'".to_string(),
                    ))?
                    .to_string();
                Ok(Self::Hello {
                    id,
                    fingerprint,
                    proto: uint("proto")? as u32,
                })
            }
            "fleet_grant" => {
                let spec = doc
                    .get("spec")
                    .and_then(Json::as_str)
                    .ok_or((id, FleetErrorCode::BadRequest, "missing 'spec'".to_string()))?
                    .to_string();
                let raw_units = doc.get("units").and_then(Json::as_array).ok_or((
                    id,
                    FleetErrorCode::BadRequest,
                    "missing 'units'".to_string(),
                ))?;
                let mut units = Vec::with_capacity(raw_units.len());
                for u in raw_units {
                    units.push(
                        unit_from_json(u).map_err(|e| {
                            (id, FleetErrorCode::BadRequest, format!("bad unit: {e}"))
                        })?,
                    );
                }
                if units.is_empty() {
                    return fail(FleetErrorCode::BadRequest, "empty lease".to_string());
                }
                Ok(Self::Grant {
                    id,
                    lease: uint("lease")?,
                    attempt: uint("attempt")? as u32,
                    spec,
                    units,
                    deadline_ms: uint("deadline_ms")?,
                })
            }
            "fleet_poll" => Ok(Self::Poll {
                id,
                lease: uint("lease")?,
                cursor: uint("cursor")? as usize,
            }),
            "fleet_abort" => Ok(Self::Abort {
                id,
                lease: uint("lease")?,
            }),
            "fleet_shutdown" => Ok(Self::Shutdown { id }),
            other => fail(FleetErrorCode::Parse, format!("unknown command '{other}'")),
        }
    }
}

/// A non-negative integer that fits losslessly in `f64`.
pub fn small_uint(v: &Json) -> Option<u64> {
    let f = v.as_f64()?;
    (f >= 0.0 && f.fract() == 0.0 && f <= (1u64 << 53) as f64).then_some(f as u64)
}

/// A success envelope.
pub fn ok_response(id: u64, result: Json) -> Json {
    Json::obj([
        ("id", Json::num(id as f64)),
        ("ok", Json::Bool(true)),
        ("result", result),
    ])
}

/// An error envelope.
pub fn error_response(id: u64, code: FleetErrorCode, message: impl Into<String>) -> Json {
    Json::obj([
        ("id", Json::num(id as f64)),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([
                ("code", Json::str(code.as_str())),
                ("message", Json::str(message.into())),
            ]),
        ),
    ])
}

/// The worker's `fleet_hello` result payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloReply {
    /// Stable per-process worker identity.
    pub worker: String,
    /// Worker's protocol version.
    pub proto: u32,
    /// The lease the worker is still holding, if any, with its attempt
    /// and whether execution has finished.
    pub active_lease: Option<(u64, u32, bool)>,
}

impl HelloReply {
    /// Wire form.
    pub fn to_json(&self) -> Json {
        let (lease, attempt, done) = match self.active_lease {
            Some((l, a, d)) => (Json::num(l as f64), Json::num(a as f64), Json::Bool(d)),
            None => (Json::Null, Json::Null, Json::Bool(false)),
        };
        Json::obj([
            ("worker", Json::str(self.worker.clone())),
            ("proto", Json::num(self.proto as f64)),
            ("lease", lease),
            ("attempt", attempt),
            ("done", done),
        ])
    }

    /// Inverse of [`HelloReply::to_json`].
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let worker = doc
            .get("worker")
            .and_then(Json::as_str)
            .ok_or("hello reply missing 'worker'")?
            .to_string();
        let proto = doc
            .get("proto")
            .and_then(small_uint)
            .ok_or("hello reply missing 'proto'")? as u32;
        let active_lease = match doc.get("lease") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let lease = small_uint(v).ok_or("hello reply: bad 'lease'")?;
                let attempt = doc
                    .get("attempt")
                    .and_then(small_uint)
                    .ok_or("hello reply: bad 'attempt'")? as u32;
                let done = doc
                    .get("done")
                    .and_then(Json::as_bool)
                    .ok_or("hello reply: bad 'done'")?;
                Some((lease, attempt, done))
            }
        };
        Ok(Self {
            worker,
            proto,
            active_lease,
        })
    }
}

/// The worker's `fleet_poll` result payload.
#[derive(Debug, Clone, PartialEq)]
pub struct PollReply {
    /// The polled lease.
    pub lease: u64,
    /// Units executed so far under this lease.
    pub executed: usize,
    /// `true` once every unit of the lease has a record.
    pub done: bool,
    /// The cursor this batch starts at (echo of the request).
    pub base: usize,
    /// Records from `base` on.
    pub records: Vec<UnitRecord>,
}

impl PollReply {
    /// Wire form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("lease", Json::num(self.lease as f64)),
            ("executed", Json::num(self.executed as f64)),
            ("done", Json::Bool(self.done)),
            ("base", Json::num(self.base as f64)),
            (
                "records",
                Json::arr(self.records.iter().map(record_to_json)),
            ),
        ])
    }

    /// Inverse of [`PollReply::to_json`].
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let uint = |key: &str| {
            doc.get(key)
                .and_then(small_uint)
                .ok_or_else(|| format!("poll reply missing '{key}'"))
        };
        let raw = doc
            .get("records")
            .and_then(Json::as_array)
            .ok_or("poll reply missing 'records'")?;
        let mut records = Vec::with_capacity(raw.len());
        for r in raw {
            records.push(record_from_json(r).map_err(|e| format!("poll reply: bad record: {e}"))?);
        }
        Ok(Self {
            lease: uint("lease")?,
            executed: uint("executed")? as usize,
            done: doc
                .get("done")
                .and_then(Json::as_bool)
                .ok_or("poll reply missing 'done'")?,
            base: uint("base")? as usize,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(rep: usize) -> WorkUnit {
        WorkUnit {
            function: "2".to_string(),
            n: 100,
            method: "P".to_string(),
            method_index: 0,
            rep,
            rep_seed: u64::MAX - rep as u64,
            method_seed: 77 + rep as u64,
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            FleetRequest::Hello {
                id: 1,
                fingerprint: "cafe".to_string(),
                proto: PROTO_VERSION,
            },
            FleetRequest::Grant {
                id: 2,
                lease: 7,
                attempt: 3,
                spec: "beef".to_string(),
                units: vec![unit(0), unit(1)],
                deadline_ms: 30_000,
            },
            FleetRequest::Poll {
                id: 3,
                lease: 7,
                cursor: 1,
            },
            FleetRequest::Abort { id: 4, lease: 7 },
            FleetRequest::Shutdown { id: 5 },
        ];
        for r in requests {
            let parsed = FleetRequest::from_json(&r.to_json()).expect("parses");
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn bad_requests_carry_the_id_and_a_code() {
        let (id, code, _) = FleetRequest::from_json(
            &reds_json::from_str("{\"id\":9,\"cmd\":\"fleet_poll\"}").unwrap(),
        )
        .unwrap_err();
        assert_eq!(id, 9);
        assert_eq!(code, FleetErrorCode::BadRequest);
        let (id, code, _) =
            FleetRequest::from_json(&reds_json::from_str("{\"cmd\":\"zap\"}").unwrap())
                .unwrap_err();
        assert_eq!(id, 0);
        assert_eq!(code, FleetErrorCode::Parse);
        // An empty lease is rejected before reaching the worker state.
        let (_, code, msg) = FleetRequest::from_json(
            &reds_json::from_str(
                "{\"id\":1,\"cmd\":\"fleet_grant\",\"lease\":1,\"attempt\":1,\
                 \"spec\":\"x\",\"units\":[],\"deadline_ms\":5}",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert_eq!(code, FleetErrorCode::BadRequest);
        assert!(msg.contains("empty"), "{msg}");
    }

    #[test]
    fn hello_and_poll_replies_round_trip() {
        for reply in [
            HelloReply {
                worker: "w-1".to_string(),
                proto: 1,
                active_lease: None,
            },
            HelloReply {
                worker: "w-2".to_string(),
                proto: 1,
                active_lease: Some((42, 2, true)),
            },
        ] {
            assert_eq!(HelloReply::from_json(&reply.to_json()).unwrap(), reply);
        }
        let poll = PollReply {
            lease: 42,
            executed: 2,
            done: false,
            base: 1,
            records: Vec::new(),
        };
        assert_eq!(PollReply::from_json(&poll.to_json()).unwrap(), poll);
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            FleetErrorCode::Parse,
            FleetErrorCode::BadRequest,
            FleetErrorCode::FingerprintMismatch,
            FleetErrorCode::Busy,
            FleetErrorCode::UnknownLease,
            FleetErrorCode::Internal,
        ] {
            assert_eq!(FleetErrorCode::from_wire(code.as_str()), Some(code));
        }
        assert_eq!(FleetErrorCode::from_wire("nope"), None);
    }
}
