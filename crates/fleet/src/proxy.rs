//! Deterministic fault injection for the fleet protocol.
//!
//! [`FaultProxy`] sits between the coordinator and one worker and
//! mangles traffic at *frame* granularity (one NDJSON line = one
//! frame): it can pass, drop, duplicate, delay, or truncate-and-cut
//! any frame in either direction, following a seeded [`FaultPlan`]
//! consumed as a global per-direction sequence that persists across
//! reconnections. Because the plan is data, a failing test names a
//! seed and replays the exact same mutilation.
//!
//! Truncation models a torn TCP stream: the proxy forwards a prefix of
//! the frame's bytes and then severs both sides of the bridge, which
//! exercises the coordinator's reconnect path and the worker's
//! torn-frame handling at once.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What to do with one forwarded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Forward the frame unchanged.
    Pass,
    /// Swallow the frame entirely.
    Drop,
    /// Forward the frame twice back to back.
    Duplicate,
    /// Hold the frame for this many milliseconds, then forward it.
    DelayMs(u64),
    /// Forward only the first `n` bytes, then cut the bridge in both
    /// directions (torn frame + connection loss).
    Truncate(usize),
}

/// A per-direction script of frame actions. Frames beyond the end of
/// a script pass through untouched.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Actions applied to frames flowing coordinator → worker.
    pub to_worker: Vec<FaultAction>,
    /// Actions applied to frames flowing worker → coordinator.
    pub to_coordinator: Vec<FaultAction>,
}

impl FaultPlan {
    /// A plan that forwards everything untouched.
    pub fn clean() -> Self {
        Self::default()
    }

    /// A seeded random plan: each of the first `frames` frames in each
    /// direction draws an action, faulty with probability
    /// `fault_rate`. Faults are drawn from drop / duplicate / delay /
    /// truncate with equal weight; delays stay small (≤ 40 ms) and
    /// truncations keep a short prefix, so seeded suites stay fast.
    pub fn seeded(seed: u64, frames: usize, fault_rate: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let direction = |rng: &mut StdRng| -> Vec<FaultAction> {
            (0..frames)
                .map(|_| {
                    if rng.gen_range(0.0..1.0) >= fault_rate {
                        return FaultAction::Pass;
                    }
                    match rng.gen_range(0..4u32) {
                        0 => FaultAction::Drop,
                        1 => FaultAction::Duplicate,
                        2 => FaultAction::DelayMs(rng.gen_range(1..=40)),
                        _ => FaultAction::Truncate(rng.gen_range(1..=24)),
                    }
                })
                .collect()
        };
        let to_worker = direction(&mut rng);
        let to_coordinator = direction(&mut rng);
        Self {
            to_worker,
            to_coordinator,
        }
    }
}

/// Counters of what the proxy actually did, across every connection
/// it bridged.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Frames forwarded unchanged (includes beyond-plan frames).
    pub passed: AtomicU64,
    /// Frames swallowed.
    pub dropped: AtomicU64,
    /// Frames sent twice.
    pub duplicated: AtomicU64,
    /// Frames delayed before forwarding.
    pub delayed: AtomicU64,
    /// Frames truncated (each also cut the bridge).
    pub truncated: AtomicU64,
}

struct Script {
    actions: Vec<FaultAction>,
    /// Global frame index for this direction — shared by every bridge
    /// this proxy ever builds, so the plan is consumed exactly once.
    next: Mutex<usize>,
}

impl Script {
    fn take(&self) -> FaultAction {
        let mut next = self.next.lock().expect("script lock");
        let action = self
            .actions
            .get(*next)
            .copied()
            .unwrap_or(FaultAction::Pass);
        *next += 1;
        action
    }
}

struct ProxyShared {
    upstream: SocketAddr,
    stop: AtomicBool,
    to_worker: Script,
    to_coordinator: Script,
    stats: FaultStats,
}

/// A TCP proxy that perturbs NDJSON frames per a [`FaultPlan`].
pub struct FaultProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Read slice used by proxy pumps so they notice the stop flag.
const PUMP_SLICE: Duration = Duration::from_millis(50);

impl FaultProxy {
    /// Starts a proxy on an ephemeral local port bridging to
    /// `upstream` (a worker address) under `plan`.
    pub fn start(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            upstream,
            stop: AtomicBool::new(false),
            to_worker: Script {
                actions: plan.to_worker,
                next: Mutex::new(0),
            },
            to_coordinator: Script {
                actions: plan.to_coordinator,
                next: Mutex::new(0),
            },
            stats: FaultStats::default(),
        });
        let accept_shared = Arc::clone(&shared);
        listener.set_nonblocking(true)?;
        let accept_thread = std::thread::spawn(move || {
            let mut bridges: Vec<JoinHandle<()>> = Vec::new();
            while !accept_shared.stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((downstream, _)) => {
                        let bridge_shared = Arc::clone(&accept_shared);
                        bridges.push(std::thread::spawn(move || {
                            bridge(downstream, bridge_shared);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
                bridges.retain(|h| !h.is_finished());
            }
            for handle in bridges {
                let _ = handle.join();
            }
        });
        Ok(Self {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the coordinator should dial instead of the worker.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What the proxy has done so far.
    pub fn stats(&self) -> &FaultStats {
        &self.shared.stats
    }

    /// Stops accepting and tears down existing bridges.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bridges one downstream (coordinator-side) connection to a fresh
/// upstream (worker-side) connection, pumping frames both ways until
/// either side closes, a truncation cuts the bridge, or the proxy
/// stops.
fn bridge(downstream: TcpStream, shared: Arc<ProxyShared>) {
    let Ok(upstream) = TcpStream::connect_timeout(&shared.upstream, Duration::from_secs(5)) else {
        let _ = downstream.shutdown(Shutdown::Both);
        return;
    };
    downstream.set_nodelay(true).ok();
    upstream.set_nodelay(true).ok();
    let (Ok(down_read), Ok(up_read)) = (downstream.try_clone(), upstream.try_clone()) else {
        return;
    };
    let cut = Arc::new(AtomicBool::new(false));

    let fwd_shared = Arc::clone(&shared);
    let fwd_cut = Arc::clone(&cut);
    let fwd_peer = downstream.try_clone().ok();
    let forward = std::thread::spawn(move || {
        pump(
            down_read,
            upstream,
            fwd_peer,
            |s| &s.to_worker,
            fwd_shared,
            fwd_cut,
        );
    });
    let back_peer = up_read.try_clone().ok();
    pump(
        up_read,
        downstream,
        back_peer,
        |s| &s.to_coordinator,
        Arc::clone(&shared),
        cut,
    );
    let _ = forward.join();
}

/// Reads newline-delimited frames from `from`, applies this
/// direction's script, and writes to `to`. `peer` is the opposite
/// direction's write side, severed on truncation.
fn pump(
    from: TcpStream,
    mut to: TcpStream,
    peer: Option<TcpStream>,
    script: impl Fn(&ProxyShared) -> &Script,
    shared: Arc<ProxyShared>,
    cut: Arc<AtomicBool>,
) {
    from.set_read_timeout(Some(PUMP_SLICE)).ok();
    let mut reader = BufReader::new(from);
    let mut frame: Vec<u8> = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) || cut.load(Ordering::SeqCst) {
            break;
        }
        frame.clear();
        match read_frame_bytes(&mut reader, &mut frame, &shared, &cut) {
            ReadOutcome::Frame => {}
            ReadOutcome::Closed => break,
        }
        match script(&shared).take() {
            FaultAction::Pass => {
                shared.stats.passed.fetch_add(1, Ordering::Relaxed);
                if to.write_all(&frame).and_then(|()| to.flush()).is_err() {
                    break;
                }
            }
            FaultAction::Drop => {
                shared.stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Duplicate => {
                shared.stats.duplicated.fetch_add(1, Ordering::Relaxed);
                let twice = [&frame[..], &frame[..]].concat();
                if to.write_all(&twice).and_then(|()| to.flush()).is_err() {
                    break;
                }
            }
            FaultAction::DelayMs(ms) => {
                shared.stats.delayed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(ms));
                if to.write_all(&frame).and_then(|()| to.flush()).is_err() {
                    break;
                }
            }
            FaultAction::Truncate(n) => {
                shared.stats.truncated.fetch_add(1, Ordering::Relaxed);
                let prefix = &frame[..n.min(frame.len())];
                let _ = to.write_all(prefix).and_then(|()| to.flush());
                cut.store(true, Ordering::SeqCst);
                let _ = to.shutdown(Shutdown::Both);
                if let Some(p) = &peer {
                    let _ = p.shutdown(Shutdown::Both);
                }
                break;
            }
        }
    }
    let _ = to.shutdown(Shutdown::Both);
}

enum ReadOutcome {
    Frame,
    Closed,
}

/// Accumulates one newline-terminated frame, tolerating read-timeout
/// slices so the stop/cut flags stay responsive mid-frame.
fn read_frame_bytes(
    reader: &mut BufReader<TcpStream>,
    frame: &mut Vec<u8>,
    shared: &ProxyShared,
    cut: &AtomicBool,
) -> ReadOutcome {
    loop {
        if shared.stop.load(Ordering::SeqCst) || cut.load(Ordering::SeqCst) {
            return ReadOutcome::Closed;
        }
        // fill_buf + manual newline scan: read_until would lose bytes
        // already consumed when a timeout slice interrupts it.
        let buf = match reader.fill_buf() {
            Ok([]) => return ReadOutcome::Closed,
            Ok(buf) => buf,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return ReadOutcome::Closed,
        };
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            frame.extend_from_slice(&buf[..=pos]);
            reader.consume(pos + 1);
            return ReadOutcome::Frame;
        }
        let n = buf.len();
        frame.extend_from_slice(buf);
        reader.consume(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_upstream() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            // Serve a handful of connections, echoing lines back.
            for _ in 0..8 {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {
                            if writer.write_all(line.as_bytes()).is_err() {
                                break;
                            }
                            let _ = writer.flush();
                        }
                    }
                }
            }
        });
        (addr, handle)
    }

    fn roundtrip(proxy_addr: SocketAddr, msg: &str) -> Option<String> {
        let stream = TcpStream::connect(proxy_addr).ok()?;
        stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
        let mut writer = stream.try_clone().ok()?;
        writer.write_all(msg.as_bytes()).ok()?;
        writer.flush().ok()?;
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        match reader.read_line(&mut reply) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(reply),
        }
    }

    #[test]
    fn clean_plan_passes_frames_through() {
        let (upstream, _echo) = echo_upstream();
        let proxy = FaultProxy::start(upstream, FaultPlan::clean()).expect("proxy");
        let reply = roundtrip(proxy.addr(), "{\"id\":1}\n").expect("echo reply");
        assert_eq!(reply, "{\"id\":1}\n");
        assert!(proxy.stats().passed.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn drop_swallows_and_duplicate_doubles() {
        let (upstream, _echo) = echo_upstream();
        // First request frame dropped; second passed; echo replies
        // duplicated.
        let plan = FaultPlan {
            to_worker: vec![FaultAction::Drop, FaultAction::Pass],
            to_coordinator: vec![FaultAction::Duplicate],
        };
        let proxy = FaultProxy::start(upstream, plan).expect("proxy");
        let stream = TcpStream::connect(proxy.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let mut writer = stream.try_clone().expect("clone");
        writer.write_all(b"one\n").expect("write");
        writer.write_all(b"two\n").expect("write");
        writer.flush().expect("flush");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line, "two\n", "'one' was dropped");
        line.clear();
        reader.read_line(&mut line).expect("read dup");
        assert_eq!(line, "two\n", "reply was duplicated");
        assert_eq!(proxy.stats().dropped.load(Ordering::Relaxed), 1);
        assert_eq!(proxy.stats().duplicated.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn truncate_cuts_the_bridge_after_a_prefix() {
        let (upstream, _echo) = echo_upstream();
        let plan = FaultPlan {
            to_worker: vec![FaultAction::Pass],
            to_coordinator: vec![FaultAction::Truncate(3)],
        };
        let proxy = FaultProxy::start(upstream, plan).expect("proxy");
        let stream = TcpStream::connect(proxy.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let mut writer = stream.try_clone().expect("clone");
        writer.write_all(b"hello-world\n").expect("write");
        writer.flush().expect("flush");
        let mut reader = BufReader::new(stream);
        let mut got = Vec::new();
        use std::io::Read as _;
        let _ = reader.read_to_end(&mut got); // until the cut closes us
        assert_eq!(got, b"hel", "only the prefix crossed");
        assert_eq!(proxy.stats().truncated.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 64, 0.3);
        let b = FaultPlan::seeded(42, 64, 0.3);
        assert_eq!(a.to_worker, b.to_worker);
        assert_eq!(a.to_coordinator, b.to_coordinator);
        let c = FaultPlan::seeded(43, 64, 0.3);
        assert_ne!(
            (a.to_worker, a.to_coordinator),
            (c.to_worker, c.to_coordinator),
            "different seeds diverge"
        );
    }
}
