//! The fleet worker: a TCP server that executes leased [`WorkUnit`]s.
//!
//! A worker holds at most one lease at a time. `fleet_grant` starts a
//! background execution thread that runs the lease's units **in
//! order**, appending one [`UnitRecord`] per finished unit to an
//! in-memory log; `fleet_poll` serves that log from a caller-supplied
//! cursor, so a coordinator that lost a reply (or reconnected through
//! a flaky link) simply re-polls from its last durable cursor and can
//! never double-ingest. Results are bit-identical to in-process
//! execution because every unit carries its own stable seeds — the
//! worker adds provenance (the lease's attempt number), never payload.
//!
//! For the fault suite, [`WorkerConfig::die_after_units`] makes the
//! worker deterministically "crash" at a unit boundary: the Nth
//! executed unit's record is discarded (as if the process died before
//! writing it), the listener closes, and every connection drops —
//! exactly what a killed process looks like to the coordinator.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use reds_eval::checkpoint::unit_key;
use reds_eval::{Evaluation, UnitRecord, WorkUnit};
use reds_json::Json;
use reds_serve::wire::{self, Frame, Wait};

use crate::protocol::{
    error_response, ok_response, FleetErrorCode, FleetRequest, HelloReply, PollReply,
    MAX_FLEET_FRAME_BYTES, PROTO_VERSION,
};

/// How often blocked reads and the execution loop wake up to check
/// the stop/died flags.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Executes one work unit. The fleet crate is deliberately ignorant
/// of *what* a sweep is — the bench layer implements this over its
/// `Sweep`, validating that the unit's derived seeds match the spec
/// the fingerprint names before running it.
pub trait UnitExecutor: Send + Sync + 'static {
    /// Fingerprint of the sweep this executor can serve; the handshake
    /// rejects coordinators running anything else.
    fn fingerprint(&self) -> String;

    /// Runs one unit of the spec with fingerprint `spec` and returns
    /// its evaluation, or a message when the unit is foreign.
    fn execute(&self, spec: &str, unit: &WorkUnit) -> Result<Evaluation, String>;
}

/// Worker tuning and fault hooks.
#[derive(Debug, Clone, Default)]
pub struct WorkerConfig {
    /// Deterministic crash for the fault suite: after executing this
    /// many units (across all leases), discard that unit's record and
    /// die — close the listener and every connection without replies.
    pub die_after_units: Option<usize>,
}

/// One granted lease and its execution progress.
struct LeaseRun {
    id: u64,
    attempt: u32,
    n_units: usize,
    /// Completed records, in unit order; `fleet_poll` serves suffixes.
    records: Arc<Mutex<Vec<UnitRecord>>>,
    /// Set when the lease is aborted; the execution thread stops
    /// appending at the next unit boundary.
    cancelled: Arc<AtomicBool>,
}

impl LeaseRun {
    fn executed(&self) -> usize {
        self.records.lock().expect("records lock").len()
    }

    fn done(&self) -> bool {
        self.executed() == self.n_units
    }
}

struct WorkerState {
    lease: Option<LeaseRun>,
}

/// The flags the execution thread needs to trip a deterministic
/// death from outside the connection handlers.
struct DeathSwitch {
    stop: AtomicBool,
    died: AtomicBool,
    /// Units left before the configured deterministic death;
    /// `usize::MAX` means never.
    die_countdown: AtomicUsize,
    addr: SocketAddr,
}

impl DeathSwitch {
    /// Trips the deterministic crash: no replies, no listener, every
    /// read loop drains out within a poll interval.
    fn die(&self) {
        self.died.store(true, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        self.nudge_listener();
    }

    fn nudge_listener(&self) {
        let _ = TcpStream::connect_timeout(&self.addr, POLL_INTERVAL);
    }
}

struct Shared<E> {
    executor: Arc<E>,
    worker_id: String,
    state: Mutex<WorkerState>,
    switch: Arc<DeathSwitch>,
}

impl<E: UnitExecutor> Shared<E> {
    fn handle(&self, request: FleetRequest) -> (Json, bool) {
        match request {
            FleetRequest::Hello {
                id,
                fingerprint,
                proto,
            } => {
                if proto != PROTO_VERSION {
                    return (
                        error_response(
                            id,
                            FleetErrorCode::FingerprintMismatch,
                            format!("worker speaks proto {PROTO_VERSION}, coordinator {proto}"),
                        ),
                        false,
                    );
                }
                let ours = self.executor.fingerprint();
                if fingerprint != ours {
                    return (
                        error_response(
                            id,
                            FleetErrorCode::FingerprintMismatch,
                            format!(
                                "worker executes sweep {ours}, coordinator asked for {fingerprint}"
                            ),
                        ),
                        false,
                    );
                }
                let state = self.state.lock().expect("state lock");
                let active_lease = state
                    .lease
                    .as_ref()
                    .map(|run| (run.id, run.attempt, run.done()));
                let reply = HelloReply {
                    worker: self.worker_id.clone(),
                    proto: PROTO_VERSION,
                    active_lease,
                };
                (ok_response(id, reply.to_json()), false)
            }
            FleetRequest::Grant {
                id,
                lease,
                attempt,
                spec,
                units,
                deadline_ms: _,
            } => {
                let mut state = self.state.lock().expect("state lock");
                if let Some(run) = &state.lease {
                    if run.id == lease {
                        // Idempotent re-grant: the first grant's reply
                        // was lost; acknowledge without restarting.
                        let accepted = run.n_units;
                        return (
                            ok_response(
                                id,
                                Json::obj([
                                    ("lease", Json::num(lease as f64)),
                                    ("accepted", Json::num(accepted as f64)),
                                ]),
                            ),
                            false,
                        );
                    }
                    if !run.done() && !run.cancelled.load(Ordering::SeqCst) {
                        return (
                            error_response(
                                id,
                                FleetErrorCode::Busy,
                                format!("lease {} still executing", run.id),
                            ),
                            false,
                        );
                    }
                }
                let accepted = units.len();
                let run = self.start_lease(lease, attempt, spec, units);
                state.lease = Some(run);
                (
                    ok_response(
                        id,
                        Json::obj([
                            ("lease", Json::num(lease as f64)),
                            ("accepted", Json::num(accepted as f64)),
                        ]),
                    ),
                    false,
                )
            }
            FleetRequest::Poll { id, lease, cursor } => {
                let state = self.state.lock().expect("state lock");
                let Some(run) = state.lease.as_ref().filter(|r| r.id == lease) else {
                    return (
                        error_response(
                            id,
                            FleetErrorCode::UnknownLease,
                            format!("lease {lease} is not held here"),
                        ),
                        false,
                    );
                };
                let records = run.records.lock().expect("records lock");
                let reply = PollReply {
                    lease,
                    executed: records.len(),
                    done: records.len() == run.n_units,
                    base: cursor,
                    records: records.get(cursor..).unwrap_or(&[]).to_vec(),
                };
                (ok_response(id, reply.to_json()), false)
            }
            FleetRequest::Abort { id, lease } => {
                let mut state = self.state.lock().expect("state lock");
                match state.lease.as_ref().filter(|r| r.id == lease) {
                    Some(run) => {
                        run.cancelled.store(true, Ordering::SeqCst);
                        state.lease = None;
                        (
                            ok_response(
                                id,
                                Json::obj([
                                    ("lease", Json::num(lease as f64)),
                                    ("aborted", Json::Bool(true)),
                                ]),
                            ),
                            false,
                        )
                    }
                    // Idempotent: aborting a lease we no longer hold
                    // is exactly what the coordinator wanted.
                    None => (
                        ok_response(
                            id,
                            Json::obj([
                                ("lease", Json::num(lease as f64)),
                                ("aborted", Json::Bool(false)),
                            ]),
                        ),
                        false,
                    ),
                }
            }
            FleetRequest::Shutdown { id } => (
                ok_response(id, Json::obj([("shutdown", Json::Bool(true))])),
                true,
            ),
        }
    }

    fn start_lease(
        &self,
        lease: u64,
        attempt: u32,
        spec: String,
        units: Vec<WorkUnit>,
    ) -> LeaseRun {
        let records = Arc::new(Mutex::new(Vec::with_capacity(units.len())));
        let cancelled = Arc::new(AtomicBool::new(false));
        let run = LeaseRun {
            id: lease,
            attempt,
            n_units: units.len(),
            records: Arc::clone(&records),
            cancelled: Arc::clone(&cancelled),
        };
        let executor = Arc::clone(&self.executor);
        let switch = Arc::clone(&self.switch);
        let worker_id = self.worker_id.clone();
        std::thread::spawn(move || {
            for unit in units {
                if cancelled.load(Ordering::SeqCst) || switch.died.load(Ordering::SeqCst) {
                    return;
                }
                let eval = match executor.execute(&spec, &unit) {
                    Ok(eval) => eval,
                    Err(message) => {
                        // A foreign unit poisons the lease: cancel it so
                        // `done` never comes true and the coordinator's
                        // deadline reassigns the units elsewhere.
                        eprintln!(
                            "worker {worker_id}: unit {} rejected: {message}",
                            unit_key(&spec, &unit)
                        );
                        cancelled.store(true, Ordering::SeqCst);
                        return;
                    }
                };
                // Deterministic crash at a unit boundary: this unit's
                // work happened but its record is never published —
                // the coordinator must reassign and a later attempt's
                // bit-identical record must win.
                let countdown = switch.die_countdown.fetch_sub(1, Ordering::SeqCst);
                if countdown != usize::MAX && countdown <= 1 {
                    switch.die();
                    return;
                }
                records.lock().expect("records lock").push(UnitRecord {
                    spec: spec.clone(),
                    unit,
                    eval,
                    attempt,
                });
            }
        });
        run
    }
}

/// A running worker; keep the handle to control and join it.
pub struct WorkerHandle<E: UnitExecutor> {
    addr: SocketAddr,
    shared: Arc<Shared<E>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl<E: UnitExecutor> WorkerHandle<E> {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once the deterministic crash hook has fired.
    pub fn died(&self) -> bool {
        self.shared.switch.died.load(Ordering::SeqCst)
    }

    /// Stops the worker and joins its threads.
    pub fn shutdown(mut self) {
        self.shared.switch.stop.store(true, Ordering::SeqCst);
        self.shared.switch.nudge_listener();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Waits for the worker to stop on its own (a coordinator's
    /// `fleet_shutdown`, or the death hook); returns `true` when the
    /// deterministic crash hook is what stopped it.
    pub fn join(mut self) -> bool {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shared.switch.died.load(Ordering::SeqCst)
    }
}

fn handle_connection<E: UnitExecutor>(stream: TcpStream, shared: Arc<Shared<E>>) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    stream.set_nodelay(true).ok();
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(clone);
    let mut writer = stream;
    loop {
        if shared.switch.stop.load(Ordering::SeqCst) {
            return; // a died worker drops the socket with no goodbye
        }
        let mut wait = || -> Wait {
            if shared.switch.stop.load(Ordering::SeqCst) {
                Wait::GiveUp
            } else {
                Wait::Retry
            }
        };
        let frame = match wire::read_frame(&mut reader, MAX_FLEET_FRAME_BYTES, &mut wait) {
            Ok(Frame::Line(line)) => line,
            Ok(Frame::TooLarge) => {
                let _ = wire::write_frame(
                    &mut writer,
                    &error_response(0, FleetErrorCode::Parse, "frame too large"),
                );
                return;
            }
            Ok(Frame::Eof) | Ok(Frame::TimedOut) | Err(_) => return,
        };
        let text = String::from_utf8_lossy(&frame);
        if text.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = match reds_json::from_str(&text) {
            Err(e) => (
                error_response(0, FleetErrorCode::Parse, e.to_string()),
                false,
            ),
            Ok(doc) => match FleetRequest::from_json(&doc) {
                Err((id, code, message)) => (error_response(id, code, message), false),
                Ok(request) => shared.handle(request),
            },
        };
        if shared.switch.died.load(Ordering::SeqCst) {
            return; // death raced the request: no reply, like a kill
        }
        if wire::write_frame(&mut writer, &response).is_err() {
            return;
        }
        if shutdown {
            shared.switch.stop.store(true, Ordering::SeqCst);
            shared.switch.nudge_listener();
            return;
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves the fleet protocol
/// with `executor` until shutdown or the configured death.
pub fn serve_worker<E: UnitExecutor>(
    executor: E,
    addr: &str,
    config: WorkerConfig,
) -> std::io::Result<WorkerHandle<E>> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        executor: Arc::new(executor),
        // Stable per-process identity; ports are ephemeral but unique
        // while the worker lives, which is all the coordinator needs.
        worker_id: format!("w-{}", addr.port()),
        state: Mutex::new(WorkerState { lease: None }),
        switch: Arc::new(DeathSwitch {
            stop: AtomicBool::new(false),
            died: AtomicBool::new(false),
            die_countdown: AtomicUsize::new(config.die_after_units.unwrap_or(usize::MAX)),
            addr,
        }),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in listener.incoming() {
            if accept_shared.switch.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let conn_shared = Arc::clone(&accept_shared);
            workers.push(std::thread::spawn(move || {
                handle_connection(stream, conn_shared);
            }));
            workers.retain(|h| !h.is_finished());
        }
        drop(listener); // a died worker refuses new connections
        for h in workers {
            let _ = h.join();
        }
    });
    Ok(WorkerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}
