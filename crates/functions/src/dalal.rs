//! The "noisy" stochastic test functions 1–8 and 102 of Dalal et al.
//! (2013), *Improving scenario discovery using orthogonal rotations*.
//!
//! Each function defines `P(y = 1 | x)` over `[0,1]^5` (function 102 over
//! `[0,1]^15`) with only the first two (nine for 102) inputs active. The
//! original paper describes the family — low-dimensional regions of
//! elevated probability embedded in noise — but not every coefficient;
//! the boundary shapes below are documented substitutions spanning the
//! same spectrum (axis-aligned box, oblique halfspace, rotated square,
//! triangle, disc, two disjoint boxes, sinusoidal boundary, L-shape) with
//! positive shares calibrated against Table 1.

/// Probability inside the interesting region for the 2-D functions.
const P_IN: f64 = 0.95;
/// Background probability outside the region.
const P_OUT: f64 = 0.05;

#[inline]
fn mix(inside: bool) -> f64 {
    if inside {
        P_IN
    } else {
        P_OUT
    }
}

/// Function 1: oblique halfspace `x1 + x2 > 1` (share ≈ 47.6 %).
pub fn dalal1(x: &[f64]) -> f64 {
    mix(x[0] + x[1] > 1.027)
}

/// Function 2: axis-aligned box corner `x1 > 0.6 ∧ x2 > 0.35`
/// (share ≈ 25.7 %).
pub fn dalal2(x: &[f64]) -> f64 {
    mix(x[0] > 0.6 && x[1] > 0.425)
}

/// Function 3: small square rotated 45°, centred at (0.5, 0.5)
/// (share ≈ 8.2 %).
pub fn dalal3(x: &[f64]) -> f64 {
    let u = (x[0] - 0.5).abs() + (x[1] - 0.5).abs();
    mix(u < 0.1334)
}

/// Function 4: triangle below the diagonal of the lower-left quadrant
/// (share ≈ 18 %).
pub fn dalal4(x: &[f64]) -> f64 {
    mix(x[0] + x[1] < 0.5375)
}

/// Function 5: disc of radius 0.15 centred at (0.4, 0.6) (share ≈ 8 %).
pub fn dalal5(x: &[f64]) -> f64 {
    let d2 = (x[0] - 0.4).powi(2) + (x[1] - 0.6).powi(2);
    mix(d2 < 0.0106)
}

/// Function 6: two disjoint axis-aligned boxes (share ≈ 8.1 %).
pub fn dalal6(x: &[f64]) -> f64 {
    let in_a = x[0] < 0.13 && x[1] < 0.13;
    let in_b = x[0] > 0.87 && x[1] > 0.87;
    mix(in_a || in_b)
}

/// Function 7: region above a sinusoidal boundary (share ≈ 35 %).
pub fn dalal7(x: &[f64]) -> f64 {
    let boundary = 0.667 + 0.25 * (std::f64::consts::TAU * x[0]).sin();
    mix(x[1] > boundary)
}

/// Function 8: L-shaped region (share ≈ 10.9 %).
pub fn dalal8(x: &[f64]) -> f64 {
    let in_l = (x[0] < 0.25 && x[1] < 0.15) || (x[0] < 0.10 && x[1] < 0.43);
    mix(in_l)
}

/// Function 102: 15 inputs, nine of which act through an oblique
/// halfspace `Σ_{j≤9} x_j > 4.05` (share ≈ 67.2 %).
pub fn dalal102(x: &[f64]) -> f64 {
    let s: f64 = x.iter().take(9).sum();
    mix(s > 4.05)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_are_valid() {
        let grid: Vec<[f64; 5]> = (0..11)
            .flat_map(|i| (0..11).map(move |j| [i as f64 / 10.0, j as f64 / 10.0, 0.5, 0.5, 0.5]))
            .collect();
        for x in &grid {
            for f in [
                dalal1 as fn(&[f64]) -> f64,
                dalal2,
                dalal3,
                dalal4,
                dalal5,
                dalal6,
                dalal7,
                dalal8,
            ] {
                let p = f(x);
                assert!(p == P_IN || p == P_OUT);
            }
        }
    }

    #[test]
    fn only_first_two_inputs_matter() {
        let a = [0.7, 0.7, 0.1, 0.1, 0.1];
        let b = [0.7, 0.7, 0.9, 0.9, 0.9];
        for f in [
            dalal1 as fn(&[f64]) -> f64,
            dalal2,
            dalal3,
            dalal4,
            dalal5,
            dalal6,
            dalal7,
            dalal8,
        ] {
            assert_eq!(f(&a), f(&b));
        }
    }

    #[test]
    fn region_memberships_match_geometry() {
        assert_eq!(dalal1(&[0.9, 0.9, 0.0, 0.0, 0.0]), P_IN);
        assert_eq!(dalal1(&[0.1, 0.1, 0.0, 0.0, 0.0]), P_OUT);
        assert_eq!(dalal3(&[0.5, 0.5, 0.0, 0.0, 0.0]), P_IN);
        assert_eq!(dalal3(&[0.9, 0.9, 0.0, 0.0, 0.0]), P_OUT);
        assert_eq!(dalal6(&[0.1, 0.1, 0.0, 0.0, 0.0]), P_IN);
        assert_eq!(dalal6(&[0.9, 0.9, 0.0, 0.0, 0.0]), P_IN);
        assert_eq!(dalal6(&[0.5, 0.5, 0.0, 0.0, 0.0]), P_OUT);
    }

    #[test]
    fn dalal102_uses_first_nine_inputs() {
        let mut lo = [0.3; 15];
        let hi = [0.6; 15];
        assert_eq!(dalal102(&lo), P_OUT);
        assert_eq!(dalal102(&hi), P_IN);
        // inputs 10..15 are inert
        lo[12] = 1.0;
        assert_eq!(dalal102(&lo), P_OUT);
    }
}
