//! Decentral Smart Grid Control (DSGC) simulator — Schäfer, Matthiae,
//! Timme & Witthaut, *New Journal of Physics* 17 (2015).
//!
//! The model couples rotating machines (one producer, three consumers in
//! a star topology) through the swing equation and adds a price-based
//! demand response: each node adapts its power proportionally to its own
//! frequency deviation measured `τ_j` seconds ago. The resulting
//! delay-differential system is
//!
//! ```text
//! θ̇_j = ω_j
//! ω̇_j = P_j − α ω_j − γ_j ω_j(t − τ_j) + Σ_k K_jk sin(θ_k − θ_j)
//! ```
//!
//! The grid is *stable* for a parameter combination when the frequency
//! deviations decay; large reaction delays `τ_j` or weak/strong price
//! elasticities `γ_j` destabilise it. The REDS paper uses this model with
//! 12 inputs and asks for the stability region (§8.3, "dsgc").
//!
//! Our 12 inputs are the four delays `τ_j ∈ [0.5, 6]`, the four
//! elasticities `γ_j ∈ [0.05, 1]`, the three consumer powers
//! `P_{1..3} ∈ [−2, −0.5]` (the producer supplies `P_0 = −ΣP_j`), and the
//! coupling strength `K ∈ [5, 15]` — parameter ranges following the UCI
//! "Electrical Grid Stability" data generated from this model, with the
//! delay range and damping calibrated so the stable share matches
//! Table 1 (≈ 50 % stable).
//!
//! The delayed term is handled by storing the full `ω` history on the
//! integration grid and interpolating linearly (history is zero before
//! `t = 0`), with classic RK4 for the non-delayed part.

/// Number of simulation inputs.
pub const DSGC_M: usize = 12;

/// Number of grid nodes (1 producer + 3 consumers).
const NODES: usize = 4;

/// Damping coefficient `α` (fixed, as in the UCI configuration).
const ALPHA: f64 = 0.4;

/// Integration step (s).
const DT: f64 = 0.02;

/// Simulation horizon (s).
const HORIZON: f64 = 40.0;

/// A grid frequency trajectory is "stable" when the maximal |ω| over the
/// final quarter of the horizon stays below this bound (rad/s).
const STABLE_BOUND: f64 = 0.1;

/// Physical parameters of one DSGC simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct DsgcParams {
    /// Reaction delays `τ_j` per node (s).
    pub tau: [f64; NODES],
    /// Price elasticities `γ_j` per node.
    pub gamma: [f64; NODES],
    /// Mechanical powers `P_j`; index 0 is the producer.
    pub power: [f64; NODES],
    /// Line coupling strength `K` between the producer and each consumer.
    pub coupling: f64,
}

impl DsgcParams {
    /// Decodes a point of the unit cube `[0,1]^12` into physical
    /// parameters (the sampling representation used by the experiments).
    ///
    /// Layout: `x[0..4]` = delays, `x[4..8]` = elasticities,
    /// `x[8..11]` = consumer powers, `x[11]` = coupling.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != DSGC_M`.
    pub fn from_unit(x: &[f64]) -> Self {
        assert_eq!(x.len(), DSGC_M, "dsgc expects {DSGC_M} inputs");
        let mut tau = [0.0; NODES];
        let mut gamma = [0.0; NODES];
        for j in 0..NODES {
            tau[j] = 0.5 + 5.5 * x[j];
            gamma[j] = 0.05 + 0.95 * x[4 + j];
        }
        let mut power = [0.0; NODES];
        for j in 1..NODES {
            power[j] = -2.0 + 1.5 * x[8 + j - 1];
        }
        power[0] = -(power[1] + power[2] + power[3]);
        let coupling = 5.0 + 10.0 * x[11];
        Self {
            tau,
            gamma,
            power,
            coupling,
        }
    }
}

/// State history of the integration: angles, frequencies, and the
/// frequency trace needed for the delayed feedback.
struct History {
    omega_trace: Vec<[f64; NODES]>,
}

impl History {
    /// Linear interpolation of `ω_j` at time `t` (zero before the start).
    fn omega_at(&self, t: f64, j: usize) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let pos = t / DT;
        let i0 = pos.floor() as usize;
        let frac = pos - i0 as f64;
        let last = self.omega_trace.len() - 1;
        let a = self.omega_trace[i0.min(last)][j];
        let b = self.omega_trace[(i0 + 1).min(last)][j];
        a + frac * (b - a)
    }
}

/// Right-hand side of the swing equations at time `t` for state
/// `(θ, ω)`, reading delayed frequencies from `hist`.
fn derivatives(
    p: &DsgcParams,
    theta: &[f64; NODES],
    omega: &[f64; NODES],
    t: f64,
    hist: &History,
) -> ([f64; NODES], [f64; NODES]) {
    let mut dtheta = [0.0; NODES];
    let mut domega = [0.0; NODES];
    for j in 0..NODES {
        dtheta[j] = omega[j];
        let delayed = hist.omega_at(t - p.tau[j], j);
        let mut acc = p.power[j] - ALPHA * omega[j] - p.gamma[j] * delayed;
        // Star topology: node 0 couples to every consumer.
        if j == 0 {
            for k in 1..NODES {
                acc += p.coupling * (theta[k] - theta[0]).sin();
            }
        } else {
            acc += p.coupling * (theta[0] - theta[j]).sin();
        }
        domega[j] = acc;
    }
    (dtheta, domega)
}

/// Fixed perturbation applied to the synchronous state: the stability
/// question is whether the grid returns to synchrony after a frequency
/// disturbance (Schäfer et al. study exactly this local stability).
const PERTURBATION: [f64; NODES] = [0.2, -0.15, 0.1, -0.2];

/// Integrates the DSGC delay-differential system from a perturbed
/// synchronous state and returns the maximal |ω| over the final quarter
/// of the horizon — the residual frequency deviation.
pub fn simulate_dsgc(p: &DsgcParams) -> f64 {
    let steps = (HORIZON / DT) as usize;
    // Synchronous fixed point of the star: ω = 0 and, per consumer j,
    // P_j + K sin(θ_0 − θ_j) = 0 ⇒ θ_j = −asin(−P_j / K) with θ_0 = 0.
    // |P_j| ≤ 2 < 5 ≤ K keeps the argument inside the principal branch.
    let mut theta = [0.0; NODES];
    #[allow(clippy::needless_range_loop)] // theta and power are parallel arrays
    for j in 1..NODES {
        theta[j] = (p.power[j] / p.coupling).asin();
    }
    let mut omega = PERTURBATION;
    let mut hist = History {
        omega_trace: Vec::with_capacity(steps + 1),
    };
    hist.omega_trace.push(omega);
    let tail_start = steps - steps / 4;
    let mut residual: f64 = 0.0;
    for step in 0..steps {
        let t = step as f64 * DT;
        // RK4 with the delayed term interpolated from the stored history.
        let (k1t, k1w) = derivatives(p, &theta, &omega, t, &hist);
        let (t2, w2) = advance(&theta, &omega, &k1t, &k1w, DT / 2.0);
        let (k2t, k2w) = derivatives(p, &t2, &w2, t + DT / 2.0, &hist);
        let (t3, w3) = advance(&theta, &omega, &k2t, &k2w, DT / 2.0);
        let (k3t, k3w) = derivatives(p, &t3, &w3, t + DT / 2.0, &hist);
        let (t4, w4) = advance(&theta, &omega, &k3t, &k3w, DT);
        let (k4t, k4w) = derivatives(p, &t4, &w4, t + DT, &hist);
        for j in 0..NODES {
            theta[j] += DT / 6.0 * (k1t[j] + 2.0 * k2t[j] + 2.0 * k3t[j] + k4t[j]);
            omega[j] += DT / 6.0 * (k1w[j] + 2.0 * k2w[j] + 2.0 * k3w[j] + k4w[j]);
        }
        // Divergence guard: declare instability early when frequencies blow up.
        if omega.iter().any(|w| !w.is_finite() || w.abs() > 50.0) {
            return f64::INFINITY;
        }
        hist.omega_trace.push(omega);
        if step >= tail_start {
            for w in &omega {
                residual = residual.max(w.abs());
            }
        }
    }
    residual
}

fn advance(
    theta: &[f64; NODES],
    omega: &[f64; NODES],
    dtheta: &[f64; NODES],
    domega: &[f64; NODES],
    h: f64,
) -> ([f64; NODES], [f64; NODES]) {
    let mut t = *theta;
    let mut w = *omega;
    for j in 0..NODES {
        t[j] += h * dtheta[j];
        w[j] += h * domega[j];
    }
    (t, w)
}

/// Raw output used by the benchmark registry: residual frequency
/// deviation minus the stability bound, so that `y = 1 ⇔ raw < 0`
/// (stable grid) with `thr = 0`.
pub fn dsgc_raw(x: &[f64]) -> f64 {
    let p = DsgcParams::from_unit(x);
    let residual = simulate_dsgc(&p);
    if residual.is_finite() {
        residual - STABLE_BOUND
    } else {
        f64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_reaction_is_stable() {
        // Short delays, moderate elasticity, light loads: stable grid.
        let x = [
            0.0, 0.0, 0.0, 0.0, // τ = 0.5 s
            0.3, 0.3, 0.3, 0.3, // γ ≈ 0.34
            0.8, 0.8, 0.8, // light consumption ≈ −0.8
            0.5, // K = 10
        ];
        assert!(dsgc_raw(&x) < 0.0, "expected stable: {}", dsgc_raw(&x));
    }

    #[test]
    fn slow_reaction_with_strong_response_is_unstable() {
        // Long delays and strong price response destabilise the grid
        // (the classic delayed-feedback resonance of Schäfer et al.).
        let x = [
            1.0, 1.0, 1.0, 1.0, // τ = 10 s
            1.0, 1.0, 1.0, 1.0, // γ = 1
            0.0, 0.0, 0.0, // heavy consumption = −2
            0.5,
        ];
        assert!(dsgc_raw(&x) > 0.0, "expected unstable: {}", dsgc_raw(&x));
    }

    #[test]
    fn power_balance_holds() {
        let p = DsgcParams::from_unit(&[0.5; 12]);
        let total: f64 = p.power.iter().sum();
        assert!(total.abs() < 1e-12);
        assert!(p.power[0] > 0.0, "producer generates");
    }

    #[test]
    fn parameter_decoding_covers_ranges() {
        let lo = DsgcParams::from_unit(&[0.0; 12]);
        let hi = DsgcParams::from_unit(&[1.0; 12]);
        assert!((lo.tau[0] - 0.5).abs() < 1e-12);
        assert!((hi.tau[0] - 6.0).abs() < 1e-12);
        assert!((lo.gamma[0] - 0.05).abs() < 1e-12);
        assert!((hi.gamma[0] - 1.0).abs() < 1e-12);
        assert!((lo.coupling - 5.0).abs() < 1e-12);
        assert!((hi.coupling - 15.0).abs() < 1e-12);
    }

    #[test]
    fn residual_is_deterministic() {
        let p = DsgcParams::from_unit(&[0.37; 12]);
        assert_eq!(simulate_dsgc(&p), simulate_dsgc(&p));
    }
}
