use rand::Rng;
use reds_data::{DataError, Dataset};

/// How a benchmark source maps a point to the binary output.
#[derive(Clone)]
pub enum FunctionKind {
    /// Deterministic raw output; `y = 1` iff `raw(x) < thr` (§8.3).
    Thresholded {
        /// Raw real-valued simulation output.
        raw: fn(&[f64]) -> f64,
        /// Binarization threshold (`thr` column of Table 1).
        thr: f64,
    },
    /// Stochastic simulation: the function *is* `P(y = 1 | x)`
    /// (the Dalal et al. "noisy" functions 1–8 and 102).
    Probabilistic {
        /// Conditional positive probability.
        prob: fn(&[f64]) -> f64,
    },
}

/// One data source of Table 1: a named function on `[0,1]^M` together
/// with its active-input set and binarization rule.
#[derive(Clone)]
pub struct BenchmarkFunction {
    name: &'static str,
    m: usize,
    active: &'static [usize],
    kind: FunctionKind,
}

impl BenchmarkFunction {
    /// Builds a function descriptor. `active` lists the zero-based input
    /// indices that influence the output (the `I` column of Table 1).
    pub const fn new(
        name: &'static str,
        m: usize,
        active: &'static [usize],
        kind: FunctionKind,
    ) -> Self {
        Self {
            name,
            m,
            active,
            kind,
        }
    }

    /// Function name as used throughout the paper ("morris", "dsgc", …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of inputs `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Zero-based indices of inputs that affect the output.
    pub fn active_inputs(&self) -> &'static [usize] {
        self.active
    }

    /// Number of active inputs (`I` of Table 1).
    pub fn n_active(&self) -> usize {
        self.active.len()
    }

    /// `true` when input `j` has no influence on the output — the ground
    /// truth behind the `#irrel` metric (§4).
    pub fn is_irrelevant(&self, j: usize) -> bool {
        !self.active.contains(&j)
    }

    /// `P(y = 1 | x)` — `0.0`/`1.0` for deterministic functions.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.m()`.
    pub fn prob_positive(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.m, "{}: wrong input dimension", self.name);
        match &self.kind {
            FunctionKind::Thresholded { raw, thr } => {
                if raw(x) < *thr {
                    1.0
                } else {
                    0.0
                }
            }
            FunctionKind::Probabilistic { prob } => prob(x).clamp(0.0, 1.0),
        }
    }

    /// Raw (pre-binarization) output for thresholded functions, or
    /// `P(y = 1 | x)` for probabilistic ones.
    pub fn raw(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.m, "{}: wrong input dimension", self.name);
        match &self.kind {
            FunctionKind::Thresholded { raw, .. } => raw(x),
            FunctionKind::Probabilistic { prob } => prob(x),
        }
    }

    /// One simulated binary label: deterministic threshold test, or a
    /// Bernoulli draw for stochastic functions.
    pub fn label(&self, x: &[f64], rng: &mut impl Rng) -> f64 {
        let p = self.prob_positive(x);
        // Deterministic outcomes skip the RNG draw so labeling a
        // deterministic function never consumes randomness.
        if p <= 0.0 {
            0.0
        } else if p >= 1.0 || rng.gen::<f64>() < p {
            1.0
        } else {
            0.0
        }
    }

    /// Labels a row-major design into a [`Dataset`] — the "run the
    /// simulations" step of scenario discovery.
    ///
    /// # Errors
    ///
    /// Returns a [`DataError`] when `points.len()` is not a multiple of
    /// `self.m()`.
    pub fn label_dataset(
        &self,
        points: Vec<f64>,
        rng: &mut impl Rng,
    ) -> Result<Dataset, DataError> {
        Dataset::from_fn(points, self.m, |x| self.label(x, rng))
    }

    /// Expected positive share under uniform inputs, estimated from `n`
    /// Monte-Carlo points (the "share" column of Table 1).
    pub fn estimate_share(&self, n: usize, rng: &mut impl Rng) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        let mut x = vec![0.0; self.m];
        for _ in 0..n {
            for v in &mut x {
                *v = rng.gen();
            }
            sum += self.prob_positive(&x);
        }
        sum / n as f64
    }
}

impl std::fmt::Debug for BenchmarkFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchmarkFunction")
            .field("name", &self.name)
            .field("m", &self.m)
            .field("active", &self.active)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn halfline(x: &[f64]) -> f64 {
        x[0]
    }

    fn coin(_: &[f64]) -> f64 {
        0.5
    }

    const DET: BenchmarkFunction = BenchmarkFunction::new(
        "det",
        2,
        &[0],
        FunctionKind::Thresholded {
            raw: halfline,
            thr: 0.5,
        },
    );
    const STO: BenchmarkFunction =
        BenchmarkFunction::new("sto", 1, &[0], FunctionKind::Probabilistic { prob: coin });

    #[test]
    fn deterministic_labeling_thresholds() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(DET.prob_positive(&[0.2, 0.9]), 1.0);
        assert_eq!(DET.prob_positive(&[0.7, 0.1]), 0.0);
        assert_eq!(DET.label(&[0.2, 0.9], &mut rng), 1.0);
    }

    #[test]
    fn stochastic_labeling_matches_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let pos: f64 = (0..n).map(|_| STO.label(&[0.3], &mut rng)).sum();
        let rate = pos / n as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn irrelevance_is_complement_of_active() {
        assert!(!DET.is_irrelevant(0));
        assert!(DET.is_irrelevant(1));
        assert_eq!(DET.n_active(), 1);
    }

    #[test]
    fn label_dataset_has_right_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = DET
            .label_dataset(vec![0.1, 0.5, 0.9, 0.5], &mut rng)
            .unwrap();
        assert_eq!(d.n(), 2);
        assert_eq!(d.labels(), &[1.0, 0.0]);
    }

    #[test]
    fn estimate_share_converges() {
        let mut rng = StdRng::seed_from_u64(3);
        let share = DET.estimate_share(20_000, &mut rng);
        assert!((share - 0.5).abs() < 0.02, "share {share}");
    }

    #[test]
    #[should_panic(expected = "wrong input dimension")]
    fn wrong_dimension_panics() {
        DET.prob_positive(&[0.1]);
    }
}
