//! The shallow-lake eutrophication model — the source of the paper's
//! "lake" third-party dataset (§8.3, citing Kwakkel's exploratory
//! modeling workbench).
//!
//! Phosphorus dynamics follow the classic Carpenter et al. recurrence
//!
//! ```text
//! X_{t+1} = X_t + a + X_t^q / (1 + X_t^q) − b·X_t + ε_t
//! ```
//!
//! with lognormal natural inflows `ε_t`. The lake *flips* into the
//! eutrophic state when phosphorus exceeds the critical level at which
//! recycling outpaces removal. Scenario discovery asks for the region of
//! the five uncertain inputs (`b`, `q`, inflow mean, inflow stdev,
//! discount factor `δ`; `δ` affects utility only, not the dynamics) in
//! which the lake flips.
//!
//! The paper uses the first 1000 rows of a published dataset; we
//! regenerate a fixed 1000-row dataset from the model with a pinned seed
//! — same size, same input semantics, same code path (a finite dataset
//! with no simulator available to the discovery algorithms).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::Dataset;
use reds_sampling::{latin_hypercube, standard_normal};

/// Number of inputs of the lake model.
pub const LAKE_M: usize = 5;

/// Number of rows of the regenerated dataset.
pub const LAKE_N: usize = 1000;

/// Simulation horizon (years).
const YEARS: usize = 100;

/// Constant anthropogenic phosphorus release policy.
const RELEASE: f64 = 0.02;

/// Uncertain parameters of one lake simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct LakeParams {
    /// Phosphorus removal rate `b ∈ [0.1, 0.45]`.
    pub b: f64,
    /// Recycling steepness `q ∈ [2, 4.5]`.
    pub q: f64,
    /// Mean of the natural inflow `∈ [0.01, 0.05]`.
    pub mean: f64,
    /// Standard deviation of the natural inflow `∈ [0.001, 0.005]`.
    pub stdev: f64,
    /// Utility discount factor `δ ∈ [0.93, 0.99]` (inert for pollution).
    pub delta: f64,
}

impl LakeParams {
    /// Decodes a unit-cube point into physical parameters.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != LAKE_M`.
    pub fn from_unit(x: &[f64]) -> Self {
        assert_eq!(x.len(), LAKE_M, "lake model expects {LAKE_M} inputs");
        Self {
            b: 0.1 + 0.35 * x[0],
            q: 2.0 + 2.5 * x[1],
            mean: 0.01 + 0.04 * x[2],
            stdev: 0.001 + 0.004 * x[3],
            delta: 0.93 + 0.06 * x[4],
        }
    }

    /// Critical phosphorus level: the largest fixed point of
    /// `x^q/(1+x^q) = b·x`, located by bisection on `(0.01, 4)`.
    pub fn critical_p(&self) -> f64 {
        // g(x) = x^q/(1+x^q) - b x; the unstable threshold is the middle
        // root; the flip is detected against it.
        let g = |x: f64| x.powf(self.q) / (1.0 + x.powf(self.q)) - self.b * x;
        // Scan for the first sign change after the origin.
        let mut prev = 0.05;
        let mut prev_v = g(prev);
        let mut x = prev + 0.01;
        while x < 4.0 {
            let v = g(x);
            if prev_v < 0.0 && v >= 0.0 {
                // bisect [prev, x]
                let (mut lo, mut hi) = (prev, x);
                for _ in 0..60 {
                    let mid = 0.5 * (lo + hi);
                    if g(mid) < 0.0 {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                return 0.5 * (lo + hi);
            }
            prev = x;
            prev_v = v;
            x += 0.01;
        }
        // No unstable root: removal dominates everywhere in range.
        f64::INFINITY
    }
}

/// Runs one stochastic lake trajectory and returns the maximal
/// phosphorus level reached.
pub fn simulate_lake(p: &LakeParams, rng: &mut impl Rng) -> f64 {
    // Lognormal inflow with the requested mean/stdev.
    let var_ratio = (p.stdev / p.mean).powi(2);
    let sigma2 = (1.0 + var_ratio).ln();
    let mu = p.mean.ln() - 0.5 * sigma2;
    let sigma = sigma2.sqrt();
    let mut x = 0.0f64;
    let mut max_p = 0.0f64;
    for _ in 0..YEARS {
        let inflow = (mu + sigma * standard_normal(rng)).exp();
        let recycling = if x > 0.0 {
            x.powf(p.q) / (1.0 + x.powf(p.q))
        } else {
            0.0
        };
        x = (x + RELEASE + recycling - p.b * x + inflow).max(0.0);
        max_p = max_p.max(x);
    }
    max_p
}

/// The fixed 1000-row "lake" dataset: LHS inputs, `y = 1` when the lake
/// flips (maximal phosphorus exceeds the critical level). Deterministic
/// across calls (pinned seed).
pub fn lake_dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(0x1A4E);
    let points = latin_hypercube(LAKE_N, LAKE_M, &mut rng);
    Dataset::from_fn(points, LAKE_M, |x| {
        let p = LakeParams::from_unit(x);
        let crit = p.critical_p();
        if simulate_lake(&p, &mut rng) > crit {
            1.0
        } else {
            0.0
        }
    })
    .expect("static lake dataset construction cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_deterministic_and_sized() {
        let a = lake_dataset();
        let b = lake_dataset();
        assert_eq!(a, b);
        assert_eq!(a.n(), LAKE_N);
        assert_eq!(a.m(), LAKE_M);
    }

    #[test]
    fn share_is_moderate() {
        // Table 1 reports 33.5 % interesting examples; the regenerated
        // dataset should be in the same regime (neither degenerate nor
        // majority-positive beyond ~0.5).
        let share = lake_dataset().pos_rate();
        assert!(
            (0.1..=0.6).contains(&share),
            "lake share {share} out of plausible range"
        );
    }

    #[test]
    fn strong_removal_rarely_flips() {
        let p = LakeParams {
            b: 0.45,
            q: 2.0,
            mean: 0.01,
            stdev: 0.001,
            delta: 0.97,
        };
        let crit = p.critical_p();
        let mut rng = StdRng::seed_from_u64(1);
        let flips = (0..50)
            .filter(|_| simulate_lake(&p, &mut rng) > crit)
            .count();
        assert!(flips <= 5, "{flips}/50 flips with strong removal");
    }

    #[test]
    fn weak_removal_with_strong_recycling_flips() {
        let p = LakeParams {
            b: 0.1,
            q: 4.5,
            mean: 0.05,
            stdev: 0.005,
            delta: 0.97,
        };
        let crit = p.critical_p();
        let mut rng = StdRng::seed_from_u64(2);
        let flips = (0..50)
            .filter(|_| simulate_lake(&p, &mut rng) > crit)
            .count();
        assert!(flips >= 45, "{flips}/50 flips with weak removal");
    }

    #[test]
    fn critical_p_is_positive_and_finite_for_typical_params() {
        let p = LakeParams::from_unit(&[0.5; 5]);
        let crit = p.critical_p();
        assert!(crit > 0.0);
    }
}
