//! The paper's data sources (Table 1): 33 benchmark functions, the DSGC
//! grid-stability simulator, and stand-ins for the third-party `TGL` and
//! `lake` datasets.
//!
//! Each source is a [`BenchmarkFunction`]: a map from a point in
//! `[0,1]^M` to either a deterministic raw output binarized by a
//! threshold (`y = 1` iff the raw output is below `thr`, §8.3) or, for
//! the "noisy" Dalal et al. functions, directly to `P(y = 1 | x)`.
//! Every function declares its set of *active* inputs, which grounds the
//! `#irrel` interpretability metric (§4).
//!
//! Where the original publication's constants are not reproducible from
//! the paper text, the implementation uses documented substitutions with
//! the same structure (active dimensionality, boundary shape, noise
//! level) and a positive share calibrated against Table 1 — see
//! DESIGN.md §3.

#![warn(missing_docs)]

mod dalal;
mod dsgc;
mod function;
mod lake;
mod registry;
mod surjanovic;
mod tgl;

pub use dsgc::{simulate_dsgc, DsgcParams, DSGC_M};
pub use function::{BenchmarkFunction, FunctionKind};
pub use lake::{lake_dataset, simulate_lake, LakeParams, LAKE_M, LAKE_N};
pub use registry::{all_functions, by_name, FUNCTION_NAMES};
pub use tgl::{tgl_dataset, TGL_M, TGL_N};
