//! The function registry: every data source of Table 1 by name.

use crate::dalal::*;
use crate::dsgc::dsgc_raw;
use crate::function::{BenchmarkFunction, FunctionKind};
use crate::surjanovic::*;

const A2: &[usize] = &[0, 1];
const A3: &[usize] = &[0, 1, 2];
const A4: &[usize] = &[0, 1, 2, 3];
const A5: &[usize] = &[0, 1, 2, 3, 4];
const A6: &[usize] = &[0, 1, 2, 3, 4, 5];
const A7: &[usize] = &[0, 1, 2, 3, 4, 5, 6];
const A8: &[usize] = &[0, 1, 2, 3, 4, 5, 6, 7];
const A9: &[usize] = &[0, 1, 2, 3, 4, 5, 6, 7, 8];
const A10: &[usize] = &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9];
const A12: &[usize] = &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
const A15: &[usize] = &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14];
const A20: &[usize] = &[
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19,
];
/// welchetal92: inputs 8 and 16 (1-based) are inert.
const WELCH_ACTIVE: &[usize] = &[
    0, 1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 12, 13, 14, 16, 17, 18, 19,
];
/// soblev99: input 20 (1-based) is inert.
const SOBLEV_ACTIVE: &[usize] = &[
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18,
];

const fn thresholded(
    name: &'static str,
    m: usize,
    active: &'static [usize],
    raw: fn(&[f64]) -> f64,
    thr: f64,
) -> BenchmarkFunction {
    BenchmarkFunction::new(name, m, active, FunctionKind::Thresholded { raw, thr })
}

const fn probabilistic(
    name: &'static str,
    m: usize,
    active: &'static [usize],
    prob: fn(&[f64]) -> f64,
) -> BenchmarkFunction {
    BenchmarkFunction::new(name, m, active, FunctionKind::Probabilistic { prob })
}

/// All 33 experiment functions, in Table 1 order.
pub const ALL_FUNCTIONS: [BenchmarkFunction; 33] = [
    probabilistic("1", 5, A2, dalal1),
    probabilistic("2", 5, A2, dalal2),
    probabilistic("3", 5, A2, dalal3),
    probabilistic("4", 5, A2, dalal4),
    probabilistic("5", 5, A2, dalal5),
    probabilistic("6", 5, A2, dalal6),
    probabilistic("7", 5, A2, dalal7),
    probabilistic("8", 5, A2, dalal8),
    probabilistic("102", 15, A9, dalal102),
    thresholded("borehole", 8, A8, borehole, 1000.0),
    thresholded("dsgc", 12, A12, dsgc_raw, 0.0),
    thresholded("ellipse", 15, A10, ellipse, 0.8),
    thresholded("hart3", 3, A3, hart3, -1.0),
    thresholded("hart4", 4, A4, hart4, -0.5),
    thresholded("hart6sc", 6, A6, hart6sc, 1.0),
    thresholded("ishigami", 3, A3, ishigami, 1.0),
    thresholded("linketal06dec", 10, A8, linketal06dec, 0.15),
    thresholded("linketal06simple", 10, A4, linketal06simple, 0.33),
    thresholded("linketal06sin", 10, A2, linketal06sin, 0.0),
    thresholded("loepetal13", 10, A7, loepetal13, 9.0),
    thresholded("moon10hd", 20, A20, moon10hd, 0.0),
    thresholded("moon10hdc1", 20, A5, moon10hdc1, 0.0),
    thresholded("moon10low", 3, A3, moon10low, 1.5),
    thresholded("morretal06", 30, A10, morretal06, -330.0),
    thresholded("morris", 20, A20, morris, 20.0),
    thresholded("oakoh04", 15, A15, oakoh04, 10.0),
    thresholded("otlcircuit", 6, A6, otlcircuit, 4.5),
    thresholded("piston", 7, A7, piston, 0.4),
    thresholded("soblev99", 20, SOBLEV_ACTIVE, soblev99, 2000.0),
    thresholded("sobol", 8, A8, sobol_g, 0.7),
    thresholded("welchetal92", 20, WELCH_ACTIVE, welchetal92, 0.0),
    thresholded("willetal06", 3, A2, willetal06, -1.0),
    thresholded("wingweight", 10, A10, wingweight, 250.0),
];

/// Names of all functions in Table 1 order.
pub const FUNCTION_NAMES: [&str; 33] = [
    "1",
    "2",
    "3",
    "4",
    "5",
    "6",
    "7",
    "8",
    "102",
    "borehole",
    "dsgc",
    "ellipse",
    "hart3",
    "hart4",
    "hart6sc",
    "ishigami",
    "linketal06dec",
    "linketal06simple",
    "linketal06sin",
    "loepetal13",
    "moon10hd",
    "moon10hdc1",
    "moon10low",
    "morretal06",
    "morris",
    "oakoh04",
    "otlcircuit",
    "piston",
    "soblev99",
    "sobol",
    "welchetal92",
    "willetal06",
    "wingweight",
];

/// All experiment functions in Table 1 order.
pub fn all_functions() -> &'static [BenchmarkFunction] {
    &ALL_FUNCTIONS
}

/// Looks up a function by its Table 1 name.
pub fn by_name(name: &str) -> Option<&'static BenchmarkFunction> {
    ALL_FUNCTIONS.iter().find(|f| f.name() == name)
}

impl BenchmarkFunction {
    /// Convenience alias for [`by_name`] usable through the facade crate.
    pub fn by_name(name: &str) -> Option<&'static BenchmarkFunction> {
        by_name(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_consistent() {
        assert_eq!(ALL_FUNCTIONS.len(), 33);
        for (f, &name) in ALL_FUNCTIONS.iter().zip(FUNCTION_NAMES.iter()) {
            assert_eq!(f.name(), name);
            assert!(f.n_active() <= f.m());
            assert!(f.active_inputs().iter().all(|&j| j < f.m()));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("morris").is_some());
        assert_eq!(by_name("morris").unwrap().m(), 20);
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn table1_dimensions_match() {
        // Spot-check the M column of Table 1.
        for (name, m) in [
            ("1", 5),
            ("102", 15),
            ("borehole", 8),
            ("dsgc", 12),
            ("ellipse", 15),
            ("hart3", 3),
            ("morretal06", 30),
            ("morris", 20),
            ("wingweight", 10),
        ] {
            assert_eq!(by_name(name).unwrap().m(), m, "{name}");
        }
    }

    #[test]
    fn table1_active_counts_match() {
        // Spot-check the I column of Table 1.
        for (name, i) in [
            ("1", 2),
            ("102", 9),
            ("linketal06dec", 8),
            ("linketal06simple", 4),
            ("linketal06sin", 2),
            ("loepetal13", 7),
            ("moon10hdc1", 5),
            ("morretal06", 10),
            ("soblev99", 19),
            ("welchetal92", 18),
            ("willetal06", 2),
        ] {
            assert_eq!(by_name(name).unwrap().n_active(), i, "{name}");
        }
    }

    #[test]
    fn every_function_evaluates_at_the_center() {
        for f in all_functions() {
            let x = vec![0.5; f.m()];
            let p = f.prob_positive(&x);
            assert!((0.0..=1.0).contains(&p), "{}: p = {p}", f.name());
        }
    }
}
