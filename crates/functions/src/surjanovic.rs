//! The metamodeling test functions of Table 1 taken from the Virtual
//! Library of Simulation Experiments (Surjanovic & Bingham) and the
//! sensitivity-analysis literature (Saltelli et al.).
//!
//! All functions take points in `[0,1]^M` and rescale internally to their
//! natural domains. Functions whose published coefficient tables are not
//! reproducible from the papers alone (`moon10*`, `morretal06`,
//! `oakoh04`, `soblev99`, `linketal06sin`, `willetal06`, `ellipse`) use
//! documented structural substitutions with the same active-input count
//! and a positive share calibrated against Table 1; see DESIGN.md §3.

use std::sync::OnceLock;

/// Linear rescale of a unit-interval coordinate to `[lo, hi]`.
#[inline]
fn lerp(u: f64, lo: f64, hi: f64) -> f64 {
    lo + u * (hi - lo)
}

// ---------------------------------------------------------------------
// Confidently reproduced physics / screening functions
// ---------------------------------------------------------------------

/// Borehole function: water flow rate through a borehole (m³/yr).
pub fn borehole(x: &[f64]) -> f64 {
    let rw = lerp(x[0], 0.05, 0.15);
    let r = lerp(x[1], 100.0, 50_000.0);
    let tu = lerp(x[2], 63_070.0, 115_600.0);
    let hu = lerp(x[3], 990.0, 1110.0);
    let tl = lerp(x[4], 63.1, 116.0);
    let hl = lerp(x[5], 700.0, 820.0);
    let l = lerp(x[6], 1120.0, 1680.0);
    let kw = lerp(x[7], 9855.0, 12_045.0);
    let ln_rrw = (r / rw).ln();
    let numerator = 2.0 * std::f64::consts::PI * tu * (hu - hl);
    let denominator = ln_rrw * (1.0 + 2.0 * l * tu / (ln_rrw * rw * rw * kw) + tu / tl);
    // Output scaled so the published threshold 1000 of Table 1 cuts the
    // same 30.9 % region (calibration constant 22.05 = 1000 / q_0.309).
    22.05 * numerator / denominator
}

/// OTL circuit function: midpoint voltage of an output-transformerless
/// push-pull circuit (V).
pub fn otlcircuit(x: &[f64]) -> f64 {
    let rb1 = lerp(x[0], 50.0, 150.0);
    let rb2 = lerp(x[1], 25.0, 70.0);
    let rf = lerp(x[2], 0.5, 3.0);
    let rc1 = lerp(x[3], 1.2, 2.5);
    let rc2 = lerp(x[4], 0.25, 1.2);
    let beta = lerp(x[5], 50.0, 300.0);
    let vb1 = 12.0 * rb2 / (rb1 + rb2);
    let denom = beta * (rc2 + 9.0) + rf;
    (vb1 + 0.74) * beta * (rc2 + 9.0) / denom
        + 11.35 * rf / denom
        + 0.74 * rf * beta * (rc2 + 9.0) / (denom * rc1)
}

/// Piston simulation function: cycle time of a piston within a cylinder (s).
pub fn piston(x: &[f64]) -> f64 {
    let m = lerp(x[0], 30.0, 60.0);
    let s = lerp(x[1], 0.005, 0.020);
    let v0 = lerp(x[2], 0.002, 0.010);
    let k = lerp(x[3], 1000.0, 5000.0);
    let p0 = lerp(x[4], 90_000.0, 110_000.0);
    let ta = lerp(x[5], 290.0, 296.0);
    let t0 = lerp(x[6], 340.0, 360.0);
    let a = p0 * s + 19.62 * m - k * v0 / s;
    let v = s / (2.0 * k) * ((a * a + 4.0 * k * p0 * v0 * ta / t0).sqrt() - a);
    2.0 * std::f64::consts::PI * (m / (k + s * s * p0 * v0 * ta / (t0 * v * v))).sqrt()
}

/// Wing weight function: weight of a light aircraft wing (lb).
pub fn wingweight(x: &[f64]) -> f64 {
    let sw = lerp(x[0], 150.0, 200.0);
    let wfw = lerp(x[1], 220.0, 300.0);
    let a = lerp(x[2], 6.0, 10.0);
    let lam_deg = lerp(x[3], -10.0, 10.0);
    let q = lerp(x[4], 16.0, 45.0);
    let lam = lerp(x[5], 0.5, 1.0);
    let tc = lerp(x[6], 0.08, 0.18);
    let nz = lerp(x[7], 2.5, 6.0);
    let wdg = lerp(x[8], 1700.0, 2500.0);
    let wp = lerp(x[9], 0.025, 0.08);
    let cos_l = (lam_deg.to_radians()).cos();
    0.036
        * sw.powf(0.758)
        * wfw.powf(0.0035)
        * (a / (cos_l * cos_l)).powf(0.6)
        * q.powf(0.006)
        * lam.powf(0.04)
        * (100.0 * tc / cos_l).powf(-0.3)
        * (nz * wdg).powf(0.49)
        + sw * wp
}

/// Ishigami function on `[-π, π]³`.
pub fn ishigami(x: &[f64]) -> f64 {
    let pi = std::f64::consts::PI;
    let x1 = lerp(x[0], -pi, pi);
    let x2 = lerp(x[1], -pi, pi);
    let x3 = lerp(x[2], -pi, pi);
    x1.sin() + 7.0 * x2.sin().powi(2) + 0.1 * x3.powi(4) * x1.sin()
}

/// Sobol g-function with `a = (0, 1, 4.5, 9, 99, 99, 99, 99)`.
pub fn sobol_g(x: &[f64]) -> f64 {
    const A: [f64; 8] = [0.0, 1.0, 4.5, 9.0, 99.0, 99.0, 99.0, 99.0];
    A.iter()
        .zip(x)
        .map(|(&a, &xi)| ((4.0 * xi - 2.0).abs() + a) / (1.0 + a))
        .product()
}

/// Welch et al. (1992) 20-dimensional screening function on `[-0.5, 0.5]^20`.
/// Inputs 8 and 16 (1-based) are inactive.
pub fn welchetal92(x: &[f64]) -> f64 {
    let z: Vec<f64> = x.iter().map(|&u| u - 0.5).collect();
    5.0 * z[11] / (1.0 + z[0]) + 5.0 * (z[3] - z[19]).powi(2) + z[4] + 40.0 * z[18].powi(3)
        - 5.0 * z[18]
        + 0.05 * z[1]
        + 0.08 * z[2]
        - 0.03 * z[5]
        + 0.03 * z[6]
        - 0.09 * z[8]
        - 0.01 * z[9]
        - 0.07 * z[10]
        + 0.25 * z[12] * z[12]
        - 0.04 * z[13]
        + 0.06 * z[14]
        - 0.01 * z[16]
        - 0.03 * z[17]
}

// ---------------------------------------------------------------------
// Hartmann family
// ---------------------------------------------------------------------

const HART_ALPHA: [f64; 4] = [1.0, 1.2, 3.0, 3.2];

const HART3_A: [[f64; 3]; 4] = [
    [3.0, 10.0, 30.0],
    [0.1, 10.0, 35.0],
    [3.0, 10.0, 30.0],
    [0.1, 10.0, 35.0],
];
const HART3_P: [[f64; 3]; 4] = [
    [0.3689, 0.1170, 0.2673],
    [0.4699, 0.4387, 0.7470],
    [0.1091, 0.8732, 0.5547],
    [0.0381, 0.5743, 0.8828],
];

const HART6_A: [[f64; 6]; 4] = [
    [10.0, 3.0, 17.0, 3.5, 1.7, 8.0],
    [0.05, 10.0, 17.0, 0.1, 8.0, 14.0],
    [3.0, 3.5, 1.7, 10.0, 17.0, 8.0],
    [17.0, 8.0, 0.05, 10.0, 0.1, 14.0],
];
const HART6_P: [[f64; 6]; 4] = [
    [0.1312, 0.1696, 0.5569, 0.0124, 0.8283, 0.5886],
    [0.2329, 0.4135, 0.8307, 0.3736, 0.1004, 0.9991],
    [0.2348, 0.1451, 0.3522, 0.2883, 0.3047, 0.6650],
    [0.4047, 0.8828, 0.8732, 0.5743, 0.1091, 0.0381],
];

fn hart_sum<const D: usize>(x: &[f64], a: &[[f64; D]; 4], p: &[[f64; D]; 4]) -> f64 {
    (0..4)
        .map(|i| {
            let e: f64 = (0..D).map(|j| a[i][j] * (x[j] - p[i][j]).powi(2)).sum();
            HART_ALPHA[i] * (-e).exp()
        })
        .sum()
}

/// Hartmann 3-dimensional function (negated exponential sum; min ≈ −3.86).
pub fn hart3(x: &[f64]) -> f64 {
    -hart_sum(x, &HART3_A, &HART3_P)
}

/// Hartmann 4-dimensional function, Picheny et al. rescaling of the 6-D
/// matrices truncated to four columns.
pub fn hart4(x: &[f64]) -> f64 {
    let a4: [[f64; 4]; 4] = core::array::from_fn(|i| core::array::from_fn(|j| HART6_A[i][j]));
    let p4: [[f64; 4]; 4] = core::array::from_fn(|i| core::array::from_fn(|j| HART6_P[i][j]));
    (1.1 - hart_sum(x, &a4, &p4)) / 0.839
}

/// Rescaled Hartmann 6-dimensional function (Picheny et al. 2013):
/// `(2.58 + hart6) / 1.94` where `hart6` is the negated exponential sum.
pub fn hart6sc(x: &[f64]) -> f64 {
    // The trailing factor calibrates the share at thr = 1 to Table 1.
    (2.58 - hart_sum(x, &HART6_A, &HART6_P)) / 1.94 * 0.874907
}

// ---------------------------------------------------------------------
// Linkletter et al. (2006) screening functions (10 inputs each)
// ---------------------------------------------------------------------

/// Linkletter "decreasing coefficients" function: geometric weight decay
/// over the first eight inputs.
pub fn linketal06dec(x: &[f64]) -> f64 {
    (0..8).map(|i| 0.2 / 2f64.powi(i as i32) * x[i]).sum()
}

/// Linkletter "simple" function: equal weights on the first four inputs.
pub fn linketal06simple(x: &[f64]) -> f64 {
    0.2 * (x[0] + x[1] + x[2] + x[3])
}

/// Linkletter "sine" variant (documented substitution): a dominant sine
/// in `x1` plus a linear drift in `x2`; the two active inputs and the
/// calibrated positive share match Table 1.
pub fn linketal06sin(x: &[f64]) -> f64 {
    0.2 * (std::f64::consts::TAU * x[0]).sin() + 0.22 * x[1] + 0.00706
}

/// Loeppky, Sacks & Welch (2013) function: seven active inputs with
/// strongly unequal linear weights and three pairwise interactions.
pub fn loepetal13(x: &[f64]) -> f64 {
    6.0 * x[0]
        + 4.0 * x[1]
        + 5.5 * x[2]
        + 3.0 * x[0] * x[1]
        + 2.2 * x[0] * x[2]
        + 1.4 * x[1] * x[2]
        + x[3]
        + 0.5 * x[4]
        + 0.2 * x[5]
        + 0.1 * x[6]
}

// ---------------------------------------------------------------------
// Moon (2010) family (documented substitutions preserving active counts)
// ---------------------------------------------------------------------

/// Moon high-dimensional function variant: all 20 inputs active with
/// alternating-sign linear weights plus three interactions.
pub fn moon10hd(x: &[f64]) -> f64 {
    let linear: f64 = (0..20)
        .map(|i| {
            let c = 0.25 + 0.05 * (i + 1) as f64;
            if i % 2 == 0 {
                c * x[i]
            } else {
                -c * x[i]
            }
        })
        .sum();
    linear + 1.2 * x[0] * x[1] - 1.6 * x[2] * x[3] + 0.8 * x[4] * x[5] + 0.3797
}

/// Moon high-dimensional variant "c1": same structure but only the first
/// five of twenty inputs are active.
pub fn moon10hdc1(x: &[f64]) -> f64 {
    1.1 * x[0] - 0.9 * x[1] + 0.8 * x[2] - 1.2 * x[3] + 0.6 * x[4] + 1.4 * x[0] * x[3]
        - 0.8 * x[1] * x[4]
        - 0.0643
}

/// Moon low-dimensional function: three active inputs, one interaction
/// (offset calibrated to Table 1's 45.6 % share at thr = 1.5).
pub fn moon10low(x: &[f64]) -> f64 {
    x[0] + x[1] + 0.9 * x[2] + 0.3 * x[0] * x[2] + 0.057
}

// ---------------------------------------------------------------------
// Morris / Saltelli sensitivity functions
// ---------------------------------------------------------------------

/// The classic Morris (1991) screening function with 20 inputs, as
/// distributed with the R `sensitivity` package.
///
/// `w_i = 2(x_i − ½)` except for inputs 3, 5, 7 (1-based), where
/// `w_i = 2(1.1 x_i / (x_i + 0.1) − ½)`. First-order effects 20 on the
/// first ten inputs, pairwise −15 on the first six, three-way −10 on the
/// first five, four-way +5 on the first four; remaining first- and
/// second-order coefficients `(−1)^i` and `(−1)^{i+j}`.
pub fn morris(x: &[f64]) -> f64 {
    let mut w = [0.0f64; 20];
    for (i, wi) in w.iter_mut().enumerate() {
        let one_based = i + 1;
        *wi = if one_based == 3 || one_based == 5 || one_based == 7 {
            2.0 * (1.1 * x[i] / (x[i] + 0.1) - 0.5)
        } else {
            2.0 * (x[i] - 0.5)
        };
    }
    let mut y = 0.0;
    #[allow(clippy::needless_range_loop)] // index couples w with the coefficient rule
    for i in 0..20 {
        let beta = if i < 10 {
            20.0
        } else {
            (-1.0f64).powi(i as i32 + 1)
        };
        y += beta * w[i];
    }
    for i in 0..20 {
        for j in (i + 1)..20 {
            let beta = if i < 6 && j < 6 {
                -15.0
            } else {
                (-1.0f64).powi((i + 1 + j + 1) as i32)
            };
            y += beta * w[i] * w[j];
        }
    }
    for i in 0..5 {
        for j in (i + 1)..5 {
            for l in (j + 1)..5 {
                y += -10.0 * w[i] * w[j] * w[l];
            }
        }
    }
    y + 5.0 * w[0] * w[1] * w[2] * w[3]
}

/// Morris, Moore & McKay (2006)-style function (documented substitution):
/// 30 inputs, of which the first ten act through negative linear terms
/// and adjacent-pair interactions, calibrated to Table 1's share.
pub fn morretal06(x: &[f64]) -> f64 {
    let linear: f64 = (0..10).map(|i| x[i]).sum();
    let pairs: f64 = (0..9).map(|i| x[i] * x[i + 1]).sum();
    -57.0 * linear - 10.0 * pairs
}

/// Sobol & Levitan (1999)-style exponential function (documented
/// substitution): `exp(Σ b_i x_i) − c0` with 19 active inputs and `c0`
/// calibrated so that the share at `thr = 2000` matches Table 1.
pub fn soblev99(x: &[f64]) -> f64 {
    let mut s = 0.0;
    for (i, &xi) in x.iter().enumerate().take(19) {
        let b = if i < 10 { 1.2 } else { 0.8 };
        s += b * xi;
    }
    s.exp() - 9_100.0
}

/// Williams-style two-factor product function (documented substitution):
/// `−x1·x2 / 0.38`, two active inputs of three, share calibrated to
/// Table 1 at `thr = −1`.
pub fn willetal06(x: &[f64]) -> f64 {
    -x[0] * x[1] / 0.38
}

// ---------------------------------------------------------------------
// Oakley & O'Hagan (2004) — substitution with deterministic constants
// ---------------------------------------------------------------------

struct OakOh {
    a1: [f64; 15],
    a2: [f64; 15],
    a3: [f64; 15],
    m: [[f64; 15]; 15],
}

/// Deterministic xorshift64* stream used to synthesise the Oakley–O'Hagan
/// coefficient tables (the published CSVs are not reproducible from the
/// paper text).
struct XorShift(u64);

impl XorShift {
    fn next_unit(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_sym(&mut self, scale: f64) -> f64 {
        (self.next_unit() * 2.0 - 1.0) * scale
    }
}

fn oakoh_tables() -> &'static OakOh {
    static TABLES: OnceLock<OakOh> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
        let mut a1 = [0.0; 15];
        let mut a2 = [0.0; 15];
        let mut a3 = [0.0; 15];
        for v in &mut a1 {
            *v = rng.next_sym(1.0);
        }
        for v in &mut a2 {
            *v = rng.next_sym(1.0);
        }
        for v in &mut a3 {
            *v = rng.next_sym(1.0);
        }
        let mut m = [[0.0; 15]; 15];
        for row in &mut m {
            for v in row.iter_mut() {
                *v = rng.next_sym(0.3);
            }
        }
        OakOh { a1, a2, a3, m }
    })
}

/// Oakley & O'Hagan (2004)-style function (documented substitution):
/// linear + sine + cosine + quadratic-form terms over 15 inputs mapped to
/// `[-3, 3]`, with fixed synthesised coefficient tables.
pub fn oakoh04(x: &[f64]) -> f64 {
    let t = oakoh_tables();
    let z: Vec<f64> = x.iter().map(|&u| 6.0 * u - 3.0).collect();
    let mut y = 0.0;
    #[allow(clippy::needless_range_loop)] // index couples z with three coefficient tables
    for j in 0..15 {
        y += t.a1[j] * z[j] + t.a2[j] * z[j].sin() + t.a3[j] * z[j].cos();
    }
    for i in 0..15 {
        for j in 0..15 {
            y += z[i] * t.m[i][j] * z[j];
        }
    }
    // Offset calibrating the share at thr = 10 to Table 1.
    y + 11.9953
}

// ---------------------------------------------------------------------
// "ellipse" — introduced by the REDS paper itself
// ---------------------------------------------------------------------

/// Weights of the `ellipse` function; zero beyond the tenth input as the
/// paper requires (`w_j = 0` for `j > 10`).
const ELLIPSE_W: [f64; 15] = [
    1.0, 0.85, 0.7, 0.95, 0.6, 0.8, 0.9, 0.65, 0.75, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0,
];
/// Centres of the `ellipse` function.
const ELLIPSE_C: [f64; 15] = [
    0.5, 0.4, 0.6, 0.45, 0.55, 0.35, 0.65, 0.5, 0.4, 0.6, 0.5, 0.5, 0.5, 0.5, 0.5,
];

/// The paper's own `ellipse` function: `Σ w_j (x_j − c_j)²` over 15
/// inputs with the last five weights zero (§8.3).
pub fn ellipse(x: &[f64]) -> f64 {
    ELLIPSE_W
        .iter()
        .zip(ELLIPSE_C.iter())
        .zip(x)
        .map(|((&w, &c), &xi)| w * (xi - c) * (xi - c))
        .sum::<f64>()
        // Calibration scale so Table 1's thr = 0.8 cuts 22.5 % of the cube.
        * 1.4155
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borehole_is_positive_and_monotone_in_head_difference() {
        let mid = vec![0.5; 8];
        let base = borehole(&mid);
        assert!(base > 0.0);
        let mut hi = mid.clone();
        hi[3] = 0.9; // larger upper head
        assert!(borehole(&hi) > base);
    }

    #[test]
    fn hart3_minimum_region_is_deep() {
        // Known global minimum ≈ -3.86 at (0.1146, 0.5556, 0.8525).
        let v = hart3(&[0.114_614, 0.555_649, 0.852_547]);
        assert!((v + 3.86278).abs() < 1e-3, "hart3 min {v}");
    }

    #[test]
    fn ishigami_at_origin_matches_closed_form() {
        // x = 0.5 maps to the origin: sin(0) + 7 sin²(0) + 0 = 0.
        let v = ishigami(&[0.5, 0.5, 0.5]);
        assert!(v.abs() < 1e-12, "{v}");
    }

    #[test]
    fn sobol_g_at_center_and_range() {
        // |4·0.5 − 2| = 0, so each factor is a/(1+a); with a1 = 0 the
        // product vanishes.
        assert!(sobol_g(&[0.5; 8]).abs() < 1e-12);
        // At x = 1 every factor is (2+a)/(1+a) ≥ 1.
        assert!(sobol_g(&[1.0; 8]) > 1.0);
    }

    #[test]
    fn ellipse_vanishes_at_center_and_ignores_tail_inputs() {
        let center: Vec<f64> = ELLIPSE_C.to_vec();
        assert!(ellipse(&center).abs() < 1e-12);
        let mut x = vec![0.2; 15];
        let base = ellipse(&x);
        for j in 10..15 {
            x[j] = 0.9;
            assert!(
                (ellipse(&x) - base).abs() < 1e-12,
                "input {j} must be inert"
            );
        }
    }

    #[test]
    fn welch_inactive_inputs_are_inert() {
        let mut x = vec![0.3; 20];
        let base = welchetal92(&x);
        for j in [7usize, 15] {
            x[j] = 0.9;
            assert!((welchetal92(&x) - base).abs() < 1e-12, "input {j}");
            x[j] = 0.3;
        }
    }

    #[test]
    fn morris_nonlinear_inputs_use_rational_warp() {
        // Flipping input 11..20 only moves y through the ±1 coefficients,
        // so the effect is bounded, while input 1 has weight 20.
        let base = vec![0.5; 20];
        let y0 = morris(&base);
        let mut strong = base.clone();
        strong[0] = 1.0;
        let mut weak = base.clone();
        weak[10] = 1.0;
        assert!((morris(&strong) - y0).abs() > (morris(&weak) - y0).abs());
    }

    #[test]
    fn oakoh_tables_are_stable() {
        let a = oakoh04(&[0.3; 15]);
        let b = oakoh04(&[0.3; 15]);
        assert_eq!(a, b);
        assert!(a.is_finite());
    }

    #[test]
    fn piston_period_is_physical() {
        let v = piston(&[0.5; 7]);
        assert!(v > 0.0 && v < 10.0, "period {v}");
    }

    #[test]
    fn wingweight_is_in_plausible_range() {
        let v = wingweight(&[0.5; 10]);
        assert!(v > 100.0 && v < 500.0, "weight {v}");
    }
}
