//! Stand-in for the "TGL" third-party dataset of Bryant & Lempert (2010),
//! *Thinking inside the box* — 882 cases from a renewable-energy
//! ("Technology–Green–Lempert") policy model with nine uncertain inputs.
//!
//! The original CSV is not redistributable, so we regenerate a fixed
//! dataset with the same interface: 882 rows, nine inputs, ≈ 10 %
//! interesting cases concentrated in a three-input corner region with a
//! small label-noise floor — mirroring the published scenario structure
//! (the paper's discovered TGL boxes restrict 3–5 inputs). The pinned
//! seed makes every call return the identical dataset, exactly like
//! loading a file.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::Dataset;
use reds_sampling::uniform;

/// Number of inputs of the TGL stand-in.
pub const TGL_M: usize = 9;

/// Number of rows (matches the published dataset size).
pub const TGL_N: usize = 882;

/// `P(y = 1 | x)` of the generator: a corner region in inputs 0–2 with
/// 2 % background noise.
fn tgl_prob(x: &[f64]) -> f64 {
    let interesting = x[0] > 0.72 && x[1] < 0.45 && x[2] > 0.30;
    if interesting {
        0.93
    } else {
        0.02
    }
}

/// The fixed 882-row TGL stand-in dataset (deterministic across calls).
pub fn tgl_dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(0x71_61);
    let points = uniform(TGL_N, TGL_M, &mut rng);
    Dataset::from_fn(points, TGL_M, |x| {
        if rng.gen::<f64>() < tgl_prob(x) {
            1.0
        } else {
            0.0
        }
    })
    .expect("static TGL dataset construction cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_deterministic_and_sized() {
        let a = tgl_dataset();
        assert_eq!(a, tgl_dataset());
        assert_eq!(a.n(), TGL_N);
        assert_eq!(a.m(), TGL_M);
    }

    #[test]
    fn share_matches_table1_regime() {
        // Table 1: 10.1 % interesting examples.
        let share = tgl_dataset().pos_rate();
        assert!((0.06..=0.16).contains(&share), "TGL share {share}");
    }

    #[test]
    fn positives_concentrate_in_the_corner_region() {
        let d = tgl_dataset();
        let mut inside_pos = 0.0;
        let mut inside_n = 0.0;
        for (x, y) in d.iter() {
            if x[0] > 0.72 && x[1] < 0.45 && x[2] > 0.30 {
                inside_n += 1.0;
                inside_pos += y;
            }
        }
        assert!(inside_n > 0.0);
        assert!(
            inside_pos / inside_n > 0.8,
            "in-region precision {} too low",
            inside_pos / inside_n
        );
    }
}
