//! Dependency-free JSON support for REDS artifacts.
//!
//! The workspace persists discovered scenarios and machine-readable
//! benchmark reports (`BENCH_*.json`) as JSON. The build environment has
//! no crates.io access, so instead of `serde`/`serde_json` this crate
//! provides a small value model ([`Json`]), a compact and a pretty
//! writer, and a strict recursive-descent parser.
//!
//! Non-finite floats serialize as `null` (matching `serde_json`);
//! domain types that need lossless infinities (hyperbox bounds) encode
//! them explicitly — see `reds-subgroup`'s `HyperBox::to_json`.

#![warn(missing_docs)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (always stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Array from values.
    pub fn arr(values: impl IntoIterator<Item = Json>) -> Self {
        Json::Arr(values.into_iter().collect())
    }

    /// Number value; non-finite maps to `Null`.
    pub fn num(v: f64) -> Self {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// String value.
    pub fn str(v: impl Into<String>) -> Self {
        Json::Str(v.into())
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// `true` when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    let (k, v) = &pairs[i];
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d)
                })
            }
        }
    }
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 && !(v == 0.0 && v.is_sign_negative()) {
        // Integral values print without a trailing ".0", like serde_json.
        // Negative zero takes the float path so its sign survives.
        out.push_str(&format!("{}", v as i64));
    } else if v != 0.0 && !(1e-5..1e16).contains(&v.abs()) {
        // Extreme magnitudes: `Display` is shortest-round-trip but always
        // positional, so 1e-300 would print as "0.000…001" with 300
        // digits. `LowerExp` keeps the same exactness guarantee in
        // JSON-valid scientific notation ("1e-300").
        out.push_str(&format!("{v:e}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting the parser accepts. The recursive-descent
/// parser uses one stack frame per open array/object, so without a cap
/// an adversarial `[[[[…` document overflows the stack; 128 levels is
/// far beyond any REDS artifact (which nest a handful deep) while
/// keeping the worst-case stack bounded.
pub const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document.
///
/// Documents nested deeper than [`MAX_DEPTH`] containers are rejected
/// with a parse error rather than overflowing the stack.
pub fn from_str(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn err(offset: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected '{}'", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            if depth >= MAX_DEPTH {
                return Err(err(*pos, format!("nesting deeper than {MAX_DEPTH} levels")));
            }
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            if depth >= MAX_DEPTH {
                return Err(err(*pos, format!("nesting deeper than {MAX_DEPTH} levels")));
            }
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected '{word}'")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..=0xDBFF).contains(&code) {
                            // High surrogate: JSON encodes non-BMP
                            // characters as a \uXXXX\uXXXX pair.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(err(*pos, "unpaired high surrogate"));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err(err(*pos, "invalid low surrogate"));
                            }
                            *pos += 6;
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(
                                char::from_u32(combined)
                                    .ok_or_else(|| err(*pos, "invalid unicode scalar"))?,
                            );
                        } else {
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| err(*pos, "invalid unicode scalar"))?,
                            );
                        }
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, ParseError> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| err(at, "truncated \\u escape"))?;
    u32::from_str_radix(
        std::str::from_utf8(hex).map_err(|_| err(at, "invalid \\u escape"))?,
        16,
    )
    .map_err(|_| err(at, "invalid \\u escape"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    // Strict RFC 8259 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // (Rust's f64 parser is laxer — it accepts "+5", ".5", "1." — so
    // the shape is validated here before delegating the conversion.)
    fn digits(bytes: &[u8], pos: &mut usize) -> usize {
        let from = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos - from
    }
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            digits(bytes, pos);
        }
        _ => return Err(err(start, "invalid number")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if digits(bytes, pos) == 0 {
            return Err(err(start, "invalid number: missing fraction digits"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if digits(bytes, pos) == 0 {
            return Err(err(start, "invalid number: missing exponent digits"));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, format!("invalid number '{text}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj([
            ("name", Json::str("reds")),
            ("pi", Json::num(3.25)),
            ("count", Json::num(42.0)),
            ("flag", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "rows",
                Json::arr([Json::num(1.0), Json::num(2.5), Json::str("a\"b\\c\n")]),
            ),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(from_str(&text).expect("parses"), doc, "text: {text}");
        }
    }

    #[test]
    fn integral_numbers_have_no_decimal_point() {
        assert_eq!(Json::num(42.0).to_string_compact(), "42");
        assert_eq!(Json::num(-3.0).to_string_compact(), "-3");
        assert_eq!(Json::num(0.5).to_string_compact(), "0.5");
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        assert_eq!(Json::Num(-0.0).to_string_compact(), "-0");
        let back = from_str("-0").unwrap().as_f64().unwrap();
        assert!(back == 0.0 && back.is_sign_negative());
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn floats_round_trip_exactly() {
        // Adversarial values: extreme magnitudes, the integer-precision
        // boundary 2^53 ± 1 (2^53 + 1 rounds to 2^53 as f64), negative
        // zero, subnormals, and accumulated-error decimals.
        let two53 = (1u64 << 53) as f64;
        for v in [
            1e-300,
            -1e-300,
            two53 - 1.0,
            two53,
            two53 + 1.0,
            -0.0,
            0.1 + 0.2,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            1e16,
            -1.7e308,
            std::f64::consts::PI,
        ] {
            let text = Json::Num(v).to_string_compact();
            let back = from_str(&text)
                .unwrap_or_else(|e| panic!("reparse of {text}: {e}"))
                .as_f64()
                .expect("numeric");
            assert_eq!(
                back.to_bits(),
                v.to_bits(),
                "value {v:e} serialized as {text} round-tripped to {back:e}"
            );
        }
    }

    #[test]
    fn extreme_floats_serialize_compactly() {
        // The positional form of 1e-300 would be 300+ characters; the
        // writer must use scientific notation instead.
        assert_eq!(Json::Num(1e-300).to_string_compact(), "1e-300");
        assert_eq!(Json::Num(5e-324).to_string_compact(), "5e-324");
        assert!(Json::Num(f64::MAX).to_string_compact().len() < 30);
        // … but ordinary magnitudes keep the familiar positional form.
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
        assert_eq!(Json::Num(1234.25).to_string_compact(), "1234.25");
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = from_str(r#"{"a": [1, 2], "b": {"c": true}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_bool(),
            Some(true)
        );
        assert!(doc.get("z").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "\"abc",
            "{\"a\" 1}",
            "1 2",
            "nul",
            "+5",
            ".5",
            "1.",
            "01",
            "1e",
            "5.e3",
            "-",
        ] {
            assert!(from_str(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn adversarially_deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        // Before the MAX_DEPTH check, each of these ~10k-deep documents
        // crashed the process with a stack overflow.
        let deep_arrays = "[".repeat(10_000);
        let deep_closed = format!("{}0{}", "[".repeat(10_000), "]".repeat(10_000));
        let deep_objects = "{\"a\":".repeat(10_000);
        for bad in [deep_arrays, deep_closed, deep_objects] {
            let e = from_str(&bad).expect_err("deep nesting must be rejected");
            assert!(e.message.contains("nesting"), "message: {}", e.message);
        }
        // Mixed array/object nesting counts combined depth.
        let mixed = "[{\"a\":".repeat(5_000);
        assert!(from_str(&mixed).is_err());
    }

    #[test]
    fn nesting_below_the_limit_still_parses() {
        let depth = MAX_DEPTH - 1;
        let doc = format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
        let parsed = from_str(&doc).expect("within-limit nesting parses");
        let mut v = &parsed;
        let mut seen = 0usize;
        while let Json::Arr(items) = v {
            v = &items[0];
            seen += 1;
        }
        assert_eq!(seen, depth);
        assert_eq!(v.as_f64(), Some(0.0));
        // One past the limit fails.
        let doc = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(from_str(&doc).is_err());
    }

    #[test]
    fn parses_surrogate_pairs_and_rejects_lone_surrogates() {
        // The standard JSON encoding of a non-BMP character (here 😀).
        let doc = from_str(r#""\ud83d\ude00""#).expect("surrogate pair parses");
        assert_eq!(doc.as_str(), Some("\u{1F600}"));
        assert!(from_str(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(from_str(r#""\ud83dA""#).is_err(), "bad low surrogate");
    }

    #[test]
    fn parses_scientific_notation_and_escapes() {
        let doc = from_str(r#"[1e3, -2.5E-2, "A\t"]"#).unwrap();
        let arr = doc.as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1000.0));
        assert!((arr[1].as_f64().unwrap() + 0.025).abs() < 1e-15);
        assert_eq!(arr[2].as_str(), Some("A\t"));
    }
}
