//! Random forest (Breiman 2001): bagged CART trees with per-split random
//! feature subsets. The forest's mean prediction over 0/1 labels is an
//! estimate of `P(y = 1 | x)` — exactly the `f^am` the REDS "p" variants
//! feed to the subgroup-discovery step (§6.1).
//!
//! ## Performance
//!
//! Trees are embarrassingly parallel: every tree draws its own seeded
//! RNG stream up front, so training fans out across threads via
//! `reds-par` with **bit-identical** output to the serial loop.
//! [`Metamodel::predict_batch`] is overridden with a tree-major kernel:
//! the outer loop walks trees, the inner loop walks points, so each
//! tree's node arena stays hot in cache across the whole batch — the
//! shape that dominates REDS's `L`-point pseudo-labeling. Per-point
//! tree sums still accumulate in tree order, so batched and one-by-one
//! prediction agree bit for bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::{Dataset, SortedView};

use crate::tree::{NaiveTree, RegressionTree, TreeParams};
use crate::{Metamodel, Trainer};

/// Random forest hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Features per split; `None` = `ceil(sqrt(M))` (the classification
    /// default of Breiman and of R's `randomForest`).
    pub mtry: Option<usize>,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        Self {
            n_trees: 200,
            mtry: None,
            min_samples_leaf: 1,
            max_depth: 30,
        }
    }
}

/// A fitted random forest.
pub struct RandomForest {
    trees: Vec<RegressionTree>,
    m: usize,
}

impl RandomForest {
    /// Trains a forest on `data` (bootstrap sample + feature subsampling
    /// per tree).
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty or `params.n_trees == 0`.
    pub fn fit(data: &Dataset, params: &RandomForestParams, rng: &mut impl Rng) -> Self {
        assert!(!data.is_empty(), "cannot train a forest on empty data");
        assert!(params.n_trees > 0, "need at least one tree");
        let (seeds, tree_params) = prepare(data, params, rng);
        // Argsort every feature once for the whole forest; each tree
        // derives its bootstrap's sorted columns from this in linear
        // time (`SortedView` orders by `(value, row)`, the tie order
        // the builders share).
        let orders: Vec<Vec<u32>> = SortedView::new(data).into_columns();
        // Independent seeded RNG streams keep training deterministic —
        // and embarrassingly parallel — regardless of construction
        // order or thread count.
        let trees = reds_par::par_map(&seeds, |&seed| {
            let (indices, mut trng) = bootstrap_for_seed(data.n(), seed);
            RegressionTree::fit_with_orders(
                data.points(),
                data.labels(),
                data.m(),
                &indices,
                &tree_params,
                &orders,
                &mut trng,
            )
        });
        Self { trees, m: data.m() }
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The fitted trees in ensemble order — the order predictions
    /// accumulate in, which serializers (`reds-json`, `reds-art`) must
    /// preserve for bit-identical round trips.
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Number of input columns.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Serializes the fitted forest: `{"m": …, "trees": […]}` of
    /// [`RegressionTree::to_json`] documents, in ensemble order (the
    /// order matters — per-point sums accumulate in tree order, so
    /// preserving it keeps round-tripped predictions bit-identical).
    pub fn to_json(&self) -> reds_json::Json {
        reds_json::Json::obj([
            ("m", reds_json::Json::num(self.m as f64)),
            (
                "trees",
                reds_json::Json::arr(self.trees.iter().map(RegressionTree::to_json)),
            ),
        ])
    }

    /// Reconstructs a forest from [`RandomForest::to_json`] output,
    /// validating every tree (see [`RegressionTree::from_json`]).
    pub fn from_json(doc: &reds_json::Json) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::{bad, field, usize_from_json};
        let m = usize_from_json(field(doc, "m")?, "'m'")?;
        if m == 0 {
            return Err(bad("'m' must be positive"));
        }
        let trees = field(doc, "trees")?
            .as_array()
            .ok_or_else(|| bad("'trees' must be an array"))?
            .iter()
            .map(RegressionTree::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if trees.is_empty() {
            return Err(bad("forest has no trees"));
        }
        if let Some(t) = trees.iter().find(|t| t.m() != m) {
            return Err(bad(format!(
                "tree fitted on {} columns inside a forest with m = {m}",
                t.m()
            )));
        }
        Ok(Self { trees, m })
    }
}

impl Metamodel for RandomForest {
    fn predict(&self, x: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict(x)).sum();
        sum / self.trees.len() as f64
    }

    /// Tree-major batched prediction: for each chunk of rows, the outer
    /// loop walks trees and the inner loop walks the chunk, keeping one
    /// tree's arena in cache across many points. The traversal kernel
    /// (scalar or AVX2) is resolved **once** here and threaded through
    /// every worker — both backends are bit-identical, and per-point
    /// sums still accumulate in tree order, so the result matches
    /// per-point [`Metamodel::predict`] exactly; chunks fan out across
    /// threads.
    fn predict_batch(&self, points: &[f64], m: usize) -> Vec<f64> {
        assert_eq!(m, self.m, "prediction dimensionality mismatch");
        assert!(points.len().is_multiple_of(m.max(1)), "ragged point buffer");
        let kernel = crate::kernels::active();
        let n = points.len() / m.max(1);
        let mut out = vec![0.0f64; n];
        // ~4k rows per chunk: large enough to amortise the per-tree
        // pass, small enough to stay cache-resident and spread over
        // workers.
        let chunk_rows = 4096usize;
        reds_par::par_fill_chunks(&mut out, chunk_rows, |start, acc| {
            let rows = &points[start * m..(start + acc.len()) * m];
            for tree in &self.trees {
                crate::kernels::accumulate_tree(kernel, tree.flat(), rows, m, acc);
            }
            let n_trees = self.trees.len() as f64;
            for v in acc.iter_mut() {
                *v /= n_trees;
            }
        });
        out
    }
}

fn prepare(
    data: &Dataset,
    params: &RandomForestParams,
    rng: &mut impl Rng,
) -> (Vec<u64>, TreeParams) {
    let m = data.m();
    let mtry = params
        .mtry
        .unwrap_or_else(|| (m as f64).sqrt().ceil() as usize)
        .clamp(1, m);
    let tree_params = TreeParams {
        max_depth: params.max_depth,
        min_samples_leaf: params.min_samples_leaf,
        min_samples_split: 2 * params.min_samples_leaf.max(1),
        mtry: Some(mtry),
    };
    let seeds: Vec<u64> = (0..params.n_trees).map(|_| rng.gen()).collect();
    (seeds, tree_params)
}

fn bootstrap_for_seed(n: usize, seed: u64) -> (Vec<usize>, StdRng) {
    let mut trng = StdRng::seed_from_u64(seed);
    let indices: Vec<usize> = (0..n).map(|_| trng.gen_range(0..n)).collect();
    (indices, trng)
}

/// The pre-optimization forest: a serial loop over [`NaiveTree`]s with
/// per-point enum-arena prediction (and the default serial
/// `predict_batch`). Bit-identical predictions to [`RandomForest`];
/// reference oracle for the equivalence tests and the baseline of the
/// `presort` benchmarks only.
#[doc(hidden)]
pub struct NaiveRandomForest {
    trees: Vec<NaiveTree>,
    m: usize,
}

impl NaiveRandomForest {
    /// Serial pre-optimization training; same RNG consumption as
    /// [`RandomForest::fit`].
    pub fn fit(data: &Dataset, params: &RandomForestParams, rng: &mut impl Rng) -> Self {
        assert!(!data.is_empty(), "cannot train a forest on empty data");
        assert!(params.n_trees > 0, "need at least one tree");
        let (seeds, tree_params) = prepare(data, params, rng);
        let trees = seeds
            .into_iter()
            .map(|seed| {
                let (indices, mut trng) = bootstrap_for_seed(data.n(), seed);
                NaiveTree::fit(
                    data.points(),
                    data.labels(),
                    data.m(),
                    &indices,
                    &tree_params,
                    &mut trng,
                )
            })
            .collect();
        Self { trees, m: data.m() }
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Metamodel for NaiveRandomForest {
    fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.m, "prediction dimensionality mismatch");
        let sum: f64 = self.trees.iter().map(|t| t.predict(x)).sum();
        sum / self.trees.len() as f64
    }
}

impl Trainer for RandomForestParams {
    fn train(&self, data: &Dataset, rng: &mut StdRng) -> Box<dyn Metamodel> {
        Box::new(RandomForest::fit(data, self, rng))
    }

    fn tag(&self) -> &'static str {
        "f"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * 2).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
            let d = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
            if d < 0.09 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    #[test]
    fn forest_learns_a_disc_better_than_chance() {
        let train = ring_data(400, 1);
        let test = ring_data(1000, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let forest = RandomForest::fit(&train, &RandomForestParams::default(), &mut rng);
        let correct = test
            .iter()
            .filter(|(x, y)| (forest.predict(x) > 0.5) == (*y > 0.5))
            .count();
        let acc = correct as f64 / test.n() as f64;
        assert!(acc > 0.9, "forest accuracy {acc}");
    }

    #[test]
    fn predictions_are_probabilities() {
        let train = ring_data(200, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let forest = RandomForest::fit(&train, &RandomForestParams::default(), &mut rng);
        for i in 0..50 {
            let x = [i as f64 / 50.0, 0.5];
            let p = forest.predict(&x);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let train = ring_data(150, 6);
        let params = RandomForestParams {
            n_trees: 20,
            ..Default::default()
        };
        let f1 = RandomForest::fit(&train, &params, &mut StdRng::seed_from_u64(7));
        let f2 = RandomForest::fit(&train, &params, &mut StdRng::seed_from_u64(7));
        let x = [0.3, 0.8];
        assert_eq!(f1.predict(&x), f2.predict(&x));
    }

    #[test]
    fn forest_variance_is_lower_than_single_tree() {
        // Train many models on different resamples; the spread of the
        // forest's prediction at a fixed point should not exceed a single
        // tree's (the low-variance property REDS relies on, §6.2). The
        // probe sits just inside the ring boundary, where individual
        // trees genuinely disagree across resamples.
        let x = [0.77, 0.6];
        let tree_params = RandomForestParams {
            n_trees: 1,
            ..Default::default()
        };
        let forest_params = RandomForestParams {
            n_trees: 60,
            ..Default::default()
        };
        let spread = |params: &RandomForestParams| {
            let preds: Vec<f64> = (0..24)
                .map(|s| {
                    let d = ring_data(150, 100 + s);
                    let mut rng = StdRng::seed_from_u64(200 + s);
                    RandomForest::fit(&d, params, &mut rng).predict(&x)
                })
                .collect();
            let mean = preds.iter().sum::<f64>() / preds.len() as f64;
            preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64
        };
        let (sf, st) = (spread(&forest_params), spread(&tree_params));
        assert!(sf <= st + 1e-9, "forest spread {sf} vs tree spread {st}");
    }

    #[test]
    fn parallel_fit_and_batch_predict_match_naive_bitwise() {
        let train = ring_data(200, 21);
        let params = RandomForestParams {
            n_trees: 40,
            ..Default::default()
        };
        let fast = RandomForest::fit(&train, &params, &mut StdRng::seed_from_u64(22));
        let slow = NaiveRandomForest::fit(&train, &params, &mut StdRng::seed_from_u64(22));
        let query: Vec<f64> = (0..400).map(|i| (i % 29) as f64 / 29.0).collect();
        let batch_fast = fast.predict_batch(&query, 2);
        let batch_slow = slow.predict_batch(&query, 2);
        for (i, x) in query.chunks_exact(2).enumerate() {
            let point = fast.predict(x);
            assert_eq!(
                point.to_bits(),
                slow.predict(x).to_bits(),
                "fit mismatch at {i}"
            );
            assert_eq!(
                point.to_bits(),
                batch_fast[i].to_bits(),
                "batch mismatch at {i}"
            );
            assert_eq!(point.to_bits(), batch_slow[i].to_bits());
        }
    }

    #[test]
    fn thread_count_does_not_change_predictions() {
        let train = ring_data(150, 23);
        let params = RandomForestParams {
            n_trees: 16,
            ..Default::default()
        };
        reds_par::set_max_threads(Some(1));
        let serial = RandomForest::fit(&train, &params, &mut StdRng::seed_from_u64(24));
        reds_par::set_max_threads(Some(4));
        let parallel = RandomForest::fit(&train, &params, &mut StdRng::seed_from_u64(24));
        reds_par::set_max_threads(None);
        let query: Vec<f64> = (0..200).map(|i| (i % 17) as f64 / 17.0).collect();
        assert_eq!(
            serial.predict_batch(&query, 2),
            parallel.predict_batch(&query, 2)
        );
    }

    #[test]
    fn trainer_trait_object_works() {
        let train = ring_data(100, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let params = RandomForestParams {
            n_trees: 10,
            ..Default::default()
        };
        let model = params.train(&train, &mut rng);
        assert!(model.predict(&[0.5, 0.5]) > 0.4);
        assert_eq!(params.tag(), "f");
        let batch = model.predict_batch(&[0.5, 0.5, 0.0, 0.0], 2);
        assert_eq!(batch.len(), 2);
    }
}
