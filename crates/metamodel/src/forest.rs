//! Random forest (Breiman 2001): bagged CART trees with per-split random
//! feature subsets. The forest's mean prediction over 0/1 labels is an
//! estimate of `P(y = 1 | x)` — exactly the `f^am` the REDS "p" variants
//! feed to the subgroup-discovery step (§6.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::Dataset;

use crate::tree::{RegressionTree, TreeParams};
use crate::{Metamodel, Trainer};

/// Random forest hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Features per split; `None` = `ceil(sqrt(M))` (the classification
    /// default of Breiman and of R's `randomForest`).
    pub mtry: Option<usize>,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        Self {
            n_trees: 200,
            mtry: None,
            min_samples_leaf: 1,
            max_depth: 30,
        }
    }
}

/// A fitted random forest.
pub struct RandomForest {
    trees: Vec<RegressionTree>,
    m: usize,
}

impl RandomForest {
    /// Trains a forest on `data` (bootstrap sample + feature subsampling
    /// per tree).
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty or `params.n_trees == 0`.
    pub fn fit(data: &Dataset, params: &RandomForestParams, rng: &mut impl Rng) -> Self {
        assert!(!data.is_empty(), "cannot train a forest on empty data");
        assert!(params.n_trees > 0, "need at least one tree");
        let n = data.n();
        let m = data.m();
        let mtry = params
            .mtry
            .unwrap_or_else(|| (m as f64).sqrt().ceil() as usize)
            .clamp(1, m);
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_samples_leaf: params.min_samples_leaf,
            min_samples_split: 2 * params.min_samples_leaf.max(1),
            mtry: Some(mtry),
        };
        // Independent seeded RNG streams keep training deterministic even
        // if tree construction order ever changes.
        let seeds: Vec<u64> = (0..params.n_trees).map(|_| rng.gen()).collect();
        let trees = seeds
            .into_iter()
            .map(|seed| {
                let mut trng = StdRng::seed_from_u64(seed);
                let indices: Vec<usize> = (0..n).map(|_| trng.gen_range(0..n)).collect();
                RegressionTree::fit(
                    data.points(),
                    data.labels(),
                    m,
                    &indices,
                    &tree_params,
                    &mut trng,
                )
            })
            .collect();
        Self { trees, m }
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of input columns.
    pub fn m(&self) -> usize {
        self.m
    }
}

impl Metamodel for RandomForest {
    fn predict(&self, x: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict(x)).sum();
        sum / self.trees.len() as f64
    }
}

impl Trainer for RandomForestParams {
    fn train(&self, data: &Dataset, rng: &mut StdRng) -> Box<dyn Metamodel> {
        Box::new(RandomForest::fit(data, self, rng))
    }

    fn tag(&self) -> &'static str {
        "f"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn(
            (0..n * 2).map(|_| rng.gen::<f64>()).collect(),
            2,
            |x| {
                let d = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
                if d < 0.09 {
                    1.0
                } else {
                    0.0
                }
            },
        )
        .unwrap()
    }

    #[test]
    fn forest_learns_a_disc_better_than_chance() {
        let train = ring_data(400, 1);
        let test = ring_data(1000, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let forest = RandomForest::fit(&train, &RandomForestParams::default(), &mut rng);
        let correct = test
            .iter()
            .filter(|(x, y)| (forest.predict(x) > 0.5) == (*y > 0.5))
            .count();
        let acc = correct as f64 / test.n() as f64;
        assert!(acc > 0.9, "forest accuracy {acc}");
    }

    #[test]
    fn predictions_are_probabilities() {
        let train = ring_data(200, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let forest = RandomForest::fit(&train, &RandomForestParams::default(), &mut rng);
        for i in 0..50 {
            let x = [i as f64 / 50.0, 0.5];
            let p = forest.predict(&x);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let train = ring_data(150, 6);
        let params = RandomForestParams {
            n_trees: 20,
            ..Default::default()
        };
        let f1 = RandomForest::fit(&train, &params, &mut StdRng::seed_from_u64(7));
        let f2 = RandomForest::fit(&train, &params, &mut StdRng::seed_from_u64(7));
        let x = [0.3, 0.8];
        assert_eq!(f1.predict(&x), f2.predict(&x));
    }

    #[test]
    fn forest_variance_is_lower_than_single_tree() {
        // Train many models on different resamples; the spread of the
        // forest's prediction at a fixed point should not exceed a single
        // tree's (the low-variance property REDS relies on, §6.2).
        let x = [0.62, 0.62];
        let tree_params = RandomForestParams {
            n_trees: 1,
            ..Default::default()
        };
        let forest_params = RandomForestParams {
            n_trees: 60,
            ..Default::default()
        };
        let spread = |params: &RandomForestParams| {
            let preds: Vec<f64> = (0..12)
                .map(|s| {
                    let d = ring_data(150, 100 + s);
                    let mut rng = StdRng::seed_from_u64(200 + s);
                    RandomForest::fit(&d, params, &mut rng).predict(&x)
                })
                .collect();
            let mean = preds.iter().sum::<f64>() / preds.len() as f64;
            preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64
        };
        assert!(spread(&forest_params) <= spread(&tree_params) + 1e-9);
    }

    #[test]
    fn trainer_trait_object_works() {
        let train = ring_data(100, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let params = RandomForestParams {
            n_trees: 10,
            ..Default::default()
        };
        let model = params.train(&train, &mut rng);
        assert!(model.predict(&[0.5, 0.5]) > 0.4);
        assert_eq!(params.tag(), "f");
        let batch = model.predict_batch(&[0.5, 0.5, 0.0, 0.0], 2);
        assert_eq!(batch.len(), 2);
    }
}
