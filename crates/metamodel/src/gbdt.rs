//! Gradient-boosted decision trees with the XGBoost second-order
//! logistic objective (Chen & Guestrin 2016) — the "x" metamodel of the
//! paper, its strongest performer ("RPx", §9.1.1).
//!
//! Each round fits a regression tree to the gradient/hessian statistics
//! of the logistic loss; split gain and leaf weights use the regularised
//! second-order formulas
//!
//! ```text
//! gain = ½ [ G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ) ] − γ
//! w    = −G / (H + λ)
//! ```
//!
//! Like the CART builder, each round's tree grows on presorted columns
//! (dataset argsorted once per fit, subsample columns derived by an
//! `O(m·n)` filter, stable partition per split), and the per-round
//! margin refresh over all `N` rows fans out across threads.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use reds_data::{Dataset, SortedView};

use crate::kernels::{self, FlatTree};
use crate::{Metamodel, Trainer};

/// GBDT hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtParams {
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Maximum depth of each tree.
    pub max_depth: usize,
    /// Learning rate (shrinkage) `η`.
    pub eta: f64,
    /// L2 regularisation `λ` on leaf weights.
    pub lambda: f64,
    /// Minimum split gain `γ`.
    pub gamma: f64,
    /// Minimum hessian sum per child (XGBoost's `min_child_weight`).
    pub min_child_weight: f64,
    /// Row subsample fraction per round.
    pub subsample: f64,
}

impl Default for GbdtParams {
    fn default() -> Self {
        Self {
            n_rounds: 150,
            max_depth: 4,
            eta: 0.1,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 0.8,
        }
    }
}

/// One boosting round's tree, flattened into the kernel-ready
/// structure-of-arrays arena (leaf values are leaf *weights* here).
#[derive(Debug, Clone)]
struct GradientTree {
    flat: FlatTree,
}

impl GradientTree {
    fn predict(&self, x: &[f64]) -> f64 {
        self.flat.predict(x)
    }
}

/// Per-round tree builder on presorted columns — the same
/// stable-partition scheme as the CART builder: the dataset is
/// argsorted once per fit, each round derives its subsample's sorted
/// columns by filtering (`O(m·n)`), and every split partitions the
/// columns in place, so there is no per-node sorting. Subsample rows
/// are distinct, so rows themselves are the ids.
struct GradBuilder<'a> {
    points: &'a [f64],
    grad: &'a [f64],
    hess: &'a [f64],
    m: usize,
    params: &'a GbdtParams,
    nodes: FlatTree,
    /// Node-order row array; `build` works on `main[lo..hi]`.
    main: Vec<u32>,
    /// Per-feature row arrays sorted by `(value, row)`, subsample only.
    cols: Vec<Vec<u32>>,
    /// Scratch buffer for the stable partitions.
    scratch: Vec<u32>,
    /// Per-row side flag of the split being applied.
    goes_left: &'a mut [bool],
}

impl<'a> GradBuilder<'a> {
    #[inline]
    fn value(&self, row: u32, feature: usize) -> f64 {
        self.points[row as usize * self.m + feature]
    }

    fn sums(&self, lo: usize, hi: usize) -> (f64, f64) {
        self.main[lo..hi].iter().fold((0.0, 0.0), |(g, h), &i| {
            (g + self.grad[i as usize], h + self.hess[i as usize])
        })
    }

    fn build(&mut self, lo: usize, hi: usize, depth: usize) -> u32 {
        let n = hi - lo;
        let (g_total, h_total) = self.sums(lo, hi);
        let leaf_weight = -g_total / (h_total + self.params.lambda);
        if depth >= self.params.max_depth || n < 2 {
            return self.nodes.push_leaf(leaf_weight);
        }
        let parent_score = g_total * g_total / (h_total + self.params.lambda);
        let mut best: Option<(usize, f64, f64)> = None;
        for feature in 0..self.m {
            let col = &self.cols[feature][lo..hi];
            let mut gl = 0.0;
            let mut hl = 0.0;
            for k in 0..n - 1 {
                gl += self.grad[col[k] as usize];
                hl += self.hess[col[k] as usize];
                let v_here = self.value(col[k], feature);
                let v_next = self.value(col[k + 1], feature);
                if v_next <= v_here {
                    continue;
                }
                let hr = h_total - hl;
                if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                    continue;
                }
                let gr = g_total - gl;
                let gain = 0.5
                    * (gl * gl / (hl + self.params.lambda) + gr * gr / (hr + self.params.lambda)
                        - parent_score)
                    - self.params.gamma;
                if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((feature, crate::tree::split_threshold(v_here, v_next), gain));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            return self.nodes.push_leaf(leaf_weight);
        };
        for &row in &self.main[lo..hi] {
            self.goes_left[row as usize] = self.value(row, feature) <= threshold;
        }
        let split_at = crate::tree::stable_partition(
            self.goes_left,
            &mut self.scratch,
            &mut self.main[lo..hi],
        );
        debug_assert!(split_at > 0 && split_at < n);
        for f in 0..self.m {
            let mut col = std::mem::take(&mut self.cols[f]);
            let at =
                crate::tree::stable_partition(self.goes_left, &mut self.scratch, &mut col[lo..hi]);
            debug_assert_eq!(at, split_at);
            self.cols[f] = col;
        }
        let node_id = self.nodes.push_split(feature as u32, threshold);
        let left = self.build(lo, lo + split_at, depth + 1);
        debug_assert_eq!(left, node_id + 1, "left child must follow its parent");
        let right = self.build(lo + split_at, hi, depth + 1);
        self.nodes.set_right(node_id, right);
        node_id
    }
}

/// Logistic squash through the resolved [`kernels::exp`] backend — the
/// same exponential (canonical polynomial, or libm under
/// `REDS_EXP=libm`) the batched [`kernels::sigmoid_margins`] kernel
/// evaluates, so per-point and batched predictions agree bitwise.
#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + kernels::exp(-z))
}

/// A fitted gradient-boosted tree ensemble.
pub struct Gbdt {
    trees: Vec<GradientTree>,
    base_score: f64,
    eta: f64,
    m: usize,
}

impl Gbdt {
    /// Trains a boosted ensemble on binary labels.
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty or `params` are degenerate
    /// (`n_rounds == 0`, `subsample ∉ (0, 1]`).
    pub fn fit(data: &Dataset, params: &GbdtParams, rng: &mut impl Rng) -> Self {
        assert!(!data.is_empty(), "cannot train GBDT on empty data");
        assert!(params.n_rounds > 0, "need at least one round");
        assert!(
            params.subsample > 0.0 && params.subsample <= 1.0,
            "subsample must be in (0, 1]"
        );
        let n = data.n();
        let m = data.m();
        // Base score: log-odds of the positive rate, clamped away from
        // the degenerate all-one/all-zero cases.
        let rate = data.pos_rate().clamp(1e-6, 1.0 - 1e-6);
        let base_score = (rate / (1.0 - rate)).ln();
        let mut margins = vec![base_score; n];
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];
        let mut trees = Vec::with_capacity(params.n_rounds);
        let mut all_rows: Vec<usize> = (0..n).collect();
        let sample_size = ((n as f64 * params.subsample).round() as usize).clamp(1, n);
        // Argsort every feature once; each round's subsample columns
        // derive from these by an O(m·n) filter.
        let global_cols: Vec<Vec<u32>> = SortedView::new(data).into_columns();
        let mut in_sample = vec![false; n];
        let mut goes_left = vec![false; n];
        for _ in 0..params.n_rounds {
            for i in 0..n {
                let p = sigmoid(margins[i]);
                grad[i] = p - data.label(i);
                hess[i] = (p * (1.0 - p)).max(1e-16);
            }
            all_rows.shuffle(rng);
            in_sample.fill(false);
            for &r in &all_rows[..sample_size] {
                in_sample[r] = true;
            }
            let main: Vec<u32> = (0..n as u32).filter(|&r| in_sample[r as usize]).collect();
            let cols: Vec<Vec<u32>> = global_cols
                .iter()
                .map(|gc| {
                    gc.iter()
                        .copied()
                        .filter(|&r| in_sample[r as usize])
                        .collect()
                })
                .collect();
            let mut builder = GradBuilder {
                points: data.points(),
                grad: &grad,
                hess: &hess,
                m,
                params,
                nodes: FlatTree::with_capacity(2 * sample_size),
                main,
                cols,
                scratch: vec![0; sample_size],
                goes_left: &mut goes_left,
            };
            builder.build(0, sample_size, 0);
            let tree = GradientTree {
                flat: builder.nodes,
            };
            // The per-round margin refresh walks the whole dataset
            // through the new tree — the dominant per-round cost at
            // large N. Rows are independent, so it fans out across
            // threads (with a per-worker prediction scratch) through
            // the dispatched traversal kernel, bit-identically to the
            // serial per-point walk.
            let kernel = kernels::active();
            let points = data.points();
            reds_par::par_fill_chunks_with(
                &mut margins,
                8192,
                || vec![0.0f64; 8192],
                |preds, start, chunk| {
                    let preds = &mut preds[..chunk.len()];
                    preds.fill(0.0);
                    let rows = &points[start * m..(start + chunk.len()) * m];
                    kernels::accumulate_tree(kernel, &tree.flat, rows, m, preds);
                    for (margin, p) in chunk.iter_mut().zip(preds.iter()) {
                        *margin += params.eta * p;
                    }
                },
            );
            trees.push(tree);
        }
        Self {
            trees,
            base_score,
            eta: params.eta,
            m,
        }
    }

    /// Raw additive margin (log-odds) at `x`.
    pub fn margin(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.m, "prediction dimensionality mismatch");
        self.base_score + self.eta * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Number of boosted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The fitted base score (log-odds prior added to every margin).
    pub fn base_score(&self) -> f64 {
        self.base_score
    }

    /// The fitted learning rate applied to the summed tree outputs.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Borrowed flat arenas in boosting order — the order margins
    /// accumulate in, which serializers (`reds-json`, `reds-art`) must
    /// preserve for bit-identical round trips.
    pub fn arenas(&self) -> impl ExactSizeIterator<Item = &FlatTree> {
        self.trees.iter().map(|t| &t.flat)
    }

    /// Number of input columns the ensemble was fitted on.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Serializes the fitted ensemble: each tree is an array of nodes —
    /// leaves `[weight]`, splits `[feature, threshold, left, right]`
    /// (the in-memory layout always has `left == i + 1`, but the wire
    /// format keeps both children explicit for compatibility).
    pub fn to_json(&self) -> reds_json::Json {
        use crate::persist::f64_to_json;
        use reds_json::Json;
        let tree_to_json = |tree: &GradientTree| {
            let flat = &tree.flat;
            Json::arr((0..flat.n_nodes()).map(|i| {
                if flat.is_leaf(i) {
                    Json::arr([f64_to_json(flat.value(i))])
                } else {
                    Json::arr([
                        Json::num(flat.feature(i) as f64),
                        f64_to_json(flat.value(i)),
                        Json::num((i + 1) as f64),
                        Json::num(flat.right(i) as f64),
                    ])
                }
            }))
        };
        Json::obj([
            ("m", Json::num(self.m as f64)),
            ("base_score", f64_to_json(self.base_score)),
            ("eta", f64_to_json(self.eta)),
            ("trees", Json::arr(self.trees.iter().map(tree_to_json))),
        ])
    }

    /// Reconstructs an ensemble from [`Gbdt::to_json`] output. Both
    /// children of every split must lie strictly after it in the arena
    /// (traversal terminates) and inside it; feature ids must be `< m`.
    pub fn from_json(doc: &reds_json::Json) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::{bad, f64_from_json, field, usize_from_json};
        let m = usize_from_json(field(doc, "m")?, "'m'")?;
        if m == 0 {
            return Err(bad("'m' must be positive"));
        }
        let base_score = f64_from_json(field(doc, "base_score")?)?;
        let eta = f64_from_json(field(doc, "eta")?)?;
        let tree_docs = field(doc, "trees")?
            .as_array()
            .ok_or_else(|| bad("'trees' must be an array"))?;
        let mut trees = Vec::with_capacity(tree_docs.len());
        for (ti, tree_doc) in tree_docs.iter().enumerate() {
            let arr = tree_doc
                .as_array()
                .ok_or_else(|| bad(format!("tree {ti} must be an array of nodes")))?;
            if arr.is_empty() {
                return Err(bad(format!("tree {ti} has no nodes")));
            }
            let len = arr.len();
            if len > u32::MAX as usize {
                return Err(bad(format!("tree {ti} has too many nodes")));
            }
            // First pass: decode with the original forward-reference
            // validation (children strictly after their parent and
            // inside the arena — traversal terminates).
            enum Parsed {
                Leaf(f64),
                Split {
                    feature: u32,
                    threshold: f64,
                    left: u32,
                    right: u32,
                },
            }
            let mut parsed = Vec::with_capacity(len);
            for (i, node) in arr.iter().enumerate() {
                let parts = node
                    .as_array()
                    .ok_or_else(|| bad(format!("tree {ti} node {i} must be an array")))?;
                match parts.len() {
                    1 => parsed.push(Parsed::Leaf(f64_from_json(&parts[0])?)),
                    4 => {
                        let feature = usize_from_json(&parts[0], "split feature")?;
                        if feature >= m {
                            return Err(bad(format!(
                                "tree {ti} node {i}: feature {feature} out of range (m = {m})"
                            )));
                        }
                        let threshold = f64_from_json(&parts[1])?;
                        let left = usize_from_json(&parts[2], "left child")?;
                        let right = usize_from_json(&parts[3], "right child")?;
                        if left <= i || right <= i || left >= len || right >= len {
                            return Err(bad(format!(
                                "tree {ti} node {i}: children must lie strictly forward \
                                 in the arena (left = {left}, right = {right}, len = {len})"
                            )));
                        }
                        parsed.push(Parsed::Split {
                            feature: feature as u32,
                            threshold,
                            left: left as u32,
                            right: right as u32,
                        });
                    }
                    k => {
                        return Err(bad(format!(
                            "tree {ti} node {i} has {k} fields (expected 1 or 4)"
                        )))
                    }
                }
            }
            // Second pass: re-lay the arena depth-first so the left
            // child sits at `i + 1` — the branchless layout the SIMD
            // kernels traverse. An explicit stack (no recursion) holds
            // `(old index, parent split to patch)`; pushing the right
            // subtree first makes the left subtree emit immediately
            // after its parent. Documents whose nodes form a DAG (two
            // parents sharing a child) would duplicate subtrees here,
            // so the emit count is capped at the input length.
            let mut flat = FlatTree::with_capacity(len);
            let mut stack: Vec<(u32, Option<u32>)> = vec![(0, None)];
            while let Some((old, patch)) = stack.pop() {
                if flat.n_nodes() >= len {
                    return Err(bad(format!(
                        "tree {ti}: nodes must form a tree (shared subtrees detected)"
                    )));
                }
                let new_id = match &parsed[old as usize] {
                    Parsed::Leaf(w) => flat.push_leaf(*w),
                    Parsed::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        let id = flat.push_split(*feature, *threshold);
                        stack.push((*right, Some(id)));
                        stack.push((*left, None));
                        id
                    }
                };
                if let Some(parent) = patch {
                    flat.set_right(parent, new_id);
                }
            }
            flat.validate(m).map_err(bad)?;
            trees.push(GradientTree { flat });
        }
        Ok(Self {
            trees,
            base_score,
            eta,
            m,
        })
    }
}

impl Metamodel for Gbdt {
    fn predict(&self, x: &[f64]) -> f64 {
        sigmoid(self.margin(x))
    }

    /// Tree-major batched prediction (see `RandomForest::predict_batch`
    /// for the cache rationale), traversed by the kernel resolved once
    /// per call: bit-identical to per-point [`Metamodel::predict`],
    /// parallel over row chunks.
    fn predict_batch(&self, points: &[f64], m: usize) -> Vec<f64> {
        assert_eq!(m, self.m, "prediction dimensionality mismatch");
        assert!(points.len().is_multiple_of(m.max(1)), "ragged point buffer");
        let kernel = kernels::active();
        let n = points.len() / m.max(1);
        let mut out = vec![0.0f64; n];
        reds_par::par_fill_chunks(&mut out, 4096, |start, acc| {
            let rows = &points[start * m..(start + acc.len()) * m];
            for tree in &self.trees {
                kernels::accumulate_tree(kernel, &tree.flat, rows, m, acc);
            }
            kernels::sigmoid_margins(kernel, self.base_score, self.eta, acc);
        });
        out
    }
}

impl Trainer for GbdtParams {
    fn train(&self, data: &Dataset, rng: &mut StdRng) -> Box<dyn Metamodel> {
        Box::new(Gbdt::fit(data, self, rng))
    }

    fn tag(&self) -> &'static str {
        "x"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stripe_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * 3).map(|_| rng.gen::<f64>()).collect(), 3, |x| {
            if x[0] > 0.3 && x[0] < 0.7 && x[1] > 0.2 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    #[test]
    fn gbdt_learns_a_band() {
        let train = stripe_data(400, 1);
        let test = stripe_data(1000, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let model = Gbdt::fit(&train, &GbdtParams::default(), &mut rng);
        let acc = test
            .iter()
            .filter(|(x, y)| (model.predict(x) > 0.5) == (*y > 0.5))
            .count() as f64
            / test.n() as f64;
        assert!(acc > 0.9, "GBDT accuracy {acc}");
    }

    #[test]
    fn predictions_are_probabilities() {
        let train = stripe_data(200, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let model = Gbdt::fit(&train, &GbdtParams::default(), &mut rng);
        for i in 0..30 {
            let p = model.predict(&[i as f64 / 30.0, 0.5, 0.5]);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn more_rounds_reduce_training_loss() {
        let train = stripe_data(300, 6);
        let log_loss = |model: &Gbdt| {
            train
                .iter()
                .map(|(x, y)| {
                    let p = model.predict(x).clamp(1e-9, 1.0 - 1e-9);
                    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
                })
                .sum::<f64>()
                / train.n() as f64
        };
        let short = Gbdt::fit(
            &train,
            &GbdtParams {
                n_rounds: 5,
                subsample: 1.0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(7),
        );
        let long = Gbdt::fit(
            &train,
            &GbdtParams {
                n_rounds: 100,
                subsample: 1.0,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(7),
        );
        assert!(log_loss(&long) < log_loss(&short));
    }

    #[test]
    fn constant_labels_predict_the_constant() {
        let mut rng = StdRng::seed_from_u64(8);
        let d = Dataset::from_fn((0..100).map(|_| rng.gen::<f64>()).collect(), 1, |_| 1.0).unwrap();
        let model = Gbdt::fit(&d, &GbdtParams::default(), &mut rng);
        assert!(model.predict(&[0.5]) > 0.99);
    }

    #[test]
    fn determinism_under_seed() {
        let train = stripe_data(150, 9);
        let params = GbdtParams {
            n_rounds: 20,
            ..Default::default()
        };
        let a = Gbdt::fit(&train, &params, &mut StdRng::seed_from_u64(10));
        let b = Gbdt::fit(&train, &params, &mut StdRng::seed_from_u64(10));
        assert_eq!(a.predict(&[0.4, 0.6, 0.1]), b.predict(&[0.4, 0.6, 0.1]));
    }

    #[test]
    fn trainer_tag_is_x() {
        assert_eq!(GbdtParams::default().tag(), "x");
    }
}
