//! AVX2 kernels (stable `std::arch`, runtime-dispatched).
//!
//! # Safety
//!
//! Every function here is `#[target_feature(enable = "avx2")]` and must
//! only be entered after [`super::avx2_supported`] returned `true` —
//! the dispatcher in [`super`] guarantees that. The tree kernels read
//! memory through gathered indices; [`FlatTree`]'s construction-time
//! validation (children strictly forward and in-bounds, features
//! `< m`, leaves self-looping) bounds every such index, so the gathers
//! stay inside the arena and the per-row buffers.

use std::arch::x86_64::*;

use super::{FlatTree, FlatView};

/// Rows traversed per vector group.
const GROUP: usize = 4;

/// One traversal step for a 4-row group: gathers the per-lane node
/// fields, evaluates `x[feature] <= threshold` (`_CMP_LE_OQ`, matching
/// scalar `<=` including NaN-goes-right), and advances non-leaf lanes.
/// Leaf lanes are parked (index preserved). Returns the new index
/// vector and whether every lane has reached a leaf.
///
/// # Safety
///
/// Caller must ensure AVX2 is available, `idx` holds in-arena node
/// indices, and `offs + feature` stays inside `rows` for every lane —
/// guaranteed by [`FlatTree`] validation and the caller's row layout.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn step4(
    feature: *const i32,
    value: *const f64,
    right: *const i32,
    rows: *const f64,
    offs: __m256i,
    idx: __m256i,
) -> (__m256i, bool) {
    let leaf_marker = _mm_set1_epi32(FlatTree::LEAF as i32);
    // Per-lane node fields.
    let feat = _mm256_i64gather_epi32::<4>(feature, idx);
    let leaf32 = _mm_cmpeq_epi32(feat, leaf_marker);
    if _mm_movemask_epi8(leaf32) == 0xFFFF {
        return (idx, true);
    }
    let thr = _mm256_i64gather_pd::<8>(value, idx);
    // Leaf lanes read feature 0 (always in range) — their advance is
    // discarded by the final blend, the gather just has to be safe.
    let feat_safe = _mm_andnot_si128(leaf32, feat);
    let x_index = _mm256_add_epi64(_mm256_cvtepi32_epi64(feat_safe), offs);
    let xv = _mm256_i64gather_pd::<8>(rows, x_index);
    let le = _mm256_cmp_pd::<_CMP_LE_OQ>(xv, thr);
    // Child selection: left child is implicitly `idx + 1`.
    let left = _mm256_add_epi64(idx, _mm256_set1_epi64x(1));
    let right_child = _mm256_cvtepu32_epi64(_mm256_i64gather_epi32::<4>(right, idx));
    let advanced = _mm256_blendv_epi8(right_child, left, _mm256_castpd_si256(le));
    let leaf64 = _mm256_cvtepi32_epi64(leaf32);
    (_mm256_blendv_epi8(advanced, idx, leaf64), false)
}

/// Adds the leaf values at `idx` into `acc[base..base + 4]`.
///
/// # Safety
///
/// AVX2 must be available; `idx` lanes must hold leaf indices inside
/// the arena and `acc` must hold at least `base + 4` elements.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn deposit4(value: *const f64, idx: __m256i, acc: &mut [f64], base: usize) {
    let leaves = _mm256_i64gather_pd::<8>(value, idx);
    let slot = acc.as_mut_ptr().add(base);
    _mm256_storeu_pd(slot, _mm256_add_pd(_mm256_loadu_pd(slot), leaves));
}

/// Row offsets (`row · m`) for the group starting at `base`.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn offsets4(base: usize, m: usize) -> __m256i {
    _mm256_set_epi64x(
        ((base + 3) * m) as i64,
        ((base + 2) * m) as i64,
        ((base + 1) * m) as i64,
        (base * m) as i64,
    )
}

/// Gather-based 4-wide tree traversal, two groups in flight so the
/// eight gathers of a step pair overlap. Bit-identical to the scalar
/// walk: the same predicate picks the same leaf for every row.
///
/// # Safety
///
/// AVX2 must be available (dispatcher-probed); `rows.len() == acc.len() * m`
/// with `m > 0`, and `tree` must satisfy the [`FlatTree`] invariants.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn accumulate_tree(tree: FlatView<'_>, rows: &[f64], m: usize, acc: &mut [f64]) {
    let feature = tree.features().as_ptr() as *const i32;
    let value = tree.values().as_ptr();
    let right = tree.rights().as_ptr() as *const i32;
    let rows_ptr = rows.as_ptr();
    let n = acc.len();
    let mut base = 0usize;
    // Paired groups: independent traversal chains hide gather latency.
    while base + 2 * GROUP <= n {
        let offs_a = offsets4(base, m);
        let offs_b = offsets4(base + GROUP, m);
        let mut idx_a = _mm256_setzero_si256();
        let mut idx_b = _mm256_setzero_si256();
        let (mut done_a, mut done_b) = (false, false);
        while !(done_a && done_b) {
            if !done_a {
                (idx_a, done_a) = step4(feature, value, right, rows_ptr, offs_a, idx_a);
            }
            if !done_b {
                (idx_b, done_b) = step4(feature, value, right, rows_ptr, offs_b, idx_b);
            }
        }
        deposit4(value, idx_a, acc, base);
        deposit4(value, idx_b, acc, base + GROUP);
        base += 2 * GROUP;
    }
    if base + GROUP <= n {
        let offs = offsets4(base, m);
        let mut idx = _mm256_setzero_si256();
        let mut done = false;
        while !done {
            (idx, done) = step4(feature, value, right, rows_ptr, offs, idx);
        }
        deposit4(value, idx, acc, base);
        base += GROUP;
    }
    // Remainder rows (n % 4): the scalar walk is exact, so mixing it in
    // changes no bits.
    for (lane, slot) in acc[base..].iter_mut().enumerate() {
        let row = &rows[(base + lane) * m..(base + lane + 1) * m];
        *slot += tree.predict(row);
    }
}

/// Canonical squared distance with tail handling — vector blocks plus a
/// scalar tail writing the same lane accumulators, combined in the
/// contract order `(l0 + l2) + (l1 + l3)`.
///
/// # Safety
///
/// AVX2 must be available; `a.len() == b.len()` (dispatcher-checked).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    let blocks = a.len() / 4;
    let mut acc = _mm256_setzero_pd();
    for k in 0..blocks {
        let va = _mm256_loadu_pd(a.as_ptr().add(4 * k));
        let vb = _mm256_loadu_pd(b.as_ptr().add(4 * k));
        let d = _mm256_sub_pd(va, vb);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    let tail = 4 * blocks;
    if tail < a.len() {
        let mut l = [0.0f64; 4];
        _mm256_storeu_pd(l.as_mut_ptr(), acc);
        for lane in 0..a.len() - tail {
            let d = a[tail + lane] - b[tail + lane];
            l[lane] += d * d;
        }
        return (l[0] + l[2]) + (l[1] + l[3]);
    }
    horizontal(acc)
}

/// `(l0 + l2) + (l1 + l3)` — the contract's horizontal combine.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn horizontal(acc: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(acc);
    let hi = _mm256_extractf128_pd::<1>(acc);
    let pair = _mm_add_pd(lo, hi); // (l0 + l2, l1 + l3)
    _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)))
}

/// One distance step, flavored: `d2 + (xj − sv)²` as a fused
/// multiply-add or a mul + add pair.
///
/// # Safety
///
/// AVX2 must be enabled in the calling context; `FMA = true`
/// additionally requires the `fma` feature.
#[inline(always)]
unsafe fn d2_step<const FMA: bool>(d2: __m256d, xj: __m256d, sv: __m256d) -> __m256d {
    let d = _mm256_sub_pd(xj, sv);
    if FMA {
        _mm256_fmadd_pd(d, d, d2)
    } else {
        _mm256_add_pd(d2, _mm256_mul_pd(d, d))
    }
}

/// Flavored coefficient accumulation `acc + c·e`.
///
/// # Safety
///
/// Same feature requirements as [`d2_step`].
#[inline(always)]
unsafe fn coef_step<const FMA: bool>(acc: __m256d, c: __m256d, e: __m256d) -> __m256d {
    if FMA {
        _mm256_fmadd_pd(c, e, acc)
    } else {
        _mm256_add_pd(acc, _mm256_mul_pd(c, e))
    }
}

/// RBF expansion over lane-interleaved support-vector panels: the
/// distance accumulation, the `−γ·d²` scaling, the polynomial `exp`,
/// and the coefficient multiply-accumulate all stay in one 256-bit
/// register per panel of 4 support vectors — no scalar `exp` call ever
/// interrupts the loop. Mirrors the scalar panel loop operation for
/// operation, flavor for flavor (see [`super::rbf_expand`] for the
/// contract).
///
/// # Safety
///
/// AVX2 (plus FMA when `FMA = true`) must be enabled in the calling
/// context; buffer shapes are dispatcher-checked
/// (`svs.len() == coef.len() * m_pad`, `coef.len() % 4 == 0`,
/// `m_pad % 4 == 0`, `rows.len() == out.len() * m`).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn rbf_expand_core<const FMA: bool>(
    svs: &[f64],
    coef: &[f64],
    bias: f64,
    gamma: f64,
    m_pad: usize,
    rows: &[f64],
    m: usize,
    out: &mut [f64],
) {
    let neg_gamma = _mm256_set1_pd(-gamma);
    let n_panels = coef.len() / 4;
    for (slot, row) in out.iter_mut().zip(rows.chunks_exact(m.max(1))) {
        // The query row is read in place: only the m real dimensions
        // participate (the padded tail is a bitwise no-op per the
        // contract), so no padded scratch copy exists.
        let x = row.as_ptr();
        let mut acc = _mm256_setzero_pd();
        let mut panel = svs.as_ptr();
        let mut p = 0usize;
        // Four panels in flight with one merged dimension loop: each
        // broadcast of x[j] feeds all four panels, and the serial
        // latency chains that bound a single panel (the d² accumulation,
        // the Horner chain inside the exp) are independent across
        // panels, so running four overlaps them toward the machine's FP
        // throughput limit. The accumulator updates stay in panel
        // order, so results are unchanged down to the bit vs the
        // one-panel-at-a-time loop the scalar path runs.
        while p + 4 <= n_panels {
            let p1 = panel.add(4 * m_pad);
            let p2 = panel.add(8 * m_pad);
            let p3 = panel.add(12 * m_pad);
            let mut d0 = _mm256_setzero_pd();
            let mut d1 = _mm256_setzero_pd();
            let mut d2 = _mm256_setzero_pd();
            let mut d3 = _mm256_setzero_pd();
            for j in 0..m {
                let xj = _mm256_set1_pd(*x.add(j));
                d0 = d2_step::<FMA>(d0, xj, _mm256_loadu_pd(panel.add(4 * j)));
                d1 = d2_step::<FMA>(d1, xj, _mm256_loadu_pd(p1.add(4 * j)));
                d2 = d2_step::<FMA>(d2, xj, _mm256_loadu_pd(p2.add(4 * j)));
                d3 = d2_step::<FMA>(d3, xj, _mm256_loadu_pd(p3.add(4 * j)));
            }
            let e0 = super::vexp::avx2::exp4_core::<FMA>(_mm256_mul_pd(neg_gamma, d0));
            let e1 = super::vexp::avx2::exp4_core::<FMA>(_mm256_mul_pd(neg_gamma, d1));
            let e2 = super::vexp::avx2::exp4_core::<FMA>(_mm256_mul_pd(neg_gamma, d2));
            let e3 = super::vexp::avx2::exp4_core::<FMA>(_mm256_mul_pd(neg_gamma, d3));
            let c = coef.as_ptr().add(4 * p);
            acc = coef_step::<FMA>(acc, _mm256_loadu_pd(c), e0);
            acc = coef_step::<FMA>(acc, _mm256_loadu_pd(c.add(4)), e1);
            acc = coef_step::<FMA>(acc, _mm256_loadu_pd(c.add(8)), e2);
            acc = coef_step::<FMA>(acc, _mm256_loadu_pd(c.add(12)), e3);
            panel = panel.add(16 * m_pad);
            p += 4;
        }
        // Remainder panels in pairs, then one: still overlapped where
        // possible, still in panel order.
        if p + 2 <= n_panels {
            let p1 = panel.add(4 * m_pad);
            let mut d0 = _mm256_setzero_pd();
            let mut d1 = _mm256_setzero_pd();
            for j in 0..m {
                let xj = _mm256_set1_pd(*x.add(j));
                d0 = d2_step::<FMA>(d0, xj, _mm256_loadu_pd(panel.add(4 * j)));
                d1 = d2_step::<FMA>(d1, xj, _mm256_loadu_pd(p1.add(4 * j)));
            }
            let e0 = super::vexp::avx2::exp4_core::<FMA>(_mm256_mul_pd(neg_gamma, d0));
            let e1 = super::vexp::avx2::exp4_core::<FMA>(_mm256_mul_pd(neg_gamma, d1));
            let c = coef.as_ptr().add(4 * p);
            acc = coef_step::<FMA>(acc, _mm256_loadu_pd(c), e0);
            acc = coef_step::<FMA>(acc, _mm256_loadu_pd(c.add(4)), e1);
            panel = panel.add(8 * m_pad);
            p += 2;
        }
        if p < n_panels {
            let d = panel_d2::<FMA>(x, panel, m);
            let e = super::vexp::avx2::exp4_core::<FMA>(_mm256_mul_pd(neg_gamma, d));
            acc = coef_step::<FMA>(acc, _mm256_loadu_pd(coef.as_ptr().add(4 * p)), e);
        }
        *slot = bias + horizontal(acc);
    }
}

/// Plain-flavor RBF expansion (hardware without FMA).
///
/// # Safety
///
/// AVX2 must be available; shapes dispatcher-checked (see
/// [`rbf_expand_core`]).
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn rbf_expand(
    svs: &[f64],
    coef: &[f64],
    bias: f64,
    gamma: f64,
    m_pad: usize,
    rows: &[f64],
    m: usize,
    out: &mut [f64],
) {
    rbf_expand_core::<false>(svs, coef, bias, gamma, m_pad, rows, m, out)
}

/// Fused-flavor RBF expansion.
///
/// # Safety
///
/// AVX2 **and** FMA must be available; shapes dispatcher-checked (see
/// [`rbf_expand_core`]).
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn rbf_expand_fused(
    svs: &[f64],
    coef: &[f64],
    bias: f64,
    gamma: f64,
    m_pad: usize,
    rows: &[f64],
    m: usize,
    out: &mut [f64],
) {
    rbf_expand_core::<true>(svs, coef, bias, gamma, m_pad, rows, m, out)
}

/// `−γ`-ready squared distances of one lane-interleaved panel against
/// the query row's `m` real dimensions: lane `l` accumulates panel
/// member `l`'s d² dimension-sequentially, exactly like the scalar
/// panel loop.
///
/// # Safety
///
/// AVX2 (plus FMA when `FMA = true`) must be enabled in the calling
/// context; `x` must hold `m` readable values and `panel` must hold at
/// least `4 · m`.
#[inline(always)]
unsafe fn panel_d2<const FMA: bool>(x: *const f64, panel: *const f64, m: usize) -> __m256d {
    let mut d2 = _mm256_setzero_pd();
    for j in 0..m {
        let xj = _mm256_set1_pd(*x.add(j));
        d2 = d2_step::<FMA>(d2, xj, _mm256_loadu_pd(panel.add(4 * j)));
    }
    d2
}

/// Squashes accumulated GBDT margins into probabilities in place, 4
/// lanes at a time through the polynomial `exp`; the remainder runs the
/// scalar loop, which is element-wise identical. The margin step stays
/// a plain mul + add in every flavor (matching per-point
/// `Gbdt::margin`); only the `exp` internals are flavored.
///
/// # Safety
///
/// AVX2 (plus FMA when `FMA = true`) must be enabled in the calling
/// context.
#[inline(always)]
unsafe fn sigmoid_margins_core<const FMA: bool>(
    base: f64,
    eta: f64,
    acc: &mut [f64],
    tail: fn(f64, f64, &mut [f64]),
) {
    let base_v = _mm256_set1_pd(base);
    let eta_v = _mm256_set1_pd(eta);
    let one = _mm256_set1_pd(1.0);
    let sign = _mm256_set1_pd(-0.0);
    let blocks = acc.len() / 4;
    for k in 0..blocks {
        let ptr = acc.as_mut_ptr().add(4 * k);
        let v = _mm256_loadu_pd(ptr);
        let z = _mm256_add_pd(base_v, _mm256_mul_pd(eta_v, v));
        // `−z` is a sign-bit flip in IEEE, exactly like scalar negation.
        let e = super::vexp::avx2::exp4_core::<FMA>(_mm256_xor_pd(z, sign));
        _mm256_storeu_pd(ptr, _mm256_div_pd(one, _mm256_add_pd(one, e)));
    }
    tail(base, eta, &mut acc[4 * blocks..]);
}

/// Plain-flavor sigmoid squash.
///
/// # Safety
///
/// AVX2 must be available (dispatcher-probed).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn sigmoid_margins(base: f64, eta: f64, acc: &mut [f64]) {
    sigmoid_margins_core::<false>(base, eta, acc, |base, eta, tail| {
        super::scalar::sigmoid_margins(base, eta, tail, super::vexp::exp_poly_core::<false>)
    });
}

/// Fused-flavor sigmoid squash.
///
/// # Safety
///
/// AVX2 **and** FMA must be available (dispatcher-probed).
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn sigmoid_margins_fused(base: f64, eta: f64, acc: &mut [f64]) {
    sigmoid_margins_core::<true>(base, eta, acc, |base, eta, tail| {
        // SAFETY: this closure only runs from the fma-enabled wrapper.
        unsafe { super::scalar::sigmoid_margins_fused(base, eta, tail) }
    });
}
