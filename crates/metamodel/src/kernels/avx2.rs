//! AVX2 kernels (stable `std::arch`, runtime-dispatched).
//!
//! # Safety
//!
//! Every function here is `#[target_feature(enable = "avx2")]` and must
//! only be entered after [`super::avx2_supported`] returned `true` —
//! the dispatcher in [`super`] guarantees that. The tree kernels read
//! memory through gathered indices; [`FlatTree`]'s construction-time
//! validation (children strictly forward and in-bounds, features
//! `< m`, leaves self-looping) bounds every such index, so the gathers
//! stay inside the arena and the per-row buffers.

use std::arch::x86_64::*;

use super::{FlatTree, FlatView};

/// Rows traversed per vector group.
const GROUP: usize = 4;

/// One traversal step for a 4-row group: gathers the per-lane node
/// fields, evaluates `x[feature] <= threshold` (`_CMP_LE_OQ`, matching
/// scalar `<=` including NaN-goes-right), and advances non-leaf lanes.
/// Leaf lanes are parked (index preserved). Returns the new index
/// vector and whether every lane has reached a leaf.
///
/// # Safety
///
/// Caller must ensure AVX2 is available, `idx` holds in-arena node
/// indices, and `offs + feature` stays inside `rows` for every lane —
/// guaranteed by [`FlatTree`] validation and the caller's row layout.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn step4(
    feature: *const i32,
    value: *const f64,
    right: *const i32,
    rows: *const f64,
    offs: __m256i,
    idx: __m256i,
) -> (__m256i, bool) {
    let leaf_marker = _mm_set1_epi32(FlatTree::LEAF as i32);
    // Per-lane node fields.
    let feat = _mm256_i64gather_epi32::<4>(feature, idx);
    let leaf32 = _mm_cmpeq_epi32(feat, leaf_marker);
    if _mm_movemask_epi8(leaf32) == 0xFFFF {
        return (idx, true);
    }
    let thr = _mm256_i64gather_pd::<8>(value, idx);
    // Leaf lanes read feature 0 (always in range) — their advance is
    // discarded by the final blend, the gather just has to be safe.
    let feat_safe = _mm_andnot_si128(leaf32, feat);
    let x_index = _mm256_add_epi64(_mm256_cvtepi32_epi64(feat_safe), offs);
    let xv = _mm256_i64gather_pd::<8>(rows, x_index);
    let le = _mm256_cmp_pd::<_CMP_LE_OQ>(xv, thr);
    // Child selection: left child is implicitly `idx + 1`.
    let left = _mm256_add_epi64(idx, _mm256_set1_epi64x(1));
    let right_child = _mm256_cvtepu32_epi64(_mm256_i64gather_epi32::<4>(right, idx));
    let advanced = _mm256_blendv_epi8(right_child, left, _mm256_castpd_si256(le));
    let leaf64 = _mm256_cvtepi32_epi64(leaf32);
    (_mm256_blendv_epi8(advanced, idx, leaf64), false)
}

/// Adds the leaf values at `idx` into `acc[base..base + 4]`.
///
/// # Safety
///
/// AVX2 must be available; `idx` lanes must hold leaf indices inside
/// the arena and `acc` must hold at least `base + 4` elements.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn deposit4(value: *const f64, idx: __m256i, acc: &mut [f64], base: usize) {
    let leaves = _mm256_i64gather_pd::<8>(value, idx);
    let slot = acc.as_mut_ptr().add(base);
    _mm256_storeu_pd(slot, _mm256_add_pd(_mm256_loadu_pd(slot), leaves));
}

/// Row offsets (`row · m`) for the group starting at `base`.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn offsets4(base: usize, m: usize) -> __m256i {
    _mm256_set_epi64x(
        ((base + 3) * m) as i64,
        ((base + 2) * m) as i64,
        ((base + 1) * m) as i64,
        (base * m) as i64,
    )
}

/// Gather-based 4-wide tree traversal, two groups in flight so the
/// eight gathers of a step pair overlap. Bit-identical to the scalar
/// walk: the same predicate picks the same leaf for every row.
///
/// # Safety
///
/// AVX2 must be available (dispatcher-probed); `rows.len() == acc.len() * m`
/// with `m > 0`, and `tree` must satisfy the [`FlatTree`] invariants.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn accumulate_tree(tree: FlatView<'_>, rows: &[f64], m: usize, acc: &mut [f64]) {
    let feature = tree.features().as_ptr() as *const i32;
    let value = tree.values().as_ptr();
    let right = tree.rights().as_ptr() as *const i32;
    let rows_ptr = rows.as_ptr();
    let n = acc.len();
    let mut base = 0usize;
    // Paired groups: independent traversal chains hide gather latency.
    while base + 2 * GROUP <= n {
        let offs_a = offsets4(base, m);
        let offs_b = offsets4(base + GROUP, m);
        let mut idx_a = _mm256_setzero_si256();
        let mut idx_b = _mm256_setzero_si256();
        let (mut done_a, mut done_b) = (false, false);
        while !(done_a && done_b) {
            if !done_a {
                (idx_a, done_a) = step4(feature, value, right, rows_ptr, offs_a, idx_a);
            }
            if !done_b {
                (idx_b, done_b) = step4(feature, value, right, rows_ptr, offs_b, idx_b);
            }
        }
        deposit4(value, idx_a, acc, base);
        deposit4(value, idx_b, acc, base + GROUP);
        base += 2 * GROUP;
    }
    if base + GROUP <= n {
        let offs = offsets4(base, m);
        let mut idx = _mm256_setzero_si256();
        let mut done = false;
        while !done {
            (idx, done) = step4(feature, value, right, rows_ptr, offs, idx);
        }
        deposit4(value, idx, acc, base);
        base += GROUP;
    }
    // Remainder rows (n % 4): the scalar walk is exact, so mixing it in
    // changes no bits.
    for (lane, slot) in acc[base..].iter_mut().enumerate() {
        let row = &rows[(base + lane) * m..(base + lane + 1) * m];
        *slot += tree.predict(row);
    }
}

/// Canonical squared distance with tail handling — vector blocks plus a
/// scalar tail writing the same lane accumulators, combined in the
/// contract order `(l0 + l2) + (l1 + l3)`.
///
/// # Safety
///
/// AVX2 must be available; `a.len() == b.len()` (dispatcher-checked).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    let blocks = a.len() / 4;
    let mut acc = _mm256_setzero_pd();
    for k in 0..blocks {
        let va = _mm256_loadu_pd(a.as_ptr().add(4 * k));
        let vb = _mm256_loadu_pd(b.as_ptr().add(4 * k));
        let d = _mm256_sub_pd(va, vb);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    let tail = 4 * blocks;
    if tail < a.len() {
        let mut l = [0.0f64; 4];
        _mm256_storeu_pd(l.as_mut_ptr(), acc);
        for lane in 0..a.len() - tail {
            let d = a[tail + lane] - b[tail + lane];
            l[lane] += d * d;
        }
        return (l[0] + l[2]) + (l[1] + l[3]);
    }
    horizontal(acc)
}

/// `(l0 + l2) + (l1 + l3)` — the contract's horizontal combine.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn horizontal(acc: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(acc);
    let hi = _mm256_extractf128_pd::<1>(acc);
    let pair = _mm_add_pd(lo, hi); // (l0 + l2, l1 + l3)
    _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)))
}

/// RBF expansion over zero-padded support vectors; every block is full,
/// so the inner loop is pure vector code. `exp` stays scalar — the
/// bit-identity contract only canonicalizes the distance reduction.
///
/// # Safety
///
/// AVX2 must be available; buffer shapes are dispatcher-checked
/// (`svs.len() == coef.len() * m_pad`, `m_pad % 4 == 0`,
/// `scratch.len() == m_pad`, `rows.len() == out.len() * m`).
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn rbf_expand(
    svs: &[f64],
    coef: &[f64],
    bias: f64,
    gamma: f64,
    m_pad: usize,
    rows: &[f64],
    m: usize,
    scratch: &mut [f64],
    out: &mut [f64],
) {
    let blocks = m_pad / 4;
    for (slot, row) in out.iter_mut().zip(rows.chunks_exact(m.max(1))) {
        scratch[..m].copy_from_slice(row);
        let x = scratch.as_ptr();
        let mut s = bias;
        let mut sv = svs.as_ptr();
        for &c in coef {
            let mut acc = _mm256_setzero_pd();
            for k in 0..blocks {
                let va = _mm256_loadu_pd(x.add(4 * k));
                let vb = _mm256_loadu_pd(sv.add(4 * k));
                let d = _mm256_sub_pd(va, vb);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
            }
            s += c * (-gamma * horizontal(acc)).exp();
            sv = sv.add(m_pad);
        }
        *slot = s;
    }
}
