//! Branchless structure-of-arrays tree layout shared by every kernel.

/// A fitted decision tree flattened into parallel arrays — the layout
/// both the scalar and SIMD traversal kernels walk.
///
/// Node `i` is a **split** when `feature[i] != LEAF`: `value[i]` is its
/// threshold, the left child sits implicitly at `i + 1` (depth-first
/// layout), and `right[i]` is the right-child index. Node `i` is a
/// **leaf** when `feature[i] == LEAF`: `value[i]` is the predicted
/// value and `right[i] == i` (a self-loop, so a lane parked on a leaf
/// can take either branch without leaving the node).
///
/// Construction enforces the invariants the gather-based SIMD kernels
/// rely on for memory safety: children of a split lie strictly forward
/// in the arena and inside it, and split features are in `0..m` — so a
/// traversal index can never escape the arrays and always terminates.
#[derive(Debug, Clone, Default)]
pub struct FlatTree {
    feature: Vec<u32>,
    value: Vec<f64>,
    right: Vec<u32>,
}

/// A borrowed view over a flat tree arena — the same three parallel
/// arrays as [`FlatTree`], but without owning them.
///
/// This is the layout boundary that lets `reds-art` map fitted models
/// straight off disk: a validated `(feature, value, right)` triple
/// anywhere in memory (a `FlatTree`, an mmap'd artifact section)
/// traverses through exactly the same scalar and SIMD kernels.
///
/// Views constructed with [`FlatView::new`] are checked against the
/// full traversal-safety invariants; [`FlatView::new_unchecked`]
/// defers that guarantee to the caller (for arenas validated once at
/// load time and re-viewed per batch).
#[derive(Debug, Clone, Copy)]
pub struct FlatView<'a> {
    feature: &'a [u32],
    value: &'a [f64],
    right: &'a [u32],
}

/// Shared invariant check over raw arenas: non-empty, equal-length
/// arrays, every split's children strictly forward and in bounds (left
/// implicitly at `i + 1`), features `< m`, and leaves self-looping.
/// Returns a description of the first violation.
fn validate_arena(feature: &[u32], value: &[f64], right: &[u32], m: usize) -> Result<(), String> {
    let len = feature.len();
    if value.len() != len || right.len() != len {
        return Err(format!(
            "arena arrays disagree in length ({len} features, {} values, {} rights)",
            value.len(),
            right.len()
        ));
    }
    if len == 0 {
        return Err("tree has no nodes".into());
    }
    if len > u32::MAX as usize {
        return Err("tree has too many nodes".into());
    }
    for i in 0..len {
        let f = feature[i];
        let r = right[i] as usize;
        if f == FlatTree::LEAF {
            if r != i {
                return Err(format!("leaf {i} must self-loop (right = {r})"));
            }
        } else {
            if (f as usize) >= m {
                return Err(format!("node {i}: feature {f} out of range (m = {m})"));
            }
            if i + 1 >= len || r <= i + 1 || r >= len {
                return Err(format!(
                    "node {i}: children must lie strictly forward in the arena \
                     (right = {r}, len = {len})"
                ));
            }
        }
    }
    Ok(())
}

impl<'a> FlatView<'a> {
    /// Builds a validated view over raw arenas (see [`FlatTree`] for
    /// the invariants). The returned view is safe to traverse through
    /// every kernel backend.
    pub fn new(
        feature: &'a [u32],
        value: &'a [f64],
        right: &'a [u32],
        m: usize,
    ) -> Result<Self, String> {
        validate_arena(feature, value, right, m)?;
        Ok(Self {
            feature,
            value,
            right,
        })
    }

    /// Builds a view without re-running validation.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that the arrays satisfy the
    /// [`FlatTree`] invariants for the `m` the view will be traversed
    /// with — e.g. because [`FlatView::new`] validated the same memory
    /// earlier and it has not changed since. The SIMD kernels issue
    /// unchecked gathers through these indices.
    pub unsafe fn new_unchecked(feature: &'a [u32], value: &'a [f64], right: &'a [u32]) -> Self {
        debug_assert_eq!(feature.len(), value.len());
        debug_assert_eq!(feature.len(), right.len());
        Self {
            feature,
            value,
            right,
        }
    }

    /// Number of nodes (leaves + splits).
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Raw feature array (`LEAF` marks leaves).
    pub fn features(&self) -> &'a [u32] {
        self.feature
    }

    /// Raw value array (thresholds for splits, predictions for leaves).
    pub fn values(&self) -> &'a [f64] {
        self.value
    }

    /// Raw right-child array (self-loops on leaves).
    pub fn rights(&self) -> &'a [u32] {
        self.right
    }

    /// Scalar per-point traversal — the reference every batched kernel
    /// must match bit for bit (it trivially does: the predicate
    /// `x[feature] <= threshold` picks the same leaf everywhere).
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            let f = self.feature[i];
            if f == FlatTree::LEAF {
                return self.value[i];
            }
            i = if x[f as usize] <= self.value[i] {
                i + 1
            } else {
                self.right[i] as usize
            };
        }
    }
}

impl FlatTree {
    /// Marker in [`FlatTree::feature`] for leaves.
    pub const LEAF: u32 = u32::MAX;

    /// Creates an empty arena with room for `capacity` nodes.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Self {
            feature: Vec::with_capacity(capacity),
            value: Vec::with_capacity(capacity),
            right: Vec::with_capacity(capacity),
        }
    }

    /// Appends a leaf; returns its index.
    pub(crate) fn push_leaf(&mut self, value: f64) -> u32 {
        let i = self.feature.len() as u32;
        self.feature.push(Self::LEAF);
        self.value.push(value);
        self.right.push(i);
        i
    }

    /// Appends a split whose right child is patched later with
    /// [`FlatTree::set_right`]; returns its index.
    pub(crate) fn push_split(&mut self, feature: u32, threshold: f64) -> u32 {
        debug_assert_ne!(feature, Self::LEAF);
        let i = self.feature.len() as u32;
        self.feature.push(feature);
        self.value.push(threshold);
        self.right.push(0);
        i
    }

    /// Patches the right-child index of split `i` once its left subtree
    /// has been emitted.
    pub(crate) fn set_right(&mut self, i: u32, right: u32) {
        debug_assert!(right > i, "children must lie forward in the arena");
        self.right[i as usize] = right;
    }

    /// Borrowed view over the arena. Construction already enforced the
    /// traversal invariants, so the view needs no re-validation.
    pub fn view(&self) -> FlatView<'_> {
        // SAFETY: every `FlatTree` constructor path either builds the
        // arena through push_leaf/push_split/set_right (depth-first,
        // children forward by construction) or validates via
        // `validate` before exposure.
        unsafe { FlatView::new_unchecked(&self.feature, &self.value, &self.right) }
    }

    /// Number of nodes (leaves + splits).
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.feature.iter().filter(|&&f| f == Self::LEAF).count()
    }

    /// Whether node `i` is a leaf.
    pub fn is_leaf(&self, i: usize) -> bool {
        self.feature[i] == Self::LEAF
    }

    /// Split feature of node `i` ([`FlatTree::LEAF`] for leaves).
    pub fn feature(&self, i: usize) -> u32 {
        self.feature[i]
    }

    /// Threshold (splits) or predicted value (leaves) of node `i`.
    pub fn value(&self, i: usize) -> f64 {
        self.value[i]
    }

    /// Right-child index of node `i` (self for leaves).
    pub fn right(&self, i: usize) -> u32 {
        self.right[i]
    }

    /// Scalar per-point traversal — the reference every batched kernel
    /// must match bit for bit (it trivially does: the predicate
    /// `x[feature] <= threshold` picks the same leaf everywhere).
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.view().predict(x)
    }

    /// Checks the traversal-safety invariants over a freshly decoded
    /// arena (see [`FlatView::new`] for the rules). Returns a
    /// description of the first violation.
    pub(crate) fn validate(&self, m: usize) -> Result<(), String> {
        validate_arena(&self.feature, &self.value, &self.right, m)
    }
}
