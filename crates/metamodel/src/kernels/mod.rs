//! Runtime-dispatched SIMD prediction kernels.
//!
//! The dominant term of the REDS cost model at paper scale is
//! pseudo-labeling: `L = 10⁵…10⁷` metamodel evaluations, and every
//! downstream layer (the `reds-par` fan-out, the serve micro-batcher,
//! `reds-stream` chunk labeling) bottoms out in the per-point kernels of
//! this crate. This module provides those kernels in two
//! **bit-identical** implementations selected at runtime:
//!
//! * a portable **scalar** path (the 64-lane interleaved tree walk and a
//!   canonical 4-lane squared-distance reduction), and
//! * an **AVX2** path using stable `std::arch` intrinsics (gather-based
//!   4-wide tree traversal, 4-wide RBF distance blocks), compiled on
//!   `x86_64` and entered only after a cached `cpuid` check.
//!
//! ## Bit-identity contract
//!
//! Equivalence suites (`perf_equivalence`, `stream_equivalence`,
//! `serve_end_to_end`) compare results to the exact bit, so the two
//! paths must agree exactly — not merely to a tolerance:
//!
//! * **Tree traversal** is exact by construction: both paths evaluate
//!   the same `x[feature] <= threshold` predicate (`_mm256_cmp_pd` with
//!   `_CMP_LE_OQ` matches scalar `<=` including its NaN-goes-right
//!   behaviour), reach the same leaf, and add the same leaf value.
//! * **RBF squared distances** use one canonical reduction order — four
//!   lane accumulators striding the dimensions, combined as
//!   `(l0 + l2) + (l1 + l3)` — implemented identically by the scalar
//!   loop and the AVX2 vector loop (see [`squared_distance`]).
//! * **`exp`** (the RBF expansion, the GBDT sigmoid) evaluates one
//!   canonical range-reduced polynomial whose scalar and 4-wide AVX2
//!   implementations share every operation and blend rule (see
//!   [`vexp`]), so vectorizing it changes no bits between backends.
//!   The polynomial (and the RBF multiply-accumulates around it) comes
//!   in a fused (FMA) and a plain arithmetic flavor, resolved once per
//!   process from the CPU ([`vexp::fma_supported`]) and always shared
//!   by both backends. `REDS_EXP=libm` routes both backends through
//!   scalar libm instead, as an A/B escape hatch.
//!
//! Because the paths are bit-identical, dispatch may differ between
//! machines, threads, or runs without ever changing a result.
//!
//! ## Selecting a kernel
//!
//! [`active`] resolves the kernel once per `predict_batch` call from,
//! in priority order: a programmatic [`set_kernel`] override (used by
//! benches and tests), the `REDS_KERNEL` environment variable
//! (`scalar` or `avx2`), and a cached CPU-feature probe. Requesting
//! `avx2` on hardware without it falls back to scalar, so
//! `REDS_KERNEL=avx2` is always safe to set.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

mod flat;
mod scalar;
pub mod vexp;

#[cfg(target_arch = "x86_64")]
mod avx2;

pub use flat::{FlatTree, FlatView};
pub use vexp::{exp, ExpBackend};

/// A prediction-kernel implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Portable scalar path; bit-identical reference for every other
    /// backend and the only one available off `x86_64`.
    Scalar,
    /// 4-wide AVX2 lanes (gathered tree traversal, vector RBF blocks);
    /// requires a runtime `avx2` feature probe.
    Avx2,
}

impl Kernel {
    /// Stable lowercase name (`"scalar"` / `"avx2"`), as accepted by
    /// the `REDS_KERNEL` environment variable and reported by the
    /// serving `info` command.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Avx2 => "avx2",
        }
    }
}

/// `0` = no override, `1` = scalar, `2` = avx2.
static KERNEL_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Environment + cpuid resolution, performed once per process.
static RESOLVED: OnceLock<Kernel> = OnceLock::new();

/// Whether this process can execute the AVX2 kernels (compile target
/// is `x86_64` **and** the CPU reports the feature). The probe result
/// is cached by the standard library, so calling this is cheap.
pub fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Forces the kernel for subsequent [`active`] calls (`None` clears the
/// override). Intended for benchmarks and the equivalence tests that
/// compare backends side by side; requesting [`Kernel::Avx2`] on
/// hardware without it still resolves to scalar.
pub fn set_kernel(kernel: Option<Kernel>) {
    let code = match kernel {
        None => 0,
        Some(Kernel::Scalar) => 1,
        Some(Kernel::Avx2) => 2,
    };
    KERNEL_OVERRIDE.store(code, Ordering::SeqCst);
}

/// The kernel `predict_batch` implementations should use, resolved
/// from (in priority order) the [`set_kernel`] override, the
/// `REDS_KERNEL` environment variable, and a cached CPU-feature probe.
/// Callers resolve this **once per batch** and thread the choice
/// through their workers rather than re-probing per chunk.
pub fn active() -> Kernel {
    match KERNEL_OVERRIDE.load(Ordering::SeqCst) {
        1 => return Kernel::Scalar,
        2 if avx2_supported() => return Kernel::Avx2,
        2 => return Kernel::Scalar,
        _ => {}
    }
    *RESOLVED.get_or_init(|| match std::env::var("REDS_KERNEL").as_deref() {
        Ok("scalar") => Kernel::Scalar,
        Ok("avx2") if avx2_supported() => Kernel::Avx2,
        // An explicit avx2 request on unsupported hardware degrades to
        // scalar (documented), keeping REDS_KERNEL=avx2 safe anywhere.
        Ok("avx2") => Kernel::Scalar,
        _ if avx2_supported() => Kernel::Avx2,
        _ => Kernel::Scalar,
    })
}

/// Adds `tree`'s prediction for every row of `rows` (row-major, `m`
/// columns) into `acc`, using the selected kernel. Bit-identical across
/// kernels: traversal is exact, so every backend reaches the same leaf
/// and adds the same value.
pub fn accumulate_tree(kernel: Kernel, tree: &FlatTree, rows: &[f64], m: usize, acc: &mut [f64]) {
    accumulate_tree_view(kernel, tree.view(), rows, m, acc)
}

/// [`accumulate_tree`] over a borrowed arena view — the entry point for
/// memory-mapped trees (`reds-art`), whose arenas live outside any
/// `FlatTree`. The view must satisfy the [`FlatTree`] invariants for
/// this `m` ([`FlatView::new`] checks them): the AVX2 backend gathers
/// through the arena indices unchecked.
pub fn accumulate_tree_view(
    kernel: Kernel,
    tree: FlatView<'_>,
    rows: &[f64],
    m: usize,
    acc: &mut [f64],
) {
    assert_eq!(rows.len(), acc.len() * m, "row buffer shape mismatch");
    if acc.is_empty() {
        return;
    }
    match kernel {
        Kernel::Scalar => scalar::accumulate_tree(tree, rows, m, acc),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the cached feature probe just succeeded (`Kernel` is
        // a public enum, so an explicit `Avx2` cannot be trusted to
        // imply support), and the view's validation (at `FlatView::new`
        // or `FlatTree` construction) bounds every index the gathers
        // dereference.
        Kernel::Avx2 if m > 0 && avx2_supported() => unsafe {
            avx2::accumulate_tree(tree, rows, m, acc)
        },
        // m == 0 has no feature to gather (the scalar walk handles the
        // degenerate single-leaf tree without touching `rows`);
        // unsupported Avx2 degrades to scalar, like dispatch does.
        _ => scalar::accumulate_tree(tree, rows, m, acc),
    }
}

/// Canonical squared Euclidean distance `‖a − b‖²`.
///
/// The reduction order is part of the kernel contract: four lane
/// accumulators `l[lane] += (a[4k+lane] − b[4k+lane])²` stride the
/// dimensions (the tail block populates lanes `0..len % 4` only), and
/// the total is `(l0 + l2) + (l1 + l3)` — exactly the horizontal-add
/// order of a 256-bit register. Padding both operands with trailing
/// zeros is a bitwise no-op (squares are `+0.0`, and `x + 0.0 == x`
/// for every non-negative accumulator value), which is what lets the
/// AVX2 path run on zero-padded buffers with no remainder handling.
///
/// **NaN caveat**: when the result is NaN (a NaN input, or `∞ − ∞`
/// from matching infinite coordinates), every backend returns NaN but
/// the payload/sign bits may differ — LLVM is free to commute scalar
/// FP adds precisely because NaN payloads are unspecified, so
/// payload-exact NaN equality cannot be promised by *any* pair of
/// compiled implementations. All finite and infinite results are
/// bit-exact, and downstream hard decisions (`NaN > 0.0` is `false`
/// everywhere) are unaffected.
pub fn squared_distance(kernel: Kernel, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "operand length mismatch");
    match kernel {
        Kernel::Scalar => scalar::squared_distance(a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the cached feature probe just succeeded.
        Kernel::Avx2 if avx2_supported() => unsafe { avx2::squared_distance(a, b) },
        // Explicit Avx2 without hardware support degrades to scalar.
        _ => scalar::squared_distance(a, b),
    }
}

/// RBF kernel expansion for a batch of rows:
/// `out[r] = bias + Σ_i coef[i] · exp(−gamma · ‖rows[r] − sv_i‖²)`,
/// accumulated in the canonical panel order below.
///
/// `svs` is the **panel-interleaved** support-vector buffer built at
/// `Svm::assemble`: support vectors grouped 4 to a panel (count padded
/// with zero vectors and zero coefficients), each panel laid out
/// dimension-major (`panel[4·j + lane]` = dimension `j` of panel
/// member `lane`, `j < m_pad`, `m_pad` a multiple of 4 with trailing
/// zero dimensions). `coef` is padded to `4 · n_panels` to match.
///
/// The canonical accumulation order is part of the kernel contract:
/// per panel, lane `l` accumulates `d²` for panel member `l` over the
/// `m` real dimensions sequentially, the four `coef·exp(−γ·d²)`
/// products add into four running lane sums across panels, and the
/// result is `bias + ((s0 + s2) + (s1 + s3))`. Both backends implement
/// exactly this order (the AVX2 path holds each panel in one register
/// end-to-end — distances, `exp`, and coefficient multiply-accumulate
/// never leave registers), in the arithmetic flavor
/// [`vexp::fma_supported`] resolves, so scalar and SIMD are
/// bit-identical. The padded dimensions `m..m_pad` are **skipped**:
/// both the query padding and the stored padding are exactly zero, so
/// each skipped step would compute `d2 + (0 − 0)² = d2` — a bitwise
/// no-op (`x + 0.0 == x` for the non-negative accumulator) that no
/// backend needs to execute. Under `REDS_EXP=libm` both kernels route
/// through the scalar loop with libm `exp` instead.
#[allow(clippy::too_many_arguments)]
pub fn rbf_expand(
    kernel: Kernel,
    svs: &[f64],
    coef: &[f64],
    bias: f64,
    gamma: f64,
    m_pad: usize,
    rows: &[f64],
    m: usize,
    out: &mut [f64],
) {
    assert!(m_pad.is_multiple_of(4) && m <= m_pad, "bad padded width");
    assert!(
        m > 0 || out.is_empty(),
        "zero-width rows cannot be expanded"
    );
    assert!(
        coef.len().is_multiple_of(4),
        "coefficients must fill panels"
    );
    assert_eq!(svs.len(), coef.len() * m_pad, "support buffer shape");
    assert_eq!(rows.len(), out.len() * m, "row buffer shape");
    match (kernel, vexp::backend()) {
        // The libm escape hatch: both kernel backends take the scalar
        // panel loop (plain flavor) so the A/B toggles exactly one
        // thing — which exp.
        (_, ExpBackend::Libm) => {
            scalar::rbf_expand(svs, coef, bias, gamma, m_pad, rows, m, out, f64::exp)
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the cached feature probes just succeeded; all buffers
        // were shape-checked above.
        (Kernel::Avx2, ExpBackend::Poly) if avx2_supported() => unsafe {
            if vexp::fma_supported() {
                avx2::rbf_expand_fused(svs, coef, bias, gamma, m_pad, rows, m, out)
            } else {
                avx2::rbf_expand(svs, coef, bias, gamma, m_pad, rows, m, out)
            }
        },
        // Scalar request, or explicit Avx2 without hardware support —
        // in the same arithmetic flavor the AVX2 path would use, so the
        // two backends stay bit-identical on every machine.
        _ => {
            #[cfg(target_arch = "x86_64")]
            if vexp::fma_supported() {
                // SAFETY: the cached feature probe just succeeded.
                unsafe { scalar::rbf_expand_fused(svs, coef, bias, gamma, m_pad, rows, m, out) }
                return;
            }
            scalar::rbf_expand(
                svs,
                coef,
                bias,
                gamma,
                m_pad,
                rows,
                m,
                out,
                vexp::exp_poly_core::<false>,
            )
        }
    }
}

/// Squashes accumulated GBDT margins into probabilities in place:
/// `acc[i] ← 1 / (1 + exp(−(base + eta·acc[i])))` — the batched,
/// `vexp`-vectorized form of the per-point sigmoid. Element-wise with
/// one canonical op order (`mul`, `add`, negate, `exp`, `add`, `div`),
/// so scalar and AVX2 agree bitwise on every element, and per-point
/// `Gbdt::predict` (which squashes through [`vexp::exp`]) matches the
/// batch by construction. Under `REDS_EXP=libm` both backends take the
/// scalar loop with libm `exp`.
pub fn sigmoid_margins(kernel: Kernel, base: f64, eta: f64, acc: &mut [f64]) {
    match (kernel, vexp::backend()) {
        (_, ExpBackend::Libm) => scalar::sigmoid_margins(base, eta, acc, f64::exp),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the cached feature probes just succeeded.
        (Kernel::Avx2, ExpBackend::Poly) if avx2_supported() => unsafe {
            if vexp::fma_supported() {
                avx2::sigmoid_margins_fused(base, eta, acc)
            } else {
                avx2::sigmoid_margins(base, eta, acc)
            }
        },
        _ => {
            #[cfg(target_arch = "x86_64")]
            if vexp::fma_supported() {
                // SAFETY: the cached feature probe just succeeded.
                unsafe { scalar::sigmoid_margins_fused(base, eta, acc) }
                return;
            }
            scalar::sigmoid_margins(base, eta, acc, vexp::exp_poly_core::<false>)
        }
    }
}

/// Element-wise `exp` over a slice under explicit kernel and backend —
/// the raw `vexp` entry point, primarily for the equivalence suites
/// and benches (production paths go through [`rbf_expand`] /
/// [`sigmoid_margins`], which resolve the backend themselves).
pub fn exp_in_place(kernel: Kernel, backend: ExpBackend, xs: &mut [f64]) {
    match (kernel, backend) {
        (_, ExpBackend::Libm) => {
            for v in xs.iter_mut() {
                *v = v.exp();
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the cached feature probes just succeeded.
        (Kernel::Avx2, ExpBackend::Poly) if avx2_supported() => unsafe {
            use std::arch::x86_64::*;
            let blocks = xs.len() / 4;
            let fused = vexp::fma_supported();
            for k in 0..blocks {
                let ptr = xs.as_mut_ptr().add(4 * k);
                let x = _mm256_loadu_pd(ptr);
                let e = if fused {
                    vexp::avx2::exp4_fused(x)
                } else {
                    vexp::avx2::exp4(x)
                };
                _mm256_storeu_pd(ptr, e);
            }
            // The tail's `exp_poly` resolves the same flavor.
            for v in &mut xs[4 * blocks..] {
                *v = vexp::exp_poly(*v);
            }
        },
        _ => {
            #[cfg(target_arch = "x86_64")]
            if vexp::fma_supported() {
                // SAFETY: the cached feature probe just succeeded.
                unsafe { vexp::exp_slice_fused(xs) }
                return;
            }
            for v in xs.iter_mut() {
                *v = vexp::exp_poly_core::<false>(*v);
            }
        }
    }
}

/// Rounds `m` up to the next multiple of 4 — the padded width the AVX2
/// RBF kernel operates on (at least one block, so `m = 0` pads to 4).
pub fn padded_width(m: usize) -> usize {
    m.max(1).div_ceil(4) * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Kernels available on this machine (scalar always; AVX2 when the
    /// CPU supports it). Unit tests sweep this so the suite still
    /// passes — scalar-only — on hardware without AVX2.
    fn kernels() -> Vec<Kernel> {
        let mut ks = vec![Kernel::Scalar];
        if avx2_supported() {
            ks.push(Kernel::Avx2);
        }
        ks
    }

    #[test]
    fn squared_distance_matches_across_kernels_and_tails() {
        for len in 0..13usize {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.11).cos()).collect();
            let want = squared_distance(Kernel::Scalar, &a, &b);
            for k in kernels() {
                let got = squared_distance(k, &a, &b);
                assert_eq!(got.to_bits(), want.to_bits(), "len {len} kernel {k:?}");
            }
        }
    }

    #[test]
    fn squared_distance_propagates_non_finite_values() {
        let a = [f64::INFINITY, 0.0, 1.0, 2.0, 3.0];
        let b = [0.0, f64::NAN, 1.0, 2.0, 3.0];
        for k in kernels() {
            assert!(squared_distance(k, &a, &b).is_nan(), "kernel {k:?}");
        }
        let a = [f64::INFINITY, 0.0];
        let b = [0.0, 0.0];
        for k in kernels() {
            assert_eq!(squared_distance(k, &a, &b), f64::INFINITY);
        }
    }

    #[test]
    fn padded_width_rounds_up_to_blocks() {
        assert_eq!(padded_width(0), 4);
        assert_eq!(padded_width(1), 4);
        assert_eq!(padded_width(4), 4);
        assert_eq!(padded_width(5), 8);
        assert_eq!(padded_width(12), 12);
    }

    #[test]
    fn override_forces_the_scalar_kernel() {
        set_kernel(Some(Kernel::Scalar));
        assert_eq!(active(), Kernel::Scalar);
        set_kernel(None);
        if avx2_supported() {
            set_kernel(Some(Kernel::Avx2));
            assert_eq!(active(), Kernel::Avx2);
            set_kernel(None);
        }
    }
}
