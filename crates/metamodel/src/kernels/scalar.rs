//! Portable scalar kernels — the bit-identity reference.
//!
//! The tree walk keeps the 64-lane software-interleaved scheme of the
//! presorted-engine PR (independent rows advance round-robin so their
//! node loads overlap), now over the structure-of-arrays [`FlatTree`];
//! the RBF reduction implements the canonical 4-lane order documented
//! on [`super::squared_distance`]. These are real production kernels —
//! the only ones off `x86_64` — not a slow oracle.

use super::{FlatTree, FlatView};

/// Adds `tree`'s prediction for every row into `acc` (shapes already
/// checked by the dispatcher).
pub(super) fn accumulate_tree(tree: FlatView<'_>, rows: &[f64], m: usize, acc: &mut [f64]) {
    const LANES: usize = 64;
    let feature = tree.features();
    let value = tree.values();
    let right = tree.rights();
    let mut base = 0usize;
    while base < acc.len() {
        let k = LANES.min(acc.len() - base);
        let mut idx = [0u32; LANES];
        let mut off = [0usize; LANES];
        for (lane, o) in off.iter_mut().enumerate().take(k) {
            *o = (base + lane) * m;
        }
        // One bit per lane still walking; cleared on leaf arrival.
        let mut live: u64 = if k == LANES {
            u64::MAX
        } else {
            (1u64 << k) - 1
        };
        while live != 0 {
            let mut scan = live;
            while scan != 0 {
                let lane = scan.trailing_zeros() as usize;
                scan &= scan - 1;
                let i = idx[lane] as usize;
                let f = feature[i];
                if f == FlatTree::LEAF {
                    acc[base + lane] += value[i];
                    live &= !(1u64 << lane);
                } else {
                    let xv = rows[off[lane] + f as usize];
                    idx[lane] = if xv <= value[i] {
                        idx[lane] + 1
                    } else {
                        right[i]
                    };
                }
            }
        }
        base += k;
    }
}

/// Canonical 4-lane squared distance (see [`super::squared_distance`]
/// for the reduction-order contract).
pub(super) fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    let mut l = [0.0f64; 4];
    let mut j = 0usize;
    while j + 4 <= a.len() {
        for (lane, acc) in l.iter_mut().enumerate() {
            let d = a[j + lane] - b[j + lane];
            *acc += d * d;
        }
        j += 4;
    }
    for lane in 0..a.len() - j {
        let d = a[j + lane] - b[j + lane];
        l[lane] += d * d;
    }
    (l[0] + l[2]) + (l[1] + l[3])
}

/// RBF expansion over zero-padded support vectors; the padded query in
/// `scratch` makes every block full, which is bitwise equivalent to the
/// tail-handling loop above (padding contributes exact `+0.0` to
/// non-negative lane accumulators).
#[allow(clippy::too_many_arguments)]
pub(super) fn rbf_expand(
    svs: &[f64],
    coef: &[f64],
    bias: f64,
    gamma: f64,
    m_pad: usize,
    rows: &[f64],
    m: usize,
    scratch: &mut [f64],
    out: &mut [f64],
) {
    for (slot, row) in out.iter_mut().zip(rows.chunks_exact(m.max(1))) {
        scratch[..m].copy_from_slice(row);
        let mut s = bias;
        for (&c, sv) in coef.iter().zip(svs.chunks_exact(m_pad)) {
            let mut l = [0.0f64; 4];
            let mut j = 0usize;
            while j < m_pad {
                for (lane, acc) in l.iter_mut().enumerate() {
                    let d = scratch[j + lane] - sv[j + lane];
                    *acc += d * d;
                }
                j += 4;
            }
            let d2 = (l[0] + l[2]) + (l[1] + l[3]);
            s += c * (-gamma * d2).exp();
        }
        *slot = s;
    }
}
