//! Portable scalar kernels — the bit-identity reference.
//!
//! The tree walk keeps the 64-lane software-interleaved scheme of the
//! presorted-engine PR (independent rows advance round-robin so their
//! node loads overlap), now over the structure-of-arrays [`FlatTree`];
//! the RBF reduction implements the canonical 4-lane order documented
//! on [`super::squared_distance`]. These are real production kernels —
//! the only ones off `x86_64` — not a slow oracle.

use super::{FlatTree, FlatView};

/// Adds `tree`'s prediction for every row into `acc` (shapes already
/// checked by the dispatcher).
pub(super) fn accumulate_tree(tree: FlatView<'_>, rows: &[f64], m: usize, acc: &mut [f64]) {
    const LANES: usize = 64;
    let feature = tree.features();
    let value = tree.values();
    let right = tree.rights();
    let mut base = 0usize;
    while base < acc.len() {
        let k = LANES.min(acc.len() - base);
        let mut idx = [0u32; LANES];
        let mut off = [0usize; LANES];
        for (lane, o) in off.iter_mut().enumerate().take(k) {
            *o = (base + lane) * m;
        }
        // One bit per lane still walking; cleared on leaf arrival.
        let mut live: u64 = if k == LANES {
            u64::MAX
        } else {
            (1u64 << k) - 1
        };
        while live != 0 {
            let mut scan = live;
            while scan != 0 {
                let lane = scan.trailing_zeros() as usize;
                scan &= scan - 1;
                let i = idx[lane] as usize;
                let f = feature[i];
                if f == FlatTree::LEAF {
                    acc[base + lane] += value[i];
                    live &= !(1u64 << lane);
                } else {
                    let xv = rows[off[lane] + f as usize];
                    idx[lane] = if xv <= value[i] {
                        idx[lane] + 1
                    } else {
                        right[i]
                    };
                }
            }
        }
        base += k;
    }
}

/// Canonical 4-lane squared distance (see [`super::squared_distance`]
/// for the reduction-order contract).
pub(super) fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    let mut l = [0.0f64; 4];
    let mut j = 0usize;
    while j + 4 <= a.len() {
        for (lane, acc) in l.iter_mut().enumerate() {
            let d = a[j + lane] - b[j + lane];
            *acc += d * d;
        }
        j += 4;
    }
    for lane in 0..a.len() - j {
        let d = a[j + lane] - b[j + lane];
        l[lane] += d * d;
    }
    (l[0] + l[2]) + (l[1] + l[3])
}

/// RBF expansion over the lane-interleaved support-vector panels (see
/// [`super::rbf_expand`] for the layout and reduction contract),
/// generic over the arithmetic flavor. One panel = 4 support vectors;
/// lane `l` of the distance/accumulator arrays tracks panel member
/// `l`, exactly like one 256-bit register in the AVX2 path — every
/// multiply-accumulate (fused or plain, per the flavor) lands in the
/// same order. Only the `m` real dimensions are visited: the padded
/// tail is a bitwise no-op by the contract, so the query row is read
/// in place with no padded scratch copy. `E` selects the exp
/// implementation (canonical polynomial, or libm for the
/// `REDS_EXP=libm` escape hatch).
///
/// `FMA = true` instantiations must only run inside an
/// `#[target_feature(enable = "fma")]` context (see
/// [`rbf_expand_fused`]).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn rbf_expand_body<const FMA: bool, E: Fn(f64) -> f64>(
    svs: &[f64],
    coef: &[f64],
    bias: f64,
    gamma: f64,
    m_pad: usize,
    rows: &[f64],
    m: usize,
    out: &mut [f64],
    exp: E,
) {
    let neg_gamma = -gamma;
    for (slot, row) in out.iter_mut().zip(rows.chunks_exact(m.max(1))) {
        let mut acc = [0.0f64; 4];
        for (cp, panel) in coef.chunks_exact(4).zip(svs.chunks_exact(4 * m_pad)) {
            let mut d2 = [0.0f64; 4];
            for (j, &xj) in row.iter().enumerate() {
                for (lane, l) in d2.iter_mut().enumerate() {
                    let d = xj - panel[4 * j + lane];
                    *l = if FMA { d.mul_add(d, *l) } else { *l + d * d };
                }
            }
            for (lane, l) in acc.iter_mut().enumerate() {
                let e = exp(neg_gamma * d2[lane]);
                *l = if FMA {
                    cp[lane].mul_add(e, *l)
                } else {
                    *l + cp[lane] * e
                };
            }
        }
        *slot = bias + ((acc[0] + acc[2]) + (acc[1] + acc[3]));
    }
}

/// Plain-flavor RBF panel loop — the libm escape hatch and hardware
/// without FMA.
#[allow(clippy::too_many_arguments)]
pub(super) fn rbf_expand<E: Fn(f64) -> f64>(
    svs: &[f64],
    coef: &[f64],
    bias: f64,
    gamma: f64,
    m_pad: usize,
    rows: &[f64],
    m: usize,
    out: &mut [f64],
    exp: E,
) {
    rbf_expand_body::<false, E>(svs, coef, bias, gamma, m_pad, rows, m, out, exp)
}

/// Fused-flavor RBF panel loop with the fused polynomial `exp`,
/// compiled with hardware FMA.
///
/// # Safety
///
/// The `fma` feature must be available (dispatcher-probed).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "fma")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn rbf_expand_fused(
    svs: &[f64],
    coef: &[f64],
    bias: f64,
    gamma: f64,
    m_pad: usize,
    rows: &[f64],
    m: usize,
    out: &mut [f64],
) {
    rbf_expand_body::<true, _>(
        svs,
        coef,
        bias,
        gamma,
        m_pad,
        rows,
        m,
        out,
        super::vexp::exp_poly_core::<true>,
    )
}

/// Squashes accumulated GBDT margins into probabilities in place:
/// `v ← 1 / (1 + exp(−(base + eta·v)))`. The margin step is a plain
/// mul + add in **every** flavor — per-point `Gbdt::margin` computes
/// `base + eta·Σ` with plain ops, and per-point ≡ batch bit-identity
/// is part of the contract; only the `exp` internals are flavored.
/// Element-wise — the AVX2 path performs the identical op sequence 4
/// lanes at a time, so remainder handling there can reuse this loop
/// bit-identically.
pub(super) fn sigmoid_margins<E: Fn(f64) -> f64>(base: f64, eta: f64, acc: &mut [f64], exp: E) {
    for v in acc.iter_mut() {
        let z = base + eta * *v;
        *v = 1.0 / (1.0 + exp(-z));
    }
}

/// [`sigmoid_margins`] with the fused polynomial `exp`, compiled with
/// hardware FMA (the margin step stays unfused — see above).
///
/// # Safety
///
/// The `fma` feature must be available (dispatcher-probed).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "fma")]
pub(super) unsafe fn sigmoid_margins_fused(base: f64, eta: f64, acc: &mut [f64]) {
    sigmoid_margins(base, eta, acc, super::vexp::exp_poly_core::<true>)
}
