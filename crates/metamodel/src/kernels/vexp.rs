//! Vectorizable polynomial `exp` — one canonical algorithm, two
//! bit-identical implementations.
//!
//! The RBF expansion and the GBDT sigmoid both bottom out in `exp`,
//! and libm's `exp` is a scalar call that serializes an otherwise
//! fully-vector inner loop (the SVM kernel was the one family stuck at
//! ~1.1× after the SIMD PR precisely because of it). This module
//! provides the replacement: a range-reduced polynomial `exp`
//! implemented twice — [`exp_poly`] (scalar) and `exp4` (4-wide AVX2,
//! `x86_64` only) — that are **bit-identical by construction**: the
//! same reduction, the same evaluation order, and the same
//! special-value blend rules. IEEE-754 fully determines every
//! individual `+`/`−`/`×`/`÷`/fused-multiply-add, so matching the
//! operation sequence matches every output bit.
//!
//! ## The canonical algorithm
//!
//! ```text
//! z  = x · log2(e)
//! k  = round-to-nearest-even(z)            # 2^52+2^51 shift trick
//! r  = (x − k·LN2_HI) − k·LN2_LO           # |r| ≤ ln2/2, two-part ln2
//! p  = Σ_{i=0}^{13} r^i / i!               # Horner, one step per coefficient
//! e  = (p · 2^(k1)) · 2^(k2)               # k1 = k>>1, k2 = k − k1
//! ```
//!
//! * `LN2_HI` has its 20 low mantissa bits zeroed, so `k·LN2_HI` is
//!   exact for every `|k| ≤ 2^19` that can occur (`|k| ≤ 1075` here)
//!   and the reduction costs one rounding.
//! * The degree-13 Taylor polynomial's truncation error on
//!   `|r| ≤ ln2/2` is `≈ r¹⁴/14! < 5·10⁻¹⁸` — far below the rounding
//!   noise of the Horner chain, which dominates the ULP budget.
//! * Two-step scaling (`k1 = k >> 1`, arithmetic shift, so
//!   `k1 + k2 = k` exactly) keeps both exponents in the normal range
//!   for every surviving `k ∈ [−1075, 1024]`: overflow to `+∞` and
//!   gradual underflow into denormals happen in the final IEEE
//!   multiplies, identically in both paths.
//!
//! ## Arithmetic flavors (FMA)
//!
//! AVX2 does not imply the `fma` feature, and a fused step rounds
//! differently from a separate mul + add — so the polynomial exists in
//! two **flavors** with identical structure:
//!
//! * **fused** — every `a·b + c` of the reduction, the Horner chain,
//!   and the kernels' distance/coefficient accumulation is a single
//!   fused multiply-add (scalar `f64::mul_add`, vector
//!   `_mm256_fmadd_pd`/`_mm256_fnmadd_pd`). One rounding per step:
//!   faster on every FMA machine *and* slightly closer to libm.
//! * **plain** — the same steps as separate mul + add pairs, for
//!   hardware without FMA.
//!
//! [`fma_supported`] resolves the flavor once per process from the
//! CPU, and **both** the scalar and the AVX2 implementation consult
//! it — so scalar ≡ SIMD bit-identity holds on every machine, while
//! (like any compiler or libm upgrade) results may differ between an
//! FMA machine and a non-FMA machine. Nothing in REDS pins bits across
//! machines; the equivalence suites compare backends within one
//! process.
//!
//! ## Special values (blend rules)
//!
//! | input                            | output                |
//! |----------------------------------|-----------------------|
//! | `x ≥ 709.78271289338408…`, `+∞`  | `+∞`                  |
//! | `x ≤ −745.13321910194122…`, `−∞` | `+0.0`                |
//! | `NaN`                            | the input NaN, payload
//! |                                  | and sign preserved    |
//! | denormal `x`                     | ordinary path (`k = 0`, `p ≈ 1 + x`) |
//!
//! Both cutoffs are the exact doubles where libm's `exp` overflows /
//! underflows, so the special-value blends agree with libm bit-for-bit
//! on every side of every boundary.
//!
//! The scalar path takes early returns; the AVX2 path computes the
//! ordinary lanes unconditionally (garbage in special lanes is fine —
//! the shift trick and `cvt` never fault) and blends the same three
//! cases in the same priority order. Unlike the squared-distance
//! kernels, NaN results here are payload-exact across backends: the
//! blend returns the *input* bits untouched.
//!
//! ## Backend selection (`REDS_EXP`)
//!
//! [`backend`] resolves once per process from the [`set_backend`]
//! override, then the `REDS_EXP` environment variable (`poly` or
//! `libm`), defaulting to `poly`. `libm` is an A/B escape hatch that
//! routes **both** kernel backends through the scalar libm `exp` —
//! useful for bisecting whether a numerical difference comes from the
//! polynomial or from something else — at the cost of the SIMD win.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Smallest `x` with `exp(x) = +∞` — `709.78271289338408…`, measured
/// as the exact double where libm's `exp` first overflows, so the
/// blend agrees with libm on both sides of the boundary.
pub const EXP_OVERFLOW: f64 = f64::from_bits(0x4086_2E42_FEFA_39F0);

/// Largest `x` with `exp(x) = +0.0` — `−745.13321910194122…`, the
/// exact double where libm's `exp` last underflows to zero (one ULP
/// up gives the smallest denormal).
pub const EXP_UNDERFLOW: f64 = f64::from_bits(0xC087_4910_D52D_3052);

/// `2^52 + 2^51`: adding and subtracting this rounds `|z| < 2^51` to
/// the nearest integer (ties to even) using the FPU's native rounding.
const SHIFT: f64 = 6_755_399_441_055_744.0;

const LOG2E: f64 = std::f64::consts::LOG2_E;

/// `ln 2` split so that `k · LN2_HI` is exact (20 trailing mantissa
/// zeros) for every reduced `|k| ≤ 2^19`.
const LN2_HI: f64 = f64::from_bits(0x3FE6_2E42_FEE0_0000); // 6.93147180369123816490e-1
const LN2_LO: f64 = f64::from_bits(0x3DEA_39EF_3579_3C76); // 1.90821492927058770002e-10

/// Taylor coefficients `1/i!` for `i = 13 … 2` (Horner order; the
/// trailing `… · r + 1) · r + 1` steps are spelled out in the kernels).
const POLY: [f64; 12] = [
    1.0 / 6_227_020_800.0, // 1/13!
    1.0 / 479_001_600.0,   // 1/12!
    1.0 / 39_916_800.0,    // 1/11!
    1.0 / 3_628_800.0,     // 1/10!
    1.0 / 362_880.0,       // 1/9!
    1.0 / 40_320.0,        // 1/8!
    1.0 / 5_040.0,         // 1/7!
    1.0 / 720.0,           // 1/6!
    1.0 / 120.0,           // 1/5!
    1.0 / 24.0,            // 1/4!
    1.0 / 6.0,             // 1/3!
    1.0 / 2.0,             // 1/2!
];

/// Which `exp` implementation the kernels evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpBackend {
    /// The canonical polynomial above — vectorizable, scalar ≡ AVX2
    /// bit-identical, a few ULP from libm.
    Poly,
    /// Scalar libm `exp` in **both** kernel backends (the SIMD RBF and
    /// sigmoid paths fall back to their scalar loops). A/B debugging
    /// escape hatch, not a production configuration.
    Libm,
}

impl ExpBackend {
    /// Stable lowercase name (`"poly"` / `"libm"`), as accepted by the
    /// `REDS_EXP` environment variable and reported by `serve info`.
    pub fn name(self) -> &'static str {
        match self {
            ExpBackend::Poly => "poly",
            ExpBackend::Libm => "libm",
        }
    }
}

/// `0` = no override, `1` = poly, `2` = libm.
static EXP_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// `REDS_EXP` resolution, performed once per process.
static RESOLVED: OnceLock<ExpBackend> = OnceLock::new();

/// Forces the exp backend for subsequent [`backend`] calls (`None`
/// clears the override). For benches and A/B comparisons; the
/// equivalence tests prefer the explicit-backend entry points.
pub fn set_backend(backend: Option<ExpBackend>) {
    let code = match backend {
        None => 0,
        Some(ExpBackend::Poly) => 1,
        Some(ExpBackend::Libm) => 2,
    };
    EXP_OVERRIDE.store(code, Ordering::SeqCst);
}

/// The exp backend the kernels should evaluate, resolved from (in
/// priority order) the [`set_backend`] override, the `REDS_EXP`
/// environment variable, and the `poly` default. Like the kernel ISA,
/// callers resolve this once per batch.
pub fn backend() -> ExpBackend {
    match EXP_OVERRIDE.load(Ordering::SeqCst) {
        1 => return ExpBackend::Poly,
        2 => return ExpBackend::Libm,
        _ => {}
    }
    *RESOLVED.get_or_init(|| match std::env::var("REDS_EXP").as_deref() {
        Ok("libm") => ExpBackend::Libm,
        // Unrecognized values fall through to the default rather than
        // erroring: REDS_EXP is an operational knob, and `poly` is
        // always a safe answer.
        _ => ExpBackend::Poly,
    })
}

/// Whether this process evaluates the polynomial in its **fused**
/// flavor (hardware FMA). Both the scalar and the AVX2 kernels consult
/// this one probe, so the flavor — and therefore every result bit —
/// always agrees between backends. The standard library caches the
/// cpuid, so calling this is cheap.
pub fn fma_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The canonical polynomial core, generic over the arithmetic flavor.
///
/// `FMA = true` instantiations must only run inside an
/// `#[target_feature(enable = "fma")]` context — `mul_add` otherwise
/// lowers to the (correct but slow) libm `fma` call.
#[inline(always)]
pub(super) fn exp_poly_core<const FMA: bool>(x: f64) -> f64 {
    // Blend rules, in the same priority order the vector path applies
    // them (NaN checked first here because the range tests would let it
    // fall through to the core).
    if x.is_nan() {
        return x;
    }
    if x >= EXP_OVERFLOW {
        return f64::INFINITY;
    }
    if x <= EXP_UNDERFLOW {
        return 0.0;
    }
    // Range reduction. `z + SHIFT − SHIFT` rounds to the nearest
    // integer (ties to even); the conversion to i32 is exact because
    // kf is integral and |kf| ≤ 1076.
    let z = x * LOG2E;
    let kf = (z + SHIFT) - SHIFT;
    let ki = kf as i32;
    // Two-part reduction: fused `−(kf·c) + t` (fnmadd; negating kf is
    // an exact sign flip, so `(−kf)·c ≡ −(kf·c)`) or mul + sub.
    let (t, r);
    if FMA {
        t = (-kf).mul_add(LN2_HI, x);
        r = (-kf).mul_add(LN2_LO, t);
    } else {
        t = x - kf * LN2_HI;
        r = t - kf * LN2_LO;
    }
    // Degree-13 Horner chain, one `p·r + c` step per coefficient.
    let mut p = POLY[0];
    for &c in &POLY[1..] {
        p = if FMA { p.mul_add(r, c) } else { p * r + c };
    }
    p = if FMA { p.mul_add(r, 1.0) } else { p * r + 1.0 };
    p = if FMA { p.mul_add(r, 1.0) } else { p * r + 1.0 };
    // Two-step 2^k scaling: k1 + k2 = k with both halves in the normal
    // exponent range, so overflow/denormal rounding happens in the
    // final IEEE multiplies exactly as the vector path does it. Plain
    // multiplies in both flavors.
    let k1 = ki >> 1;
    let k2 = ki - k1;
    let s1 = f64::from_bits(((k1 + 1023) as u64) << 52);
    let s2 = f64::from_bits(((k2 + 1023) as u64) << 52);
    (p * s1) * s2
}

/// Fused-flavor scalar polynomial, compiled with hardware FMA.
///
/// # Safety
///
/// The `fma` feature must be available ([`fma_supported`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "fma")]
#[inline]
pub(super) unsafe fn exp_poly_fused(x: f64) -> f64 {
    exp_poly_core::<true>(x)
}

/// Fused-flavor scalar polynomial over a whole slice — one FMA-compiled
/// loop, so the per-element flavor dispatch (and the call that blocks
/// inlining) is hoisted out of the hot path.
///
/// # Safety
///
/// The `fma` feature must be available ([`fma_supported`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "fma")]
pub(super) unsafe fn exp_slice_fused(xs: &mut [f64]) {
    for v in xs.iter_mut() {
        *v = exp_poly_core::<true>(*v);
    }
}

/// Scalar canonical polynomial `exp` — the bit-identity reference for
/// the AVX2 lanes, in the flavor this machine runs ([`fma_supported`]).
#[inline]
pub fn exp_poly(x: f64) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if fma_supported() {
        // SAFETY: the cached feature probe just succeeded.
        return unsafe { exp_poly_fused(x) };
    }
    exp_poly_core::<false>(x)
}

/// Scalar `exp` under an explicit backend.
#[inline]
pub fn exp_with(backend: ExpBackend, x: f64) -> f64 {
    match backend {
        ExpBackend::Poly => exp_poly(x),
        ExpBackend::Libm => x.exp(),
    }
}

/// Scalar `exp` under the resolved backend — what per-point prediction
/// paths (`Gbdt::predict`'s sigmoid, the SVM trainer's kernel matrix)
/// call so they stay consistent with the batched kernels.
#[inline]
pub fn exp(x: f64) -> f64 {
    exp_with(backend(), x)
}

#[cfg(target_arch = "x86_64")]
pub(super) mod avx2 {
    //! 4-wide AVX2 lanes of the canonical algorithm. Every arithmetic
    //! step mirrors [`super::exp_poly_core`] exactly, flavor for
    //! flavor: `_mm256_fmadd_pd`/`_mm256_fnmadd_pd` where the fused
    //! scalar has `mul_add`, `_mm256_mul_pd`/`_mm256_add_pd` pairs
    //! where the plain scalar has `*` and `+`, the same `SHIFT`
    //! rounding, the same two-step scaling, the same blend priority.

    use std::arch::x86_64::*;

    use super::{EXP_OVERFLOW, EXP_UNDERFLOW, LN2_HI, LN2_LO, LOG2E, POLY, SHIFT};

    /// The 4-lane polynomial core, generic over the arithmetic flavor
    /// (must mirror `exp_poly_core` step for step).
    ///
    /// # Safety
    ///
    /// AVX2 must be enabled in the calling context; `FMA = true`
    /// additionally requires the `fma` feature.
    #[inline(always)]
    pub(in crate::kernels) unsafe fn exp4_core<const FMA: bool>(x: __m256d) -> __m256d {
        // Core path, computed for every lane; special lanes produce
        // garbage (never faults: the shift trick and `cvt` are plain
        // arithmetic) that the blends below discard.
        let z = _mm256_mul_pd(x, _mm256_set1_pd(LOG2E));
        let shift = _mm256_set1_pd(SHIFT);
        let kf = _mm256_sub_pd(_mm256_add_pd(z, shift), shift);
        // kf is integral and tiny in every non-garbage lane, so the
        // (round-to-nearest) conversion is exact, matching `as i32`.
        let ki = _mm256_cvtpd_epi32(kf);
        let (t, r);
        if FMA {
            t = _mm256_fnmadd_pd(kf, _mm256_set1_pd(LN2_HI), x);
            r = _mm256_fnmadd_pd(kf, _mm256_set1_pd(LN2_LO), t);
        } else {
            t = _mm256_sub_pd(x, _mm256_mul_pd(kf, _mm256_set1_pd(LN2_HI)));
            r = _mm256_sub_pd(t, _mm256_mul_pd(kf, _mm256_set1_pd(LN2_LO)));
        }
        let mut p = _mm256_set1_pd(POLY[0]);
        for &c in &POLY[1..] {
            let cv = _mm256_set1_pd(c);
            p = if FMA {
                _mm256_fmadd_pd(p, r, cv)
            } else {
                _mm256_add_pd(_mm256_mul_pd(p, r), cv)
            };
        }
        let one = _mm256_set1_pd(1.0);
        for _ in 0..2 {
            p = if FMA {
                _mm256_fmadd_pd(p, r, one)
            } else {
                _mm256_add_pd(_mm256_mul_pd(p, r), one)
            };
        }
        // Two-step scaling: k1 = ki >> 1 (arithmetic), k2 = ki − k1,
        // biased and shifted into the exponent field.
        let k1 = _mm_srai_epi32::<1>(ki);
        let k2 = _mm_sub_epi32(ki, k1);
        let bias = _mm_set1_epi32(1023);
        let s1 = _mm256_castsi256_pd(_mm256_slli_epi64::<52>(_mm256_cvtepi32_epi64(
            _mm_add_epi32(k1, bias),
        )));
        let s2 = _mm256_castsi256_pd(_mm256_slli_epi64::<52>(_mm256_cvtepi32_epi64(
            _mm_add_epi32(k2, bias),
        )));
        let core = _mm256_mul_pd(_mm256_mul_pd(p, s1), s2);
        // Blend rules, same priority as the scalar early returns:
        // overflow, underflow, then NaN (which passes the input bits
        // through untouched — payload-exact).
        let ovf = _mm256_cmp_pd::<_CMP_GE_OQ>(x, _mm256_set1_pd(EXP_OVERFLOW));
        let und = _mm256_cmp_pd::<_CMP_LE_OQ>(x, _mm256_set1_pd(EXP_UNDERFLOW));
        let nan = _mm256_cmp_pd::<_CMP_UNORD_Q>(x, x);
        let mut e = _mm256_blendv_pd(core, _mm256_set1_pd(f64::INFINITY), ovf);
        e = _mm256_blendv_pd(e, _mm256_setzero_pd(), und);
        _mm256_blendv_pd(e, x, nan)
    }

    /// 4-lane canonical polynomial `exp`, plain flavor.
    ///
    /// # Safety
    ///
    /// AVX2 must be available (dispatcher-probed).
    #[target_feature(enable = "avx2")]
    #[inline]
    pub unsafe fn exp4(x: __m256d) -> __m256d {
        exp4_core::<false>(x)
    }

    /// 4-lane canonical polynomial `exp`, fused flavor.
    ///
    /// # Safety
    ///
    /// AVX2 **and** FMA must be available (dispatcher-probed).
    #[target_feature(enable = "avx2", enable = "fma")]
    #[inline]
    pub unsafe fn exp4_fused(x: __m256d) -> __m256d {
        exp4_core::<true>(x)
    }
}
