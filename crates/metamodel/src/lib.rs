//! Hand-rolled machine-learning metamodels for REDS.
//!
//! REDS (§6.1) trains an accurate, low-variance metamodel `AM` on the few
//! available simulation runs and uses it to pseudo-label a large sample.
//! The paper experiments with random forest, XGBoost, and an RBF-kernel
//! SVM; this crate implements all three from scratch (no ML crates):
//!
//! * [`RegressionTree`] — CART with variance-reduction splits, the shared
//!   building block;
//! * [`RandomForest`] — bagged trees with per-split feature subsampling
//!   ("f" in the paper's method names);
//! * [`Gbdt`] — gradient-boosted trees with the XGBoost second-order
//!   logistic objective ("x");
//! * [`Svm`] — soft-margin SVM with an RBF kernel trained by SMO ("s");
//! * [`tune`] — small grid-search cross-validation mirroring the paper's
//!   use of `caret`'s default tuning (§8.4.3);
//! * [`kernels`] — runtime-dispatched (scalar / AVX2) bit-identical
//!   prediction kernels behind every `predict_batch` hot path.
//!
//! All models implement [`Metamodel`]: `predict` returns an estimate of
//! `P(y = 1 | x)` (the SVM returns hard 0/1 decisions — the paper's "p"
//! probability variants are defined for forests and boosting only).

#![warn(missing_docs)]

mod forest;
mod gbdt;
pub mod kernels;
pub mod persist;
mod svm;
mod tree;
pub mod tune;

pub use forest::{NaiveRandomForest, RandomForest, RandomForestParams};
pub use gbdt::{Gbdt, GbdtParams};
pub use kernels::{FlatTree, FlatView, Kernel};
pub use persist::{PersistError, SavedModel};
pub use svm::{Svm, SvmParams};
pub use tree::{NaiveTree, RegressionTree, TreeParams};

use rand::rngs::StdRng;
use reds_data::Dataset;

/// A fitted metamodel: maps a point to an estimate of `P(y = 1 | x)`.
pub trait Metamodel: Send + Sync {
    /// Predicted positive probability (or hard 0/1 decision) at `x`.
    fn predict(&self, x: &[f64]) -> f64;

    /// Predicts every row of a row-major buffer with `m` columns.
    fn predict_batch(&self, points: &[f64], m: usize) -> Vec<f64> {
        points.chunks_exact(m).map(|x| self.predict(x)).collect()
    }
}

/// A metamodel family plus hyperparameters, ready to train — the `AM`
/// argument of Algorithm 4.
pub trait Trainer {
    /// Trains on `data`, consuming randomness from `rng` (bootstrap
    /// samples, feature subsets). Returns a boxed fitted model.
    fn train(&self, data: &Dataset, rng: &mut StdRng) -> Box<dyn Metamodel>;

    /// Human-readable family tag ("f", "x", "s" in the paper's naming).
    fn tag(&self) -> &'static str;
}
