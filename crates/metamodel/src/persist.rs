//! Model persistence: fitted metamodels serialize to and load from
//! `reds-json` documents with **bit-identical** predictions after the
//! round trip.
//!
//! Every finite `f64` survives exactly (the `reds-json` writer emits
//! shortest-round-trip decimals); the non-finite values a fitted model
//! can legitimately contain — split thresholds at `±∞` when the
//! training data held infinite coordinates, SVM support vectors copied
//! from such data — are encoded as the strings `"inf"`/`"-inf"`/`"nan"`
//! (the same convention as `HyperBox::to_json`).
//!
//! Loading validates structural invariants before constructing a model,
//! because serving loads model files across a trust boundary: node
//! child indices must strictly increase (a crafted cycle would
//! otherwise spin `predict` forever), feature ids must be in range, and
//! buffer shapes must agree. A malformed document yields a
//! [`PersistError`], never a panic or a non-terminating model.

use std::fmt;

use reds_json::Json;

use crate::{Gbdt, Metamodel, RandomForest, RegressionTree, Svm};

/// A model document that cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// Human-readable description of the first problem found.
    pub message: String,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid model document: {}", self.message)
    }
}

impl std::error::Error for PersistError {}

/// Shorthand constructor used by the per-model decoders.
pub(crate) fn bad(message: impl Into<String>) -> PersistError {
    PersistError {
        message: message.into(),
    }
}

/// Encodes an `f64` losslessly: finite values as JSON numbers (bitwise
/// round-trip), non-finite ones as marker strings.
pub fn f64_to_json(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else if v.is_nan() {
        Json::str("nan")
    } else if v > 0.0 {
        Json::str("inf")
    } else {
        Json::str("-inf")
    }
}

/// Inverse of [`f64_to_json`].
pub fn f64_from_json(doc: &Json) -> Result<f64, PersistError> {
    match doc {
        Json::Num(v) => Ok(*v),
        Json::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(bad(format!("expected a number, got string '{other}'"))),
        },
        other => Err(bad(format!("expected a number, got {other}"))),
    }
}

/// Decodes a non-negative integer stored as a JSON number, rejecting
/// negatives, fractions, and anything above `u32::MAX` — so the result
/// fits `usize` losslessly on every supported target (including 32-bit
/// ones, where a bare `as usize` would silently truncate). The single
/// integer-decode helper for every model-document loader (this crate's
/// persistence and `reds-serve` artifacts alike).
pub fn usize_from_json(doc: &Json, what: &str) -> Result<usize, PersistError> {
    let v = doc
        .as_f64()
        .ok_or_else(|| bad(format!("{what} must be a number")))?;
    if v < 0.0 || v.fract() != 0.0 || v > u32::MAX as f64 {
        return Err(bad(format!("{what} must be a small non-negative integer")));
    }
    Ok(v as usize)
}

/// Looks up a required object field.
pub(crate) fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, PersistError> {
    doc.get(key)
        .ok_or_else(|| bad(format!("missing field '{key}'")))
}

/// A fitted metamodel of any family, as read back from a model
/// document — the serving layer's unit of deployment.
///
/// Serializes as `{"family": "f"|"x"|"s", "model": {…}}`; predictions
/// delegate to the wrapped model, so `predict_batch` through a
/// `SavedModel` is bit-identical to the original fitted model.
pub enum SavedModel {
    /// Random forest ("f").
    Forest(RandomForest),
    /// Gradient-boosted trees ("x").
    Gbdt(Gbdt),
    /// RBF-kernel SVM ("s").
    Svm(Svm),
}

impl SavedModel {
    /// Family tag: "f", "x", or "s" (the paper's method-name letters).
    pub fn family(&self) -> &'static str {
        match self {
            Self::Forest(_) => "f",
            Self::Gbdt(_) => "x",
            Self::Svm(_) => "s",
        }
    }

    /// Number of input columns the model was fitted on.
    pub fn m(&self) -> usize {
        match self {
            Self::Forest(f) => f.m(),
            Self::Gbdt(g) => g.m(),
            Self::Svm(s) => s.m(),
        }
    }

    /// Serializes the model with its family tag.
    pub fn to_json(&self) -> Json {
        let model = match self {
            Self::Forest(f) => f.to_json(),
            Self::Gbdt(g) => g.to_json(),
            Self::Svm(s) => s.to_json(),
        };
        Json::obj([("family", Json::str(self.family())), ("model", model)])
    }

    /// Decodes and validates a model produced by [`SavedModel::to_json`].
    pub fn from_json(doc: &Json) -> Result<Self, PersistError> {
        let family = field(doc, "family")?
            .as_str()
            .ok_or_else(|| bad("'family' must be a string"))?;
        let model = field(doc, "model")?;
        match family {
            "f" => Ok(Self::Forest(RandomForest::from_json(model)?)),
            "x" => Ok(Self::Gbdt(Gbdt::from_json(model)?)),
            "s" => Ok(Self::Svm(Svm::from_json(model)?)),
            other => Err(bad(format!(
                "unknown model family '{other}' (expected f, x, or s)"
            ))),
        }
    }
}

impl Metamodel for SavedModel {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            Self::Forest(f) => f.predict(x),
            Self::Gbdt(g) => g.predict(x),
            Self::Svm(s) => s.predict(x),
        }
    }

    fn predict_batch(&self, points: &[f64], m: usize) -> Vec<f64> {
        match self {
            Self::Forest(f) => f.predict_batch(points, m),
            Self::Gbdt(g) => g.predict_batch(points, m),
            Self::Svm(s) => s.predict_batch(points, m),
        }
    }
}

/// Decodes a `RegressionTree` document (shared by the forest decoder).
impl RegressionTree {
    /// Serializes the node arena: leaves as `[value]`, splits as
    /// `[feature, threshold, right]` (the left child is implicit at the
    /// next index, exactly as in memory).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("m", Json::num(self.m() as f64)),
            ("nodes", self.nodes_to_json()),
        ])
    }

    /// Reconstructs a tree, validating that every split's children lie
    /// strictly forward in the arena (so traversal terminates) and every
    /// feature id is in range.
    pub fn from_json(doc: &Json) -> Result<Self, PersistError> {
        let m = usize_from_json(field(doc, "m")?, "'m'")?;
        if m == 0 {
            return Err(bad("'m' must be positive"));
        }
        Self::nodes_from_json(field(doc, "nodes")?, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GbdtParams, RandomForestParams, SvmParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use reds_data::Dataset;

    fn band_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * 3).map(|_| rng.gen::<f64>()).collect(), 3, |x| {
            if x[0] > 0.4 && x[2] < 0.7 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    fn query(n: usize, m: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * m).map(|_| rng.gen::<f64>() * 1.2 - 0.1).collect()
    }

    fn round_trip(model: &SavedModel) -> SavedModel {
        let text = model.to_json().to_string_compact();
        let doc = reds_json::from_str(&text).expect("model document parses");
        SavedModel::from_json(&doc).expect("model document decodes")
    }

    fn assert_bit_identical(a: &SavedModel, b: &SavedModel, m: usize) {
        let q = query(257, m, 99);
        let pa = a.predict_batch(&q, m);
        let pb = b.predict_batch(&q, m);
        for (i, (x, y)) in pa.iter().zip(&pb).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "row {i}: {x} vs {y}");
        }
    }

    #[test]
    fn forest_round_trips_bit_identically() {
        let data = band_data(200, 1);
        let params = RandomForestParams {
            n_trees: 25,
            ..Default::default()
        };
        let fitted = RandomForest::fit(&data, &params, &mut StdRng::seed_from_u64(2));
        let saved = SavedModel::Forest(fitted);
        let loaded = round_trip(&saved);
        assert_eq!(loaded.family(), "f");
        assert_eq!(loaded.m(), 3);
        assert_bit_identical(&saved, &loaded, 3);
    }

    #[test]
    fn gbdt_round_trips_bit_identically() {
        let data = band_data(180, 3);
        let params = GbdtParams {
            n_rounds: 30,
            ..Default::default()
        };
        let fitted = Gbdt::fit(&data, &params, &mut StdRng::seed_from_u64(4));
        let saved = SavedModel::Gbdt(fitted);
        let loaded = round_trip(&saved);
        assert_eq!(loaded.family(), "x");
        assert_bit_identical(&saved, &loaded, 3);
    }

    #[test]
    fn svm_round_trips_bit_identically() {
        let data = band_data(120, 5);
        let fitted = Svm::fit(&data, &SvmParams::default(), &mut StdRng::seed_from_u64(6));
        let saved = SavedModel::Svm(fitted);
        let loaded = round_trip(&saved);
        assert_eq!(loaded.family(), "s");
        assert_bit_identical(&saved, &loaded, 3);
    }

    #[test]
    fn infinite_coordinates_survive_the_round_trip() {
        // Infinite training coordinates produce ±∞ split thresholds and
        // support vectors; the string encoding must carry them exactly.
        let points = vec![
            f64::NEG_INFINITY,
            0.0,
            f64::INFINITY,
            1.0,
            0.5,
            2.0,
            -1.0,
            3.0,
        ];
        let labels = vec![0.0, 1.0, 1.0, 0.0];
        let data = Dataset::new(points, labels, 2).unwrap();
        let params = RandomForestParams {
            n_trees: 8,
            ..Default::default()
        };
        let fitted = RandomForest::fit(&data, &params, &mut StdRng::seed_from_u64(7));
        let saved = SavedModel::Forest(fitted);
        let loaded = round_trip(&saved);
        for x in [
            [f64::NEG_INFINITY, 0.0],
            [f64::INFINITY, 1.0],
            [0.5, 2.0],
            [-1.0, 3.0],
        ] {
            assert_eq!(saved.predict(&x).to_bits(), loaded.predict(&x).to_bits());
        }
    }

    #[test]
    fn malformed_documents_are_rejected_without_panicking() {
        let cases = [
            // Unknown family.
            r#"{"family":"q","model":{}}"#,
            // Forest with no trees.
            r#"{"family":"f","model":{"m":2,"trees":[]}}"#,
            // Tree whose split points at itself — would loop forever.
            r#"{"family":"f","model":{"m":2,"trees":[{"m":2,"nodes":[[0,0.5,0],[0.0],[1.0]]}]}}"#,
            // Tree whose split points backwards.
            r#"{"family":"f","model":{"m":2,"trees":[{"m":2,"nodes":[[0,0.5,2],[1,0.3,1],[0.0]]}]}}"#,
            // Right child out of bounds.
            r#"{"family":"f","model":{"m":2,"trees":[{"m":2,"nodes":[[0,0.5,9],[0.0],[1.0]]}]}}"#,
            // Split with a missing left child (split is the last node).
            r#"{"family":"f","model":{"m":2,"trees":[{"m":2,"nodes":[[0,0.5,0]]}]}}"#,
            // Feature id out of range.
            r#"{"family":"f","model":{"m":2,"trees":[{"m":2,"nodes":[[7,0.5,2],[0.0],[1.0]]}]}}"#,
            // Tree m disagrees with forest m.
            r#"{"family":"f","model":{"m":2,"trees":[{"m":3,"nodes":[[0.5]]}]}}"#,
            // GBDT split child cycle.
            r#"{"family":"x","model":{"m":1,"base_score":0.0,"eta":0.1,"trees":[[[0,0.5,0,0]]]}}"#,
            // GBDT children out of bounds.
            r#"{"family":"x","model":{"m":1,"base_score":0.0,"eta":0.1,"trees":[[[0,0.5,1,9],[0.1]]]}}"#,
            // SVM coef/points shape mismatch.
            r#"{"family":"s","model":{"m":2,"gamma":0.5,"bias":0.1,"coef":[1.0],"points":[0.1]}}"#,
            // Negative / fractional indices.
            r#"{"family":"f","model":{"m":2,"trees":[{"m":2,"nodes":[[-1,0.5,2],[0.0],[1.0]]}]}}"#,
            r#"{"family":"f","model":{"m":2,"trees":[{"m":2,"nodes":[[0.5,0.5,2],[0.0],[1.0]]}]}}"#,
        ];
        for text in cases {
            let doc = reds_json::from_str(text).expect("test documents are valid JSON");
            assert!(
                SavedModel::from_json(&doc).is_err(),
                "accepted malformed document: {text}"
            );
        }
    }

    #[test]
    fn valid_hand_written_tree_predicts() {
        let text = r#"{"family":"f","model":{"m":1,"trees":[
            {"m":1,"nodes":[[0,0.5,2],[0.0],[1.0]]}
        ]}}"#;
        let doc = reds_json::from_str(text).unwrap();
        let model = SavedModel::from_json(&doc).expect("valid document");
        assert_eq!(model.predict(&[0.2]), 0.0);
        assert_eq!(model.predict(&[0.8]), 1.0);
    }
}
