//! Soft-margin support vector machine with an RBF kernel, trained by
//! sequential minimal optimisation (Platt 1998) — the "s" metamodel.
//!
//! The SVM produces hard decisions, so REDS uses it only with the
//! hard-label variant (Algorithm 4, line 5 with `bnd = 0` on the decision
//! function); there is no "sp" probability variant in the paper.

use rand::rngs::StdRng;
use rand::Rng;
use reds_data::Dataset;

use crate::kernels::{self, Kernel};
use crate::{Metamodel, Trainer};

/// SVM hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SvmParams {
    /// Soft-margin penalty `C`.
    pub c: f64,
    /// RBF kernel width `γ` in `exp(−γ‖x−x'‖²)`; `None` = `1/M`.
    pub gamma: Option<f64>,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Passes without any multiplier update before stopping.
    pub max_passes: usize,
    /// Hard cap on optimisation sweeps.
    pub max_iter: usize,
}

impl Default for SvmParams {
    fn default() -> Self {
        Self {
            c: 10.0,
            gamma: None,
            tol: 1e-3,
            max_passes: 5,
            max_iter: 200,
        }
    }
}

/// A fitted RBF-kernel SVM.
pub struct Svm {
    support_points: Vec<f64>,
    support_coef: Vec<f64>, // α_i y_i
    /// Support vectors re-laid in the lane-interleaved panel layout the
    /// batched kernel reads (4 support vectors per panel, dimensions
    /// padded to `m_pad`, panel count padded with zero vectors) — built
    /// once per fitted model instead of being re-derived per row. See
    /// [`kernels::rbf_expand`] for the layout contract.
    panel_svs: Vec<f64>,
    /// `support_coef` zero-padded to a whole number of panels; the
    /// padding contributes exact `+0.0` terms to the accumulation.
    panel_coef: Vec<f64>,
    /// `m` rounded up to a whole number of 4-lane blocks.
    m_pad: usize,
    bias: f64,
    gamma: f64,
    m: usize,
}

/// RBF kernel value over the canonical squared-distance reduction (see
/// [`kernels::squared_distance`] for the order contract that keeps the
/// scalar and SIMD paths bit-identical). The exponential goes through
/// the resolved [`kernels::exp`] backend so fit-time kernel values obey
/// the same `REDS_EXP` switch as prediction.
#[inline]
fn rbf(kernel: Kernel, a: &[f64], b: &[f64], gamma: f64) -> f64 {
    kernels::exp(-gamma * kernels::squared_distance(kernel, a, b))
}

impl Svm {
    /// Trains the SVM with simplified SMO on 0/1-labelled data.
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty.
    pub fn fit(data: &Dataset, params: &SvmParams, rng: &mut impl Rng) -> Self {
        assert!(!data.is_empty(), "cannot train an SVM on empty data");
        let n = data.n();
        let m = data.m();
        let gamma = params.gamma.unwrap_or(1.0 / m as f64);
        let y: Vec<f64> = data
            .labels()
            .iter()
            .map(|&l| if l > 0.5 { 1.0 } else { -1.0 })
            .collect();
        // Degenerate single-class data: constant decision.
        if y.iter().all(|&v| v > 0.0) || y.iter().all(|&v| v < 0.0) {
            return Self::assemble(Vec::new(), Vec::new(), y[0], gamma, m);
        }
        // Full kernel matrix: the metamodel trains on the small initial
        // dataset D (N ≤ a few thousand), so O(N²) memory is fine. The
        // ISA is resolved once for the whole fit — scalar and SIMD
        // distance reductions are bit-identical, so the fitted model
        // does not depend on the dispatch outcome.
        let isa = kernels::active();
        let mut kernel = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let k = rbf(isa, data.point(i), data.point(j), gamma);
                kernel[i * n + j] = k;
                kernel[j * n + i] = k;
            }
        }
        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let decision = |alpha: &[f64], b: f64, i: usize| -> f64 {
            let mut s = b;
            for j in 0..n {
                if alpha[j] != 0.0 {
                    s += alpha[j] * y[j] * kernel[j * n + i];
                }
            }
            s
        };
        let mut passes = 0;
        let mut iter = 0;
        while passes < params.max_passes && iter < params.max_iter {
            let mut changed = 0;
            for i in 0..n {
                let e_i = decision(&alpha, b, i) - y[i];
                let violates = (y[i] * e_i < -params.tol && alpha[i] < params.c)
                    || (y[i] * e_i > params.tol && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                // Second-choice heuristic: random partner distinct from i.
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let e_j = decision(&alpha, b, j) - y[j];
                let (alpha_i_old, alpha_j_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if (y[i] - y[j]).abs() > f64::EPSILON {
                    (
                        (alpha[j] - alpha[i]).max(0.0),
                        (params.c + alpha[j] - alpha[i]).min(params.c),
                    )
                } else {
                    (
                        (alpha[i] + alpha[j] - params.c).max(0.0),
                        (alpha[i] + alpha[j]).min(params.c),
                    )
                };
                if hi - lo < 1e-12 {
                    continue;
                }
                let eta = 2.0 * kernel[i * n + j] - kernel[i * n + i] - kernel[j * n + j];
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = alpha_j_old - y[j] * (e_i - e_j) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - alpha_j_old).abs() < 1e-7 {
                    continue;
                }
                let ai = alpha_i_old + y[i] * y[j] * (alpha_j_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;
                let b1 = b
                    - e_i
                    - y[i] * (ai - alpha_i_old) * kernel[i * n + i]
                    - y[j] * (aj - alpha_j_old) * kernel[i * n + j];
                let b2 = b
                    - e_j
                    - y[i] * (ai - alpha_i_old) * kernel[i * n + j]
                    - y[j] * (aj - alpha_j_old) * kernel[j * n + j];
                b = if ai > 0.0 && ai < params.c {
                    b1
                } else if aj > 0.0 && aj < params.c {
                    b2
                } else {
                    0.5 * (b1 + b2)
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
            iter += 1;
        }
        // Keep only the support vectors.
        let mut support_points = Vec::new();
        let mut support_coef = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-10 {
                support_points.extend_from_slice(data.point(i));
                support_coef.push(alpha[i] * y[i]);
            }
        }
        Self::assemble(support_points, support_coef, b, gamma, m)
    }

    /// Finishes construction from the raw support set: builds the
    /// lane-interleaved panel layout the batched kernel reads (the
    /// cache-blocking decision lives here, once per fitted model).
    /// Shared by [`Svm::fit`], the degenerate single-class shortcut,
    /// and [`Svm::from_json`].
    fn assemble(
        support_points: Vec<f64>,
        support_coef: Vec<f64>,
        bias: f64,
        gamma: f64,
        m: usize,
    ) -> Self {
        let m_pad = kernels::padded_width(m);
        let n_panels = support_coef.len().div_ceil(4);
        let mut panel_coef = vec![0.0f64; 4 * n_panels];
        panel_coef[..support_coef.len()].copy_from_slice(&support_coef);
        // `panel_svs[p·4·m_pad + 4·j + lane]` = dimension `j` of support
        // vector `4p + lane`; missing lanes and dimensions stay zero,
        // and with a zero coefficient a zero vector contributes an
        // exact `+0.0` to the kernel accumulation.
        let mut panel_svs = vec![0.0f64; n_panels * 4 * m_pad];
        for (i, sv) in support_points.chunks_exact(m.max(1)).enumerate() {
            let panel = &mut panel_svs[(i / 4) * 4 * m_pad..(i / 4 + 1) * 4 * m_pad];
            let lane = i % 4;
            for (j, &v) in sv.iter().enumerate() {
                panel[4 * j + lane] = v;
            }
        }
        Self {
            support_points,
            support_coef,
            panel_svs,
            panel_coef,
            m_pad,
            bias,
            gamma,
            m,
        }
    }

    /// Signed decision value `Σ α_i y_i K(x_i, x) + b`, accumulated in
    /// support-vector order. Evaluated through the same batched kernel
    /// as [`Metamodel::predict_batch`] (batch of one), so per-point and
    /// batched decisions are bit-identical by construction.
    pub fn decision(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.m, "prediction dimensionality mismatch");
        // Per-point prediction sits in tuning/active-learning loops;
        // the kernel reads the query row in place (padded dimensions
        // are a contract-level no-op), so this allocates nothing.
        let mut out = [0.0f64];
        kernels::rbf_expand(
            kernels::active(),
            &self.panel_svs,
            &self.panel_coef,
            self.bias,
            self.gamma,
            self.m_pad,
            x,
            self.m,
            &mut out,
        );
        out[0]
    }

    /// Builds an SVM from a raw support set, validating the buffer
    /// shape (`support_points.len() == support_coef.len() × m`,
    /// `m > 0`). This is the deserialization entry point for binary
    /// loaders (`reds-art`): the zero-padded kernel layout is an
    /// internal detail rebuilt here, never part of a wire format.
    pub fn from_parts(
        support_points: Vec<f64>,
        support_coef: Vec<f64>,
        bias: f64,
        gamma: f64,
        m: usize,
    ) -> Result<Self, String> {
        if m == 0 {
            return Err("'m' must be positive".into());
        }
        if support_points.len() != support_coef.len() * m {
            return Err(format!(
                "support buffer of {} values does not match {} coefficients × m = {m}",
                support_points.len(),
                support_coef.len()
            ));
        }
        Ok(Self::assemble(support_points, support_coef, bias, gamma, m))
    }

    /// Kernel width γ of the RBF kernel.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Bias term `b` of the decision function.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Dual coefficients `α_i y_i`, in accumulation order.
    pub fn support_coef(&self) -> &[f64] {
        &self.support_coef
    }

    /// Row-major unpadded support-vector buffer
    /// (`n_support × m` values).
    pub fn support_points(&self) -> &[f64] {
        &self.support_points
    }

    /// Number of support vectors retained.
    pub fn n_support(&self) -> usize {
        self.support_coef.len()
    }

    /// Number of input columns the SVM was fitted on.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Serializes the fitted SVM: kernel width, bias, coefficients
    /// `α_i y_i`, and the flat row-major support-vector buffer.
    pub fn to_json(&self) -> reds_json::Json {
        use crate::persist::f64_to_json;
        use reds_json::Json;
        Json::obj([
            ("m", Json::num(self.m as f64)),
            ("gamma", f64_to_json(self.gamma)),
            ("bias", f64_to_json(self.bias)),
            (
                "coef",
                Json::arr(self.support_coef.iter().map(|&c| f64_to_json(c))),
            ),
            (
                "points",
                Json::arr(self.support_points.iter().map(|&v| f64_to_json(v))),
            ),
        ])
    }

    /// Reconstructs an SVM from [`Svm::to_json`] output, validating that
    /// the support-point buffer is exactly `coef.len() × m` wide.
    pub fn from_json(doc: &reds_json::Json) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::{bad, f64_from_json, field, usize_from_json};
        let m = usize_from_json(field(doc, "m")?, "'m'")?;
        if m == 0 {
            return Err(bad("'m' must be positive"));
        }
        let gamma = f64_from_json(field(doc, "gamma")?)?;
        let bias = f64_from_json(field(doc, "bias")?)?;
        let floats = |key: &str| -> Result<Vec<f64>, crate::persist::PersistError> {
            field(doc, key)?
                .as_array()
                .ok_or_else(|| bad(format!("'{key}' must be an array")))?
                .iter()
                .map(f64_from_json)
                .collect()
        };
        let support_coef = floats("coef")?;
        let support_points = floats("points")?;
        if support_points.len() != support_coef.len() * m {
            return Err(bad(format!(
                "support buffer of {} values does not match {} coefficients × m = {m}",
                support_points.len(),
                support_coef.len()
            )));
        }
        Ok(Self::assemble(support_points, support_coef, bias, gamma, m))
    }
}

impl Metamodel for Svm {
    /// Hard 0/1 decision (the SVM provides no calibrated probability).
    fn predict(&self, x: &[f64]) -> f64 {
        if self.decision(x) > 0.0 {
            1.0
        } else {
            0.0
        }
    }

    /// Rows are independent, so the kernel expansion fans out across
    /// threads. The ISA is resolved once per call; the kernel reads
    /// each worker's rows in place (the support-vector layout is
    /// precomputed at construction, and padded dimensions are a
    /// contract-level no-op, so no per-worker row scratch exists).
    /// Per-row arithmetic follows the canonical reduction order, so the
    /// result is bit-identical to per-point [`Metamodel::predict`] on
    /// every backend.
    fn predict_batch(&self, points: &[f64], m: usize) -> Vec<f64> {
        assert_eq!(m, self.m, "prediction dimensionality mismatch");
        assert!(points.len().is_multiple_of(m.max(1)), "ragged point buffer");
        let isa = kernels::active();
        let mut out = vec![0.0f64; points.len() / m.max(1)];
        reds_par::par_fill_chunks_with(
            &mut out,
            1024,
            || (),
            |(), start, chunk| {
                let rows = &points[start * m..(start + chunk.len()) * m];
                kernels::rbf_expand(
                    isa,
                    &self.panel_svs,
                    &self.panel_coef,
                    self.bias,
                    self.gamma,
                    self.m_pad,
                    rows,
                    m,
                    chunk,
                );
                for v in chunk.iter_mut() {
                    *v = if *v > 0.0 { 1.0 } else { 0.0 };
                }
            },
        );
        out
    }
}

impl Trainer for SvmParams {
    fn train(&self, data: &Dataset, rng: &mut StdRng) -> Box<dyn Metamodel> {
        Box::new(Svm::fit(data, self, rng))
    }

    fn tag(&self) -> &'static str {
        "s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn halfspace_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * 2).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
            if x[0] + x[1] > 1.0 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    fn disc_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * 2).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
            if (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2) < 0.08 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    #[test]
    fn learns_a_linear_boundary() {
        let train = halfspace_data(300, 1);
        let test = halfspace_data(600, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let svm = Svm::fit(&train, &SvmParams::default(), &mut rng);
        let acc = test
            .iter()
            .filter(|(x, y)| (svm.predict(x) > 0.5) == (*y > 0.5))
            .count() as f64
            / test.n() as f64;
        assert!(acc > 0.93, "SVM accuracy {acc}");
    }

    #[test]
    fn rbf_kernel_learns_a_nonlinear_disc() {
        let train = disc_data(400, 4);
        let test = disc_data(800, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let params = SvmParams {
            gamma: Some(4.0),
            ..Default::default()
        };
        let svm = Svm::fit(&train, &params, &mut rng);
        let acc = test
            .iter()
            .filter(|(x, y)| (svm.predict(x) > 0.5) == (*y > 0.5))
            .count() as f64
            / test.n() as f64;
        assert!(acc > 0.9, "SVM disc accuracy {acc}");
    }

    #[test]
    fn single_class_data_predicts_that_class() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Dataset::from_fn((0..60).map(|_| rng.gen::<f64>()).collect(), 2, |_| 1.0).unwrap();
        let svm = Svm::fit(&d, &SvmParams::default(), &mut rng);
        assert_eq!(svm.predict(&[0.5, 0.5]), 1.0);
        assert_eq!(svm.n_support(), 0);
    }

    #[test]
    fn predictions_are_hard_labels() {
        let train = halfspace_data(100, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let svm = Svm::fit(&train, &SvmParams::default(), &mut rng);
        for i in 0..20 {
            let p = svm.predict(&[i as f64 / 20.0, 0.5]);
            assert!(p == 0.0 || p == 1.0);
        }
    }

    #[test]
    fn support_vectors_are_a_subset() {
        let train = halfspace_data(200, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let svm = Svm::fit(&train, &SvmParams::default(), &mut rng);
        assert!(svm.n_support() > 0);
        assert!(svm.n_support() <= train.n());
    }
}
