//! CART regression tree — the building block of the forest metamodel.
//!
//! Splits minimise the within-node sum of squared errors (variance
//! reduction), which for 0/1 targets coincides with the Gini-style purity
//! gain, so the same tree serves probability regression and
//! classification. Nodes are stored in a flat arena for cache-friendly
//! prediction.

use rand::seq::SliceRandom;
use rand::Rng;

/// Hyperparameters of a single CART tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (root has depth 0).
    pub max_depth: usize,
    /// Minimum number of samples in each leaf.
    pub min_samples_leaf: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of features considered per split; `None` = all features.
    pub mtry: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 30,
            min_samples_leaf: 1,
            min_samples_split: 2,
            mtry: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: u32,
        right: u32,
    },
}

/// A fitted CART regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    m: usize,
}

struct Builder<'a> {
    points: &'a [f64],
    targets: &'a [f64],
    m: usize,
    params: &'a TreeParams,
    nodes: Vec<Node>,
    feature_pool: Vec<usize>,
}

impl<'a> Builder<'a> {
    fn target_sum(&self, idx: &[usize]) -> f64 {
        idx.iter().map(|&i| self.targets[i]).sum()
    }

    /// Finds the best SSE-reducing split of `idx` along `feature`.
    /// Returns `(threshold, gain, n_left)` or `None` when no admissible
    /// split exists.
    fn best_split_on(
        &self,
        idx: &mut [usize],
        feature: usize,
        total_sum: f64,
    ) -> Option<(f64, f64, usize)> {
        let n = idx.len();
        idx.sort_unstable_by(|&a, &b| {
            self.points[a * self.m + feature].total_cmp(&self.points[b * self.m + feature])
        });
        let min_leaf = self.params.min_samples_leaf;
        let mut left_sum = 0.0;
        let mut best: Option<(f64, f64, usize)> = None;
        for k in 0..n - 1 {
            left_sum += self.targets[idx[k]];
            let n_left = k + 1;
            let n_right = n - n_left;
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            let v_here = self.points[idx[k] * self.m + feature];
            let v_next = self.points[idx[k + 1] * self.m + feature];
            if v_next <= v_here {
                continue; // cannot separate equal values
            }
            // SSE reduction = left_sum²/n_l + right_sum²/n_r − total²/n
            // (constant term dropped — same for every candidate).
            let right_sum = total_sum - left_sum;
            let gain = left_sum * left_sum / n_left as f64
                + right_sum * right_sum / n_right as f64;
            if best.is_none_or(|(_, g, _)| gain > g) {
                best = Some((0.5 * (v_here + v_next), gain, n_left));
            }
        }
        // Convert the proxy score into a true gain relative to no split.
        best.map(|(thr, score, nl)| (thr, score - total_sum * total_sum / n as f64, nl))
    }

    fn build(&mut self, idx: &mut [usize], depth: usize, rng: &mut impl Rng) -> u32 {
        let n = idx.len();
        let sum = self.target_sum(idx);
        let mean = sum / n as f64;
        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { value: mean });
            (nodes.len() - 1) as u32
        };
        if depth >= self.params.max_depth || n < self.params.min_samples_split {
            return make_leaf(&mut self.nodes);
        }
        // Candidate features: all, or a fresh random subset per split
        // (random forest's per-node feature subsampling).
        let n_candidates = self.params.mtry.unwrap_or(self.m).clamp(1, self.m);
        if n_candidates < self.m {
            self.feature_pool.shuffle(rng);
        }
        let mut best: Option<(usize, f64, f64)> = None;
        for ci in 0..n_candidates {
            let feature = self.feature_pool[ci];
            if let Some((thr, gain, _)) = self.best_split_on(idx, feature, sum) {
                if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((feature, thr, gain));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            return make_leaf(&mut self.nodes);
        };
        // Partition in place around the chosen threshold.
        let split_at = itertools_partition(idx, |&i| {
            self.points[i * self.m + feature] <= threshold
        });
        debug_assert!(split_at > 0 && split_at < n);
        let node_id = self.nodes.len() as u32;
        self.nodes.push(Node::Split {
            feature,
            threshold,
            left: 0,
            right: 0,
        });
        let (left_idx, right_idx) = idx.split_at_mut(split_at);
        let left = self.build(left_idx, depth + 1, rng);
        let right = self.build(right_idx, depth + 1, rng);
        if let Node::Split {
            left: l, right: r, ..
        } = &mut self.nodes[node_id as usize]
        {
            *l = left;
            *r = right;
        }
        node_id
    }
}

/// Stable-order in-place partition; returns the number of elements
/// satisfying the predicate, which end up in the prefix.
fn itertools_partition<T: Copy>(slice: &mut [T], pred: impl Fn(&T) -> bool) -> usize {
    let mut buf: Vec<T> = Vec::with_capacity(slice.len());
    let mut n_true = 0;
    for &v in slice.iter() {
        if pred(&v) {
            n_true += 1;
        }
    }
    buf.extend(slice.iter().copied().filter(|v| pred(v)));
    buf.extend(slice.iter().copied().filter(|v| !pred(v)));
    slice.copy_from_slice(&buf);
    n_true
}

impl RegressionTree {
    /// Fits a tree to `targets` over the row-major `points` buffer with
    /// `m` columns, using rows `indices` (duplicates allowed — bootstrap
    /// samples pass repeated indices).
    ///
    /// # Panics
    ///
    /// Panics when `indices` is empty or buffers disagree on shape.
    pub fn fit(
        points: &[f64],
        targets: &[f64],
        m: usize,
        indices: &[usize],
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree to zero rows");
        assert_eq!(points.len(), targets.len() * m, "shape mismatch");
        let mut builder = Builder {
            points,
            targets,
            m,
            params,
            nodes: Vec::new(),
            feature_pool: (0..m).collect(),
        };
        let mut idx = indices.to_vec();
        let root = builder.build(&mut idx, 0, rng);
        debug_assert_eq!(root, 0);
        Self {
            nodes: builder.nodes,
            m,
        }
    }

    /// Predicted value at `x` (the mean target of the matched leaf).
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.m()`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.m, "prediction dimensionality mismatch");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Number of input columns the tree was fitted on.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of nodes (leaves + splits).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Every leaf as `(per-dimension bounds, leaf value)`, where bounds
    /// use `±∞` for unconstrained sides. The regions partition the input
    /// space — the representation CART-based scenario discovery
    /// (Lempert, Bryant & Bankes 2008) extracts boxes from.
    pub fn leaf_regions(&self) -> Vec<(Vec<(f64, f64)>, f64)> {
        let mut out = Vec::with_capacity(self.n_leaves());
        let root_bounds = vec![(f64::NEG_INFINITY, f64::INFINITY); self.m];
        self.collect_leaves(0, root_bounds, &mut out);
        out
    }

    fn collect_leaves(
        &self,
        node: usize,
        bounds: Vec<(f64, f64)>,
        out: &mut Vec<(Vec<(f64, f64)>, f64)>,
    ) {
        match &self.nodes[node] {
            Node::Leaf { value } => out.push((bounds, *value)),
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let mut lb = bounds.clone();
                lb[*feature].1 = lb[*feature].1.min(*threshold);
                self.collect_leaves(*left as usize, lb, out);
                let mut rb = bounds;
                rb[*feature].0 = rb[*feature].0.max(*threshold);
                self.collect_leaves(*right as usize, rb, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_corner() -> (Vec<f64>, Vec<f64>) {
        // Corner concept on a 20×20 grid: needs depth 2 but every split
        // has positive greedy gain (unlike symmetric XOR, which defeats
        // any greedy CART).
        let mut pts = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let x = i as f64 / 19.0;
                let y = j as f64 / 19.0;
                pts.extend_from_slice(&[x, y]);
                ys.push(if x > 0.5 && y > 0.5 { 1.0 } else { 0.0 });
            }
        }
        (pts, ys)
    }

    #[test]
    fn fits_corner_exactly() {
        let (pts, ys) = grid_corner();
        let mut rng = StdRng::seed_from_u64(0);
        let idx: Vec<usize> = (0..ys.len()).collect();
        let tree = RegressionTree::fit(&pts, &ys, 2, &idx, &TreeParams::default(), &mut rng);
        for (row, &y) in pts.chunks_exact(2).zip(&ys) {
            assert_eq!(tree.predict(row), y);
        }
    }

    #[test]
    fn depth_zero_returns_global_mean() {
        let (pts, ys) = grid_corner();
        let mut rng = StdRng::seed_from_u64(0);
        let idx: Vec<usize> = (0..ys.len()).collect();
        let params = TreeParams {
            max_depth: 0,
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&pts, &ys, 2, &idx, &params, &mut rng);
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        assert!((tree.predict(&[0.3, 0.7]) - mean).abs() < 1e-12);
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let pts: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..10).map(|i| if i < 9 { 0.0 } else { 1.0 }).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let idx: Vec<usize> = (0..10).collect();
        let params = TreeParams {
            min_samples_leaf: 3,
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&pts, &ys, 1, &idx, &params, &mut rng);
        // The best pure split (9 vs 1) is forbidden; the chosen leaf
        // containing the positive example must hold ≥ 3 samples, so its
        // mean is at most 1/3.
        assert!(tree.predict(&[9.0]) <= 1.0 / 3.0 + 1e-12);
    }

    #[test]
    fn constant_targets_yield_single_leaf() {
        let pts: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys = vec![0.7; 50];
        let mut rng = StdRng::seed_from_u64(0);
        let idx: Vec<usize> = (0..50).collect();
        let tree = RegressionTree::fit(&pts, &ys, 1, &idx, &TreeParams::default(), &mut rng);
        assert_eq!(tree.n_nodes(), 1);
        assert!((tree.predict(&[25.0]) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn duplicate_feature_values_cannot_be_split_apart() {
        // All x identical: no admissible split, single leaf.
        let pts = vec![1.0; 20];
        let ys: Vec<f64> = (0..20).map(|i| (i % 2) as f64).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let idx: Vec<usize> = (0..20).collect();
        let tree = RegressionTree::fit(&pts, &ys, 1, &idx, &TreeParams::default(), &mut rng);
        assert_eq!(tree.n_nodes(), 1);
        assert!((tree.predict(&[1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_indices_with_duplicates_work() {
        let (pts, ys) = grid_corner();
        let mut rng = StdRng::seed_from_u64(1);
        let idx: Vec<usize> = (0..ys.len()).map(|i| i % 100).collect(); // duplicates
        let tree = RegressionTree::fit(&pts, &ys, 2, &idx, &TreeParams::default(), &mut rng);
        assert!(tree.n_nodes() >= 1);
    }

    #[test]
    fn mtry_one_still_learns_axis_aligned_concept() {
        // y depends only on x1; with mtry = 1 the tree must eventually
        // pick feature 0 at some node and reach low error.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200;
        let pts: Vec<f64> = (0..n * 2).map(|_| rand::Rng::gen::<f64>(&mut rng)).collect();
        let ys: Vec<f64> = pts
            .chunks_exact(2)
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let idx: Vec<usize> = (0..n).collect();
        let params = TreeParams {
            mtry: Some(1),
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&pts, &ys, 2, &idx, &params, &mut rng);
        let errors: usize = pts
            .chunks_exact(2)
            .zip(&ys)
            .filter(|(r, &y)| (tree.predict(r) - y).abs() > 0.5)
            .count();
        assert!(errors < n / 10, "{errors} errors of {n}");
    }

    #[test]
    fn leaf_regions_partition_the_space() {
        let (pts, ys) = grid_corner();
        let mut rng = StdRng::seed_from_u64(4);
        let idx: Vec<usize> = (0..ys.len()).collect();
        let tree = RegressionTree::fit(&pts, &ys, 2, &idx, &TreeParams::default(), &mut rng);
        let regions = tree.leaf_regions();
        assert_eq!(regions.len(), tree.n_leaves());
        // Every training point falls into exactly one region, and that
        // region's value equals the tree's prediction.
        for row in pts.chunks_exact(2) {
            let matches: Vec<&(Vec<(f64, f64)>, f64)> = regions
                .iter()
                .filter(|(b, _)| {
                    b.iter()
                        .zip(row)
                        .all(|(&(lo, hi), &v)| v <= hi && (v > lo || lo.is_infinite()))
                })
                .collect();
            assert!(!matches.is_empty(), "point {row:?} in no region");
        }
    }
}
