//! CART regression tree — the building block of the forest metamodel.
//!
//! Splits minimise the within-node sum of squared errors (variance
//! reduction), which for 0/1 targets coincides with the Gini-style purity
//! gain, so the same tree serves probability regression and
//! classification.
//!
//! ## Performance
//!
//! Two optimizations keep this on the REDS hot path budget:
//!
//! * **Presorted building.** The builder argsorts every feature column
//!   **once** over the sample slots (`O(m·n log n)`) and maintains the
//!   sorted order down the tree with a stable partition at each split —
//!   the classic sklearn/ranger trick — so per-node split search is
//!   `O(m·n)` instead of `O(m·n log n)`.
//! * **Branchless structure-of-arrays arena.** Fitted nodes flatten
//!   into the parallel `feature`/`value`/`right` arrays of
//!   [`FlatTree`](crate::kernels::FlatTree) (left child implicit at
//!   `index + 1`, depth-first layout); batched prediction dispatches to
//!   the runtime-selected [`crate::kernels`] backend — the 64-lane
//!   interleaved scalar walk or the gather-based 4-wide AVX2 kernel,
//!   which are bit-identical.
//!
//! The pre-optimization tree (per-node re-sorting builder, enum-arena
//! nodes, pointer-chasing predict) is kept as [`NaiveTree`] (hidden from
//! docs) as the reference oracle for the equivalence tests and the
//! baseline of the `presort` benchmarks. Both builders order ties by
//! `(row, slot)`, so they produce bit-identical trees.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::kernels::FlatTree;

/// Hyperparameters of a single CART tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (root has depth 0).
    pub max_depth: usize,
    /// Minimum number of samples in each leaf.
    pub min_samples_leaf: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of features considered per split; `None` = all features.
    pub mtry: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 30,
            min_samples_leaf: 1,
            min_samples_split: 2,
            mtry: None,
        }
    }
}

/// Marker for leaves, mirrored from the kernel layout.
const LEAF: u32 = FlatTree::LEAF;

/// A fitted CART regression tree over the kernel-ready
/// structure-of-arrays arena.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    flat: FlatTree,
    m: usize,
}

/// The presorted tree builder.
///
/// Samples are addressed by *slot* (position in the caller's `indices`
/// array; bootstrap duplicates get distinct slots). `cols[f]` holds all
/// slots sorted by `(value of feature f, row, slot)`; each split stably
/// partitions `main` and every column in place, preserving sorted order
/// inside both children. The per-node cost is `O(m·n)` — no sorting
/// after the initial argsort.
struct Builder<'a> {
    points: &'a [f64],
    targets: &'a [f64],
    m: usize,
    params: &'a TreeParams,
    nodes: FlatTree,
    feature_pool: Vec<usize>,
    /// Slot → dataset row (bootstrap duplicates share a row).
    rows: Vec<u32>,
    /// Node-order slot array; `build` works on `main[lo..hi]`.
    main: Vec<u32>,
    /// Per-feature slot arrays sorted by `(value, slot)`.
    cols: Vec<Vec<u32>>,
    /// Scratch buffer for the stable partitions.
    scratch: Vec<u32>,
    /// Per-slot side flag of the split being applied.
    goes_left: Vec<bool>,
}

/// Split threshold between two adjacent sorted values. The midpoint can
/// round to `v_next` when the values are adjacent doubles (or overflow
/// to `±∞`/NaN for infinite values), which would send *every* sample
/// left; fall back to `v_here` in that case — `value <= v_here` still
/// separates the two runs exactly.
pub(crate) fn split_threshold(v_here: f64, v_next: f64) -> f64 {
    let mid = 0.5 * (v_here + v_next);
    if v_here < mid && mid < v_next {
        mid
    } else {
        v_here
    }
}

/// Stably partitions `slice` (of slot or row ids) by the per-id
/// `goes_left` flags, preserving relative order on both sides — which
/// keeps a `(value, id)`-sorted feature column sorted within both
/// children. Returns the left count. Shared by the CART and GBDT
/// builders.
pub(crate) fn stable_partition(
    goes_left: &[bool],
    scratch: &mut [u32],
    slice: &mut [u32],
) -> usize {
    let mut left = 0usize;
    let mut right = 0usize;
    for &id in slice.iter() {
        if goes_left[id as usize] {
            left += 1;
        } else {
            scratch[right] = id;
            right += 1;
        }
    }
    let mut write = 0usize;
    for read in 0..slice.len() {
        let id = slice[read];
        if goes_left[id as usize] {
            slice[write] = id;
            write += 1;
        }
    }
    slice[left..left + right].copy_from_slice(&scratch[..right]);
    left
}

impl<'a> Builder<'a> {
    fn new(
        points: &'a [f64],
        targets: &'a [f64],
        m: usize,
        indices: &[usize],
        params: &'a TreeParams,
        orders: Option<&[Vec<u32>]>,
    ) -> Self {
        let s = indices.len();
        assert!(s <= u32::MAX as usize, "too many samples for u32 slots");
        assert!(m < LEAF as usize, "too many features for u32 ids");
        let rows: Vec<u32> = indices.iter().map(|&i| i as u32).collect();
        let cols: Vec<Vec<u32>> = match orders {
            // Ensemble path: the caller argsorted the *dataset* once;
            // derive each bootstrap's sorted slots in O(n + s) per
            // feature by walking the dataset order and emitting every
            // row's slots (counting-sorted, so ties order by
            // (value, row, slot)).
            Some(orders) => {
                assert_eq!(orders.len(), m, "one dataset order per feature");
                let n_rows = points.len() / m.max(1);
                let mut count = vec![0u32; n_rows + 1];
                for &r in &rows {
                    count[r as usize + 1] += 1;
                }
                for r in 0..n_rows {
                    count[r + 1] += count[r];
                }
                // slots_by_row[count[r]..count[r+1]] = ascending slots of row r.
                let mut slots_by_row = vec![0u32; s];
                let mut cursor = count.clone();
                for (slot, &r) in rows.iter().enumerate() {
                    slots_by_row[cursor[r as usize] as usize] = slot as u32;
                    cursor[r as usize] += 1;
                }
                orders
                    .iter()
                    .map(|order| {
                        let mut col = Vec::with_capacity(s);
                        for &row in order {
                            let (lo, hi) = (
                                count[row as usize] as usize,
                                count[row as usize + 1] as usize,
                            );
                            col.extend_from_slice(&slots_by_row[lo..hi]);
                        }
                        col
                    })
                    .collect()
            }
            // Standalone path: argsort this sample's slots directly,
            // with the same (value, row, slot) tie order.
            None => {
                let value = |slot: u32, f: usize| points[rows[slot as usize] as usize * m + f];
                (0..m)
                    .map(|f| {
                        let mut col: Vec<u32> = (0..s as u32).collect();
                        col.sort_unstable_by(|&a, &b| {
                            value(a, f)
                                .total_cmp(&value(b, f))
                                .then(rows[a as usize].cmp(&rows[b as usize]))
                                .then(a.cmp(&b))
                        });
                        col
                    })
                    .collect()
            }
        };
        Self {
            points,
            targets,
            m,
            params,
            nodes: FlatTree::with_capacity(2 * s),
            feature_pool: (0..m).collect(),
            rows,
            main: (0..s as u32).collect(),
            cols,
            scratch: vec![0; s],
            goes_left: vec![false; s],
        }
    }

    #[inline]
    fn value(&self, slot: u32, feature: usize) -> f64 {
        self.points[self.rows[slot as usize] as usize * self.m + feature]
    }

    #[inline]
    fn target(&self, slot: u32) -> f64 {
        self.targets[self.rows[slot as usize] as usize]
    }

    fn target_sum(&self, lo: usize, hi: usize) -> f64 {
        self.main[lo..hi]
            .iter()
            .map(|&slot| self.target(slot))
            .sum()
    }

    /// Finds the best SSE-reducing split of node `[lo, hi)` along
    /// `feature` by scanning its presorted column. Returns
    /// `(threshold, gain, n_left)` or `None` when no admissible split
    /// exists.
    fn best_split_on(
        &self,
        lo: usize,
        hi: usize,
        feature: usize,
        total_sum: f64,
    ) -> Option<(f64, f64, usize)> {
        let col = &self.cols[feature][lo..hi];
        let n = col.len();
        let min_leaf = self.params.min_samples_leaf;
        let mut left_sum = 0.0;
        let mut best: Option<(f64, f64, usize)> = None;
        for k in 0..n - 1 {
            left_sum += self.target(col[k]);
            let n_left = k + 1;
            let n_right = n - n_left;
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            let v_here = self.value(col[k], feature);
            let v_next = self.value(col[k + 1], feature);
            if v_next <= v_here {
                continue; // cannot separate equal values
            }
            // SSE reduction = left_sum²/n_l + right_sum²/n_r − total²/n
            // (constant term dropped — same for every candidate).
            let right_sum = total_sum - left_sum;
            let gain = left_sum * left_sum / n_left as f64 + right_sum * right_sum / n_right as f64;
            if best.is_none_or(|(_, g, _)| gain > g) {
                best = Some((split_threshold(v_here, v_next), gain, n_left));
            }
        }
        // Convert the proxy score into a true gain relative to no split.
        best.map(|(thr, score, nl)| (thr, score - total_sum * total_sum / n as f64, nl))
    }

    fn build(&mut self, lo: usize, hi: usize, depth: usize, rng: &mut impl Rng) -> u32 {
        let n = hi - lo;
        let sum = self.target_sum(lo, hi);
        let mean = sum / n as f64;
        if depth >= self.params.max_depth || n < self.params.min_samples_split {
            return self.nodes.push_leaf(mean);
        }
        // Candidate features: all, or a fresh random subset per split
        // (random forest's per-node feature subsampling).
        let n_candidates = self.params.mtry.unwrap_or(self.m).clamp(1, self.m);
        if n_candidates < self.m {
            self.feature_pool.shuffle(rng);
        }
        let mut best: Option<(usize, f64, f64)> = None;
        for ci in 0..n_candidates {
            let feature = self.feature_pool[ci];
            if let Some((thr, gain, _)) = self.best_split_on(lo, hi, feature, sum) {
                if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((feature, thr, gain));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            return self.nodes.push_leaf(mean);
        };
        // Stable partition of the node order and every feature column
        // around the chosen threshold.
        for &slot in &self.main[lo..hi] {
            self.goes_left[slot as usize] = self.value(slot, feature) <= threshold;
        }
        let split_at = stable_partition(&self.goes_left, &mut self.scratch, &mut self.main[lo..hi]);
        debug_assert!(split_at > 0 && split_at < n);
        for f in 0..self.m {
            let mut col = std::mem::take(&mut self.cols[f]);
            let at = stable_partition(&self.goes_left, &mut self.scratch, &mut col[lo..hi]);
            debug_assert_eq!(at, split_at);
            self.cols[f] = col;
        }
        let node_id = self.nodes.push_split(feature as u32, threshold);
        let left = self.build(lo, lo + split_at, depth + 1, rng);
        debug_assert_eq!(left, node_id + 1, "left child must follow its parent");
        let right = self.build(lo + split_at, hi, depth + 1, rng);
        self.nodes.set_right(node_id, right);
        node_id
    }
}

impl RegressionTree {
    /// Fits a tree to `targets` over the row-major `points` buffer with
    /// `m` columns, using rows `indices` (duplicates allowed — bootstrap
    /// samples pass repeated indices).
    ///
    /// # Panics
    ///
    /// Panics when `indices` is empty or buffers disagree on shape.
    pub fn fit(
        points: &[f64],
        targets: &[f64],
        m: usize,
        indices: &[usize],
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree to zero rows");
        assert_eq!(points.len(), targets.len() * m, "shape mismatch");
        Self::fit_impl(points, targets, m, indices, params, None, rng)
    }

    /// Ensemble fit: `orders[f]` lists the dataset rows argsorted by
    /// `(value of feature f, row)` — computed **once** per forest and
    /// shared by every tree, which replaces the per-tree
    /// `O(m·s log s)` argsort with an `O(m·(n + s))` merge. Identical
    /// output to [`RegressionTree::fit`].
    ///
    /// Public because the streaming pipeline's out-of-core sort
    /// produces exactly these orders as a by-product (CART scenario
    /// discovery reuses them instead of re-argsorting `L` rows).
    pub fn fit_with_orders(
        points: &[f64],
        targets: &[f64],
        m: usize,
        indices: &[usize],
        params: &TreeParams,
        orders: &[Vec<u32>],
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree to zero rows");
        assert_eq!(points.len(), targets.len() * m, "shape mismatch");
        Self::fit_impl(points, targets, m, indices, params, Some(orders), rng)
    }

    fn fit_impl(
        points: &[f64],
        targets: &[f64],
        m: usize,
        indices: &[usize],
        params: &TreeParams,
        orders: Option<&[Vec<u32>]>,
        rng: &mut impl Rng,
    ) -> Self {
        let mut builder = Builder::new(points, targets, m, indices, params, orders);
        let s = indices.len();
        let root = builder.build(0, s, 0, rng);
        debug_assert_eq!(root, 0);
        Self {
            flat: builder.nodes,
            m,
        }
    }

    /// Predicted value at `x` (the mean target of the matched leaf).
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.m()`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.m, "prediction dimensionality mismatch");
        self.flat.predict(x)
    }

    /// The kernel-ready structure-of-arrays arena — what the batched
    /// prediction kernels in [`crate::kernels`] traverse.
    pub fn flat(&self) -> &FlatTree {
        &self.flat
    }

    /// Number of input columns the tree was fitted on.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Node arena as JSON: leaves `[value]`, splits
    /// `[feature, threshold, right]` (left child implicit at the next
    /// index, mirroring the in-memory layout).
    pub(crate) fn nodes_to_json(&self) -> reds_json::Json {
        use crate::persist::f64_to_json;
        use reds_json::Json;
        Json::arr((0..self.flat.n_nodes()).map(|i| {
            if self.flat.is_leaf(i) {
                Json::arr([f64_to_json(self.flat.value(i))])
            } else {
                Json::arr([
                    Json::num(self.flat.feature(i) as f64),
                    f64_to_json(self.flat.value(i)),
                    Json::num(self.flat.right(i) as f64),
                ])
            }
        }))
    }

    /// Rebuilds the arena from [`RegressionTree::nodes_to_json`] output,
    /// rejecting any structure whose traversal could fail to terminate:
    /// both children of a split must lie strictly after it (left at
    /// `i + 1`, right beyond the left subtree), inside the arena, and
    /// every feature id must be `< m`.
    pub(crate) fn nodes_from_json(
        doc: &reds_json::Json,
        m: usize,
    ) -> Result<Self, crate::persist::PersistError> {
        use crate::persist::{bad, f64_from_json, usize_from_json};
        let arr = doc
            .as_array()
            .ok_or_else(|| bad("'nodes' must be an array"))?;
        if arr.is_empty() {
            return Err(bad("tree has no nodes"));
        }
        let len = arr.len();
        if len > u32::MAX as usize {
            return Err(bad("tree has too many nodes"));
        }
        let mut flat = FlatTree::with_capacity(len);
        for (i, node) in arr.iter().enumerate() {
            let parts = node
                .as_array()
                .ok_or_else(|| bad(format!("node {i} must be an array")))?;
            match parts.len() {
                1 => {
                    flat.push_leaf(f64_from_json(&parts[0])?);
                }
                3 => {
                    let feature = usize_from_json(&parts[0], "split feature")?;
                    let threshold = f64_from_json(&parts[1])?;
                    let right = usize_from_json(&parts[2], "right child")?;
                    if feature as u32 == LEAF {
                        return Err(bad(format!("node {i}: feature id reserved for leaves")));
                    }
                    let id = flat.push_split(feature as u32, threshold);
                    if right <= id as usize {
                        return Err(bad(format!(
                            "node {i}: children must lie strictly forward in the arena \
                             (right = {right}, len = {len})"
                        )));
                    }
                    flat.set_right(id, right as u32);
                }
                k => return Err(bad(format!("node {i} has {k} fields (expected 1 or 3)"))),
            }
        }
        // One pass re-checks every traversal-safety invariant the SIMD
        // gathers rely on (forward in-bounds children, features < m).
        flat.validate(m).map_err(bad)?;
        Ok(Self { flat, m })
    }

    /// Number of nodes (leaves + splits).
    pub fn n_nodes(&self) -> usize {
        self.flat.n_nodes()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.flat.n_leaves()
    }

    /// Every leaf as `(per-dimension bounds, leaf value)`, where bounds
    /// use `±∞` for unconstrained sides. The regions partition the input
    /// space — the representation CART-based scenario discovery
    /// (Lempert, Bryant & Bankes 2008) extracts boxes from.
    pub fn leaf_regions(&self) -> Vec<(Vec<(f64, f64)>, f64)> {
        let mut out = Vec::with_capacity(self.n_leaves());
        let root_bounds = vec![(f64::NEG_INFINITY, f64::INFINITY); self.m];
        self.collect_leaves(0, root_bounds, &mut out);
        out
    }

    fn collect_leaves(
        &self,
        i: usize,
        bounds: Vec<(f64, f64)>,
        out: &mut Vec<(Vec<(f64, f64)>, f64)>,
    ) {
        if self.flat.is_leaf(i) {
            out.push((bounds, self.flat.value(i)));
            return;
        }
        let feature = self.flat.feature(i) as usize;
        let threshold = self.flat.value(i);
        let mut lb = bounds.clone();
        lb[feature].1 = lb[feature].1.min(threshold);
        self.collect_leaves(i + 1, lb, out);
        let mut rb = bounds;
        rb[feature].0 = rb[feature].0.max(threshold);
        self.collect_leaves(self.flat.right(i) as usize, rb, out);
    }
}

/// The pre-optimization tree: enum-arena nodes, per-node re-sorting
/// builder (`O(m·n log n)` per node), pointer-chasing predict. Kept as
/// the reference oracle for the equivalence tests — ties order by slot,
/// exactly like the presorted builder, so predictions match
/// [`RegressionTree`] bit for bit. Not part of the supported API.
#[doc(hidden)]
#[derive(Debug, Clone)]
pub struct NaiveTree {
    nodes: Vec<NaiveNode>,
    m: usize,
}

#[derive(Debug, Clone)]
enum NaiveNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: u32,
        right: u32,
    },
}

struct NaiveBuilder<'a> {
    points: &'a [f64],
    targets: &'a [f64],
    m: usize,
    params: &'a TreeParams,
    nodes: Vec<NaiveNode>,
    feature_pool: Vec<usize>,
    rows: Vec<u32>,
}

impl<'a> NaiveBuilder<'a> {
    #[inline]
    fn value(&self, slot: u32, feature: usize) -> f64 {
        self.points[self.rows[slot as usize] as usize * self.m + feature]
    }

    #[inline]
    fn target(&self, slot: u32) -> f64 {
        self.targets[self.rows[slot as usize] as usize]
    }

    fn best_split_on(
        &self,
        idx: &[u32],
        feature: usize,
        total_sum: f64,
    ) -> Option<(f64, f64, usize)> {
        let n = idx.len();
        let mut sorted = idx.to_vec();
        sorted.sort_unstable_by(|&a, &b| {
            self.value(a, feature)
                .total_cmp(&self.value(b, feature))
                .then(self.rows[a as usize].cmp(&self.rows[b as usize]))
                .then(a.cmp(&b))
        });
        let min_leaf = self.params.min_samples_leaf;
        let mut left_sum = 0.0;
        let mut best: Option<(f64, f64, usize)> = None;
        for k in 0..n - 1 {
            left_sum += self.target(sorted[k]);
            let n_left = k + 1;
            let n_right = n - n_left;
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            let v_here = self.value(sorted[k], feature);
            let v_next = self.value(sorted[k + 1], feature);
            if v_next <= v_here {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let gain = left_sum * left_sum / n_left as f64 + right_sum * right_sum / n_right as f64;
            if best.is_none_or(|(_, g, _)| gain > g) {
                best = Some((split_threshold(v_here, v_next), gain, n_left));
            }
        }
        best.map(|(thr, score, nl)| (thr, score - total_sum * total_sum / n as f64, nl))
    }

    fn build(&mut self, idx: &mut [u32], depth: usize, rng: &mut impl Rng) -> u32 {
        let n = idx.len();
        let sum: f64 = idx.iter().map(|&slot| self.target(slot)).sum();
        let mean = sum / n as f64;
        let make_leaf = |nodes: &mut Vec<NaiveNode>| {
            nodes.push(NaiveNode::Leaf { value: mean });
            (nodes.len() - 1) as u32
        };
        if depth >= self.params.max_depth || n < self.params.min_samples_split {
            return make_leaf(&mut self.nodes);
        }
        let n_candidates = self.params.mtry.unwrap_or(self.m).clamp(1, self.m);
        if n_candidates < self.m {
            self.feature_pool.shuffle(rng);
        }
        let mut best: Option<(usize, f64, f64)> = None;
        for ci in 0..n_candidates {
            let feature = self.feature_pool[ci];
            if let Some((thr, gain, _)) = self.best_split_on(idx, feature, sum) {
                if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((feature, thr, gain));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            return make_leaf(&mut self.nodes);
        };
        // Stable in-place partition around the chosen threshold.
        let mut buf: Vec<u32> = Vec::with_capacity(n);
        buf.extend(
            idx.iter()
                .copied()
                .filter(|&s| self.value(s, feature) <= threshold),
        );
        let split_at = buf.len();
        buf.extend(
            idx.iter()
                .copied()
                .filter(|&s| self.value(s, feature) > threshold),
        );
        idx.copy_from_slice(&buf);
        debug_assert!(split_at > 0 && split_at < n);
        let node_id = self.nodes.len() as u32;
        self.nodes.push(NaiveNode::Split {
            feature,
            threshold,
            left: 0,
            right: 0,
        });
        let (left_idx, right_idx) = idx.split_at_mut(split_at);
        let left = self.build(left_idx, depth + 1, rng);
        let right = self.build(right_idx, depth + 1, rng);
        if let NaiveNode::Split {
            left: l, right: r, ..
        } = &mut self.nodes[node_id as usize]
        {
            *l = left;
            *r = right;
        }
        node_id
    }
}

impl NaiveTree {
    /// Fits with the pre-optimization builder; same inputs and RNG
    /// consumption as [`RegressionTree::fit`], bit-identical output.
    pub fn fit(
        points: &[f64],
        targets: &[f64],
        m: usize,
        indices: &[usize],
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree to zero rows");
        assert_eq!(points.len(), targets.len() * m, "shape mismatch");
        assert!(
            indices.len() <= u32::MAX as usize,
            "too many samples for u32 slots"
        );
        let mut builder = NaiveBuilder {
            points,
            targets,
            m,
            params,
            nodes: Vec::new(),
            feature_pool: (0..m).collect(),
            rows: indices.iter().map(|&i| i as u32).collect(),
        };
        let mut idx: Vec<u32> = (0..indices.len() as u32).collect();
        let root = builder.build(&mut idx, 0, rng);
        debug_assert_eq!(root, 0);
        Self {
            nodes: builder.nodes,
            m,
        }
    }

    /// The pre-optimization traversal.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.m, "prediction dimensionality mismatch");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                NaiveNode::Leaf { value } => return *value,
                NaiveNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Number of nodes (leaves + splits).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_corner() -> (Vec<f64>, Vec<f64>) {
        // Corner concept on a 20×20 grid: needs depth 2 but every split
        // has positive greedy gain (unlike symmetric XOR, which defeats
        // any greedy CART).
        let mut pts = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let x = i as f64 / 19.0;
                let y = j as f64 / 19.0;
                pts.extend_from_slice(&[x, y]);
                ys.push(if x > 0.5 && y > 0.5 { 1.0 } else { 0.0 });
            }
        }
        (pts, ys)
    }

    #[test]
    fn fits_corner_exactly() {
        let (pts, ys) = grid_corner();
        let mut rng = StdRng::seed_from_u64(0);
        let idx: Vec<usize> = (0..ys.len()).collect();
        let tree = RegressionTree::fit(&pts, &ys, 2, &idx, &TreeParams::default(), &mut rng);
        for (row, &y) in pts.chunks_exact(2).zip(&ys) {
            assert_eq!(tree.predict(row), y);
        }
    }

    #[test]
    fn depth_zero_returns_global_mean() {
        let (pts, ys) = grid_corner();
        let mut rng = StdRng::seed_from_u64(0);
        let idx: Vec<usize> = (0..ys.len()).collect();
        let params = TreeParams {
            max_depth: 0,
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&pts, &ys, 2, &idx, &params, &mut rng);
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        assert!((tree.predict(&[0.3, 0.7]) - mean).abs() < 1e-12);
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let pts: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..10).map(|i| if i < 9 { 0.0 } else { 1.0 }).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let idx: Vec<usize> = (0..10).collect();
        let params = TreeParams {
            min_samples_leaf: 3,
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&pts, &ys, 1, &idx, &params, &mut rng);
        // The best pure split (9 vs 1) is forbidden; the chosen leaf
        // containing the positive example must hold ≥ 3 samples, so its
        // mean is at most 1/3.
        assert!(tree.predict(&[9.0]) <= 1.0 / 3.0 + 1e-12);
    }

    #[test]
    fn constant_targets_yield_single_leaf() {
        let pts: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys = vec![0.7; 50];
        let mut rng = StdRng::seed_from_u64(0);
        let idx: Vec<usize> = (0..50).collect();
        let tree = RegressionTree::fit(&pts, &ys, 1, &idx, &TreeParams::default(), &mut rng);
        assert_eq!(tree.n_nodes(), 1);
        assert!((tree.predict(&[25.0]) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn duplicate_feature_values_cannot_be_split_apart() {
        // All x identical: no admissible split, single leaf.
        let pts = vec![1.0; 20];
        let ys: Vec<f64> = (0..20).map(|i| (i % 2) as f64).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let idx: Vec<usize> = (0..20).collect();
        let tree = RegressionTree::fit(&pts, &ys, 1, &idx, &TreeParams::default(), &mut rng);
        assert_eq!(tree.n_nodes(), 1);
        assert!((tree.predict(&[1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_indices_with_duplicates_work() {
        let (pts, ys) = grid_corner();
        let mut rng = StdRng::seed_from_u64(1);
        let idx: Vec<usize> = (0..ys.len()).map(|i| i % 100).collect(); // duplicates
        let tree = RegressionTree::fit(&pts, &ys, 2, &idx, &TreeParams::default(), &mut rng);
        assert!(tree.n_nodes() >= 1);
    }

    #[test]
    fn mtry_one_still_learns_axis_aligned_concept() {
        // y depends only on x1; with mtry = 1 the tree must eventually
        // pick feature 0 at some node and reach low error.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200;
        let pts: Vec<f64> = (0..n * 2)
            .map(|_| rand::Rng::gen::<f64>(&mut rng))
            .collect();
        let ys: Vec<f64> = pts
            .chunks_exact(2)
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let idx: Vec<usize> = (0..n).collect();
        let params = TreeParams {
            mtry: Some(1),
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&pts, &ys, 2, &idx, &params, &mut rng);
        let errors: usize = pts
            .chunks_exact(2)
            .zip(&ys)
            .filter(|(r, &y)| (tree.predict(r) - y).abs() > 0.5)
            .count();
        assert!(errors < n / 10, "{errors} errors of {n}");
    }

    #[test]
    fn presorted_and_naive_builders_agree_bitwise() {
        // Random data with duplicated feature values and bootstrap
        // duplicates: the presorted stable-partition builder must
        // reproduce the naive re-sorting builder exactly, including the
        // RNG stream consumed by per-node feature subsampling.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 120;
        let pts: Vec<f64> = (0..n * 3)
            .map(|_| (rand::Rng::gen::<f64>(&mut rng) * 8.0).floor() / 8.0)
            .collect();
        let ys: Vec<f64> = pts
            .chunks_exact(3)
            .map(|r| if r[0] > 0.5 && r[2] < 0.75 { 1.0 } else { 0.25 })
            .collect();
        let mut boot_rng = StdRng::seed_from_u64(8);
        let idx: Vec<usize> = (0..n)
            .map(|_| rand::Rng::gen_range(&mut boot_rng, 0..n))
            .collect();
        for mtry in [None, Some(2), Some(1)] {
            let params = TreeParams {
                mtry,
                min_samples_leaf: 2,
                ..TreeParams::default()
            };
            let fast =
                RegressionTree::fit(&pts, &ys, 3, &idx, &params, &mut StdRng::seed_from_u64(9));
            let slow = NaiveTree::fit(&pts, &ys, 3, &idx, &params, &mut StdRng::seed_from_u64(9));
            assert_eq!(fast.n_nodes(), slow.n_nodes(), "mtry {mtry:?}");
            for row in pts.chunks_exact(3) {
                let (a, b) = (fast.predict(row), slow.predict(row));
                assert!(a.to_bits() == b.to_bits(), "mtry {mtry:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn adjacent_double_values_split_without_nan_leaves() {
        // The midpoint of two adjacent doubles rounds to the upper
        // value; the threshold must fall back to the lower value so the
        // right child is never empty (regression: NaN leaf / empty
        // range panic).
        let a = 1.0 + f64::EPSILON; // adjacent pair: 0.5*(a+b) == b
        let b = 1.0 + 2.0 * f64::EPSILON;
        assert_eq!(0.5 * (a + b), b, "test premise: midpoint rounds up");
        let pts = vec![a, a, b, b];
        let ys = vec![0.0, 0.0, 1.0, 1.0];
        let idx: Vec<usize> = (0..4).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let fast = RegressionTree::fit(&pts, &ys, 1, &idx, &TreeParams::default(), &mut rng);
        let slow = NaiveTree::fit(
            &pts,
            &ys,
            1,
            &idx,
            &TreeParams::default(),
            &mut StdRng::seed_from_u64(0),
        );
        for v in [a, b] {
            assert!(fast.predict(&[v]).is_finite());
            assert_eq!(fast.predict(&[v]).to_bits(), slow.predict(&[v]).to_bits());
        }
        assert_eq!(fast.predict(&[a]), 0.0);
        assert_eq!(fast.predict(&[b]), 1.0);
        // Infinite values must not produce ±∞/NaN thresholds either.
        let pts = vec![f64::NEG_INFINITY, 0.0, f64::INFINITY];
        let ys = vec![0.0, 1.0, 0.0];
        let idx: Vec<usize> = (0..3).collect();
        let tree = RegressionTree::fit(&pts, &ys, 1, &idx, &TreeParams::default(), &mut rng);
        assert!(tree.predict(&[0.0]).is_finite());
        assert_eq!(tree.predict(&[0.0]), 1.0);
        assert_eq!(tree.predict(&[f64::INFINITY]), 0.0);
    }

    #[test]
    fn batched_kernel_traversal_matches_per_point() {
        let (pts, ys) = grid_corner();
        let mut rng = StdRng::seed_from_u64(11);
        let idx: Vec<usize> = (0..ys.len()).collect();
        let tree = RegressionTree::fit(&pts, &ys, 2, &idx, &TreeParams::default(), &mut rng);
        // 21 rows: exercises a partial final lane group on every kernel.
        let query: Vec<f64> = (0..21 * 2).map(|k| (k % 13) as f64 / 13.0).collect();
        let mut available = vec![kernels::Kernel::Scalar];
        if kernels::avx2_supported() {
            available.push(kernels::Kernel::Avx2);
        }
        for kernel in available {
            let mut acc = vec![0.5f64; 21];
            kernels::accumulate_tree(kernel, tree.flat(), &query, 2, &mut acc);
            for (i, row) in query.chunks_exact(2).enumerate() {
                let expected = 0.5 + tree.predict(row);
                assert_eq!(acc[i].to_bits(), expected.to_bits(), "{kernel:?} row {i}");
            }
        }
    }

    #[test]
    fn leaf_regions_partition_the_space() {
        let (pts, ys) = grid_corner();
        let mut rng = StdRng::seed_from_u64(4);
        let idx: Vec<usize> = (0..ys.len()).collect();
        let tree = RegressionTree::fit(&pts, &ys, 2, &idx, &TreeParams::default(), &mut rng);
        let regions = tree.leaf_regions();
        assert_eq!(regions.len(), tree.n_leaves());
        // Every training point falls into exactly one region, and that
        // region's value equals the tree's prediction.
        for row in pts.chunks_exact(2) {
            let matches: Vec<&(Vec<(f64, f64)>, f64)> = regions
                .iter()
                .filter(|(b, _)| {
                    b.iter()
                        .zip(row)
                        .all(|(&(lo, hi), &v)| v <= hi && (v > lo || lo.is_infinite()))
                })
                .collect();
            assert!(!matches.is_empty(), "point {row:?} in no region");
        }
    }
}
