//! Grid-search hyperparameter tuning via k-fold cross-validation.
//!
//! The paper uses `caret`'s default tuning for the metamodels (§8.4.3):
//! a small grid per family, scored by CV accuracy. This module mirrors
//! that: each `tune_*` function evaluates a compact grid with 5-fold CV
//! and returns the best parameter set.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::{Dataset, KFold};

use crate::{Gbdt, GbdtParams, Metamodel, RandomForest, RandomForestParams, Svm, SvmParams};

/// Number of CV folds used by all tuners (the paper's 5-fold CV).
pub const TUNE_FOLDS: usize = 5;

/// Mean CV accuracy of `fit` over the folds of `data`.
fn cv_accuracy<M: Metamodel>(
    data: &Dataset,
    rng: &mut StdRng,
    mut fit: impl FnMut(&Dataset, &mut StdRng) -> M,
) -> f64 {
    let k = TUNE_FOLDS.min(data.n());
    if k < 2 {
        return 0.0;
    }
    let Ok(folds) = KFold::new(data.n(), k, rng) else {
        return 0.0;
    };
    let mut correct = 0usize;
    let mut total = 0usize;
    for (train, test) in folds.splits(data) {
        if train.is_empty() || test.is_empty() {
            continue;
        }
        let mut fit_rng = StdRng::seed_from_u64(rng.gen());
        let model = fit(&train, &mut fit_rng);
        for (x, y) in test.iter() {
            if (model.predict(x) > 0.5) == (y > 0.5) {
                correct += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Tunes the random forest's `mtry` over `{√M, M/3, M/2}` (caret's
/// default RF grid tunes exactly `mtry`).
pub fn tune_random_forest(data: &Dataset, rng: &mut StdRng) -> RandomForestParams {
    let m = data.m();
    let mut candidates: Vec<usize> = vec![
        (m as f64).sqrt().ceil() as usize,
        (m / 3).max(1),
        (m / 2).max(1),
    ];
    candidates.sort_unstable();
    candidates.dedup();
    let mut best = (f64::NEG_INFINITY, RandomForestParams::default());
    for mtry in candidates {
        let params = RandomForestParams {
            mtry: Some(mtry),
            ..RandomForestParams::default()
        };
        let acc = cv_accuracy(data, rng, |train, r| RandomForest::fit(train, &params, r));
        if acc > best.0 {
            best = (acc, params);
        }
    }
    best.1
}

/// Tunes GBDT rounds and depth over a compact grid
/// (`rounds ∈ {50, 150}`, `depth ∈ {3, 5}`), as caret tunes
/// `nrounds`/`max_depth` for XGBoost.
pub fn tune_gbdt(data: &Dataset, rng: &mut StdRng) -> GbdtParams {
    let mut best = (f64::NEG_INFINITY, GbdtParams::default());
    for &n_rounds in &[50usize, 150] {
        for &max_depth in &[3usize, 5] {
            let params = GbdtParams {
                n_rounds,
                max_depth,
                ..GbdtParams::default()
            };
            let acc = cv_accuracy(data, rng, |train, r| Gbdt::fit(train, &params, r));
            if acc > best.0 {
                best = (acc, params);
            }
        }
    }
    best.1
}

/// Tunes the SVM's `C` and kernel width over `C ∈ {1, 10, 100}` ×
/// `γ ∈ {1/M, 2/M}` (caret's `svmRadial` grid tunes `C` and `sigma`).
pub fn tune_svm(data: &Dataset, rng: &mut StdRng) -> SvmParams {
    let m = data.m() as f64;
    let mut best = (f64::NEG_INFINITY, SvmParams::default());
    for &c in &[1.0, 10.0, 100.0] {
        for &gamma in &[1.0 / m, 2.0 / m] {
            let params = SvmParams {
                c,
                gamma: Some(gamma),
                ..SvmParams::default()
            };
            let acc = cv_accuracy(data, rng, |train, r| Svm::fit(train, &params, r));
            if acc > best.0 {
                best = (acc, params);
            }
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band_data(n: usize, m: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * m).map(|_| rng.gen::<f64>()).collect(), m, |x| {
            if x[0] > 0.4 && x[0] < 0.9 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    #[test]
    fn tuned_forest_performs_well() {
        let data = band_data(250, 4, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let params = tune_random_forest(&data, &mut rng);
        let model = RandomForest::fit(&data, &params, &mut rng);
        let test = band_data(500, 4, 3);
        let acc = test
            .iter()
            .filter(|(x, y)| (model.predict(x) > 0.5) == (*y > 0.5))
            .count() as f64
            / test.n() as f64;
        assert!(acc > 0.85, "tuned RF accuracy {acc}");
    }

    #[test]
    fn tuned_gbdt_returns_grid_member() {
        let data = band_data(150, 3, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let params = tune_gbdt(&data, &mut rng);
        assert!([50, 150].contains(&params.n_rounds));
        assert!([3, 5].contains(&params.max_depth));
    }

    #[test]
    fn tuned_svm_returns_grid_member() {
        let data = band_data(120, 3, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let params = tune_svm(&data, &mut rng);
        assert!([1.0, 10.0, 100.0].contains(&params.c));
        assert!(params.gamma.is_some());
    }

    #[test]
    fn cv_accuracy_handles_tiny_data() {
        let data = band_data(4, 2, 8);
        let mut rng = StdRng::seed_from_u64(9);
        // Must not panic with n < folds.
        let _ = tune_random_forest(&data, &mut rng);
    }
}
