//! Boundary-complexity measures — the paper's §10 proposes studying how
//! the complexity of the `y = 1` boundary drives REDS's advantage, using
//! dimensionality only as a proxy. This module provides two
//! nonparametric complexity estimates computable from a labeled sample:
//!
//! * [`nn_disagreement`] — the fraction of points whose nearest
//!   neighbour carries a different label. Smooth, compact boundaries
//!   give low values; fragmented or high-curvature boundaries give high
//!   values.
//! * [`boundary_fraction`] — the fraction of ε-boxes around sample
//!   points that contain both labels, a box-counting style estimate of
//!   the boundary's volume.

use reds_data::Dataset;

/// Squared Euclidean distance between two points.
#[inline]
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Fraction of examples whose nearest neighbour (in the same dataset)
/// has a different hard label. Returns 0 for datasets with fewer than
/// two rows. Labels are binarized at `0.5`.
///
/// O(n²) — intended for the ≤ 20 000-point evaluation sets of the
/// experiments, not for production-scale data.
pub fn nn_disagreement(d: &Dataset) -> f64 {
    let n = d.n();
    if n < 2 {
        return 0.0;
    }
    let mut disagreements = 0usize;
    for i in 0..n {
        let mut best = f64::INFINITY;
        let mut best_j = i;
        for j in 0..n {
            if j == i {
                continue;
            }
            let dist = dist2(d.point(i), d.point(j));
            if dist < best {
                best = dist;
                best_j = j;
            }
        }
        if (d.label(i) > 0.5) != (d.label(best_j) > 0.5) {
            disagreements += 1;
        }
    }
    disagreements as f64 / n as f64
}

/// Fraction of examples whose ε-neighbourhood (an axis-aligned box of
/// half-width `epsilon`) contains at least one example of each label —
/// an estimate of how much of the sampled space is "boundary".
///
/// Returns 0 for datasets with fewer than two rows.
pub fn boundary_fraction(d: &Dataset, epsilon: f64) -> f64 {
    let n = d.n();
    if n < 2 {
        return 0.0;
    }
    let mut mixed = 0usize;
    for i in 0..n {
        let yi = d.label(i) > 0.5;
        let has_opposite = (0..n).any(|j| {
            j != i
                && (d.label(j) > 0.5) != yi
                && d.point(i)
                    .iter()
                    .zip(d.point(j))
                    .all(|(a, b)| (a - b).abs() <= epsilon)
        });
        if has_opposite {
            mixed += 1;
        }
    }
    mixed as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clean halfspace: boundary only at x = 0.5.
    fn halfspace(n: usize) -> Dataset {
        Dataset::from_fn((0..n).map(|i| i as f64 / n as f64).collect(), 1, |x| {
            if x[0] >= 0.5 {
                1.0
            } else {
                0.0
            }
        })
        .expect("valid shape")
    }

    /// Maximally fragmented: alternating labels along the line.
    fn checker(n: usize) -> Dataset {
        Dataset::from_fn((0..n).map(|i| i as f64 / n as f64).collect(), 1, |x| {
            if ((x[0] * n as f64) as usize).is_multiple_of(2) {
                1.0
            } else {
                0.0
            }
        })
        .expect("valid shape")
    }

    #[test]
    fn smooth_boundary_scores_low() {
        let c = nn_disagreement(&halfspace(200));
        assert!(c < 0.02, "halfspace complexity {c}");
    }

    #[test]
    fn fragmented_boundary_scores_high() {
        let c = nn_disagreement(&checker(200));
        assert!(c > 0.9, "checker complexity {c}");
    }

    #[test]
    fn complexity_orders_boundaries() {
        assert!(nn_disagreement(&checker(100)) > nn_disagreement(&halfspace(100)));
        assert!(boundary_fraction(&checker(100), 0.02) > boundary_fraction(&halfspace(100), 0.02));
    }

    #[test]
    fn boundary_fraction_grows_with_epsilon() {
        let d = halfspace(100);
        let tight = boundary_fraction(&d, 0.005);
        let loose = boundary_fraction(&d, 0.2);
        assert!(loose >= tight);
        assert!((0.0..=1.0).contains(&tight));
        assert!((0.0..=1.0).contains(&loose));
    }

    #[test]
    fn degenerate_datasets_score_zero() {
        let single = Dataset::new(vec![0.5], vec![1.0], 1).expect("valid");
        assert_eq!(nn_disagreement(&single), 0.0);
        assert_eq!(boundary_fraction(&single, 0.1), 0.0);
        let empty = Dataset::empty(2).expect("valid");
        assert_eq!(nn_disagreement(&empty), 0.0);
    }

    #[test]
    fn single_class_data_has_no_boundary() {
        let d = Dataset::from_fn((0..50).map(|i| i as f64).collect(), 1, |_| 1.0).expect("valid");
        assert_eq!(nn_disagreement(&d), 0.0);
        assert_eq!(boundary_fraction(&d, 10.0), 0.0);
    }
}
