//! The consistency measure (Definition 2): how similar are the boxes an
//! algorithm discovers from independent datasets of the same model?

use reds_subgroup::HyperBox;

/// Overlap-over-union volume of two boxes with unbounded sides clipped
/// to `ranges` (the observed input ranges, per §4).
///
/// Returns 1.0 when both clipped boxes have zero volume (two identical
/// degenerate boxes are maximally consistent); 0.0 when exactly one is
/// degenerate or the boxes are disjoint.
///
/// # Panics
///
/// Panics when dimensionalities disagree.
pub fn pairwise_consistency(b1: &HyperBox, b2: &HyperBox, ranges: &[(f64, f64)]) -> f64 {
    assert_eq!(b1.m(), b2.m(), "box dimensionality mismatch");
    assert_eq!(b1.m(), ranges.len(), "ranges length mismatch");
    let v1 = b1.clipped_volume(ranges);
    let v2 = b2.clipped_volume(ranges);
    if v1 == 0.0 && v2 == 0.0 {
        return 1.0;
    }
    let vo = match b1.intersect(b2) {
        Some(overlap) => overlap.clipped_volume(ranges),
        None => 0.0,
    };
    let vu = v1 + v2 - vo;
    if vu <= 0.0 {
        0.0
    } else {
        vo / vu
    }
}

/// Mean pairwise consistency over all distinct pairs of `boxes` — the
/// experiment estimate of `E[V_o/V_u]` (§8.5, following the stability
/// estimation of Domingos's CMM).
///
/// Returns 1.0 for fewer than two boxes (nothing to disagree).
pub fn consistency(boxes: &[HyperBox], ranges: &[(f64, f64)]) -> f64 {
    if boxes.len() < 2 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..boxes.len() {
        for j in (i + 1)..boxes.len() {
            sum += pairwise_consistency(&boxes[i], &boxes[j], ranges);
            count += 1;
        }
    }
    sum / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIT: [(f64, f64); 2] = [(0.0, 1.0), (0.0, 1.0)];

    #[test]
    fn identical_boxes_are_fully_consistent() {
        let b = HyperBox::from_bounds(vec![(0.2, 0.6), (0.1, 0.9)]);
        assert!((pairwise_consistency(&b, &b, &UNIT) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_boxes_have_zero_consistency() {
        let a = HyperBox::from_bounds(vec![(0.0, 0.3), (0.0, 1.0)]);
        let b = HyperBox::from_bounds(vec![(0.5, 1.0), (0.0, 1.0)]);
        assert_eq!(pairwise_consistency(&a, &b, &UNIT), 0.0);
    }

    #[test]
    fn half_overlap_matches_hand_computation() {
        // [0, 0.5] vs [0.25, 0.75] in dim 0: overlap 0.25, union 0.75.
        let a = HyperBox::from_bounds(vec![(0.0, 0.5), (0.0, 1.0)]);
        let b = HyperBox::from_bounds(vec![(0.25, 0.75), (0.0, 1.0)]);
        let c = pairwise_consistency(&a, &b, &UNIT);
        assert!((c - 1.0 / 3.0).abs() < 1e-12, "{c}");
    }

    #[test]
    fn infinities_are_clipped_to_ranges() {
        let mut a = HyperBox::unbounded(2);
        a.set_lower(0, 0.5);
        let b = HyperBox::unbounded(2);
        // a clipped = [0.5,1]×[0,1] (vol 0.5); b clipped = unit square.
        let c = pairwise_consistency(&a, &b, &UNIT);
        assert!((c - 0.5).abs() < 1e-12, "{c}");
    }

    #[test]
    fn mean_over_pairs() {
        let a = HyperBox::from_bounds(vec![(0.0, 0.5), (0.0, 1.0)]);
        let b = HyperBox::from_bounds(vec![(0.0, 0.5), (0.0, 1.0)]);
        let c = HyperBox::from_bounds(vec![(0.5, 1.0), (0.0, 1.0)]);
        // pairs: (a,b)=1, (a,c)=0, (b,c)=0 → mean 1/3.
        let v = consistency(&[a, b, c], &UNIT);
        assert!((v - 1.0 / 3.0).abs() < 1e-12, "{v}");
    }

    #[test]
    fn single_box_is_trivially_consistent() {
        let a = HyperBox::unbounded(2);
        assert_eq!(consistency(&[a], &UNIT), 1.0);
        assert_eq!(consistency(&[], &UNIT), 1.0);
    }

    #[test]
    fn degenerate_pair_convention() {
        let a = HyperBox::from_bounds(vec![(0.5, 0.5), (0.0, 1.0)]);
        let b = HyperBox::from_bounds(vec![(0.5, 0.5), (0.0, 1.0)]);
        assert_eq!(pairwise_consistency(&a, &b, &UNIT), 1.0);
        let c = HyperBox::from_bounds(vec![(0.2, 0.8), (0.0, 1.0)]);
        assert_eq!(pairwise_consistency(&a, &c, &UNIT), 0.0);
    }
}
