//! Pareto dominance between boxes (Definition 1).

/// `true` when score vector `a` is dominated by `b`: `b` is at least as
/// good everywhere and strictly better somewhere (all measures
/// maximised).
///
/// # Panics
///
/// Panics when the vectors have different lengths.
pub fn dominates(b: &[f64], a: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "score vectors must align");
    b.iter().zip(a).all(|(x, y)| x >= y) && b.iter().zip(a).any(|(x, y)| x > y)
}

/// Indices of the non-dominated entries of `scores` (each row one
/// candidate's measure vector).
pub fn pareto_front(scores: &[Vec<f64>]) -> Vec<usize> {
    (0..scores.len())
        .filter(|&i| {
            !scores
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(other, &scores[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_domination() {
        assert!(dominates(&[1.0, 1.0], &[0.5, 1.0]));
        assert!(dominates(&[1.0, 1.0], &[0.5, 0.5]));
        assert!(!dominates(&[1.0, 0.4], &[0.5, 0.5]));
        assert!(
            !dominates(&[1.0, 1.0], &[1.0, 1.0]),
            "equal is not dominated"
        );
    }

    #[test]
    fn front_extraction() {
        let scores = vec![
            vec![0.9, 0.1],
            vec![0.5, 0.5],
            vec![0.1, 0.9],
            vec![0.4, 0.4], // dominated by [0.5, 0.5]
        ];
        assert_eq!(pareto_front(&scores), vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_both_survive() {
        let scores = vec![vec![0.5, 0.5], vec![0.5, 0.5]];
        assert_eq!(pareto_front(&scores), vec![0, 1]);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front(&[]).is_empty());
    }
}
