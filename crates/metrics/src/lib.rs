//! Quality metrics for discovered scenarios (§4 of the paper).
//!
//! * [`precision`], [`recall`], [`wracc`] — the classic subgroup scores;
//! * [`BoxScore`] / [`score_box`] — all per-box measures at once;
//! * [`trajectory`] — precision–recall points of a box sequence and the
//!   paper's PR AUC for ranking peeling trajectories;
//! * [`n_restricted`], [`n_irrelevantly_restricted`] — the
//!   interpretability counts;
//! * [`consistency`] — expected overlap/union volume of boxes discovered
//!   from independent datasets (Definition 2);
//! * [`dominates`], [`pareto_front`] — Pareto dominance (Definition 1);
//! * [`nn_disagreement`], [`boundary_fraction`] — boundary-complexity
//!   estimates for the §10 complexity study.

#![warn(missing_docs)]

mod complexity;
mod consistency;
mod dominance;
mod score;
mod trajectory;

pub use complexity::{boundary_fraction, nn_disagreement};
pub use consistency::{consistency, pairwise_consistency};
pub use dominance::{dominates, pareto_front};
pub use score::{
    n_irrelevantly_restricted, n_restricted, precision, recall, score_box, wracc, BoxScore,
};
pub use trajectory::{pr_auc, pr_points, PrPoint};
