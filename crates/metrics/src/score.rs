//! Per-box quality measures (§4).

use reds_data::Dataset;
use reds_subgroup::HyperBox;

/// All per-box measures evaluated on one dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxScore {
    /// Covered examples `n`.
    pub n: f64,
    /// Covered label mass `n⁺`.
    pub n_pos: f64,
    /// `n⁺/n` (0 for an empty box).
    pub precision: f64,
    /// `n⁺/N⁺` (0 when the data has no positives).
    pub recall: f64,
    /// Weighted relative accuracy `(n/N)(n⁺/n − N⁺/N)`.
    pub wracc: f64,
    /// Number of restricted inputs.
    pub n_restricted: usize,
}

/// Precision `n⁺/n` of `b` on `data` (0 for an empty box).
pub fn precision(b: &HyperBox, data: &Dataset) -> f64 {
    let (n, np) = b.count(data);
    if n > 0.0 {
        np / n
    } else {
        0.0
    }
}

/// Recall `n⁺/N⁺` of `b` on `data` (0 when `N⁺ = 0`).
pub fn recall(b: &HyperBox, data: &Dataset) -> f64 {
    let total = data.n_pos();
    if total > 0.0 {
        b.count(data).1 / total
    } else {
        0.0
    }
}

/// Weighted relative accuracy of `b` on `data` (0 for empty data).
pub fn wracc(b: &HyperBox, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let n_total = data.n() as f64;
    let (n, np) = b.count(data);
    (np - n * data.pos_rate()) / n_total
}

/// The `#restricted` interpretability measure.
pub fn n_restricted(b: &HyperBox) -> usize {
    b.n_restricted()
}

/// The `#irrel` measure: restricted inputs that have no influence on the
/// output. `active` lists the influential input indices (ground truth
/// from the benchmark function).
pub fn n_irrelevantly_restricted(b: &HyperBox, active: &[usize]) -> usize {
    (0..b.m())
        .filter(|&j| b.is_restricted(j) && !active.contains(&j))
        .count()
}

/// Evaluates every per-box measure of §4 at once.
pub fn score_box(b: &HyperBox, data: &Dataset) -> BoxScore {
    let (n, n_pos) = b.count(data);
    let total_pos = data.n_pos();
    BoxScore {
        n,
        n_pos,
        precision: if n > 0.0 { n_pos / n } else { 0.0 },
        recall: if total_pos > 0.0 {
            n_pos / total_pos
        } else {
            0.0
        },
        wracc: wracc(b, data),
        n_restricted: b.n_restricted(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Dataset, HyperBox) {
        // 10 points on a line, positives at x ≥ 0.6 (4 of them).
        let d = Dataset::from_fn((0..10).map(|i| i as f64 / 10.0).collect(), 1, |x| {
            if x[0] >= 0.6 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap();
        let b = HyperBox::from_bounds(vec![(0.5, 1.0)]);
        (d, b)
    }

    #[test]
    fn precision_recall_match_hand_computation() {
        let (d, b) = toy();
        // Box covers x ∈ {0.5..0.9}: 5 points, 4 positive.
        assert!((precision(&b, &d) - 0.8).abs() < 1e-12);
        assert!((recall(&b, &d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wracc_matches_formula() {
        let (d, b) = toy();
        // n=5, n+=4, N=10, N+=4: (5/10)(4/5 − 4/10) = 0.2
        assert!((wracc(&b, &d) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn wracc_of_full_box_is_zero() {
        let (d, _) = toy();
        let full = HyperBox::unbounded(1);
        assert!(wracc(&full, &d).abs() < 1e-12);
    }

    #[test]
    fn empty_box_scores_zero() {
        let (d, _) = toy();
        let b = HyperBox::from_bounds(vec![(2.0, 3.0)]);
        assert_eq!(precision(&b, &d), 0.0);
        assert_eq!(recall(&b, &d), 0.0);
    }

    #[test]
    fn irrelevant_restriction_counting() {
        let mut b = HyperBox::unbounded(4);
        b.set_lower(0, 0.1); // active
        b.set_lower(2, 0.1); // irrelevant
        b.set_upper(3, 0.9); // irrelevant
        assert_eq!(n_restricted(&b), 3);
        assert_eq!(n_irrelevantly_restricted(&b, &[0, 1]), 2);
        assert_eq!(n_irrelevantly_restricted(&b, &[0, 2, 3]), 0);
    }

    #[test]
    fn score_box_is_consistent_with_individual_measures() {
        let (d, b) = toy();
        let s = score_box(&b, &d);
        assert_eq!(s.precision, precision(&b, &d));
        assert_eq!(s.recall, recall(&b, &d));
        assert_eq!(s.wracc, wracc(&b, &d));
        assert_eq!(s.n, 5.0);
        assert_eq!(s.n_pos, 4.0);
        assert_eq!(s.n_restricted, 1);
    }

    #[test]
    fn soft_labels_are_supported() {
        let d = Dataset::new(vec![0.2, 0.8], vec![0.3, 0.9], 1).unwrap();
        let b = HyperBox::from_bounds(vec![(0.5, 1.0)]);
        assert!((precision(&b, &d) - 0.9).abs() < 1e-12);
        assert!((recall(&b, &d) - 0.75).abs() < 1e-12);
    }
}
