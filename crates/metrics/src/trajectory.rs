//! Peeling-trajectory evaluation: precision–recall points and the PR AUC
//! the paper introduces for ranking PRIM outputs (§4, Figure 5).

use reds_data::Dataset;
use reds_subgroup::HyperBox;

use crate::score::{precision, recall};

/// One point of a precision–recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Recall `n⁺/N⁺`.
    pub recall: f64,
    /// Precision `n⁺/n`.
    pub precision: f64,
}

/// Precision–recall point of every box in a trajectory, evaluated on
/// `data` (typically the held-out test set, per the evaluation
/// principles of §8.1).
pub fn pr_points(boxes: &[HyperBox], data: &Dataset) -> Vec<PrPoint> {
    boxes
        .iter()
        .map(|b| PrPoint {
            recall: recall(b, data),
            precision: precision(b, data),
        })
        .collect()
}

/// Area under the precision–recall curve traced by a peeling trajectory
/// (the paper's PR AUC, Figure 5).
///
/// The curve is formed by the trajectory's points sorted by recall; it is
/// closed on the right at recall 1 with the trajectory's starting
/// precision (the unrestricted box: recall 1, precision `N⁺/N`) and on
/// the left by extending the highest-precision end to recall 0 — the
/// areas ABEF/ACDF of Figure 5. Trapezoidal integration over recall.
///
/// Returns 0 for an empty trajectory.
pub fn pr_auc(boxes: &[HyperBox], data: &Dataset) -> f64 {
    let mut points = pr_points(boxes, data);
    if points.is_empty() {
        return 0.0;
    }
    points.sort_by(|a, b| {
        a.recall
            .total_cmp(&b.recall)
            .then(a.precision.total_cmp(&b.precision))
    });
    // Close on the left: constant precision from recall 0 to the
    // lowest-recall point.
    let first = points[0];
    let mut area = first.precision * first.recall;
    for w in points.windows(2) {
        area += 0.5 * (w[0].precision + w[1].precision) * (w[1].recall - w[0].recall);
    }
    // Close on the right up to recall 1 with the last (highest-recall)
    // precision — for a full trajectory this point is the unrestricted
    // box itself, so the extension has zero width.
    let last = points[points.len() - 1];
    area += last.precision * (1.0 - last.recall);
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> Dataset {
        // Positives at x ≥ 0.5 (50 of 100).
        Dataset::from_fn((0..100).map(|i| i as f64 / 100.0).collect(), 1, |x| {
            if x[0] >= 0.5 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    fn nested_boxes() -> Vec<HyperBox> {
        vec![
            HyperBox::unbounded(1),
            HyperBox::from_bounds(vec![(0.25, f64::INFINITY)]),
            HyperBox::from_bounds(vec![(0.6, f64::INFINITY)]),
        ]
    }

    #[test]
    fn points_follow_the_trajectory() {
        let d = line_data();
        let pts = pr_points(&nested_boxes(), &d);
        assert_eq!(pts.len(), 3);
        assert!((pts[0].recall - 1.0).abs() < 1e-12);
        assert!((pts[0].precision - 0.5).abs() < 1e-12);
        assert!((pts[2].precision - 1.0).abs() < 1e-12);
        // The tightest box cuts into the positives: recall 0.8.
        assert!((pts[2].recall - 0.8).abs() < 1e-12);
    }

    #[test]
    fn perfect_trajectory_has_unit_auc() {
        let d = line_data();
        // A single box capturing exactly the positives: precision 1 at
        // recall 1 → AUC 1.
        let boxes = vec![HyperBox::from_bounds(vec![(0.5, f64::INFINITY)])];
        assert!((pr_auc(&boxes, &d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_trajectory_has_base_rate_auc() {
        let d = line_data();
        let boxes = vec![HyperBox::unbounded(1)];
        assert!((pr_auc(&boxes, &d) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn better_trajectories_score_higher() {
        let d = line_data();
        let good = nested_boxes();
        let bad = vec![
            HyperBox::unbounded(1),
            // Peeling from the wrong side: loses positives, precision drops.
            HyperBox::from_bounds(vec![(f64::NEG_INFINITY, 0.75)]),
        ];
        assert!(pr_auc(&good, &d) > pr_auc(&bad, &d));
    }

    #[test]
    fn empty_trajectory_scores_zero() {
        let d = line_data();
        assert_eq!(pr_auc(&[], &d), 0.0);
    }

    #[test]
    fn auc_is_bounded_by_one() {
        let d = line_data();
        let auc = pr_auc(&nested_boxes(), &d);
        assert!(auc > 0.5 && auc <= 1.0, "auc {auc}");
    }
}
