//! The shared LRU page cache with a hard byte budget.
//!
//! One cache serves three page kinds — decoded column records, label
//! blocks, point blocks — because a single budget is what the memory
//! gate reasons about. Pages are handed out as `Rc` slices, so a
//! caller can keep iterating a page it already fetched while the cache
//! evicts behind its back; at most O(1) pages per in-flight scan
//! outlive their cache slot.
//!
//! Recency is tracked with a lazily invalidated queue: every touch
//! pushes a fresh `(key, generation)` ticket and bumps the slot's
//! generation; eviction pops tickets from the front and skips the
//! stale ones. That keeps both `get` and `insert` O(1) amortized
//! without a doubly linked list.

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// One decoded column record: the value (already through
/// `ord_key_inverse`) and its row id. 16 bytes in cache for 12 on
/// disk — the budget counts the in-memory size.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Rec {
    pub value: f64,
    pub row: u32,
}

/// What a cache slot holds.
#[derive(Clone)]
pub(crate) enum Page {
    /// A page of one column's sorted records.
    Records(Rc<[Rec]>),
    /// A page of `f64`s (labels or packed points).
    Floats(Rc<[f64]>),
}

impl Page {
    fn bytes(&self) -> usize {
        match self {
            Page::Records(r) => r.len() * std::mem::size_of::<Rec>(),
            Page::Floats(f) => f.len() * std::mem::size_of::<f64>(),
        }
    }
}

/// Which of the store's backing arrays a page belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum PageKind {
    /// `(key, row)` records of one column.
    Records,
    /// The label array.
    Labels,
    /// The row-major point array.
    Points,
}

/// Cache key: (kind, column, page number). Labels/points ignore the
/// column (stored as 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct PageKey {
    pub kind: PageKind,
    pub col: u32,
    pub page: u64,
}

struct Slot {
    page: Page,
    generation: u64,
    bytes: usize,
}

/// LRU page cache with a hard byte budget. The budget bounds what the
/// cache *retains*; the page currently being inserted is always kept
/// (evicting everything else if need be), so a budget smaller than one
/// page degrades to cache-nothing rather than deadlock.
pub(crate) struct PageCache {
    budget: usize,
    used: usize,
    map: HashMap<PageKey, Slot>,
    lru: VecDeque<(PageKey, u64)>,
    next_generation: u64,
    /// Fetches served from cache.
    pub hits: u64,
    /// Fetches that had to load from disk.
    pub misses: u64,
}

impl PageCache {
    pub(crate) fn new(budget: usize) -> Self {
        Self {
            budget,
            used: 0,
            map: HashMap::new(),
            lru: VecDeque::new(),
            next_generation: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Bytes currently retained.
    #[cfg(test)]
    pub(crate) fn used(&self) -> usize {
        self.used
    }

    fn ticket(&mut self) -> u64 {
        let g = self.next_generation;
        self.next_generation += 1;
        g
    }

    /// Drops stale tickets once they outnumber the live ones. Without
    /// this, a working set that fits the budget never evicts, so the
    /// queue would grow by one ticket per touch — unbounded over a
    /// long search. Retain preserves order, so recency is unchanged;
    /// triggering at 2× live keeps the sweep amortized O(1) per touch.
    fn compact(&mut self) {
        if self.lru.len() > self.map.len() * 2 + 64 {
            let map = &self.map;
            self.lru
                .retain(|&(key, g)| map.get(&key).is_some_and(|s| s.generation == g));
        }
    }

    /// Looks a page up, refreshing its recency.
    pub(crate) fn get(&mut self, key: PageKey) -> Option<Page> {
        let g = self.ticket();
        let slot = self.map.get_mut(&key)?;
        slot.generation = g;
        let page = slot.page.clone();
        self.lru.push_back((key, g));
        self.hits += 1;
        self.compact();
        Some(page)
    }

    /// Inserts a freshly loaded page, evicting least-recently-used
    /// pages until the budget holds again.
    pub(crate) fn insert(&mut self, key: PageKey, page: Page) -> Page {
        self.misses += 1;
        let bytes = page.bytes();
        let g = self.ticket();
        if let Some(old) = self.map.insert(
            key,
            Slot {
                page: page.clone(),
                generation: g,
                bytes,
            },
        ) {
            self.used -= old.bytes;
        }
        self.used += bytes;
        self.lru.push_back((key, g));
        while self.used > self.budget {
            let Some((victim, ticket)) = self.lru.pop_front() else {
                break;
            };
            if victim == key {
                // Never evict the page being handed out; re-queue its
                // ticket only if it is the live one.
                if self
                    .map
                    .get(&victim)
                    .is_some_and(|s| s.generation == ticket)
                {
                    self.lru.push_back((victim, ticket));
                    // Everything older was already popped; if the new
                    // page alone exceeds the budget, stop.
                    if self.lru.len() == 1 {
                        break;
                    }
                }
                continue;
            }
            let stale = self.map.get(&victim).is_none_or(|s| s.generation != ticket);
            if stale {
                continue;
            }
            let slot = self.map.remove(&victim).expect("checked above");
            self.used -= slot.bytes;
        }
        self.compact();
        page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn floats(n: usize, fill: f64) -> Page {
        Page::Floats(vec![fill; n].into())
    }

    fn key(kind: PageKind, col: u32, page: u64) -> PageKey {
        PageKey { kind, col, page }
    }

    #[test]
    fn budget_is_a_hard_ceiling_on_retained_bytes() {
        let mut c = PageCache::new(64 * 8); // room for 64 f64s
        for p in 0..32 {
            c.insert(key(PageKind::Labels, 0, p), floats(16, p as f64));
            assert!(c.used() <= 64 * 8, "page {p}: used {} bytes", c.used());
        }
    }

    #[test]
    fn recently_used_pages_survive_eviction() {
        let mut c = PageCache::new(4 * 16 * 8);
        for p in 0..4 {
            c.insert(key(PageKind::Labels, 0, p), floats(16, p as f64));
        }
        // Touch page 0, then overflow: 0 must survive, 1 must go.
        assert!(c.get(key(PageKind::Labels, 0, 0)).is_some());
        c.insert(key(PageKind::Labels, 0, 4), floats(16, 4.0));
        assert!(
            c.get(key(PageKind::Labels, 0, 0)).is_some(),
            "refreshed page evicted"
        );
        assert!(
            c.get(key(PageKind::Labels, 0, 1)).is_none(),
            "LRU page retained"
        );
    }

    #[test]
    fn an_oversized_page_is_still_served() {
        let mut c = PageCache::new(8); // under one page
        let page = c.insert(key(PageKind::Labels, 0, 0), floats(16, 1.0));
        let Page::Floats(f) = page else { panic!() };
        assert_eq!(f.len(), 16);
        // The next insert replaces it.
        c.insert(key(PageKind::Labels, 0, 1), floats(16, 2.0));
        assert!(c.get(key(PageKind::Labels, 0, 0)).is_none());
    }

    #[test]
    fn ticket_queue_stays_bounded_when_nothing_evicts() {
        // A working set under budget never triggers eviction; the
        // recency queue must still not grow per touch.
        let mut c = PageCache::new(1 << 20);
        for p in 0..8 {
            c.insert(key(PageKind::Labels, 0, p), floats(16, p as f64));
        }
        for i in 0..100_000u64 {
            assert!(c.get(key(PageKind::Labels, 0, i % 8)).is_some());
        }
        assert!(
            c.lru.len() <= c.map.len() * 2 + 64,
            "queue holds {} tickets for {} live pages",
            c.lru.len(),
            c.map.len()
        );
    }

    #[test]
    fn kinds_and_columns_do_not_collide() {
        let mut c = PageCache::new(1 << 20);
        c.insert(key(PageKind::Labels, 0, 0), floats(4, 1.0));
        c.insert(key(PageKind::Points, 0, 0), floats(4, 2.0));
        c.insert(
            key(PageKind::Records, 3, 0),
            Page::Records(vec![Rec { value: 0.5, row: 7 }; 4].into()),
        );
        let Some(Page::Floats(l)) = c.get(key(PageKind::Labels, 0, 0)) else {
            panic!()
        };
        assert_eq!(l[0], 1.0);
        let Some(Page::Floats(p)) = c.get(key(PageKind::Points, 0, 0)) else {
            panic!()
        };
        assert_eq!(p[0], 2.0);
        assert!(c.get(key(PageKind::Records, 3, 0)).is_some());
        assert!(c.get(key(PageKind::Records, 2, 0)).is_none());
    }
}
