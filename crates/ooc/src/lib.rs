//! `reds-ooc` — out-of-core subgroup search over a paged column store.
//!
//! The streaming pipeline (`reds-stream`) already *builds* a pool of
//! `L ≫ 10⁶` pseudo-labeled rows in bounded memory, but subgroup
//! discovery then loads the whole thing back: `O(L·M)` points plus an
//! `O(L)` sort order per column. This crate removes that last `O(L)`
//! resident requirement. [`OocPool`] opens a `.redsart` pool artifact
//! written by `PoolBuilder::finish_art` and serves the
//! [`ColumnAccess`](reds_data::ColumnAccess) surface — sorted-column
//! scans, label sums, deactivation cuts — through:
//!
//! * **positioned reads, never `mmap`** — an
//!   [`ArtScan`](reds_art::ArtScan) verifies the
//!   full checksum chain streaming, then every page is fetched with
//!   `pread`; mapping the file would make the whole artifact count
//!   toward peak RSS and defeat the memory budget;
//! * **fixed-size pages** of the column's 12-byte `(key, row)`
//!   records, rank-addressable (`rank → page = rank / page_rows`),
//!   with per-page min/max key fences from the artifact's
//!   [`SECTION_PAGE_INDEX`](reds_art::SECTION_PAGE_INDEX);
//! * **an LRU page cache with a hard byte budget** shared by record,
//!   label, and point pages ([`OocConfig::cache_bytes`]);
//! * **a paged membership bitmask persisted beside the artifact** —
//!   the active-row mask lives in a scratch file with its own paged
//!   write-back cache, not in an `O(L)` resident vector;
//! * **monotone dead-page skipping** — deactivation only ever removes
//!   rows, so a page once observed with zero active rows is skipped
//!   with zero I/O forever after.
//!
//! Every visit order is pinned to the in-memory `SortedView` path
//! (ascending `(value, row id)` per column; ascending row order for
//! label sums), so a discovery run over [`OocPool`] is bit-identical
//! to one over the materialized pool.

#![warn(missing_docs)]

mod cache;
mod mask;
mod store;

pub use store::{OocPool, OocStats};

/// Default page-cache budget: 48 MiB — comfortably inside the 64 MiB
/// process budget the out-of-core bench gates on, leaving room for the
/// mask cache and scan scratch.
pub const DEFAULT_CACHE_BYTES: usize = 48 << 20;

/// Configuration of an out-of-core pool.
#[derive(Debug, Clone)]
pub struct OocConfig {
    /// Hard byte budget of the shared record/label/point page cache.
    /// The mask cache takes an additional 1/8 of this on top. Clamped
    /// up so at least one page of every kind fits.
    pub cache_bytes: usize,
    /// Rows per column page when *building* an artifact for this store
    /// ([`reds_art::DEFAULT_PAGE_ROWS`] by default). Readers take the
    /// page size from the artifact's page index, not from this field.
    pub page_rows: u32,
}

impl Default for OocConfig {
    fn default() -> Self {
        Self {
            cache_bytes: DEFAULT_CACHE_BYTES,
            page_rows: reds_art::DEFAULT_PAGE_ROWS,
        }
    }
}

impl OocConfig {
    /// Default configuration ([`DEFAULT_CACHE_BYTES`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the page-cache byte budget.
    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Sets the rows-per-page of artifacts built for this store.
    pub fn with_page_rows(mut self, rows: u32) -> Self {
        self.page_rows = rows;
        self
    }
}

/// Structured failure opening or validating an out-of-core pool.
#[derive(Debug)]
pub enum OocError {
    /// Filesystem failure (scratch mask file, positioned reads).
    Io(std::io::Error),
    /// The artifact failed verification or is structurally unusable.
    Art(reds_art::ArtError),
    /// The artifact is valid but this reader cannot serve it (e.g. a
    /// column is not fully merged, or a page index is missing).
    Unsupported(String),
}

impl std::fmt::Display for OocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OocError::Io(e) => write!(f, "out-of-core io failure: {e}"),
            OocError::Art(e) => write!(f, "out-of-core artifact failure: {e}"),
            OocError::Unsupported(msg) => write!(f, "unsupported pool artifact: {msg}"),
        }
    }
}

impl std::error::Error for OocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OocError::Io(e) => Some(e),
            OocError::Art(e) => Some(e),
            OocError::Unsupported(_) => None,
        }
    }
}

impl From<std::io::Error> for OocError {
    fn from(e: std::io::Error) -> Self {
        OocError::Io(e)
    }
}

impl From<reds_art::ArtError> for OocError {
    fn from(e: reds_art::ArtError) -> Self {
        OocError::Art(e)
    }
}
