//! The paged, file-backed membership bitmask.
//!
//! The active-row mask of an `L = 10⁷` pool is only ~1.2 MB, but the
//! out-of-core contract is that **no** per-row state is resident: the
//! mask lives in a scratch file beside the artifact (one bit per row,
//! LSB-first within each byte, so ascending bit order is ascending row
//! order), and the store touches it through a small write-back page
//! cache. Deactivation marks pages dirty; eviction and [`flush`]
//! persist them with positioned writes.
//!
//! The scratch file is removed on drop — it is live search state, not
//! an artifact.
//!
//! [`flush`]: PagedMask::flush

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use crate::OocError;

/// Bytes per mask page: 4 KiB = 32 768 rows.
pub(crate) const MASK_PAGE_BYTES: usize = 4096;

struct MaskSlot {
    data: Vec<u8>,
    dirty: bool,
    generation: u64,
}

/// A file-backed bitmask over `n_rows` rows with a bounded write-back
/// page cache. Starts all-ones (every row active); bits only ever
/// clear (deactivation is monotone).
pub(crate) struct PagedMask {
    file: File,
    path: PathBuf,
    n_rows: usize,
    n_bytes: usize,
    max_pages: usize,
    pages: HashMap<u64, MaskSlot>,
    lru: VecDeque<(u64, u64)>,
    next_generation: u64,
}

impl PagedMask {
    /// Creates the scratch file at `path`, initialized to all rows
    /// active, caching at most `max_pages` pages (≥ 1 enforced).
    pub(crate) fn create(path: &Path, n_rows: usize, max_pages: usize) -> Result<Self, OocError> {
        let n_bytes = n_rows.div_ceil(8);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        // All-ones body, trailing bits beyond n_rows cleared.
        let chunk = [0xffu8; 64 * 1024];
        let mut remaining = n_bytes;
        while remaining > 0 {
            let take = remaining.min(chunk.len());
            file.write_all(&chunk[..take])?;
            remaining -= take;
        }
        if !n_rows.is_multiple_of(8) && n_bytes > 0 {
            let last = 0xffu8 >> (8 - (n_rows % 8) as u32);
            file.write_at(&[last], (n_bytes - 1) as u64)?;
        }
        file.flush()?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            n_rows,
            n_bytes,
            max_pages: max_pages.max(1),
            pages: HashMap::new(),
            lru: VecDeque::new(),
            next_generation: 0,
        })
    }

    /// Number of mask pages.
    pub(crate) fn n_pages(&self) -> u64 {
        self.n_bytes.div_ceil(MASK_PAGE_BYTES) as u64
    }

    fn page_len(&self, page: u64) -> usize {
        let start = page as usize * MASK_PAGE_BYTES;
        MASK_PAGE_BYTES.min(self.n_bytes - start)
    }

    fn write_back(file: &File, page: u64, data: &[u8]) -> Result<(), OocError> {
        file.write_all_at(data, page * MASK_PAGE_BYTES as u64)?;
        Ok(())
    }

    /// Drops stale tickets once they outnumber the live ones. A mask
    /// whose pages all fit the cache never evicts, so without this the
    /// queue would grow by one ticket per `is_set`/`clear` — unbounded
    /// over a long search. Retain preserves order (recency unchanged);
    /// the 2× trigger keeps the sweep amortized O(1) per touch.
    fn compact(&mut self) {
        if self.lru.len() > self.pages.len() * 2 + 64 {
            let pages = &self.pages;
            self.lru
                .retain(|&(page, g)| pages.get(&page).is_some_and(|s| s.generation == g));
        }
    }

    fn touch(&mut self, page: u64) -> Result<(), OocError> {
        let generation = self.next_generation;
        self.next_generation += 1;
        if let Some(slot) = self.pages.get_mut(&page) {
            slot.generation = generation;
            self.lru.push_back((page, generation));
            self.compact();
            return Ok(());
        }
        let mut data = vec![0u8; self.page_len(page)];
        self.file
            .read_exact_at(&mut data, page * MASK_PAGE_BYTES as u64)?;
        self.pages.insert(
            page,
            MaskSlot {
                data,
                dirty: false,
                generation,
            },
        );
        self.lru.push_back((page, generation));
        while self.pages.len() > self.max_pages {
            let Some((victim, ticket)) = self.lru.pop_front() else {
                break;
            };
            if victim == page {
                self.lru.push_back((victim, ticket));
                if self.lru.len() == 1 {
                    break;
                }
                continue;
            }
            let live = self
                .pages
                .get(&victim)
                .is_some_and(|s| s.generation == ticket);
            if !live {
                continue;
            }
            let slot = self.pages.remove(&victim).expect("checked above");
            if slot.dirty {
                Self::write_back(&self.file, victim, &slot.data)?;
            }
        }
        self.compact();
        Ok(())
    }

    /// `true` when `row`'s bit is set.
    pub(crate) fn is_set(&mut self, row: u32) -> Result<bool, OocError> {
        debug_assert!((row as usize) < self.n_rows);
        let byte = row as usize / 8;
        let page = (byte / MASK_PAGE_BYTES) as u64;
        self.touch(page)?;
        let slot = self.pages.get(&page).expect("just touched");
        Ok(slot.data[byte % MASK_PAGE_BYTES] & (1 << (row % 8)) != 0)
    }

    /// Clears `row`'s bit; returns whether it was set.
    pub(crate) fn clear(&mut self, row: u32) -> Result<bool, OocError> {
        debug_assert!((row as usize) < self.n_rows);
        let byte = row as usize / 8;
        let page = (byte / MASK_PAGE_BYTES) as u64;
        self.touch(page)?;
        let slot = self.pages.get_mut(&page).expect("just touched");
        let bit = 1u8 << (row % 8);
        let was = slot.data[byte % MASK_PAGE_BYTES] & bit != 0;
        if was {
            slot.data[byte % MASK_PAGE_BYTES] &= !bit;
            slot.dirty = true;
        }
        Ok(was)
    }

    /// A copy of one mask page's bytes (bit `b` of byte `i` is row
    /// `page·8·MASK_PAGE_BYTES + 8·i + b`). A copy, not a borrow, so
    /// the caller can interleave other store reads while walking it.
    pub(crate) fn page_bits(&mut self, page: u64) -> Result<Vec<u8>, OocError> {
        self.touch(page)?;
        Ok(self.pages.get(&page).expect("just touched").data.clone())
    }

    /// Writes every dirty cached page back to the scratch file. The
    /// store itself never needs this (the mask is scratch state,
    /// removed on drop); the persistence tests do.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn flush(&mut self) -> Result<(), OocError> {
        for (&page, slot) in self.pages.iter_mut() {
            if slot.dirty {
                Self::write_back(&self.file, page, &slot.data)?;
                slot.dirty = false;
            }
        }
        Ok(())
    }
}

impl Drop for PagedMask {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("reds-ooc-mask-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("pool.mask")
    }

    #[test]
    fn starts_all_active_and_clears_monotonically() {
        let path = scratch("basic");
        let mut m = PagedMask::create(&path, 77, 2).unwrap();
        for row in 0..77 {
            assert!(m.is_set(row).unwrap(), "row {row} starts active");
        }
        assert!(m.clear(13).unwrap());
        assert!(!m.clear(13).unwrap(), "second clear reports already-clear");
        assert!(!m.is_set(13).unwrap());
        assert!(m.is_set(12).unwrap());
    }

    #[test]
    fn trailing_bits_beyond_n_rows_are_zero() {
        let path = scratch("trailing");
        let m = PagedMask::create(&path, 11, 1).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 2);
        assert_eq!(bytes[0], 0xff);
        assert_eq!(bytes[1], 0b0000_0111);
        drop(m);
        assert!(!path.exists(), "scratch mask not removed on drop");
    }

    #[test]
    fn ticket_queue_stays_bounded_when_nothing_evicts() {
        // A mask whose pages all fit never evicts; the recency queue
        // must still not grow per is_set/clear.
        let path = scratch("tickets");
        let rows = MASK_PAGE_BYTES * 8 * 2;
        let mut m = PagedMask::create(&path, rows, 8).unwrap();
        for i in 0..100_000u32 {
            let row = (i as usize * 97) % rows;
            assert!(m.is_set(row as u32).unwrap() || i > 0);
            if i % 3 == 0 {
                let _ = m.clear(row as u32).unwrap();
            }
        }
        assert!(
            m.lru.len() <= m.pages.len() * 2 + 64,
            "queue holds {} tickets for {} live pages",
            m.lru.len(),
            m.pages.len()
        );
    }

    #[test]
    fn eviction_writes_dirty_pages_back() {
        let path = scratch("writeback");
        // 3 pages of rows, cache of 1 page: every touch of another
        // page evicts (and persists) the previous one.
        let rows = MASK_PAGE_BYTES * 8 * 3;
        let mut m = PagedMask::create(&path, rows, 1).unwrap();
        let probes: Vec<u32> = vec![
            5,
            (MASK_PAGE_BYTES * 8 + 9) as u32,
            (2 * MASK_PAGE_BYTES * 8 + 13) as u32,
        ];
        for &row in &probes {
            assert!(m.clear(row).unwrap());
        }
        for &row in &probes {
            assert!(!m.is_set(row).unwrap(), "row {row} lost across eviction");
            assert!(m.is_set(row + 1).unwrap());
        }
        m.flush().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for &row in &probes {
            assert_eq!(
                bytes[row as usize / 8] & (1 << (row % 8)),
                0,
                "row {row} not persisted"
            );
        }
    }

    proptest! {
        /// The paged, evicting, write-back mask agrees with a plain
        /// in-memory `Vec<bool>` across arbitrary clear/query
        /// sequences, row counts, and cache sizes (including a 1-page
        /// cache, which forces an eviction on every page switch).
        #[test]
        fn matches_in_memory_mask(
            n_rows in 1usize..200_000,
            max_pages in 1usize..4,
            ops in prop::collection::vec((0u32..u32::MAX, prop::bool::ANY), 1..300),
            case in 0u64..u64::MAX,
        ) {
            let dir = std::env::temp_dir()
                .join(format!("reds-ooc-maskprop-{}-{case}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("m.mask");
            let mut paged = PagedMask::create(&path, n_rows, max_pages).unwrap();
            let mut reference = vec![true; n_rows];
            for &(raw, is_clear) in &ops {
                let row = raw % n_rows as u32;
                if is_clear {
                    let was = paged.clear(row).unwrap();
                    prop_assert_eq!(was, reference[row as usize]);
                    reference[row as usize] = false;
                } else {
                    prop_assert_eq!(paged.is_set(row).unwrap(), reference[row as usize]);
                }
            }
            // Full sweep: every row agrees at the end.
            for row in 0..n_rows as u32 {
                prop_assert_eq!(paged.is_set(row).unwrap(), reference[row as usize]);
            }
            // And the persisted file agrees bit for bit after a flush.
            paged.flush().unwrap();
            let bytes = std::fs::read(&path).unwrap();
            for row in 0..n_rows {
                let bit = bytes[row / 8] & (1 << (row % 8)) != 0;
                prop_assert_eq!(bit, reference[row]);
            }
            drop(paged);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
