//! [`OocPool`]: the paged, rank-addressable column store.
//!
//! Opens a `.redsart` pool artifact (streaming-verified, never
//! mapped), validates that every column is fully merged and carries a
//! page index, and serves [`ColumnAccess`] over it:
//!
//! * a column's sorted records are addressed by **rank** — rank `r`
//!   lives in page `r / page_rows` at a fixed byte offset, one `pread`
//!   away;
//! * per-column **watermarks** `[lo, hi)` bracket the ranks that can
//!   still be active: PRIM cuts only ever trim the ends of a sorted
//!   column, so everything outside the bracket is inactive by
//!   construction;
//! * pages *inside* the bracket that a scan observes with zero active
//!   rows are marked **dead** and skipped without I/O from then on —
//!   sound because deactivation is monotone (rows never reactivate);
//! * the active-row mask is the paged scratch file of
//!   [`mask`](crate::mask), not a resident vector.
//!
//! Every visit order matches the in-memory
//! [`ViewAccess`](reds_data::ViewAccess) exactly; the equivalence
//! tests drive both through identical cut sequences and require
//! bit-identical observations.

use std::path::Path;
use std::rc::Rc;

use reds_art::{
    ArtScan, PageIndex, ScanSection, SECTION_COLUMN, SECTION_DATASET, SECTION_PAGE_INDEX,
};
use reds_data::{ord_key_inverse, ColumnAccess, PointVisitor};

use crate::cache::{Page, PageCache, PageKey, PageKind, Rec};
use crate::mask::{PagedMask, MASK_PAGE_BYTES};
use crate::{OocConfig, OocError};

/// Why a read that passed full verification at open time can still be
/// trusted to succeed: the only failures left are catastrophic
/// filesystem ones, which have no better answer than stopping.
const READ_EXPECT: &str = "verified pool artifact became unreadable mid-search";
const MASK_EXPECT: &str = "membership mask scratch file became unusable mid-search";

struct ColMeta {
    /// Absolute file offset of the column's first 12-byte record.
    records_off: u64,
    /// Decoded per-page (min value, max value) fences.
    fences: Vec<(f64, f64)>,
    /// First rank that can still be active.
    lo: usize,
    /// One past the last rank that can still be active.
    hi: usize,
    /// Pages observed with zero active rows — skipped without I/O.
    dead: Vec<bool>,
}

/// Cache / I/O counters of an [`OocPool`], for reports and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OocStats {
    /// Page fetches served from the cache.
    pub cache_hits: u64,
    /// Page fetches that went to disk.
    pub cache_misses: u64,
}

/// An out-of-core pool: [`ColumnAccess`] served from a verified
/// `.redsart` artifact through a budgeted page cache and a paged
/// membership mask. See the [module docs](self).
pub struct OocPool {
    scan: ArtScan,
    n: usize,
    m: usize,
    page_rows: usize,
    points_off: u64,
    labels_off: u64,
    cols: Vec<ColMeta>,
    cache: PageCache,
    mask: PagedMask,
    n_active: usize,
}

fn unsupported(msg: impl Into<String>) -> OocError {
    OocError::Unsupported(msg.into())
}

impl OocPool {
    /// Opens and validates a pool artifact written by
    /// `reds_stream::PoolBuilder::finish_art`. Creates the membership
    /// mask scratch file beside it (`<artifact>.mask`, removed when
    /// the pool drops), with every row active.
    pub fn open(path: &Path, cfg: &OocConfig) -> Result<Self, OocError> {
        let scan = ArtScan::open(path)?;
        let mut dataset: Option<ScanSection> = None;
        let mut col_secs: Vec<ScanSection> = Vec::new();
        let mut idx_secs: Vec<ScanSection> = Vec::new();
        for &s in scan.sections() {
            match s.kind {
                SECTION_DATASET if dataset.is_none() => dataset = Some(s),
                SECTION_DATASET => return Err(unsupported("multiple dataset sections")),
                SECTION_COLUMN => col_secs.push(s),
                SECTION_PAGE_INDEX => idx_secs.push(s),
                _ => {}
            }
        }
        let dataset = dataset.ok_or_else(|| unsupported("no dataset section"))?;

        // Dataset geometry: n, m, then n·m points and n labels.
        let mut head = [0u8; 16];
        scan.read_exact_at(&mut head, dataset.offset)?;
        let n = u64::from_le_bytes(head[..8].try_into().expect("8 bytes")) as usize;
        let m = u64::from_le_bytes(head[8..16].try_into().expect("8 bytes")) as usize;
        let body = (n as u64)
            .checked_mul(m as u64)
            .and_then(|c| c.checked_add(n as u64))
            .and_then(|c| c.checked_mul(8))
            .and_then(|c| c.checked_add(16));
        if n == 0 || m == 0 || body != Some(dataset.len) {
            return Err(unsupported(format!(
                "dataset section of {} bytes does not hold an n = {n}, m = {m} pool",
                dataset.len
            )));
        }
        let points_off = dataset.offset + 16;
        let labels_off = points_off + (n * m * 8) as u64;

        // Columns: exactly one fully merged section per dimension.
        let mut records: Vec<Option<u64>> = vec![None; m];
        for s in &col_secs {
            let mut head = [0u8; 32];
            scan.read_exact_at(&mut head, s.offset)?;
            let col = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
            let n_rows = u64::from_le_bytes(head[8..16].try_into().expect("8 bytes"));
            let run_count = u64::from_le_bytes(head[16..24].try_into().expect("8 bytes"));
            if col >= m {
                return Err(unsupported(format!("column {col} of an m = {m} pool")));
            }
            if run_count != 1 {
                return Err(unsupported(format!(
                    "column {col} holds {run_count} runs; the out-of-core store needs fully \
                     merged (rank-addressable) columns"
                )));
            }
            let run_len = u64::from_le_bytes(head[24..32].try_into().expect("8 bytes"));
            if n_rows != n as u64 || run_len != n as u64 {
                return Err(unsupported(format!(
                    "column {col} sorts {n_rows} rows, dataset has {n}"
                )));
            }
            let payload = (32 + 12 * n as u64).next_multiple_of(8);
            if s.len != payload {
                return Err(unsupported(format!(
                    "column {col} section is {} bytes, expected {payload}",
                    s.len
                )));
            }
            if records[col].replace(s.offset + 32).is_some() {
                return Err(unsupported(format!("column {col} appears twice")));
            }
        }

        // Page indexes: one per column, all at the same page size.
        let mut indexes: Vec<Option<PageIndex>> = (0..m).map(|_| None).collect();
        let mut page_rows: Option<u32> = None;
        for s in &idx_secs {
            let mut payload = vec![0u8; s.len as usize];
            scan.read_exact_at(&mut payload, s.offset)?;
            let idx = PageIndex::parse(&payload)?;
            let col = idx.column as usize;
            if col >= m {
                return Err(unsupported(format!(
                    "page index for column {col} of m = {m}"
                )));
            }
            if *page_rows.get_or_insert(idx.page_rows) != idx.page_rows {
                return Err(unsupported("columns are paged at different page sizes"));
            }
            if idx.fences.len() != n.div_ceil(idx.page_rows as usize) {
                return Err(unsupported(format!(
                    "column {col} page index covers {} pages of {} rows for an n = {n} pool",
                    idx.fences.len(),
                    idx.page_rows
                )));
            }
            if indexes[col].replace(idx).is_some() {
                return Err(unsupported(format!("column {col} has two page indexes")));
            }
        }
        let page_rows =
            page_rows.ok_or_else(|| unsupported("artifact has no page indexes"))? as usize;

        let mut cols = Vec::with_capacity(m);
        for (col, (records_off, idx)) in records.into_iter().zip(indexes).enumerate() {
            let records_off = records_off
                .ok_or_else(|| unsupported(format!("column {col} has no column section")))?;
            let idx = idx.ok_or_else(|| unsupported(format!("column {col} has no page index")))?;
            let fences = idx
                .fences
                .iter()
                .map(|&(lo, hi)| (ord_key_inverse(lo), ord_key_inverse(hi)))
                .collect::<Vec<_>>();
            let n_pages = fences.len();
            cols.push(ColMeta {
                records_off,
                fences,
                lo: 0,
                hi: n,
                dead: vec![false; n_pages],
            });
        }

        let mut mask_name = path.as_os_str().to_os_string();
        mask_name.push(".mask");
        let mask_pages = ((cfg.cache_bytes / 8) / MASK_PAGE_BYTES).max(2);
        let mask = PagedMask::create(Path::new(&mask_name), n, mask_pages)?;

        Ok(Self {
            scan,
            n,
            m,
            page_rows,
            points_off,
            labels_off,
            cols,
            cache: PageCache::new(cfg.cache_bytes),
            mask,
            n_active: n,
        })
    }

    /// Records per page (the artifact's page-index granularity).
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// Cache counters.
    pub fn stats(&self) -> OocStats {
        OocStats {
            cache_hits: self.cache.hits,
            cache_misses: self.cache.misses,
        }
    }

    fn records_page(&mut self, col: usize, page: usize) -> Rc<[Rec]> {
        let key = PageKey {
            kind: PageKind::Records,
            col: col as u32,
            page: page as u64,
        };
        if let Some(Page::Records(r)) = self.cache.get(key) {
            return r;
        }
        let base = page * self.page_rows;
        let rows = self.page_rows.min(self.n - base);
        let mut buf = vec![0u8; rows * 12];
        self.scan
            .read_exact_at(&mut buf, self.cols[col].records_off + (base * 12) as u64)
            .expect(READ_EXPECT);
        let recs: Rc<[Rec]> = buf
            .chunks_exact(12)
            .map(|r| Rec {
                value: ord_key_inverse(u64::from_le_bytes(r[..8].try_into().expect("8 bytes"))),
                row: u32::from_le_bytes(r[8..12].try_into().expect("4 bytes")),
            })
            .collect();
        self.cache.insert(key, Page::Records(recs.clone()));
        recs
    }

    fn floats_page(
        &mut self,
        kind: PageKind,
        offset: u64,
        stride: usize,
        page: usize,
    ) -> Rc<[f64]> {
        let key = PageKey {
            kind,
            col: 0,
            page: page as u64,
        };
        if let Some(Page::Floats(f)) = self.cache.get(key) {
            return f;
        }
        let base = page * self.page_rows;
        let rows = self.page_rows.min(self.n - base);
        let mut buf = vec![0u8; rows * stride * 8];
        self.scan
            .read_exact_at(&mut buf, offset + (base * stride * 8) as u64)
            .expect(READ_EXPECT);
        let vals: Rc<[f64]> = buf
            .chunks_exact(8)
            .map(|b| f64::from_bits(u64::from_le_bytes(b.try_into().expect("8 bytes"))))
            .collect();
        self.cache.insert(key, Page::Floats(vals.clone()));
        vals
    }

    fn labels_page(&mut self, page: usize) -> Rc<[f64]> {
        self.floats_page(PageKind::Labels, self.labels_off, 1, page)
    }

    fn points_page(&mut self, page: usize) -> Rc<[f64]> {
        self.floats_page(PageKind::Points, self.points_off, self.m, page)
    }
}

impl ColumnAccess for OocPool {
    fn m(&self) -> usize {
        self.m
    }

    fn n_rows(&self) -> usize {
        self.n
    }

    fn n_active(&self) -> usize {
        self.n_active
    }

    fn is_active(&mut self, row: u32) -> bool {
        self.mask.is_set(row).expect(MASK_EXPECT)
    }

    fn label(&mut self, row: u32) -> f64 {
        let page = row as usize / self.page_rows;
        let labels = self.labels_page(page);
        labels[row as usize % self.page_rows]
    }

    fn active_label_sum(&mut self) -> f64 {
        // -0.0 is the additive identity `Iterator::sum::<f64>` folds
        // from; starting at +0.0 would differ bitwise on empty or
        // all-negative-zero sums.
        let mut sum = -0.0;
        let mut labels: Option<(usize, Rc<[f64]>)> = None;
        for mask_page in 0..self.mask.n_pages() {
            let bits = self.mask.page_bits(mask_page).expect(MASK_EXPECT);
            let base_row = mask_page as usize * MASK_PAGE_BYTES * 8;
            for (i, &byte) in bits.iter().enumerate() {
                let mut rest = byte;
                while rest != 0 {
                    let bit = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    let row = base_row + i * 8 + bit;
                    let page = row / self.page_rows;
                    if labels.as_ref().map(|(p, _)| *p) != Some(page) {
                        labels = Some((page, self.labels_page(page)));
                    }
                    sum += labels.as_ref().expect("just set").1[row % self.page_rows];
                }
            }
        }
        sum
    }

    fn scan_active_front(&mut self, dim: usize, f: &mut dyn FnMut(f64, u32) -> bool) {
        let page_rows = self.page_rows;
        let (lo, hi) = (self.cols[dim].lo, self.cols[dim].hi);
        let mut rank = lo;
        'outer: while rank < hi {
            let p = rank / page_rows;
            let page_end = ((p + 1) * page_rows).min(hi);
            if self.cols[dim].dead[p] {
                rank = page_end;
                continue;
            }
            let recs = self.records_page(dim, p);
            let base = p * page_rows;
            let mut any_active = false;
            for idx in (rank - base)..(page_end - base) {
                let r = recs[idx];
                rank += 1;
                if self.mask.is_set(r.row).expect(MASK_EXPECT) {
                    any_active = true;
                    if !f(r.value, r.row) {
                        break 'outer;
                    }
                }
            }
            if !any_active {
                self.cols[dim].dead[p] = true;
            }
        }
    }

    fn scan_active_back(&mut self, dim: usize, f: &mut dyn FnMut(f64, u32) -> bool) {
        let page_rows = self.page_rows;
        let (lo, hi) = (self.cols[dim].lo, self.cols[dim].hi);
        let mut rank = hi;
        'outer: while rank > lo {
            let p = (rank - 1) / page_rows;
            let page_start = (p * page_rows).max(lo);
            if self.cols[dim].dead[p] {
                rank = page_start;
                continue;
            }
            let recs = self.records_page(dim, p);
            let base = p * page_rows;
            let mut any_active = false;
            for idx in ((page_start - base)..(rank - base)).rev() {
                let r = recs[idx];
                rank -= 1;
                if self.mask.is_set(r.row).expect(MASK_EXPECT) {
                    any_active = true;
                    if !f(r.value, r.row) {
                        break 'outer;
                    }
                }
            }
            if !any_active {
                self.cols[dim].dead[p] = true;
            }
        }
    }

    fn scan_column_points(&mut self, dim: usize, f: &mut PointVisitor<'_>) {
        let page_rows = self.page_rows;
        let m = self.m;
        let (lo, hi) = (self.cols[dim].lo, self.cols[dim].hi);
        let mut rank = lo;
        while rank < hi {
            let p = rank / page_rows;
            let page_end = ((p + 1) * page_rows).min(hi);
            if self.cols[dim].dead[p] {
                rank = page_end;
                continue;
            }
            let recs = self.records_page(dim, p);
            let base = p * page_rows;
            let mut any_active = false;
            for idx in (rank - base)..(page_end - base) {
                let r = recs[idx];
                rank += 1;
                if self.mask.is_set(r.row).expect(MASK_EXPECT) {
                    any_active = true;
                    let row = r.row as usize;
                    let dpage = row / page_rows;
                    let points = self.points_page(dpage);
                    let labels = self.labels_page(dpage);
                    let in_page = row % page_rows;
                    f(
                        r.value,
                        r.row,
                        &points[in_page * m..(in_page + 1) * m],
                        labels[in_page],
                    );
                }
            }
            if !any_active {
                self.cols[dim].dead[p] = true;
            }
        }
    }

    fn scan_rows(&mut self, f: &mut dyn FnMut(u32, &[f64], f64)) {
        let page_rows = self.page_rows;
        let m = self.m;
        let mut row = 0usize;
        while row < self.n {
            let p = row / page_rows;
            let end = ((p + 1) * page_rows).min(self.n);
            let points = self.points_page(p);
            let labels = self.labels_page(p);
            for r in row..end {
                let in_page = r % page_rows;
                f(
                    r as u32,
                    &points[in_page * m..(in_page + 1) * m],
                    labels[in_page],
                );
            }
            row = end;
        }
    }

    fn deactivate_below(&mut self, dim: usize, bound: f64) -> usize {
        let page_rows = self.page_rows;
        let (lo, hi) = (self.cols[dim].lo, self.cols[dim].hi);
        let mut removed = 0usize;
        let mut rank = lo;
        'outer: while rank < hi {
            let p = rank / page_rows;
            let page_end = ((p + 1) * page_rows).min(hi);
            if self.cols[dim].dead[p] {
                if self.cols[dim].fences[p].1 < bound {
                    // Whole (inactive) page below the bound: the cut
                    // continues past it with zero I/O.
                    rank = page_end;
                    continue;
                }
                // The cut ends inside this all-inactive page; nothing
                // left to deactivate anywhere (the column is sorted).
                break;
            }
            let recs = self.records_page(dim, p);
            let base = p * page_rows;
            for idx in (rank - base)..(page_end - base) {
                let r = recs[idx];
                if r.value < bound {
                    if self.mask.clear(r.row).expect(MASK_EXPECT) {
                        removed += 1;
                    }
                    rank += 1;
                } else {
                    break 'outer;
                }
            }
        }
        self.cols[dim].lo = rank;
        self.n_active -= removed;
        removed
    }

    fn deactivate_above(&mut self, dim: usize, bound: f64) -> usize {
        let page_rows = self.page_rows;
        let (lo, hi) = (self.cols[dim].lo, self.cols[dim].hi);
        let mut removed = 0usize;
        let mut rank = hi;
        'outer: while rank > lo {
            let p = (rank - 1) / page_rows;
            let page_start = (p * page_rows).max(lo);
            if self.cols[dim].dead[p] {
                if self.cols[dim].fences[p].0 > bound {
                    rank = page_start;
                    continue;
                }
                break;
            }
            let recs = self.records_page(dim, p);
            let base = p * page_rows;
            for idx in ((page_start - base)..(rank - base)).rev() {
                let r = recs[idx];
                if r.value > bound {
                    if self.mask.clear(r.row).expect(MASK_EXPECT) {
                        removed += 1;
                    }
                    rank -= 1;
                } else {
                    break 'outer;
                }
            }
        }
        self.cols[dim].hi = rank;
        self.n_active -= removed;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use reds_data::{Dataset, SortedView, ViewAccess};
    use reds_stream::{PoolBuilder, StreamConfig};

    /// Values with heavy ties, negatives, and -0.0/0.0 pairs.
    fn demo(n: usize, m: usize) -> Dataset {
        let points: Vec<f64> = (0..n * m)
            .map(|i| match (i * 7919) % 11 {
                0 => -0.0,
                1 => 0.0,
                k => (k as f64 - 5.0) / 3.0,
            })
            .collect();
        let labels: Vec<f64> = (0..n).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();
        Dataset::new(points, labels, m).unwrap()
    }

    fn write_art(d: &Dataset, page_rows: u32, tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "reds-ooc-store-{}-{tag}-{page_rows}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.redsart");
        let mut b = PoolBuilder::new(d.m(), &StreamConfig::new()).unwrap();
        // Odd chunking on purpose — merged order must not depend on it.
        let mut row = 0;
        while row < d.n() {
            let take = 17.min(d.n() - row);
            b.push_chunk(
                &d.points()[row * d.m()..(row + take) * d.m()],
                &d.labels()[row..row + take],
            )
            .unwrap();
            row += take;
        }
        b.finish_art(&path, page_rows).unwrap();
        path
    }

    fn front(a: &mut dyn ColumnAccess, dim: usize) -> Vec<(f64, u32)> {
        let mut out = Vec::new();
        a.scan_active_front(dim, &mut |v, r| {
            out.push((v, r));
            true
        });
        out
    }

    fn back(a: &mut dyn ColumnAccess, dim: usize) -> Vec<(f64, u32)> {
        let mut out = Vec::new();
        a.scan_active_back(dim, &mut |v, r| {
            out.push((v, r));
            true
        });
        out
    }

    fn assert_same_state(ooc: &mut OocPool, mem: &mut ViewAccess<'_>, what: &str) {
        assert_eq!(ooc.n_active(), mem.n_active(), "{what}: n_active");
        assert_eq!(
            ooc.active_label_sum().to_bits(),
            mem.active_label_sum().to_bits(),
            "{what}: label sum"
        );
        for row in 0..ooc.n_rows() as u32 {
            assert_eq!(ooc.is_active(row), mem.is_active(row), "{what}: row {row}");
        }
        for dim in 0..ooc.m() {
            assert_eq!(front(ooc, dim), front(mem, dim), "{what}: front dim {dim}");
            assert_eq!(back(ooc, dim), back(mem, dim), "{what}: back dim {dim}");
        }
    }

    #[test]
    fn fresh_pool_matches_view_access_in_every_order() {
        let d = demo(157, 3);
        for page_rows in [1u32, 7, 64, 157, 400] {
            let path = write_art(&d, page_rows, "fresh");
            let mut ooc = OocPool::open(&path, &OocConfig::new()).unwrap();
            let mut mem = ViewAccess::new(&d, SortedView::new(&d));
            assert_eq!(ooc.page_rows(), page_rows as usize);
            assert_same_state(&mut ooc, &mut mem, &format!("page_rows {page_rows}"));
            // scan_rows ignores the mask and hands exact points.
            let mut rows = 0;
            ooc.scan_rows(&mut |row, point, label| {
                assert_eq!(point, d.point(row as usize));
                assert_eq!(label, d.label(row as usize));
                rows += 1;
            });
            assert_eq!(rows, d.n());
            std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
        }
    }

    #[test]
    fn cut_sequences_match_under_pathological_page_sizes_and_tiny_cache() {
        let d = demo(211, 3);
        let cuts: Vec<(usize, bool, f64)> = vec![
            (0, true, -1.0),
            (1, false, 1.2),
            (0, true, 0.0), // lands on the -0.0 / 0.0 tie boundary
            (2, false, 0.4),
            (1, true, -0.3),
            (0, false, 0.9),
            (2, true, 2.5), // cuts everything below a high bound
        ];
        for page_rows in [1u32, 3, 50, 300] {
            // 256-byte cache: nearly every fetch is a miss — correctness
            // must not depend on residency.
            for cache_bytes in [256usize, 1 << 20] {
                let path = write_art(&d, page_rows, "cuts");
                let cfg = OocConfig::new().with_cache_bytes(cache_bytes);
                let mut ooc = OocPool::open(&path, &cfg).unwrap();
                let mut mem = ViewAccess::new(&d, SortedView::new(&d));
                for (i, &(dim, below, bound)) in cuts.iter().enumerate() {
                    let (a, b) = if below {
                        (
                            ooc.deactivate_below(dim, bound),
                            mem.deactivate_below(dim, bound),
                        )
                    } else {
                        (
                            ooc.deactivate_above(dim, bound),
                            mem.deactivate_above(dim, bound),
                        )
                    };
                    assert_eq!(a, b, "cut {i} removal count (page_rows {page_rows})");
                    assert_same_state(
                        &mut ooc,
                        &mut mem,
                        &format!("after cut {i}, page_rows {page_rows}, cache {cache_bytes}"),
                    );
                }
                std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
            }
        }
    }

    #[test]
    fn column_point_scan_matches_and_serves_full_rows() {
        let d = demo(90, 2);
        let path = write_art(&d, 8, "points");
        let mut ooc = OocPool::open(&path, &OocConfig::new()).unwrap();
        let mut mem = ViewAccess::new(&d, SortedView::new(&d));
        ooc.deactivate_below(0, 0.2);
        mem.deactivate_below(0, 0.2);
        for dim in 0..d.m() {
            let mut got = Vec::new();
            ooc.scan_column_points(dim, &mut |v, row, point, label| {
                got.push((v, row, point.to_vec(), label));
            });
            let mut want = Vec::new();
            mem.scan_column_points(dim, &mut |v, row, point, label| {
                want.push((v, row, point.to_vec(), label));
            });
            assert_eq!(got, want, "dim {dim}");
        }
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn artifact_without_page_index_is_rejected() {
        // A model artifact has no column/page-index sections at all.
        let d = demo(20, 2);
        let path = write_art(&d, 4, "reject");
        // Truncate the mask requirement instead: open against a file
        // missing page indexes. Build one via ArtWriter without them.
        let dir = path.parent().unwrap();
        let bare = dir.join("bare.redsart");
        {
            let mut w = reds_art::ArtWriter::create(&bare).unwrap();
            w.begin_section(SECTION_DATASET).unwrap();
            w.write(&2u64.to_le_bytes()).unwrap();
            w.write(&1u64.to_le_bytes()).unwrap();
            for v in [0.5f64, 0.25, 1.0, 0.0] {
                w.write(&v.to_bits().to_le_bytes()).unwrap();
            }
            w.end_section().unwrap();
            w.finish().unwrap();
        }
        match OocPool::open(&bare, &OocConfig::new()) {
            Err(OocError::Unsupported(msg)) => {
                assert!(msg.contains("page index"), "got: {msg}")
            }
            Err(other) => panic!("expected Unsupported, got {other:?}"),
            Ok(_) => panic!("expected Unsupported, got a pool"),
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The paged store and the in-memory view stay bit-identical
        /// across arbitrary peel sequences, page sizes, tie layouts,
        /// and cache budgets — the membership mask, the label sums,
        /// and every scan order.
        #[test]
        fn arbitrary_peels_stay_bit_identical(
            n in 1usize..120,
            m in 1usize..4,
            page_rows in 1u32..140,
            cache_kb in 0usize..3,
            tie_mod in 2u64..12,
            cuts in prop::collection::vec(
                (0usize..4, prop::bool::ANY, -6i32..6),
                0..12
            ),
            case in 0u64..u64::MAX,
        ) {
            let points: Vec<f64> = (0..n * m)
                .map(|i| {
                    let k = (i as u64 * 2654435761) % tie_mod;
                    (k as f64 - tie_mod as f64 / 2.0) / 2.0
                })
                .collect();
            let labels: Vec<f64> =
                (0..n).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
            let d = Dataset::new(points, labels, m).unwrap();
            let dir = std::env::temp_dir()
                .join(format!("reds-ooc-prop-{}-{case}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("pool.redsart");
            let mut b = PoolBuilder::new(m, &StreamConfig::new()).unwrap();
            b.push_chunk(d.points(), d.labels()).unwrap();
            b.finish_art(&path, page_rows).unwrap();
            let cfg = OocConfig::new().with_cache_bytes(cache_kb << 10);
            let mut ooc = OocPool::open(&path, &cfg).unwrap();
            let mut mem = ViewAccess::new(&d, SortedView::new(&d));
            for &(dim_raw, below, bound_raw) in &cuts {
                let dim = dim_raw % m;
                let bound = bound_raw as f64 / 4.0;
                let (a, b) = if below {
                    (ooc.deactivate_below(dim, bound), mem.deactivate_below(dim, bound))
                } else {
                    (ooc.deactivate_above(dim, bound), mem.deactivate_above(dim, bound))
                };
                prop_assert_eq!(a, b);
                prop_assert_eq!(ooc.n_active(), mem.n_active());
                prop_assert_eq!(
                    ooc.active_label_sum().to_bits(),
                    mem.active_label_sum().to_bits()
                );
                for row in 0..n as u32 {
                    prop_assert_eq!(ooc.is_active(row), mem.is_active(row));
                }
                for dim in 0..m {
                    prop_assert_eq!(front(&mut ooc, dim), front(&mut mem, dim));
                    prop_assert_eq!(back(&mut ooc, dim), back(&mut mem, dim));
                }
            }
            drop(ooc);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
