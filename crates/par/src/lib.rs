//! Deterministic scoped-thread fan-out for the REDS hot paths.
//!
//! The build environment cannot fetch `rayon`, so this crate provides
//! the small slice-parallel subset the workspace needs, implemented on
//! `std::thread::scope`. Every function preserves input order in its
//! output, so parallel and serial execution produce **bit-identical**
//! results — the forest/GBDT determinism guarantees rely on this.
//!
//! Thread count resolution, in priority order:
//! 1. an explicit override set with [`set_max_threads`] (used by the
//!    benches to force the serial baseline),
//! 2. the `REDS_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! With one resolved thread every helper degenerates to a plain serial
//! loop on the calling thread — no spawn overhead, same numbers.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// `0` means "no override".
static MAX_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the maximum worker count (`None` clears the override).
/// Intended for benchmarks and tests that need a serial baseline.
pub fn set_max_threads(n: Option<usize>) {
    MAX_THREADS_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The number of worker threads fan-outs will use.
pub fn max_threads() -> usize {
    let overridden = MAX_THREADS_OVERRIDE.load(Ordering::SeqCst);
    if overridden > 0 {
        return overridden;
    }
    if let Ok(v) = std::env::var("REDS_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items`, preserving order. Runs on the calling thread
/// when one worker suffices; panics from workers propagate.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = max_threads().min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut parts: Vec<Vec<U>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| scope.spawn(move || slice.iter().map(f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            parts.push(handle.join().expect("parallel worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for part in parts {
        out.extend(part);
    }
    out
}

/// Maps `f` over the index range `0..n`, preserving order.
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |&i| f(i))
}

/// Splits `out` into per-worker contiguous chunks of `chunk_len`
/// elements and fills each in parallel. `f` receives the chunk's first
/// element index and the mutable chunk. Order and contents are
/// identical to a serial loop over chunks.
pub fn par_fill_chunks<U, F>(out: &mut [U], chunk_len: usize, f: F)
where
    U: Send,
    F: Fn(usize, &mut [U]) + Sync,
{
    par_fill_chunks_with(
        out,
        chunk_len,
        || (),
        |_: &mut (), start, chunk| f(start, chunk),
    );
}

/// Like [`par_fill_chunks`], but hands every chunk invocation a
/// per-worker scratch value created once by `init` — the pattern the
/// SIMD prediction kernels use for padded-row and per-chunk prediction
/// buffers, instead of allocating inside the hot loop.
/// [`par_fill_chunks`] delegates here with a unit scratch, so there is
/// exactly one chunk grid and the scratch never influences chunk
/// boundaries — results stay bit-identical to a serial loop under any
/// thread count.
pub fn par_fill_chunks_with<U, S, I, F>(out: &mut [U], chunk_len: usize, init: I, f: F)
where
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [U]) + Sync,
{
    assert!(chunk_len > 0, "chunk length must be positive");
    let n_chunks = out.len().div_ceil(chunk_len).max(1);
    let workers = max_threads().min(n_chunks);
    if workers <= 1 {
        let mut scratch = init();
        for (c, chunk) in out.chunks_mut(chunk_len).enumerate() {
            f(&mut scratch, c * chunk_len, chunk);
        }
        return;
    }
    // One thread per worker, each iterating a contiguous run of whole
    // chunks — the chunk grid (and therefore `f`'s view of the data)
    // is identical to the serial loop's.
    let run_len = n_chunks.div_ceil(workers) * chunk_len;
    std::thread::scope(|scope| {
        let f = &f;
        let init = &init;
        let mut handles = Vec::new();
        for (w, run) in out.chunks_mut(run_len).enumerate() {
            handles.push(scope.spawn(move || {
                let mut scratch = init();
                for (c, chunk) in run.chunks_mut(chunk_len).enumerate() {
                    f(&mut scratch, w * run_len + c * chunk_len, chunk);
                }
            }));
        }
        for handle in handles {
            handle.join().expect("parallel worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `MAX_THREADS_OVERRIDE` is process-global; tests that mutate it
    /// hold this lock so the default parallel test harness cannot
    /// interleave them.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&i| i * 2);
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_serial_under_any_thread_count() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.5).collect();
        let serial: Vec<f64> = items.iter().map(|&x| x.sin()).collect();
        for threads in [1, 2, 3, 8] {
            set_max_threads(Some(threads));
            assert_eq!(par_map(&items, |&x| x.sin()), serial, "threads={threads}");
        }
        set_max_threads(None);
    }

    #[test]
    fn par_map_range_counts_up() {
        assert_eq!(par_map_range(5, |i| i + 1), vec![1, 2, 3, 4, 5]);
        assert_eq!(par_map_range(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn par_fill_chunks_covers_every_slot() {
        let mut out = vec![0usize; 103];
        par_fill_chunks(&mut out, 10, |start, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = start + k;
            }
        });
        assert_eq!(out, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn par_fill_chunks_with_many_more_chunks_than_workers() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        // Workers iterate runs of chunks rather than spawning one
        // thread per chunk; the chunk grid must stay identical.
        set_max_threads(Some(2));
        let mut out = vec![0usize; 10_007];
        par_fill_chunks(&mut out, 8, |start, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = start + k;
            }
        });
        set_max_threads(None);
        assert_eq!(out, (0..10_007).collect::<Vec<_>>());
    }

    #[test]
    fn par_fill_chunks_with_reuses_worker_scratch() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1usize, 3] {
            set_max_threads(Some(threads));
            let mut out = vec![0usize; 1_001];
            par_fill_chunks_with(
                &mut out,
                16,
                || vec![0usize; 16],
                |scratch, start, chunk| {
                    // Scratch is dirty from the previous chunk — the
                    // caller owns resetting it, proving reuse.
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        scratch[k] = start + k;
                        *slot = scratch[k];
                    }
                },
            );
            assert_eq!(out, (0..1_001).collect::<Vec<_>>(), "threads {threads}");
        }
        set_max_threads(None);
    }

    #[test]
    fn override_wins_over_environment() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_max_threads(Some(3));
        assert_eq!(max_threads(), 3);
        set_max_threads(None);
        assert!(max_threads() >= 1);
    }
}
