/// The first 30 primes — bases for the Halton sequence dimensions.
const PRIMES: [u64; 30] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113,
];

/// Radical inverse of `index` in base `base` (van der Corput sequence).
fn radical_inverse(mut index: u64, base: u64) -> f64 {
    let mut result = 0.0;
    let mut fraction = 1.0 / base as f64;
    while index > 0 {
        result += (index % base) as f64 * fraction;
        index /= base;
        fraction /= base as f64;
    }
    result
}

/// First `n` points of the `m`-dimensional Halton sequence (row-major),
/// skipping the initial zero point.
///
/// The paper uses Halton sampling for the `dsgc` simulation model (§8.5,
/// citing Halton's Algorithm 247). Dimension `j` uses the `j`-th prime as
/// its base. Supports up to 30 dimensions; panics beyond that (the paper's
/// functions have at most 30 inputs).
pub fn halton(n: usize, m: usize) -> Vec<f64> {
    halton_offset(n, m, 1)
}

/// Halton points with indices `start .. start + n` — lets repeated
/// experiment runs use disjoint, deterministic slices of the sequence.
///
/// Panics when `m > 30` or `start == 0` would be degenerate is allowed
/// (index 0 maps to the all-zeros point, which is a valid but poorly
/// space-filling start; prefer `start >= 1`).
pub fn halton_offset(n: usize, m: usize, start: u64) -> Vec<f64> {
    assert!(
        m <= PRIMES.len(),
        "halton sequence supports at most {} dimensions, got {m}",
        PRIMES.len()
    );
    let mut out = Vec::with_capacity(n * m);
    for i in 0..n as u64 {
        for &base in &PRIMES[..m] {
            out.push(radical_inverse(start + i, base));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base2_prefix_matches_van_der_corput() {
        // indices 1..=6 in base 2: 0.5, 0.25, 0.75, 0.125, 0.625, 0.375
        let pts = halton(6, 1);
        let expected = [0.5, 0.25, 0.75, 0.125, 0.625, 0.375];
        for (p, e) in pts.iter().zip(expected) {
            assert!((p - e).abs() < 1e-12, "{p} vs {e}");
        }
    }

    #[test]
    fn base3_second_dimension() {
        // indices 1..=4 in base 3: 1/3, 2/3, 1/9, 4/9
        let pts = halton(4, 2);
        let expected = [1.0 / 3.0, 2.0 / 3.0, 1.0 / 9.0, 4.0 / 9.0];
        for (i, e) in expected.iter().enumerate() {
            assert!((pts[i * 2 + 1] - e).abs() < 1e-12);
        }
    }

    #[test]
    fn values_stay_in_unit_interval() {
        let pts = halton(500, 12);
        assert!(pts.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn offset_slices_are_disjoint_continuations() {
        let all = halton(10, 3);
        let head = halton_offset(5, 3, 1);
        let tail = halton_offset(5, 3, 6);
        assert_eq!(&all[..15], head.as_slice());
        assert_eq!(&all[15..], tail.as_slice());
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_dimensions_panics() {
        let _ = halton(1, 31);
    }

    #[test]
    fn low_discrepancy_coverage() {
        // Each of the 10 deciles of dim 0 should receive roughly n/10 of
        // the first 1000 points — Halton is far more even than i.i.d.
        let pts = halton(1000, 2);
        let mut counts = [0usize; 10];
        for i in 0..1000 {
            counts[(pts[i * 2] * 10.0) as usize % 10] += 1;
        }
        for c in counts {
            assert!((95..=105).contains(&c), "decile count {c} too uneven");
        }
    }
}
