use rand::seq::SliceRandom;
use rand::Rng;

/// Latin hypercube sample of `n` points in `[0,1]^m` (row-major).
///
/// Each dimension is divided into `n` equal strata; every stratum receives
/// exactly one point at a uniformly random position, and strata are paired
/// across dimensions by independent random permutations. This is the
/// "maximin-free" classic LHS the paper uses to form the dataset `D`
/// (§8.5, following Kleijnen's design-of-experiments recommendation).
///
/// Returns an empty vector when `n == 0` or `m == 0`.
pub fn latin_hypercube(n: usize, m: usize, rng: &mut impl Rng) -> Vec<f64> {
    if n == 0 || m == 0 {
        return Vec::new();
    }
    let mut out = vec![0.0; n * m];
    let mut perm: Vec<usize> = (0..n).collect();
    for j in 0..m {
        perm.shuffle(rng);
        for (i, &stratum) in perm.iter().enumerate() {
            let jitter: f64 = rng.gen();
            out[i * m + j] = (stratum as f64 + jitter) / n as f64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn one_point_per_stratum_in_every_dimension() {
        let n = 64;
        let m = 5;
        let mut rng = StdRng::seed_from_u64(1);
        let pts = latin_hypercube(n, m, &mut rng);
        for j in 0..m {
            let mut seen = vec![false; n];
            for i in 0..n {
                let stratum = (pts[i * m + j] * n as f64).floor() as usize;
                assert!(stratum < n);
                assert!(!seen[stratum], "stratum {stratum} hit twice in dim {j}");
                seen[stratum] = true;
            }
        }
    }

    #[test]
    fn values_are_in_unit_cube() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = latin_hypercube(100, 3, &mut rng);
        assert!(pts.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn empty_requests_return_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(latin_hypercube(0, 4, &mut rng).is_empty());
        assert!(latin_hypercube(4, 0, &mut rng).is_empty());
    }

    #[test]
    fn seeded_design_is_deterministic() {
        let a = latin_hypercube(16, 2, &mut StdRng::seed_from_u64(5));
        let b = latin_hypercube(16, 2, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
