//! Experimental designs for scenario discovery.
//!
//! The paper samples simulation inputs with space-filling designs (§8.5):
//! Latin hypercube sampling on `[0,1]^M` for most functions, the Halton
//! sequence for the `dsgc` simulator, plain i.i.d. uniform points for the
//! REDS resampling step (`D_new`, Algorithm 4 line 3), a logit-normal
//! design for the semi-supervised experiments (§9.4), and a mixed design
//! that snaps even-indexed inputs to the discrete grid
//! `{0.1, 0.3, 0.5, 0.7, 0.9}` (§9.1.2).
//!
//! All generators return a row-major `Vec<f64>` with `n·m` values in
//! `[0,1]`, ready for labeling into a `reds_data::Dataset`.

#![warn(missing_docs)]

mod halton;
mod lhs;
mod logit_normal;
mod mixed;
mod sobol;
mod uniform;

pub use halton::{halton, halton_offset};
pub use lhs::latin_hypercube;
pub use logit_normal::{logit_normal, standard_normal};
pub use mixed::{discretize_even_columns, mixed_design, DISCRETE_LEVELS};
pub use sobol::{sobol, SOBOL_MAX_DIM};
pub use uniform::uniform;
