use rand::Rng;

/// One standard normal draw via the Box–Muller transform.
///
/// Hand-rolled so the workspace does not need `rand_distr`; the polar
/// rejection variant is avoided to keep the per-call cost deterministic.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Guard u1 away from 0 so ln() stays finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// `n` i.i.d. points in `(0,1)^m` whose coordinates follow a
/// logit-normal distribution: `x = sigmoid(z)`, `z ~ N(mu, sigma²)`.
///
/// The semi-supervised experiments of §9.4 sample every input
/// independently from a logit-normal with `mu = 0`, `sigma = 1` — a
/// non-uniform `p(x)` that still has full support on the unit cube, which
/// is the only property REDS requires of the input distribution.
pub fn logit_normal(n: usize, m: usize, mu: f64, sigma: f64, rng: &mut impl Rng) -> Vec<f64> {
    (0..n * m)
        .map(|_| {
            let z = mu + sigma * standard_normal(rng);
            1.0 / (1.0 + (-z).exp())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn logit_normal_stays_in_open_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = logit_normal(5_000, 3, 0.0, 1.0, &mut rng);
        assert_eq!(pts.len(), 15_000);
        assert!(pts.iter().all(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn mu_zero_is_symmetric_around_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = logit_normal(40_000, 1, 0.0, 1.0, &mut rng);
        let mean = pts.iter().sum::<f64>() / pts.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn positive_mu_shifts_mass_up() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts = logit_normal(10_000, 1, 1.5, 0.5, &mut rng);
        let above = pts.iter().filter(|&&v| v > 0.5).count();
        assert!(above > 9_000, "{above} of 10000 above 0.5");
    }
}
