use rand::Rng;

use crate::latin_hypercube;

/// The discrete grid used for even-indexed inputs in the mixed-inputs
/// experiment (§9.1.2).
pub const DISCRETE_LEVELS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

/// Replaces the values of every even-indexed column (0, 2, 4, …) with
/// i.i.d. draws from [`DISCRETE_LEVELS`], in place.
///
/// `points` is a row-major `n × m` buffer.
pub fn discretize_even_columns(points: &mut [f64], m: usize, rng: &mut impl Rng) {
    if m == 0 {
        return;
    }
    for row in points.chunks_exact_mut(m) {
        for j in (0..m).step_by(2) {
            row[j] = DISCRETE_LEVELS[rng.gen_range(0..DISCRETE_LEVELS.len())];
        }
    }
}

/// Mixed continuous/discrete design: Latin hypercube on the odd columns,
/// i.i.d. draws from [`DISCRETE_LEVELS`] on the even columns — the exact
/// setup of the mixed-inputs experiment (§9.1.2).
pub fn mixed_design(n: usize, m: usize, rng: &mut impl Rng) -> Vec<f64> {
    let mut pts = latin_hypercube(n, m, rng);
    discretize_even_columns(&mut pts, m, rng);
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn even_columns_are_discrete_odd_stay_continuous() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = 5;
        let pts = mixed_design(200, m, &mut rng);
        for row in pts.chunks_exact(m) {
            for j in (0..m).step_by(2) {
                assert!(
                    DISCRETE_LEVELS.iter().any(|&l| (row[j] - l).abs() < 1e-12),
                    "even column value {} not on the grid",
                    row[j]
                );
            }
        }
        // With 200 LHS points the chance any odd column lands exactly on a
        // grid level is negligible; check at least one value is off-grid.
        let off_grid = pts
            .chunks_exact(m)
            .any(|row| DISCRETE_LEVELS.iter().all(|&l| (row[1] - l).abs() > 1e-9));
        assert!(off_grid);
    }

    #[test]
    fn all_levels_appear() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = mixed_design(500, 2, &mut rng);
        for &level in &DISCRETE_LEVELS {
            assert!(
                pts.chunks_exact(2).any(|r| (r[0] - level).abs() < 1e-12),
                "level {level} never drawn"
            );
        }
    }

    #[test]
    fn zero_width_is_noop() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut empty: Vec<f64> = Vec::new();
        discretize_even_columns(&mut empty, 0, &mut rng);
        assert!(empty.is_empty());
    }
}
