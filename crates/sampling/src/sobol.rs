//! Sobol low-discrepancy sequence (digital base-2 construction with Gray
//! code ordering).
//!
//! The paper's designs are LHS and Halton; Sobol is provided as the third
//! standard space-filling design of the metamodeling literature so users
//! can swap it in for `D` or `D_new`. The implementation follows the
//! classic direction-number construction: dimension 0 is the van der
//! Corput sequence, higher dimensions use primitive polynomials over GF(2)
//! with initial direction numbers from the Joe–Kuo tables. Any odd
//! `m_i < 2^i` initialization yields a valid digital sequence; the tabled
//! values additionally give good two-dimensional projections.

/// Maximum supported dimensionality of [`sobol`].
pub const SOBOL_MAX_DIM: usize = 21;

/// Bits of precision in the generated fractions.
const BITS: usize = 52;

/// `(degree s, coefficient bits a, initial direction numbers)` per
/// dimension, starting at dimension index 1 (Joe–Kuo `new-joe-kuo-6`).
const POLY: [(u32, u32, &[u64]); 20] = [
    (1, 0, &[1]),
    (2, 1, &[1, 3]),
    (3, 1, &[1, 3, 1]),
    (3, 2, &[1, 1, 1]),
    (4, 1, &[1, 1, 3, 3]),
    (4, 4, &[1, 3, 5, 13]),
    (5, 2, &[1, 1, 5, 5, 17]),
    (5, 4, &[1, 1, 5, 5, 5]),
    (5, 7, &[1, 1, 7, 11, 19]),
    (5, 11, &[1, 1, 5, 1, 1]),
    (5, 13, &[1, 1, 1, 3, 11]),
    (5, 14, &[1, 3, 5, 5, 31]),
    (6, 1, &[1, 3, 3, 9, 7, 49]),
    (6, 13, &[1, 1, 1, 15, 21, 21]),
    (6, 16, &[1, 3, 1, 13, 27, 49]),
    (6, 19, &[1, 1, 1, 15, 7, 5]),
    (6, 22, &[1, 3, 1, 15, 13, 25]),
    (6, 25, &[1, 1, 5, 5, 19, 61]),
    (7, 1, &[1, 3, 7, 11, 23, 15, 103]),
    (7, 4, &[1, 3, 7, 13, 13, 15, 69]),
];

/// Direction numbers `v_1..v_BITS` for one dimension, scaled to integers
/// with an implicit binary point after bit `BITS`.
fn direction_numbers(dim: usize) -> Vec<u64> {
    let mut v = vec![0u64; BITS];
    if dim == 0 {
        for (i, slot) in v.iter_mut().enumerate() {
            *slot = 1u64 << (BITS - 1 - i);
        }
        return v;
    }
    let (s, a, m_init) = POLY[dim - 1];
    let s = s as usize;
    let mut m = vec![0u64; BITS];
    m[..s].copy_from_slice(m_init);
    for i in s..BITS {
        // recurrence: m_i = 2 a_1 m_{i-1} ^ 4 a_2 m_{i-2} ^ ... ^ 2^s m_{i-s} ^ m_{i-s}
        let mut val = m[i - s] ^ (m[i - s] << s);
        for k in 1..s {
            let a_k = (a >> (s - 1 - k)) & 1;
            if a_k == 1 {
                val ^= m[i - k] << k;
            }
        }
        m[i] = val;
    }
    for i in 0..BITS {
        v[i] = m[i] << (BITS - 1 - i);
    }
    v
}

/// First `n` points of the `m`-dimensional Sobol sequence (row-major),
/// skipping the all-zeros point at index 0.
///
/// # Panics
///
/// Panics when `m > SOBOL_MAX_DIM`.
pub fn sobol(n: usize, m: usize) -> Vec<f64> {
    assert!(
        m <= SOBOL_MAX_DIM,
        "sobol sequence supports at most {SOBOL_MAX_DIM} dimensions, got {m}"
    );
    if n == 0 || m == 0 {
        return Vec::new();
    }
    let dirs: Vec<Vec<u64>> = (0..m).map(direction_numbers).collect();
    let scale = (1u64 << BITS) as f64;
    let mut state = vec![0u64; m];
    let mut out = Vec::with_capacity(n * m);
    // Gray-code ordering: point k flips the bit at the position of the
    // lowest zero bit of k-1; we emit indices 1..=n.
    for k in 1..=n as u64 {
        let c = (k - 1).trailing_ones() as usize;
        for (j, s) in state.iter_mut().enumerate() {
            *s ^= dirs[j][c];
            out.push(*s as f64 / scale);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_zero_is_van_der_corput() {
        let pts = sobol(4, 1);
        // Gray-code order of base-2 radical inverses: 0.5, 0.75, 0.25, 0.375
        let expected = [0.5, 0.75, 0.25, 0.375];
        for (p, e) in pts.iter().zip(expected) {
            assert!((p - e).abs() < 1e-12, "{p} vs {e}");
        }
    }

    #[test]
    fn first_points_of_dimension_two_match_reference() {
        // Classic Sobol dim 2 (poly x^2+x+1, m = [1,3]) in Gray order:
        // 0.5, 0.25, 0.75, 0.375 ...
        let pts = sobol(4, 2);
        let dim2: Vec<f64> = (0..4).map(|i| pts[i * 2 + 1]).collect();
        let expected = [0.5, 0.25, 0.75, 0.375];
        for (p, e) in dim2.iter().zip(expected) {
            assert!((p - e).abs() < 1e-12, "{p} vs {e}");
        }
    }

    #[test]
    fn values_in_unit_interval_and_distinct_from_zero() {
        let pts = sobol(1 << 10, SOBOL_MAX_DIM);
        assert!(pts.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn power_of_two_prefix_is_balanced_in_every_dimension() {
        // A (t,m,s)-net property: each half [0,0.5), [0.5,1) of every
        // dimension receives exactly half of any 2^k prefix.
        let n = 256;
        let m = 8;
        let pts = sobol(n, m);
        // We skip the all-zeros point at index 0, so a 2^k-point window is
        // shifted by one: each half receives n/2 ± 1 points.
        for j in 0..m {
            let low = (0..n).filter(|&i| pts[i * m + j] < 0.5).count();
            assert!(
                (n / 2 - 1..=n / 2 + 1).contains(&low),
                "dimension {j} unbalanced: {low} of {n} in the lower half"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_dimensions_panics() {
        let _ = sobol(1, SOBOL_MAX_DIM + 1);
    }
}
