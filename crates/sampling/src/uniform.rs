use rand::Rng;

/// `n` i.i.d. uniform points in `[0,1)^m` (row-major).
///
/// This is the sampling step of REDS itself (Algorithm 4, line 3): under
/// deep uncertainty the input distribution `p(x)` is uniform, so the
/// pseudo-labeled set `D_new` is drawn i.i.d. uniform rather than with a
/// space-filling design.
pub fn uniform(n: usize, m: usize, rng: &mut impl Rng) -> Vec<f64> {
    (0..n * m).map(|_| rng.gen::<f64>()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_and_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = uniform(50, 4, &mut rng);
        assert_eq!(pts.len(), 200);
        assert!(pts.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = uniform(20_000, 1, &mut rng);
        let mean: f64 = pts.iter().sum::<f64>() / pts.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = uniform(10, 2, &mut StdRng::seed_from_u64(3));
        let b = uniform(10, 2, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
